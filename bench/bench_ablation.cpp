// Ablations of the design choices DESIGN.md calls out.
//
//  A. Matching-engine choice (§2.2, §4.3.1): full-table AC vs failure-link
//     (compressed) AC vs Wu-Manber, on benign and adversarial traffic.
//  B. The §5.1 accepting-state bitmap: scan cost with and without the
//     bitmap short-circuit, on traffic whose matches belong to *inactive*
//     middleboxes (the case the bitmap optimizes).
//  C. Decompress-once (§1): one shared inflate + combined scan vs each of N
//     middleboxes inflating and scanning on its own.
#include "ac/wu_manber.hpp"
#include "bench_util.hpp"
#include "compress/deflate.hpp"
#include "compress/inflate.hpp"

using namespace dpisvc;
using namespace dpisvc::bench;

namespace {

double measure_wm_mbps(const ac::WuManber& matcher,
                       const workload::Trace& trace,
                       std::uint64_t min_bytes) {
  const std::uint64_t trace_bytes = workload::total_payload_bytes(trace);
  volatile std::uint64_t sink = 0;
  std::uint64_t scanned = 0;
  Stopwatch watch;
  while (scanned < min_bytes) {
    for (const auto& p : trace) {
      std::uint64_t local = 0;
      matcher.scan(p.payload,
                   [&](std::uint64_t end, ac::PatternIndex) { local += end; });
      sink = sink + local;
    }
    scanned += trace_bytes;
  }
  (void)sink;
  return to_mbps(scanned, watch.elapsed_seconds());
}

void engines_ablation() {
  std::printf("\n--- A. matching engine choice ---\n");
  const auto patterns = workload::generate_patterns(workload::snort_like(4356));
  auto full = engine_for(patterns);
  dpi::EngineConfig compressed_config;
  compressed_config.use_compressed_automaton = true;
  auto compressed = engine_for(patterns, compressed_config);
  const ac::WuManber wm = ac::WuManber::build(patterns);

  const auto benign = benign_trace(patterns, 1500);
  workload::TrafficConfig attack_config;
  attack_config.num_packets = 1500;
  const std::vector<std::string> targets(patterns.begin(),
                                         patterns.begin() + 32);
  const auto attack = workload::generate_attack_trace(attack_config, targets);

  const std::uint64_t kBytes = 24ull << 20;
  std::printf("%-24s %14s %14s %12s\n", "engine", "benign[Mbps]",
              "attack[Mbps]", "memory[MB]");
  std::printf("%-24s %14.0f %14.0f %12.1f\n", "AC full-table",
              measure_scan_mbps(*full, 1, benign, kBytes),
              measure_scan_mbps(*full, 1, attack, kBytes),
              full->memory_bytes() / 1e6);
  std::printf("%-24s %14.0f %14.0f %12.1f\n", "AC compressed",
              measure_scan_mbps(*compressed, 1, benign, kBytes),
              measure_scan_mbps(*compressed, 1, attack, kBytes),
              compressed->memory_bytes() / 1e6);
  std::printf("%-24s %14.0f %14.0f %12.1f\n", "Wu-Manber",
              measure_wm_mbps(wm, benign, kBytes),
              measure_wm_mbps(wm, attack, kBytes),
              wm.memory_bytes() / 1e6);
  std::printf("(Wu-Manber has no carried state: stateless scans only)\n");
}

dpi::EngineSpec bitmap_spec(const std::vector<std::string>& set1,
                            const std::vector<std::string>& set2) {
  // Middlebox 2 registers every pattern under 12 rule ids, so each of its
  // accepting states carries a long match-table row — the §5.1 case where
  // skipping the row via one bitmap AND matters most.
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile a;
  a.id = 1;
  a.name = "active";
  dpi::MiddleboxProfile b;
  b.id = 2;
  b.name = "inactive";
  spec.middleboxes = {a, b};
  dpi::PatternId id = 0;
  for (const std::string& p : set1) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{p, 1, id++});
  }
  id = 0;
  for (const std::string& p : set2) {
    for (int copy = 0; copy < 12; ++copy) {
      spec.exact_patterns.push_back(dpi::ExactPatternSpec{p, 2, id++});
    }
  }
  spec.chains[2] = {1};  // the scanned chain activates middlebox 1 only
  return spec;
}

void bitmap_ablation() {
  std::printf("\n--- B. accepting-state bitmap short-circuit (§5.1) ---\n");
  // The traffic is saturated with middlebox 2's patterns, but the scanned
  // chain activates only middlebox 1 — every accepting hit is irrelevant
  // and the bitmap skips its (long) match-table row.
  const auto all = workload::generate_patterns(workload::snort_like(4000));
  const std::vector<std::string> set1(all.begin(), all.begin() + 2000);
  const std::vector<std::string> set2(all.begin() + 2000, all.end());

  const dpi::EngineSpec spec = bitmap_spec(set1, set2);
  dpi::EngineConfig with;
  dpi::EngineConfig without;
  without.use_accept_bitmaps = false;
  auto engine_with = dpi::Engine::compile(spec, with);
  auto engine_without = dpi::Engine::compile(spec, without);

  workload::TrafficConfig config;
  config.num_packets = 1500;
  const std::vector<std::string> targets(set2.begin(), set2.begin() + 32);
  const auto trace = workload::generate_attack_trace(config, targets);

  const std::uint64_t kBytes = 24ull << 20;
  // Chain 2 activates middlebox 1 only; all matches belong to middlebox 2.
  const double mbps_with = measure_scan_mbps(*engine_with, 2, trace, kBytes);
  const double mbps_without =
      measure_scan_mbps(*engine_without, 2, trace, kBytes);
  std::printf("%-34s %10.0f Mbps\n", "bitmap enabled", mbps_with);
  std::printf("%-34s %10.0f Mbps\n", "bitmap disabled", mbps_without);
  std::printf("bitmap short-circuit speedup on irrelevant-match traffic: "
              "%.2fx\n", mbps_with / mbps_without);
}

void decompression_ablation() {
  std::printf("\n--- C. decompress once vs per-middlebox (§1) ---\n");
  const auto patterns = workload::generate_patterns(workload::snort_like(2000));
  const auto split = workload::split_random(patterns, 4, 5);

  // Compressed HTTP bodies.
  workload::TrafficConfig config;
  config.num_packets = 400;
  config.min_payload = 2048;
  config.max_payload = 8192;
  config.seed = 77;
  const auto plain = workload::generate_http_trace(config);
  std::vector<Bytes> compressed;
  std::uint64_t plain_bytes = 0;
  for (const auto& p : plain) {
    compressed.push_back(compress::gzip_compress(p.payload));
    plain_bytes += p.payload.size();
  }

  auto combined = engine_for(patterns);
  std::vector<std::shared_ptr<const dpi::Engine>> separate;
  for (const auto& part : split) {
    separate.push_back(engine_for(part));
  }

  const int kRounds = 6;
  // DPI service: inflate once, scan the combined set once.
  Stopwatch service_watch;
  for (int r = 0; r < kRounds; ++r) {
    for (const Bytes& body : compressed) {
      const Bytes inflated = compress::gzip_decompress(body);
      (void)combined->scan_packet(1, inflated);
    }
  }
  const double service_seconds = service_watch.elapsed_seconds();

  for (std::size_t n : {2u, 4u}) {
    // Baseline: each of n middleboxes inflates and scans independently.
    Stopwatch baseline_watch;
    for (int r = 0; r < kRounds; ++r) {
      for (const Bytes& body : compressed) {
        for (std::size_t i = 0; i < n; ++i) {
          const Bytes inflated = compress::gzip_decompress(body);
          (void)separate[i]->scan_packet(1, inflated);
        }
      }
    }
    const double baseline_seconds = baseline_watch.elapsed_seconds();
    std::printf("%zu middleboxes: per-box inflate+scan %7.0f Mbps | "
                "service %7.0f Mbps | speedup %.2fx\n",
                n,
                to_mbps(plain_bytes * kRounds, baseline_seconds),
                to_mbps(plain_bytes * kRounds, service_seconds),
                baseline_seconds / service_seconds);
  }
  std::printf("(the paper: decompression 'executed only once for each "
              "packet')\n");
}

}  // namespace

int main() {
  print_header("Ablations: engine choice, §5.1 bitmap, decompress-once");
  engines_ablation();
  bitmap_ablation();
  decompression_ablation();
  return 0;
}
