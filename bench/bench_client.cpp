// §6.3: "these [result-consuming middlebox] applications operate much
// faster than the virtual DPI instances and thus are not a bottleneck in
// the system. For this reason, the overhead of buffering and reordering
// packets in these applications do not impose significant delays or any
// throughput degradation."
//
// This harness measures the middlebox client side: decoding result packets
// and applying rule logic, compared against the DPI instance's scan rate
// over the same traffic.
#include "bench_util.hpp"
#include "mbox/boxes.hpp"
#include "net/result.hpp"
#include "service/instance.hpp"

using namespace dpisvc;
using namespace dpisvc::bench;

int main() {
  print_header("Section 6.3: result-consuming middlebox vs DPI instance");

  const auto patterns = workload::generate_patterns(workload::snort_like(4356));
  auto engine = engine_for(patterns);

  mbox::Ids ids(1, /*stateful=*/false);
  dpi::PatternId id = 0;
  for (const auto& p : patterns) {
    mbox::RuleSpec rule;
    rule.id = id++;
    rule.exact = p;
    rule.verdict = mbox::Verdict::kAlert;
    ids.add_rule(rule);
  }

  // Pre-scan a high-match trace and materialize (packet, encoded report)
  // pairs — the stream the client consumes.
  workload::TrafficConfig config;
  config.num_packets = 4000;
  config.planted_match_rate = 0.5;  // stress the client: many reports
  config.planted_patterns.assign(patterns.begin(), patterns.begin() + 64);
  config.seed = 63;
  const auto trace = workload::generate_http_trace(config);

  struct ClientInput {
    net::Packet data;
    Bytes encoded_report;  // empty when no matches
  };
  std::vector<ClientInput> inputs;
  std::uint64_t payload_bytes = 0;
  std::uint16_t ip_id = 0;
  for (const auto& t : trace) {
    ClientInput input;
    input.data = workload::to_packet(t, ip_id++);
    payload_bytes += t.payload.size();
    const dpi::ScanResult scanned = engine->scan_packet(1, t.payload);
    if (scanned.has_matches()) {
      net::MatchReport report;
      report.policy_chain_id = 1;
      for (const auto& m : scanned.matches) {
        if (!m.entries.empty()) {
          report.sections.push_back(
              net::MiddleboxSection{m.middlebox, m.entries});
        }
      }
      input.encoded_report =
          net::encode_report(report, net::ReportCodec::kUniform6);
    }
    inputs.push_back(std::move(input));
  }

  // DPI-instance side rate.
  const double dpi_mbps = measure_scan_mbps(*engine, 1, trace, 32ull << 20);

  // Client side: decode + rule application per packet.
  const int kRounds = 40;
  Stopwatch watch;
  for (int r = 0; r < kRounds; ++r) {
    for (const ClientInput& input : inputs) {
      if (input.encoded_report.empty()) {
        ids.apply_report_entries(input.data, {});
        continue;
      }
      const net::MatchReport report = net::decode_report(input.encoded_report);
      for (const net::MiddleboxSection& section : report.sections) {
        if (section.middlebox_id == ids.profile().id) {
          ids.apply_report_entries(input.data, section.entries);
        }
      }
    }
  }
  const double client_mbps =
      to_mbps(payload_bytes * kRounds, watch.elapsed_seconds());

  std::printf("%-36s %12.0f Mbps\n", "DPI instance scan rate", dpi_mbps);
  std::printf("%-36s %12.0f Mbps (payload-equivalent)\n",
              "middlebox client result handling", client_mbps);
  std::printf("\nclient / DPI ratio: %.1fx — the client is not the "
              "bottleneck (paper: clients 'operate much faster')\n",
              client_mbps / dpi_mbps);
  std::printf("(client processed %llu rule hits)\n",
              static_cast<unsigned long long>(ids.total_rule_hits()));
  return 0;
}
