// §1 footnote 1: "In an experiment we conducted on Snort IDS, DPI slows
// packet processing by a factor of at least 2.9."
//
// This harness measures the same ratio on our IDS middlebox: per-packet
// processing time with the DPI component enabled (full payload scan +
// rule evaluation) vs disabled (everything else a middlebox does per
// packet: wire parse, header checks, flow lookup, counters).
#include <unordered_map>

#include "bench_util.hpp"
#include "common/checksum.hpp"
#include "net/packet.hpp"

using namespace dpisvc;
using namespace dpisvc::bench;

namespace {

/// The non-DPI share of middlebox packet processing, modelled on what a
/// NIDS does around its detection engine: parse the frame, validate the
/// payload checksum, normalize the payload (Snort's HTTP/telnet
/// preprocessors lowercase and de-escape payload bytes), extract header
/// fields, and update flow accounting.
std::uint64_t non_dpi_work(const Bytes& frame,
                           std::unordered_map<net::FiveTuple,
                                              std::uint64_t>& flows,
                           Bytes& normalized) {
  const net::Packet p = net::Packet::from_wire(frame);
  std::uint64_t acc = p.ttl;
  acc += p.tuple.dst_port;
  acc += internet_checksum(p.payload);  // L4 checksum over payload
  // Payload normalization pass (case folding, as HTTP preprocessors do).
  normalized.resize(p.payload.size());
  for (std::size_t i = 0; i < p.payload.size(); ++i) {
    const std::uint8_t b = p.payload[i];
    normalized[i] = (b >= 'A' && b <= 'Z') ? static_cast<std::uint8_t>(b + 32)
                                           : b;
  }
  // Header-field extraction: find the end of the request line / headers.
  for (std::size_t i = 0; i + 3 < normalized.size(); ++i) {
    if (normalized[i] == '\r' && normalized[i + 1] == '\n' &&
        normalized[i + 2] == '\r' && normalized[i + 3] == '\n') {
      acc += i;
      break;
    }
  }
  flows[p.tuple.canonical()] += p.payload.size();
  return acc + p.payload.size();
}

}  // namespace

int main() {
  print_header(
      "Section 1 footnote: middlebox slowdown factor due to the DPI "
      "component");

  const auto patterns = workload::generate_patterns(workload::snort_like(4356));
  auto engine = engine_for(patterns);
  const auto trace = benign_trace(patterns, 2000);

  // Pre-serialize frames: the middlebox receives wire bytes either way.
  std::vector<Bytes> frames;
  frames.reserve(trace.size());
  std::uint16_t ip_id = 0;
  std::uint64_t payload_bytes = 0;
  for (const auto& t : trace) {
    frames.push_back(workload::to_packet(t, ip_id++).to_wire());
    payload_bytes += t.payload.size();
  }

  const int kRounds = 12;
  std::unordered_map<net::FiveTuple, std::uint64_t> flows;
  Bytes normalized;
  volatile std::uint64_t sink = 0;

  // Pass 1: middlebox without DPI.
  for (const Bytes& f : frames) {
    sink = sink + non_dpi_work(f, flows, normalized);  // warm-up
  }
  Stopwatch no_dpi;
  for (int r = 0; r < kRounds; ++r) {
    for (const Bytes& f : frames) {
      sink = sink + non_dpi_work(f, flows, normalized);
    }
  }
  const double seconds_without = no_dpi.elapsed_seconds();

  // Pass 2: middlebox with its DPI component enabled (scans the normalized
  // payload, as Snort's detection engine does).
  Stopwatch with_dpi;
  for (int r = 0; r < kRounds; ++r) {
    for (const Bytes& f : frames) {
      sink = sink + non_dpi_work(f, flows, normalized);
      const dpi::ScanResult scanned = engine->scan_packet(1, normalized);
      sink = sink + scanned.raw_hits;
    }
  }
  const double seconds_with = with_dpi.elapsed_seconds();

  const double total_packets = static_cast<double>(frames.size()) * kRounds;
  std::printf("%-28s %14s %16s\n", "configuration", "us/packet",
              "payload Mbps");
  std::printf("%-28s %14.2f %16.0f\n", "middlebox, DPI disabled",
              seconds_without / total_packets * 1e6,
              to_mbps(payload_bytes * kRounds, seconds_without));
  std::printf("%-28s %14.2f %16.0f\n", "middlebox, DPI enabled",
              seconds_with / total_packets * 1e6,
              to_mbps(payload_bytes * kRounds, seconds_with));
  std::printf("\nDPI slows packet processing by a factor of %.1fx "
              "(paper: at least 2.9x)\n", seconds_with / seconds_without);
  (void)sink;
  return 0;
}
