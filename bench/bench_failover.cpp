// Failover recovery benchmark (§4.3 / §7 failure scenarios).
//
// A two-instance service pool carries chained traffic across a fabric with
// 1% seeded link loss. Mid-run the active instance is crashed; the
// controller must notice the missing heartbeats, reassign the chain to the
// survivor, and the middlebox must degrade any packets whose result packets
// died with the instance. Emits BENCH_failover.json with the recovery time
// (telemetry windows until all chains were reassigned) and the packet
// accounting (delivered / lost / stalled), seeding the perf trajectory for
// the fault-tolerance subsystem.
#include <cstdio>
#include <fstream>

#include "bench_util.hpp"
#include "json/json.hpp"
#include "mbox/boxes.hpp"
#include "mbox/middlebox_node.hpp"
#include "netsim/controller.hpp"
#include "netsim/host.hpp"
#include "netsim/switch.hpp"
#include "service/instance_node.hpp"

using namespace dpisvc;
using namespace dpisvc::bench;

namespace {

net::Packet make_packet(bool evil, std::uint16_t src_port,
                        std::uint16_t ip_id) {
  net::Packet p;
  p.tuple.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  p.tuple.dst_ip = net::Ipv4Addr(10, 0, 0, 99);
  p.tuple.src_port = src_port;
  p.tuple.dst_port = 80;
  p.ip_id = ip_id;
  p.payload = to_bytes(evil ? "GET /?q=attack-sig HTTP/1.1 payload padding"
                            : "GET /index.html HTTP/1.1 benign body bytes");
  return p;
}

}  // namespace

int main() {
  print_header("failover: instance crash mid-traffic under 1% link loss");

  constexpr std::size_t kMissWindows = 2;
  constexpr int kWindows = 12;
  constexpr int kCrashWindow = 4;
  constexpr int kPacketsPerWindow = 250;
  constexpr double kLoss = 0.01;

  service::FailoverConfig failover;
  failover.miss_windows = kMissWindows;
  service::DpiController controller({}, failover);

  mbox::Ids ids(1, /*stateful=*/false);
  mbox::RuleSpec rule;
  rule.id = 1;
  rule.exact = "attack-sig";
  rule.verdict = mbox::Verdict::kAlert;
  ids.add_rule(rule);
  ids.attach(controller);
  const dpi::ChainId chain = controller.register_policy_chain({1});
  auto dpi1 = controller.create_instance("dpi1");
  auto dpi2 = controller.create_instance("dpi2");
  controller.assign_chain(chain, "dpi1");

  netsim::Fabric fabric;
  fabric.add_node<netsim::Switch>("s1");
  netsim::Host& src = fabric.add_node<netsim::Host>("src");
  netsim::Host& dst = fabric.add_node<netsim::Host>("dst");
  fabric.add_node<service::InstanceNode>("dpi1", dpi1);
  fabric.add_node<service::InstanceNode>("dpi2", dpi2);
  mbox::DegradeConfig degrade;
  degrade.result_deadline = 128;
  mbox::MiddleboxNode& ids_node = fabric.add_node<mbox::MiddleboxNode>(
      "ids", ids, mbox::NodeMode::kService, degrade);
  fabric.set_fault_seed(20140102);
  netsim::LinkFaults faults;
  faults.drop = kLoss;
  for (const char* n : {"src", "dst", "dpi1", "dpi2", "ids"}) {
    fabric.connect("s1", n);
    fabric.set_link_faults("s1", n, faults);
  }
  src.set_gateway("s1");

  netsim::SdnController sdn(fabric);
  netsim::TrafficSteeringApp tsa(sdn, "s1");
  netsim::PolicyChainSpec spec;
  spec.id = chain;
  spec.ingress = "src";
  spec.sequence = {"dpi1", "ids"};
  spec.egress = "dst";
  tsa.install_chain(spec);
  controller.set_routing_listener(
      [&](dpi::ChainId id, const std::string& instance) {
        tsa.update_sequence(id, {instance, "ids"});
      });

  std::uint64_t sent = 0;
  std::uint16_t ip_id = 1;
  int detected_window = -1;
  int reassigned_window = -1;
  Stopwatch watch;
  for (int window = 0; window < kWindows; ++window) {
    if (window == kCrashWindow) {
      fabric.crash_node("dpi1");
      std::printf("[window %2d] dpi1 crashed\n", window);
    }
    for (int i = 0; i < kPacketsPerWindow; ++i) {
      src.send(make_packet(i % 10 == 0,
                           static_cast<std::uint16_t>(1000 + i % 16),
                           ip_id++));
      ++sent;
      fabric.run();
    }
    for (const std::string& name : controller.instance_names()) {
      if (!fabric.crashed(name)) controller.heartbeat(name);
    }
    controller.collect_telemetry();
    if (detected_window < 0 && controller.is_failed("dpi1")) {
      detected_window = window;
      std::printf("[window %2d] dpi1 declared failed\n", window);
    }
    controller.apply_failover(controller.evaluate_failover());
    if (reassigned_window < 0 &&
        controller.instance_for_chain(chain).value_or("dpi1") != "dpi1") {
      reassigned_window = window;
      std::printf("[window %2d] chain %u reassigned to %s\n", window,
                  static_cast<unsigned>(chain),
                  controller.instance_for_chain(chain)->c_str());
    }
  }
  // Drain waiters whose result packets were lost, then settle the fabric.
  ids_node.expire_pending(/*force=*/true);
  fabric.run();
  const double seconds = watch.elapsed_seconds();

  const netsim::FaultStats& fs = fabric.fault_stats();
  const std::uint64_t delivered = dst.received().size();
  const std::uint64_t stalled = ids_node.pending();
  const std::uint64_t lost = sent - delivered;
  const int recovery_windows =
      reassigned_window < 0 ? -1 : reassigned_window - kCrashWindow + 1;

  std::printf("\n%-38s %8llu\n", "packets sent",
              static_cast<unsigned long long>(sent));
  std::printf("%-38s %8llu\n", "packets delivered to dst",
              static_cast<unsigned long long>(delivered));
  std::printf("%-38s %8llu  (link loss %llu, crash discards %llu)\n",
              "packets lost", static_cast<unsigned long long>(lost),
              static_cast<unsigned long long>(fs.dropped),
              static_cast<unsigned long long>(fs.crash_discards));
  std::printf("%-38s %8llu\n", "packets permanently stalled",
              static_cast<unsigned long long>(stalled));
  std::printf("%-38s %8llu\n", "fallback local scans",
              static_cast<unsigned long long>(ids_node.fallback_scans()));
  std::printf("%-38s %8d\n", "windows to detect failure",
              detected_window - kCrashWindow + 1);
  std::printf("%-38s %8d\n", "windows to reassign all chains",
              recovery_windows);

  const json::Value out(json::obj({
      {"miss_windows", static_cast<double>(kMissWindows)},
      {"link_loss", kLoss},
      {"packets_sent", static_cast<double>(sent)},
      {"packets_delivered", static_cast<double>(delivered)},
      {"packets_lost", static_cast<double>(lost)},
      {"link_drops", static_cast<double>(fs.dropped)},
      {"crash_discards", static_cast<double>(fs.crash_discards)},
      {"packets_stalled", static_cast<double>(stalled)},
      {"result_timeouts", static_cast<double>(ids_node.result_timeouts())},
      {"fallback_scans", static_cast<double>(ids_node.fallback_scans())},
      {"windows_to_detect", static_cast<double>(detected_window -
                                                kCrashWindow + 1)},
      {"recovery_windows", static_cast<double>(recovery_windows)},
      {"wall_seconds", seconds},
  }));
  std::ofstream("BENCH_failover.json") << json::dump(out) << "\n";
  std::printf("\nwrote BENCH_failover.json\n");
  return stalled == 0 && recovery_windows > 0 &&
                 recovery_windows <= static_cast<int>(kMissWindows) + 1
             ? 0
             : 1;
}
