// Figure 10: "Actual achievable throughput for two separate middleboxes
// that handle different traffic (red, dashed rectangle), compared to the
// theoretical achievable throughput of our combined instances of virtual
// DPI (blue, solid triangle)."
//
// Scenario (Figure 3): two traffic classes, each inspected against its own
// pattern set, on two machines.
//  - Separate: machine 1 runs set A only, machine 2 runs set B only. The
//    achievable region is the rectangle [0,T_A] x [0,T_B]: neither machine
//    can help the other.
//  - Virtual DPI: both machines run the combined engine; either machine can
//    take either class. The region is the triangle x + y <= 2*T_{A+B}.
// The interesting area is the part of the triangle outside the rectangle:
// e.g. one class can exceed 100% of its dedicated-machine capacity when the
// other is underloaded (§6.4's Clam-AV example).
#include "bench_util.hpp"

using namespace dpisvc;
using namespace dpisvc::bench;

namespace {

void run_scenario(const char* title, const std::vector<std::string>& set_a,
                  const char* name_a, const std::vector<std::string>& set_b,
                  const char* name_b, const workload::Trace& trace) {
  // One engine resident at a time (each machine runs one engine).
  const std::uint64_t kBytes = 32ull << 20;
  double t_a;
  {
    auto engine_a = engine_for(set_a);
    t_a = measure_scan_mbps(*engine_a, 1, trace, kBytes);
  }
  double t_b;
  {
    auto engine_b = engine_for(set_b);
    t_b = measure_scan_mbps(*engine_b, 1, trace, kBytes);
  }
  // Chains 2/3 of the combined engine scan against one set's bitmap only —
  // the combined machine serving one traffic class.
  auto combined = combined_engine_for(set_a, set_b);
  const double t_ca = measure_scan_mbps(*combined, 2, trace, kBytes);
  const double t_cb = measure_scan_mbps(*combined, 3, trace, kBytes);

  std::printf("\n--- %s ---\n", title);
  std::printf("dedicated machines:  T_%s = %.0f Mbps, T_%s = %.0f Mbps\n",
              name_a, t_a, name_b, t_b);
  std::printf("combined machines:   T per machine: %.0f (class %s) / %.0f "
              "(class %s)\n", t_ca, name_a, t_cb, name_b);

  std::printf("\nregion boundaries (x = %s load, y = %s load, Mbps):\n",
              name_a, name_b);
  std::printf("%-8s %16s %18s\n", "x", "rect y-max", "triangle y-max");
  // Separate rectangle: y <= T_b while x <= T_a (0 beyond).
  // Combined triangle: each machine splits between classes; with machine 1
  // giving fraction f to class A: x = f*t_ca*2 is infeasible — instead use
  // the standard region: x/t_ca + y/t_cb <= 2 (two machines' worth of
  // combined capacity, classes interchangeable).
  const double x_max = 2.0 * t_ca;
  for (int step = 0; step <= 10; ++step) {
    const double x = x_max * step / 10.0;
    const double rect_y = x <= t_a ? t_b : 0.0;
    const double tri_y = (2.0 - x / t_ca) * t_cb;
    std::printf("%-8.0f %16.0f %18.0f\n", x, rect_y, std::max(0.0, tri_y));
  }
  const double over = (2.0 * t_cb / t_b - 1.0) * 100.0;
  std::printf("\nwhen %s is idle, %s can reach %.0f Mbps = %.0f%% above its "
              "dedicated machine (paper: can exceed 100%%)\n",
              name_a, name_b, 2.0 * t_cb, over);
}

}  // namespace

int main() {
  print_header(
      "Figure 10: achievable-throughput regions, separate vs combined");

  const auto snort = workload::generate_patterns(workload::snort_like(4356));
  const auto split = workload::split_random(snort, 2, 99);
  const auto trace = benign_trace(snort);
  run_scenario("Fig 10(a): Snort1 vs Snort2", split[0], "Snort1", split[1],
               "Snort2", trace);

  const auto clamav =
      workload::generate_patterns(workload::clamav_like(31827));
  run_scenario("Fig 10(b): Snort vs ClamAV", snort, "Snort", clamav,
               "ClamAV", trace);

  std::printf("\nshape target: the triangle strictly contains the rectangle "
              "corner region above/right of it\n");
  return 0;
}
