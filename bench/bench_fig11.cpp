// Figure 11: "Cumulative distribution of non-empty match report size per
// packet", using 6 bytes per match report (§6.5).
//
// Paper observations on the campus trace: more than 90% of packets have no
// matches at all; among non-empty reports the average is 34 bytes, most
// reports are smaller than the average, and only ~1% exceed 120 bytes.
//
// Workload calibration (see DESIGN.md): the pattern set is generated with
// fragment_probability = 0 so signatures never occur in benign HTTP-like
// content; matching packets are produced by explicit planting. A matching
// packet carries a geometric number of signature copies (several rules
// firing on the same packet is the common IDS case), and a small fraction
// of plants are back-to-back repeats of a self-overlapping pattern, which
// produce the *range* reports §6.5 introduces the 6-byte encoding for.
#include <algorithm>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "net/result.hpp"

using namespace dpisvc;
using namespace dpisvc::bench;

int main() {
  print_header("Figure 11: CDF of non-empty match-report size per packet");

  auto pattern_config = workload::snort_like(4356);
  pattern_config.fragment_probability = 0.0;  // no accidental matches
  const auto patterns = workload::generate_patterns(pattern_config);
  // One self-overlapping signature to exercise range reports.
  const std::string repeater = "abababab";
  std::vector<std::string> engine_set = patterns;
  engine_set.push_back(repeater);
  auto engine = engine_for(engine_set);

  workload::TrafficConfig config;
  config.num_packets = 20000;
  config.num_flows = 256;
  config.planted_match_rate = 0.0;  // planting is done manually below
  config.seed = 1109;
  workload::Trace trace = workload::generate_http_trace(config);

  Rng rng(0xF16011);
  for (auto& p : trace) {
    if (!rng.bernoulli(0.08)) continue;  // ~8% of packets match
    if (rng.bernoulli(0.06)) {
      // Self-repeating run: "ababab..." produces consecutive matches.
      const std::size_t copies = 2 + rng.index(8);
      std::string run;
      for (std::size_t i = 0; i < copies; ++i) run += "ab";
      run += repeater;
      const std::size_t at = rng.index(p.payload.size());
      p.payload.insert(p.payload.begin() + static_cast<std::ptrdiff_t>(at),
                       run.begin(), run.end());
      continue;
    }
    // Geometric number of distinct signatures per matching packet.
    std::size_t copies = 1;
    while (copies < 16 && rng.bernoulli(0.78)) ++copies;
    for (std::size_t i = 0; i < copies; ++i) {
      const std::string& sig = patterns[rng.index(patterns.size())];
      const std::size_t at = rng.index(p.payload.size());
      p.payload.insert(p.payload.begin() + static_cast<std::ptrdiff_t>(at),
                       sig.begin(), sig.end());
    }
  }

  std::vector<std::size_t> report_sizes;
  std::size_t matchless = 0;
  for (const workload::TracePacket& p : trace) {
    const dpi::ScanResult scanned = engine->scan_packet(1, p.payload);
    if (!scanned.has_matches()) {
      ++matchless;
      continue;
    }
    net::MatchReport report;
    report.policy_chain_id = 1;
    for (const dpi::MiddleboxMatches& m : scanned.matches) {
      if (m.entries.empty()) continue;
      report.sections.push_back(net::MiddleboxSection{m.middlebox, m.entries});
    }
    // Entry payload bytes only (6 B per entry, single and range alike),
    // matching the paper's per-match accounting.
    report_sizes.push_back(report.total_entries() * 6);
  }

  std::sort(report_sizes.begin(), report_sizes.end());
  const double matchless_pct =
      100.0 * static_cast<double>(matchless) / static_cast<double>(trace.size());
  std::printf("packets: %zu, matchless: %.1f%% (paper: >90%%)\n",
              trace.size(), matchless_pct);
  if (report_sizes.empty()) {
    std::printf("no reports produced\n");
    return 0;
  }

  double sum = 0;
  for (std::size_t s : report_sizes) sum += static_cast<double>(s);
  const double avg = sum / static_cast<double>(report_sizes.size());
  std::printf("non-empty reports: %zu, average size: %.1f bytes "
              "(paper: 34 bytes)\n\n", report_sizes.size(), avg);

  std::printf("%-22s %12s\n", "report size [bytes]", "cumulative %");
  for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    const auto index = static_cast<std::size_t>(
        (pct / 100.0) * static_cast<double>(report_sizes.size() - 1));
    std::printf("%-22zu %11.0f%%\n", report_sizes[index], pct);
  }

  const auto over120 = static_cast<double>(
      report_sizes.end() -
      std::upper_bound(report_sizes.begin(), report_sizes.end(), 120u));
  std::printf("\nreports over 120 bytes: %.2f%% (paper: ~1%%)\n",
              100.0 * over120 / static_cast<double>(report_sizes.size()));
  std::printf("most reports are below the mean, with a short heavy tail "
              "(the paper's shape)\n");
  return 0;
}
