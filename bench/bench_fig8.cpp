// Figure 8: "The effect of virtualization and number of patterns on the
// throughput of the AC algorithm."
//
// The paper compares a stand-alone machine, a single VM, and four VMs
// (average per VM), sweeping pattern count, and finds virtualization's
// impact minor while pattern count dominates.
//
// Substitution (see DESIGN.md): we cannot nest VMs here, so the three
// series become three execution environments with increasing isolation
// overheads of the same kind (scheduling + cache competition):
//   - "raw DFA"       — bare automaton traversal, no service machinery
//                        (the stand-alone upper bound);
//   - "1 instance"    — the full DpiInstance data path (flow lookup,
//                        telemetry, match handling);
//   - "4 instances"   — four engines with disjoint state interleaved
//                        packet-by-packet, so they compete for the same
//                        caches the way co-located VMs do; per-instance
//                        average is reported.
// The reproduction target is the *shape*: series close to each other,
// pattern count the dominant factor.
#include "ac/trie.hpp"
#include "bench_util.hpp"
#include "net/flow.hpp"
#include "service/instance.hpp"

using namespace dpisvc;
using namespace dpisvc::bench;

namespace {

double measure_raw_mbps(const dpi::Engine& engine,
                        const workload::Trace& trace,
                        std::uint64_t min_bytes) {
  const std::uint64_t trace_bytes = workload::total_payload_bytes(trace);
  volatile ac::StateIndex sink = 0;
  for (const auto& p : trace) sink = engine.traverse_only(p.payload);
  std::uint64_t scanned = 0;
  Stopwatch watch;
  while (scanned < min_bytes) {
    for (const auto& p : trace) sink = engine.traverse_only(p.payload);
    scanned += trace_bytes;
  }
  (void)sink;
  return to_mbps(scanned, watch.elapsed_seconds());
}

double measure_instances_mbps(const std::vector<std::string>& patterns,
                              const workload::Trace& trace, int n,
                              std::uint64_t min_bytes) {
  std::vector<std::unique_ptr<service::DpiInstance>> instances;
  for (int i = 0; i < n; ++i) {
    auto inst = std::make_unique<service::DpiInstance>("i" + std::to_string(i));
    // Each instance compiles its own engine: disjoint tables, as with VMs.
    inst->load_engine(engine_for(patterns), 1);
    instances.push_back(std::move(inst));
  }
  const std::uint64_t trace_bytes = workload::total_payload_bytes(trace);
  for (const auto& p : trace) {
    for (auto& inst : instances) (void)inst->scan(1, p.tuple, p.payload);
  }
  std::uint64_t scanned = 0;
  Stopwatch watch;
  while (scanned < min_bytes) {
    std::size_t turn = 0;
    for (const auto& p : trace) {
      // Interleave instances packet-by-packet: cache competition.
      (void)instances[turn++ % instances.size()]->scan(1, p.tuple, p.payload);
    }
    scanned += trace_bytes;
  }
  // Aggregate equals per-instance average here because every instance
  // processed 1/n of the bytes on one core.
  return to_mbps(scanned, watch.elapsed_seconds());
}

}  // namespace

int main() {
  print_header(
      "Figure 8: throughput vs number of patterns (environment series)");

  const auto all = workload::generate_patterns(workload::snort_like(4356));
  const auto trace = benign_trace(all);
  const std::size_t counts[] = {250, 500, 1000, 2000, 3000, 4356};
  const std::uint64_t kBytes = 48ull << 20;

  std::printf("%-10s %14s %14s %20s\n", "#patterns", "raw-DFA[Mbps]",
              "1-inst[Mbps]", "4-inst-total[Mbps]");
  for (std::size_t count : counts) {
    const std::vector<std::string> subset(all.begin(),
                                          all.begin() + static_cast<long>(count));
    auto engine = engine_for(subset);
    const double raw = measure_raw_mbps(*engine, trace, kBytes);
    const double one = measure_instances_mbps(subset, trace, 1, kBytes);
    const double four = measure_instances_mbps(subset, trace, 4, kBytes);
    std::printf("%-10zu %14.0f %14.0f %20.0f\n", count, raw, one, four);
  }
  std::printf("\nshape target: pattern count dominates; the environment "
              "series stay close (paper: virtualization has minor impact)\n");
  return 0;
}
