// Figure 9: "Comparing the throughput that can be handled by two pipelined
// middleboxes, and by our Virtual DPI."
//
// Scenario (Figure 2): traffic must be inspected against pattern set A and
// pattern set B.
//  - Baseline: two pipelined middleboxes on two machines; every packet is
//    scanned by A's engine on machine 1 and then by B's engine on machine 2.
//    System capacity = min(T_A, T_B): the slower box caps the pipeline.
//  - Virtual DPI: both machines run the combined A+B engine and traffic is
//    split between them; each packet is scanned once. System capacity =
//    2 * T_{A+B}.
//
// Paper results: combined is >= 86% faster for Snort1/Snort2 (Fig 9a) and
// >= 67% faster for full Snort + ClamAV (Fig 9b).
#include "bench_util.hpp"

using namespace dpisvc;
using namespace dpisvc::bench;

namespace {

void run_scenario(const char* title, const std::vector<std::string>& set_a,
                  const std::vector<std::string>& set_b,
                  const std::vector<double>& fractions,
                  const workload::Trace& trace) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-10s %-8s %-8s %12s %12s %14s %8s\n", "#patterns", "|A|",
              "|B|", "pipeline", "virtualDPI", "speedup", "");
  for (double fraction : fractions) {
    const auto a_count = static_cast<std::size_t>(set_a.size() * fraction);
    const auto b_count = static_cast<std::size_t>(set_b.size() * fraction);
    if (a_count == 0 || b_count == 0) continue;
    const std::vector<std::string> a(set_a.begin(),
                                     set_a.begin() + static_cast<long>(a_count));
    const std::vector<std::string> b(set_b.begin(),
                                     set_b.begin() + static_cast<long>(b_count));
    // Build, measure and free one engine at a time: each configuration's
    // machine runs one engine, so peak residency must not mix them.
    const std::uint64_t kBytes = 32ull << 20;
    double t_a;
    {
      auto engine_a = engine_for(a);
      t_a = measure_scan_mbps(*engine_a, 1, trace, kBytes);
    }
    double t_b;
    {
      auto engine_b = engine_for(b);
      t_b = measure_scan_mbps(*engine_b, 1, trace, kBytes);
    }
    double t_c;
    {
      auto combined = combined_engine_for(a, b);
      t_c = measure_scan_mbps(*combined, 1, trace, kBytes);
    }

    // Two machines in both configurations.
    const double pipeline = std::min(t_a, t_b);
    const double virtual_dpi = 2.0 * t_c;
    std::printf("%-10zu %-8zu %-8zu %9.0f %12.0f %11.0f%%\n",
                a.size() + b.size(), a.size(), b.size(), pipeline,
                virtual_dpi, (virtual_dpi / pipeline - 1.0) * 100.0);
  }
}

}  // namespace

int main() {
  print_header(
      "Figure 9: pipelined middleboxes vs two combined virtual DPI "
      "instances");

  // (a) Snort split into Snort1 / Snort2.
  const auto snort = workload::generate_patterns(workload::snort_like(4356));
  const auto split = workload::split_random(snort, 2, 99);
  const auto trace_a = benign_trace(snort);
  run_scenario("Fig 9(a): Snort1 and Snort2", split[0], split[1],
               {0.25, 0.5, 0.75, 1.0}, trace_a);

  // (b) Full Snort + ClamAV (scaled sweep up to the full 31,827).
  const auto clamav =
      workload::generate_patterns(workload::clamav_like(31827));
  run_scenario("Fig 9(b): full Snort and ClamAV", snort, clamav,
               {0.25, 0.5, 1.0}, trace_a);

  std::printf("\nshape target: virtual DPI >= ~86%% faster in (a) and >= "
              "~67%% faster in (b) (paper)\n");
  return 0;
}
