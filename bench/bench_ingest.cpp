// Zero-copy batched ingest pipeline: packets/sec and push-latency
// percentiles vs. ring capacity and batch size, plus the batched-vs-
// per-packet comparison the DESIGN.md §4h refactor is justified by.
//
// The workload is a large-flow-count HTTP trace (default 100k+ concurrent
// flows — enough that per-flow state actually contends the flow tables and
// the counting-sort partition sees a realistic shard spread). Each
// configuration replays the trace through an IngestPipeline over a sharded
// DpiInstance with bounded per-shard rings; the per-packet baseline pushes
// the same packets through DpiInstance::scan() one at a time, which is the
// path the pipeline replaces.
//
// NOTE on scaling expectations: the emitted JSON carries
// `hardware_threads`, `effective_workers`, and `scaling_limited_by_cpus`
// so consumers can tell a flat curve from a one-CPU container.
//
// Usage: bench_ingest [num_packets] [repeats]
//   num_packets  trace size (default 300000; CI smoke passes e.g. 2000)
//   repeats      trace replays per configuration (default 2)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "service/ingest.hpp"
#include "service/instance.hpp"

namespace dpisvc::bench {
namespace {

std::shared_ptr<const dpi::Engine> ingest_engine(std::size_t num_patterns) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";
  dpi::MiddleboxProfile fw;
  fw.id = 2;
  fw.name = "session-fw";
  fw.stateful = true;
  spec.middleboxes = {ids, fw};
  dpi::PatternId rule = 0;
  for (const auto& pattern :
       workload::generate_patterns(workload::snort_like(num_patterns, 17))) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{
        pattern, static_cast<dpi::MiddleboxId>(1 + rule % 2), rule});
    ++rule;
  }
  spec.chains[1] = {1};     // stateless
  spec.chains[2] = {1, 2};  // stateful: per-flow cursors on every packet
  return dpi::Engine::compile(spec);
}

service::InstanceConfig instance_config(std::size_t workers,
                                        std::size_t queue_capacity,
                                        std::size_t num_flows) {
  service::InstanceConfig config;
  config.num_workers = workers;
  config.queue_capacity = queue_capacity;
  config.overload = service::OverloadPolicy::kBlock;
  // Room for every concurrent flow's cursor: evictions would silently turn
  // the stateful chain into a partially stateless one and skew the numbers.
  config.max_flows = std::max<std::size_t>(4096, 2 * num_flows);
  return config;
}

struct RunResult {
  double pps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t blocked = 0;  ///< backpressure stalls during the run
};

/// Replays the trace through an IngestPipeline; each push() is timed (the
/// push is where backpressure surfaces, so its p99 is the latency cost of a
/// small ring).
RunResult run_pipeline(const std::shared_ptr<const dpi::Engine>& engine,
                       const workload::Trace& trace, dpi::ChainId chain,
                       std::size_t workers, std::size_t queue_capacity,
                       std::size_t batch_packets, int repeats) {
  service::DpiInstance inst(
      "bench", instance_config(workers, queue_capacity, trace.size()));
  inst.load_engine(engine, 1);

  service::IngestConfig ingest;
  ingest.batch_packets = batch_packets;
  ingest.max_batches = 8;
  std::uint64_t delivered = 0;
  service::IngestPipeline pipeline(
      inst,
      [&](const service::BatchHandle& batch) { delivered += batch.size(); },
      ingest);

  obs::Histogram push_ns(obs::Histogram::latency_bounds_ns());
  Stopwatch total;
  for (int rep = 0; rep < repeats; ++rep) {
    for (const auto& p : trace) {
      Stopwatch w;
      pipeline.push(chain, p.tuple, BytesView(p.payload));
      push_ns.record(w.elapsed_ns());
    }
    pipeline.drain();
  }
  const double seconds = total.elapsed_seconds();

  RunResult r;
  r.pps = static_cast<double>(delivered) / seconds;
  r.p50_us = push_ns.percentile(0.50) / 1e3;
  r.p99_us = push_ns.percentile(0.99) / 1e3;
  const obs::Counter* blocked = inst.ingest_instruments().blocked;
  r.blocked = blocked == nullptr ? 0 : blocked->value();
  return r;
}

/// The path the pipeline replaces: one scan() call per packet — per-packet
/// shard-lock round trip, no batching, payload handed around by value.
RunResult run_per_packet(const std::shared_ptr<const dpi::Engine>& engine,
                         const workload::Trace& trace, dpi::ChainId chain,
                         std::size_t workers, int repeats) {
  service::DpiInstance inst("bench",
                            instance_config(workers, 1024, trace.size()));
  inst.load_engine(engine, 1);
  std::uint64_t packets = 0;
  Stopwatch total;
  for (int rep = 0; rep < repeats; ++rep) {
    for (const auto& p : trace) {
      inst.scan(chain, p.tuple, BytesView(p.payload));
      ++packets;
    }
  }
  RunResult r;
  r.pps = static_cast<double>(packets) / total.elapsed_seconds();
  return r;
}

}  // namespace
}  // namespace dpisvc::bench

int main(int argc, char** argv) {
  using namespace dpisvc;
  using namespace dpisvc::bench;

  const std::size_t num_packets =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 300000;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 2;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  // "100k+ concurrent flows" needs a trace at least that long; smoke runs
  // scale the flow count down with the trace rather than having one packet
  // per flow mean anything.
  const std::size_t num_flows =
      std::min<std::size_t>(100000, std::max<std::size_t>(1, num_packets / 2));
  const std::size_t effective_workers =
      std::min<std::size_t>(4, std::max(1u, hw_threads));
  const bool scaling_limited = hw_threads < 4;

  print_header("zero-copy batched ingest: pps vs ring capacity / batch size");
  std::printf(
      "trace: %zu packets x%d repeats, %zu flows, hardware threads: %u, "
      "workers: %zu\n",
      num_packets, repeats, num_flows, hw_threads, effective_workers);

  const auto engine = ingest_engine(300);
  workload::TrafficConfig traffic;
  traffic.num_packets = num_packets;
  traffic.num_flows = num_flows;
  traffic.planted_match_rate = 0.05;
  traffic.planted_patterns =
      workload::generate_patterns(workload::snort_like(8, 17));
  const auto trace = workload::generate_http_trace(traffic);

  json::Object out = json::obj({
      {"bench", "ingest"},
      {"num_packets", static_cast<double>(num_packets)},
      {"repeats", static_cast<double>(repeats)},
      {"num_flows", static_cast<double>(num_flows)},
      {"hardware_threads", static_cast<double>(hw_threads)},
      {"effective_workers", static_cast<double>(effective_workers)},
      {"scaling_limited_by_cpus", scaling_limited},
  });

  // Batched vs the current per-packet path, both chain kinds, same workers.
  for (const char* kind : {"stateless", "stateful"}) {
    const dpi::ChainId chain = std::string(kind) == "stateless" ? 1 : 2;
    const RunResult per_packet =
        run_per_packet(engine, trace, chain, effective_workers, repeats);
    const RunResult batched = run_pipeline(engine, trace, chain,
                                           effective_workers, 1024, 64,
                                           repeats);
    const double speedup =
        per_packet.pps > 0.0 ? batched.pps / per_packet.pps : 0.0;
    std::printf(
        "\n%-10s per-packet %12.0f pps, batched ingest %12.0f pps (%.2fx)\n",
        kind, per_packet.pps, batched.pps, speedup);
    out[std::string("pps_per_packet_") + kind] = per_packet.pps;
    out[std::string("pps_batched_") + kind] = batched.pps;
    out[std::string("batched_speedup_") + kind] = speedup;
  }

  // The sweep: ring capacity x batch size on the stateful chain (the
  // configuration with flow-table traffic, i.e. the one overload actually
  // stresses). Small rings trade p99 push latency for a tighter bound.
  std::printf("\n%10s %8s %12s %10s %10s %10s\n", "capacity", "batch", "pps",
              "p50_us", "p99_us", "blocked");
  json::Array series;
  for (const std::size_t capacity : {64u, 256u, 1024u}) {
    for (const std::size_t batch : {16u, 64u, 256u}) {
      const RunResult r = run_pipeline(engine, trace, 2, effective_workers,
                                       capacity, batch, repeats);
      std::printf("%10zu %8zu %12.0f %10.2f %10.2f %10llu\n", capacity, batch,
                  r.pps, r.p50_us, r.p99_us,
                  static_cast<unsigned long long>(r.blocked));
      series.push_back(json::Value(json::obj({
          {"queue_capacity", static_cast<double>(capacity)},
          {"batch_packets", static_cast<double>(batch)},
          {"pps", r.pps},
          {"p50_us", r.p50_us},
          {"p99_us", r.p99_us},
          {"blocked", static_cast<double>(r.blocked)},
      })));
    }
  }
  out["series"] = json::Value(std::move(series));

  if (scaling_limited) {
    std::printf(
        "note: only %u hardware thread(s) available — batched-vs-per-packet\n"
        "gaps here measure batching overheads, not parallel speedup.\n",
        hw_threads);
  }

  std::ofstream("BENCH_ingest.json") << json::dump(json::Value(out)) << "\n";
  std::printf("wrote BENCH_ingest.json\n");
  return 0;
}
