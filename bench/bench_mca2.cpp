// §4.3.1 / Figure 6: MCA² under complexity attack — ablation of the
// dedicated-instance design.
//
// Rows:
//   1. full-table engine on benign traffic        (baseline capacity)
//   2. full-table engine on attack traffic        (the attack's effect)
//   3. compressed engine on benign traffic        (dedicated instance cost)
//   4. compressed engine on attack traffic        (dedicated instance under
//                                                  the traffic it exists for)
//   5. system view: benign throughput on the regular instance while the
//      attack is diverted vs while it shares the instance.
//
// Shape targets: the attack depresses row 2 well below row 1 (dense match
// handling); the compressed engine is uniformly slower but far smaller (it
// stays cache-resident); diverting the attack restores benign capacity.
#include "bench_util.hpp"

using namespace dpisvc;
using namespace dpisvc::bench;

int main() {
  print_header("MCA2 ablation: full vs dedicated (compressed) engines under "
               "attack");

  const auto patterns = workload::generate_patterns(workload::snort_like(4356));
  auto full = engine_for(patterns);
  dpi::EngineConfig compressed_config;
  compressed_config.use_compressed_automaton = true;
  auto compressed = engine_for(patterns, compressed_config);

  const auto benign = benign_trace(patterns, 2000);
  workload::TrafficConfig attack_config;
  attack_config.num_packets = 2000;
  const std::vector<std::string> targets(patterns.begin(),
                                         patterns.begin() + 32);
  const auto attack = workload::generate_attack_trace(attack_config, targets);

  const std::uint64_t kBytes = 32ull << 20;
  const double full_benign = measure_scan_mbps(*full, 1, benign, kBytes);
  const double full_attack = measure_scan_mbps(*full, 1, attack, kBytes);
  const double comp_benign = measure_scan_mbps(*compressed, 1, benign, kBytes);
  const double comp_attack = measure_scan_mbps(*compressed, 1, attack, kBytes);

  std::printf("%-34s %10s %12s\n", "engine / traffic", "Mbps", "memory[MB]");
  std::printf("%-34s %10.0f %12.1f\n", "full-table AC, benign", full_benign,
              full->memory_bytes() / 1e6);
  std::printf("%-34s %10.0f %12.1f\n", "full-table AC, attack", full_attack,
              full->memory_bytes() / 1e6);
  std::printf("%-34s %10.0f %12.1f\n", "compressed AC, benign", comp_benign,
              compressed->memory_bytes() / 1e6);
  std::printf("%-34s %10.0f %12.1f\n", "compressed AC, attack", comp_attack,
              compressed->memory_bytes() / 1e6);
  std::printf("\nattack degrades the full engine by %.1fx; the compressed "
              "engine is %.0fx smaller\n", full_benign / full_attack,
              static_cast<double>(full->memory_bytes()) /
                  static_cast<double>(compressed->memory_bytes()));

  // System view: benign throughput while sharing with the attack vs after
  // the attack is diverted to a dedicated instance (one core: shared time).
  const double mixed_benign_share =
      1.0 / (1.0 / full_benign + 1.0 / full_attack);  // interleaved packets
  std::printf("\nsystem view (one regular instance):\n");
  std::printf("  benign capacity while mixed with attack: %7.0f Mbps\n",
              mixed_benign_share);
  std::printf("  benign capacity after diversion:         %7.0f Mbps "
              "(restored to baseline)\n", full_benign);
  return 0;
}
