// Google-benchmark microbenchmarks for the core primitives: AC traversal,
// combined-engine scan, report encode/decode, regex evaluation, packet
// wire round-trip. These are regression guards for the hot paths behind
// every table/figure harness.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "dpi/flow_table.hpp"
#include "net/packet.hpp"
#include "net/result.hpp"
#include "regex/matcher.hpp"

using namespace dpisvc;
using namespace dpisvc::bench;

namespace {

const std::vector<std::string>& snort_patterns() {
  static const auto patterns =
      workload::generate_patterns(workload::snort_like(4356));
  return patterns;
}

const workload::Trace& http_trace() {
  static const auto trace = benign_trace(snort_patterns(), 500);
  return trace;
}

void BM_AcTraverse(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const std::vector<std::string> subset(
      snort_patterns().begin(),
      snort_patterns().begin() + static_cast<long>(count));
  auto engine = engine_for(subset);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    for (const auto& p : http_trace()) {
      benchmark::DoNotOptimize(engine->traverse_only(p.payload));
      bytes += p.payload.size();
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_AcTraverse)->Arg(500)->Arg(4356);

void BM_EngineScan(benchmark::State& state) {
  auto engine = engine_for(snort_patterns());
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    for (const auto& p : http_trace()) {
      benchmark::DoNotOptimize(engine->scan_packet(1, p.payload));
      bytes += p.payload.size();
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_EngineScan);

void BM_CompressedScan(benchmark::State& state) {
  dpi::EngineConfig config;
  config.use_compressed_automaton = true;
  auto engine = engine_for(snort_patterns(), config);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    for (const auto& p : http_trace()) {
      benchmark::DoNotOptimize(engine->scan_packet(1, p.payload));
      bytes += p.payload.size();
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CompressedScan);

void BM_ReportEncodeDecode(benchmark::State& state) {
  net::MatchReport report;
  report.policy_chain_id = 1;
  net::MiddleboxSection section;
  section.middlebox_id = 1;
  for (std::uint32_t i = 0; i < 8; ++i) {
    section.entries.push_back(net::MatchEntry{
        static_cast<std::uint16_t>(i), 100 + i * 7, 1 + (i % 3)});
  }
  report.sections.push_back(section);
  for (auto _ : state) {
    const Bytes encoded = net::encode_report(report, net::ReportCodec::kUniform6);
    benchmark::DoNotOptimize(net::decode_report(encoded));
  }
}
BENCHMARK(BM_ReportEncodeDecode);

void BM_RegexPikeVm(benchmark::State& state) {
  regex::Matcher matcher(
      regex::Program::compile(R"(User-Agent:\s*[a-z]+bot\d{2,4})"));
  const std::string haystack(1024, 'x');
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.search(haystack));
    bytes += haystack.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_RegexPikeVm);

void BM_PacketWireRoundTrip(benchmark::State& state) {
  const net::Packet packet = workload::to_packet(http_trace()[0], 1);
  for (auto _ : state) {
    const Bytes wire = packet.to_wire();
    benchmark::DoNotOptimize(net::Packet::from_wire(wire));
  }
}
BENCHMARK(BM_PacketWireRoundTrip);

void BM_FlowTableUpdateLookup(benchmark::State& state) {
  dpi::FlowTable table(1 << 16);
  std::uint16_t port = 0;
  for (auto _ : state) {
    net::FiveTuple flow;
    flow.src_ip = net::Ipv4Addr(10, 0, 0, 1);
    flow.dst_ip = net::Ipv4Addr(10, 0, 0, 2);
    flow.src_port = port++;
    flow.dst_port = 80;
    table.update(flow, dpi::FlowCursor{1, 1, true});
    benchmark::DoNotOptimize(table.lookup(flow));
  }
}
BENCHMARK(BM_FlowTableUpdateLookup);

}  // namespace

BENCHMARK_MAIN();
