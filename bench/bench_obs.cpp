// Observability overhead: instance scan throughput with metrics recording
// enabled vs. disabled (InstanceConfig::metrics), plus the scan-latency
// percentiles the enabled run's registry histogram reports.
//
// The obs layer promises "a handful of relaxed atomic adds" per packet —
// this harness puts a number on it. Both configurations replay the same
// multi-flow trace through the same engine; the JSON output carries
// `overhead_pct` (how much slower the metrics-on run was) and
// `compiled_out` (true when the binary was built with -DDPISVC_NO_METRICS,
// in which case both runs execute the same no-op writes and the overhead
// should be pure noise).
//
// Usage: bench_obs [num_packets] [repeats]
//   num_packets  trace size (default 20000; CI smoke passes e.g. 2000)
//   repeats      times the trace is replayed per configuration (default 3)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "service/instance.hpp"

namespace dpisvc::bench {
namespace {

std::shared_ptr<const dpi::Engine> obs_engine(std::size_t num_patterns) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";
  dpi::MiddleboxProfile fw;
  fw.id = 2;
  fw.name = "session-fw";
  fw.stateful = true;
  spec.middleboxes = {ids, fw};
  dpi::PatternId rule = 0;
  for (const auto& pattern :
       workload::generate_patterns(workload::snort_like(num_patterns, 17))) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{
        pattern, static_cast<dpi::MiddleboxId>(1 + rule % 2), rule});
    ++rule;
  }
  spec.chains[1] = {1, 2};
  return dpi::Engine::compile(spec);
}

struct RunResult {
  double pps = 0.0;
  double mbps = 0.0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
};

RunResult run_config(const std::shared_ptr<const dpi::Engine>& engine,
                     const workload::Trace& trace, bool metrics,
                     int repeats) {
  service::InstanceConfig config;
  config.metrics = metrics;
  config.max_flows = 4096;
  service::DpiInstance inst("bench", config);
  inst.load_engine(engine, 1);

  // Warm-up pass: touch the flow table and fault in the engine tables so
  // both configurations start from the same cache state.
  for (const auto& p : trace) {
    (void)inst.scan(1, p.tuple, p.payload);
  }

  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  Stopwatch total;
  for (int rep = 0; rep < repeats; ++rep) {
    for (const auto& p : trace) {
      (void)inst.scan(1, p.tuple, p.payload);
      ++packets;
      bytes += p.payload.size();
    }
  }
  const double seconds = total.elapsed_seconds();

  RunResult r;
  r.pps = static_cast<double>(packets) / seconds;
  r.mbps = to_mbps(bytes, seconds);
  if (metrics) {
    // Cross-shard percentiles must merge bucket counts, not average
    // per-shard percentiles (the single-worker default has one shard, but
    // keep the merge so a --workers variant stays correct).
    obs::Histogram merged(obs::Histogram::latency_bounds_ns());
    for (std::size_t shard = 0;; ++shard) {
      const obs::Histogram* h = inst.metrics().find_histogram(
          "shard" + std::to_string(shard) + ".scan_ns");
      if (h == nullptr) break;
      merged.merge_from(*h);
    }
    r.p50_ns = merged.percentile(0.50);
    r.p90_ns = merged.percentile(0.90);
    r.p99_ns = merged.percentile(0.99);
  }
  return r;
}

}  // namespace
}  // namespace dpisvc::bench

int main(int argc, char** argv) {
  using namespace dpisvc;
  using namespace dpisvc::bench;

  const std::size_t num_packets =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 20000;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 3;

  print_header("observability overhead: metrics on vs. off");
  std::printf("trace: %zu packets x%d repeats, metrics %s at compile time\n",
              num_packets, repeats,
              obs::kMetricsCompiledIn ? "compiled in" : "compiled OUT");

  const auto engine = obs_engine(300);

  workload::TrafficConfig traffic;
  traffic.num_packets = num_packets;
  traffic.num_flows = 64;
  traffic.planted_match_rate = 0.05;
  traffic.planted_patterns =
      workload::generate_patterns(workload::snort_like(8, 17));
  const auto trace = workload::generate_http_trace(traffic);

  // The per-packet cost of the obs writes (a handful of relaxed atomics) is
  // far below this machine's run-to-run noise, so a single off-then-on pair
  // can report anything from -15% to +15%. Interleave alternating rounds
  // and keep each configuration's best round: noise only ever slows a run
  // down, so best-of-N converges on the true cost from above.
  constexpr int kRounds = 3;
  RunResult off, on;
  for (int round = 0; round < kRounds; ++round) {
    const RunResult o = run_config(engine, trace, /*metrics=*/false, repeats);
    if (o.pps > off.pps) off = o;
    const RunResult m = run_config(engine, trace, /*metrics=*/true, repeats);
    if (m.pps > on.pps) on = m;
  }

  const double overhead_pct =
      off.pps > 0.0 ? (off.pps / on.pps - 1.0) * 100.0 : 0.0;

  std::printf("\n%-12s %14s %10s %10s %10s %10s\n", "metrics", "pps", "mbps",
              "p50_ns", "p90_ns", "p99_ns");
  std::printf("%-12s %14.0f %10.0f %10s %10s %10s\n", "off", off.pps, off.mbps,
              "-", "-", "-");
  std::printf("%-12s %14.0f %10.0f %10.0f %10.0f %10.0f\n", "on", on.pps,
              on.mbps, on.p50_ns, on.p90_ns, on.p99_ns);
  std::printf("\nmetrics-on overhead: %.2f%%\n", overhead_pct);

  json::Object out = json::obj({
      {"bench", "obs"},
      {"num_packets", static_cast<double>(num_packets)},
      {"repeats", static_cast<double>(repeats)},
      {"compiled_out", !obs::kMetricsCompiledIn},
      {"overhead_pct", overhead_pct},
  });
  out["metrics_off"] = json::Value(json::obj({
      {"pps", off.pps},
      {"mbps", off.mbps},
  }));
  out["metrics_on"] = json::Value(json::obj({
      {"pps", on.pps},
      {"mbps", on.mbps},
      {"p50_ns", on.p50_ns},
      {"p90_ns", on.p90_ns},
      {"p99_ns", on.p99_ns},
  }));
  std::ofstream("BENCH_obs.json") << json::dump(json::Value(out)) << "\n";
  std::printf("wrote BENCH_obs.json\n");
  return 0;
}
