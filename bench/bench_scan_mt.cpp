// Sharded scan-pool throughput: packets/sec and batch-latency percentiles
// vs. worker count, for a stateless and a stateful policy chain.
//
// The sharded data plane (service/instance.hpp) promises that adding
// workers scales scan throughput without changing results; this harness
// measures that curve. Each run submits the same interleaved multi-flow
// trace through DpiInstance::scan_batch() at worker counts 1/2/4/8 and
// reports packets/sec plus p50/p99 per-batch submit latency.
//
// NOTE on scaling expectations: real speedup requires real cores. The
// emitted JSON includes `hardware_threads` so consumers can tell whether a
// flat curve means "sharding is broken" or "the machine has one CPU".
//
// Usage: bench_scan_mt [num_packets] [repeats]
//   num_packets  trace size (default 20000; CI smoke passes e.g. 2000)
//   repeats      times the trace is replayed per configuration (default 3)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "service/instance.hpp"

namespace dpisvc::bench {
namespace {

/// Two-middlebox engine with both a stateless chain (1) and a stateful
/// chain (2), over snort-like pattern sets — the virtual-DPI configuration
/// the sharded instance serves in production.
std::shared_ptr<const dpi::Engine> mt_engine(std::size_t num_patterns,
                                             dpi::ScanKernel kernel) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";
  dpi::MiddleboxProfile fw;
  fw.id = 2;
  fw.name = "session-fw";
  fw.stateful = true;
  spec.middleboxes = {ids, fw};
  dpi::PatternId rule = 0;
  for (const auto& pattern :
       workload::generate_patterns(workload::snort_like(num_patterns, 17))) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{
        pattern, static_cast<dpi::MiddleboxId>(1 + rule % 2), rule});
    ++rule;
  }
  spec.chains[1] = {1};     // stateless: no flow-table traffic
  spec.chains[2] = {1, 2};  // stateful: per-flow cursors on every packet
  dpi::EngineConfig config;
  config.kernel = kernel;
  return dpi::Engine::compile(spec, config);
}

std::vector<service::ScanItem> items_for(const workload::Trace& trace,
                                         dpi::ChainId chain) {
  std::vector<service::ScanItem> items;
  items.reserve(trace.size());
  for (const auto& p : trace) {
    items.push_back(service::ScanItem{chain, p.tuple, BytesView(p.payload)});
  }
  return items;
}

struct RunResult {
  double pps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Replays `items` through a fresh instance `repeats` times in batches of
/// kBatch, timing each scan_batch() submit-to-complete round trip. Batch
/// latencies go through an obs::Histogram — the same percentile machinery
/// the telemetry channel exports — instead of a private sort-and-index.
RunResult run_config(const std::shared_ptr<const dpi::Engine>& engine,
                     const std::vector<service::ScanItem>& items,
                     std::size_t workers, int repeats) {
  service::InstanceConfig config;
  config.num_workers = workers;
  config.max_flows = 4096;
  service::DpiInstance inst("bench", config);
  inst.load_engine(engine, 1);

  constexpr std::size_t kBatch = 256;
  obs::Histogram batch_ns(obs::Histogram::latency_bounds_ns());
  std::uint64_t packets = 0;
  Stopwatch total;
  for (int rep = 0; rep < repeats; ++rep) {
    for (std::size_t base = 0; base < items.size(); base += kBatch) {
      const std::size_t end = std::min(base + kBatch, items.size());
      const std::vector<service::ScanItem> batch(items.begin() + base,
                                                 items.begin() + end);
      Stopwatch w;
      const auto results = inst.scan_batch(batch);
      batch_ns.record(w.elapsed_ns());
      packets += results.size();
    }
  }
  const double seconds = total.elapsed_seconds();
  RunResult r;
  r.pps = static_cast<double>(packets) / seconds;
  r.p50_us = batch_ns.percentile(0.50) / 1e3;
  r.p99_us = batch_ns.percentile(0.99) / 1e3;
  return r;
}

}  // namespace
}  // namespace dpisvc::bench

int main(int argc, char** argv) {
  using namespace dpisvc;
  using namespace dpisvc::bench;

  const std::size_t num_packets =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 20000;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 3;
  const unsigned hw_threads = std::thread::hardware_concurrency();

  print_header("sharded scan pool: throughput vs. worker count");
  std::printf("trace: %zu packets x%d repeats, hardware threads: %u\n",
              num_packets, repeats, hw_threads);

  const auto kernel_engine = mt_engine(300, dpi::ScanKernel::kBatched);
  const auto scalar_engine = mt_engine(300, dpi::ScanKernel::kScalar);
  const ac::KernelPolicy& policy = ac::kernel_policy();
  std::printf("kernel dispatch: %s%s\n", policy.reason,
              kernel_engine->kernel_active() ? "" : " (kernel inactive)");

  workload::TrafficConfig traffic;
  traffic.num_packets = num_packets;
  traffic.num_flows = 64;
  traffic.planted_match_rate = 0.05;
  traffic.planted_patterns =
      workload::generate_patterns(workload::snort_like(8, 17));
  const auto trace = workload::generate_http_trace(traffic);

  const std::vector<std::size_t> worker_counts = {1, 2, 4, 8};
  json::Array series;
  json::Object kernel_vs_scalar;
  std::map<std::string, double> pps_at_workers;  // stateless kernel runs

  for (const char* kind : {"stateless", "stateful"}) {
    const dpi::ChainId chain = std::string(kind) == "stateless" ? 1 : 2;
    const auto items = items_for(trace, chain);

    // Single-worker kernel-vs-scalar: same trace, same instance shape, only
    // the scan walk differs — the direct measure of the batched kernel.
    const RunResult scalar1 = run_config(scalar_engine, items, 1, repeats);
    const RunResult kernel1 = run_config(kernel_engine, items, 1, repeats);
    const double kernel_speedup =
        scalar1.pps > 0.0 ? kernel1.pps / scalar1.pps : 0.0;
    std::printf("\n%-10s 1-worker scalar %12.0f pps, kernel %12.0f pps "
                "(%.2fx)\n",
                kind, scalar1.pps, kernel1.pps, kernel_speedup);
    kernel_vs_scalar[std::string("pps_scalar_1w_") + kind] = scalar1.pps;
    kernel_vs_scalar[std::string("pps_kernel_1w_") + kind] = kernel1.pps;
    kernel_vs_scalar[std::string("kernel_speedup_1w_") + kind] =
        kernel_speedup;

    std::printf("%-10s %8s %12s %12s %12s\n", kind, "workers", "pps",
                "p50_us", "p99_us");
    for (const std::size_t workers : worker_counts) {
      const RunResult r = run_config(kernel_engine, items, workers, repeats);
      std::printf("%-10s %8zu %12.0f %12.1f %12.1f\n", "", workers, r.pps,
                  r.p50_us, r.p99_us);
      series.push_back(json::Value(json::obj({
          {"chain", kind},
          {"workers", static_cast<double>(workers)},
          {"pps", r.pps},
          {"p50_us", r.p50_us},
          {"p99_us", r.p99_us},
      })));
      if (chain == 1) pps_at_workers[std::to_string(workers)] = r.pps;
    }
  }

  // Worker-scaling speedup, measured at a worker count the machine can
  // actually run in parallel: min(4, hardware threads). Dividing the
  // 4-worker pps by the 1-worker pps on a 1-CPU container only measures
  // scheduler overhead — the number was meaningless there, so the divisor
  // is clamped and the clamp is reported.
  const std::size_t effective_workers =
      std::min<std::size_t>(4, std::max(1u, hw_threads));
  const bool scaling_limited = hw_threads < 4;
  const double pps_1w = pps_at_workers["1"];
  const double pps_eff = pps_at_workers[std::to_string(effective_workers)];
  const double speedup_4w = pps_1w > 0.0 ? pps_eff / pps_1w : 0.0;
  std::printf("\nstateless %zu-worker speedup over 1 worker: %.2fx\n",
              effective_workers, speedup_4w);
  if (scaling_limited) {
    std::printf(
        "note: only %u hardware thread(s) available — worker scaling cannot\n"
        "exceed ~1x on this machine regardless of sharding correctness.\n",
        hw_threads);
  }

  json::Object out = json::obj({
      {"bench", "scan_mt"},
      {"num_packets", static_cast<double>(num_packets)},
      {"repeats", static_cast<double>(repeats)},
      {"num_flows", static_cast<double>(traffic.num_flows)},
      {"hardware_threads", static_cast<double>(hw_threads)},
      {"kernel_dispatch", std::string(policy.reason)},
      {"kernel_active", kernel_engine->kernel_active()},
      {"effective_workers", static_cast<double>(effective_workers)},
      {"scaling_limited_by_cpus", scaling_limited},
      {"speedup_stateless_4w", speedup_4w},
  });
  for (const auto& [key, value] : kernel_vs_scalar) {
    out[key] = value;
  }
  out["series"] = json::Value(std::move(series));
  std::ofstream("BENCH_scan_mt.json") << json::dump(json::Value(out)) << "\n";
  std::printf("wrote BENCH_scan_mt.json\n");
  return 0;
}
