// Table 2: "Comparing the performance of two middleboxes, one running on
// pattern sets of Snort1 and the other on pattern sets of Snort2, to one
// virtual DPI instance with the combined pattern sets of Snort1 and Snort2."
//
// Paper values (their testbed):
//   Snort1        2,500 patterns   34.45 MB    981 Mbps
//   Snort2        1,856 patterns   24.34 MB    931 Mbps
//   Snort1+Snort2 4,356 patterns   57.21 MB    768 Mbps
//
// Shape targets: combined space < sum of parts (shared states), combined
// throughput only modestly below each part (paper: ~12-18% below), driven
// by pattern count, not by the combining itself.
//
// Also reproduces the §4.1 observation that the *pattern sets* shipped to
// instances are compact (a couple of MB) while the DFAs are tens of MB.
#include <numeric>

#include "bench_util.hpp"

using namespace dpisvc;
using namespace dpisvc::bench;

namespace {

struct Row {
  const char* name;
  std::size_t patterns;
  double space_mb;
  double pattern_set_kb;
  double mbps;
};

double pattern_bytes_kb(const std::vector<std::string>& patterns) {
  std::size_t total = 0;
  for (const auto& p : patterns) total += p.size();
  return static_cast<double>(total) / 1024.0;
}

}  // namespace

int main() {
  print_header(
      "Table 2: separate middleboxes (Snort1, Snort2) vs one virtual DPI "
      "with the combined set");

  // The paper splits Snort's 4,356 exact patterns into 2,500 + 1,856.
  const auto all = workload::generate_patterns(workload::snort_like(4356));
  std::vector<std::string> snort1(all.begin(), all.begin() + 2500);
  std::vector<std::string> snort2(all.begin() + 2500, all.end());

  const auto trace = benign_trace(all);

  auto engine1 = engine_for(snort1);
  auto engine2 = engine_for(snort2);
  auto combined = combined_engine_for(snort1, snort2);

  const Row rows[] = {
      {"Snort1", snort1.size(), engine1->memory_bytes() / 1e6,
       pattern_bytes_kb(snort1),
       measure_scan_mbps(*engine1, 1, trace)},
      {"Snort2", snort2.size(), engine2->memory_bytes() / 1e6,
       pattern_bytes_kb(snort2),
       measure_scan_mbps(*engine2, 1, trace)},
      {"Snort1+Snort2", all.size(), combined->memory_bytes() / 1e6,
       pattern_bytes_kb(all),
       measure_scan_mbps(*combined, 1, trace)},
  };

  std::printf("%-15s %9s %12s %16s %12s\n", "Sets", "Patterns", "Space[MB]",
              "PatternSet[KB]", "Throughput");
  for (const Row& row : rows) {
    std::printf("%-15s %9zu %12.2f %16.1f %9.0f Mbps\n", row.name,
                row.patterns, row.space_mb, row.pattern_set_kb, row.mbps);
  }

  const double degradation = 1.0 - rows[2].mbps / std::min(rows[0].mbps,
                                                           rows[1].mbps);
  std::printf("\ncombined vs best separate: %.1f%% lower throughput "
              "(paper: ~12%%)\n", degradation * 100.0);
  std::printf("combined space vs sum of parts: %.2f MB vs %.2f MB\n",
              rows[2].space_mb, rows[0].space_mb + rows[1].space_mb);
  std::printf("pattern sets stay compact (%.0f KB) while DFAs are tens of "
              "MB (the §4.1 distribution argument)\n",
              rows[2].pattern_set_kb);
  return 0;
}
