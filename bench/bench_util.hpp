// Shared helpers for the experiment harnesses in bench/.
//
// Each bench binary regenerates one table or figure of the paper's §6,
// printing the same rows/series the paper reports. Measurements are
// wall-clock scan throughput in Mbps over synthetic traces (see DESIGN.md
// for the calibrated workload substitutions); absolute numbers depend on
// this machine, but the comparisons — who wins and by what factor — are the
// reproduction targets.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "dpi/engine.hpp"
#include "workload/pattern_gen.hpp"
#include "workload/traffic_gen.hpp"

namespace dpisvc::bench {

/// Builds a single-middlebox engine over `patterns` (middlebox id 1,
/// chain 1), the configuration a standalone middlebox's DPI component uses.
inline std::shared_ptr<const dpi::Engine> engine_for(
    const std::vector<std::string>& patterns,
    const dpi::EngineConfig& config = {}) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile profile;
  profile.id = 1;
  profile.name = "bench";
  spec.middleboxes = {profile};
  dpi::PatternId id = 0;
  for (const std::string& p : patterns) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{p, 1, id++});
  }
  spec.chains[1] = {1};
  return dpi::Engine::compile(spec, config);
}

/// Builds a combined two-middlebox engine (ids 1 and 2; chain 1 = both),
/// the virtual-DPI configuration of §5.1.
inline std::shared_ptr<const dpi::Engine> combined_engine_for(
    const std::vector<std::string>& set1,
    const std::vector<std::string>& set2,
    const dpi::EngineConfig& config = {}) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile a;
  a.id = 1;
  a.name = "mbox1";
  dpi::MiddleboxProfile b;
  b.id = 2;
  b.name = "mbox2";
  spec.middleboxes = {a, b};
  dpi::PatternId id = 0;
  for (const std::string& p : set1) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{p, 1, id++});
  }
  id = 0;
  for (const std::string& p : set2) {
    spec.exact_patterns.push_back(dpi::ExactPatternSpec{p, 2, id++});
  }
  spec.chains[1] = {1, 2};
  spec.chains[2] = {1};
  spec.chains[3] = {2};
  return dpi::Engine::compile(spec, config);
}

/// Scans the trace repeatedly until `min_bytes` have been processed and
/// returns throughput in Mbps. Match handling included (the realistic
/// configuration: collection, filtering, run compression).
inline double measure_scan_mbps(const dpi::Engine& engine, dpi::ChainId chain,
                                const workload::Trace& trace,
                                std::uint64_t min_bytes = 64ull << 20) {
  const std::uint64_t trace_bytes = workload::total_payload_bytes(trace);
  if (trace_bytes == 0) return 0.0;
  // Warm-up pass (page in the DFA).
  for (const workload::TracePacket& p : trace) {
    (void)engine.scan_packet(chain, p.payload);
  }
  std::uint64_t scanned = 0;
  Stopwatch watch;
  while (scanned < min_bytes) {
    for (const workload::TracePacket& p : trace) {
      (void)engine.scan_packet(chain, p.payload);
    }
    scanned += trace_bytes;
  }
  return to_mbps(scanned, watch.elapsed_seconds());
}

/// Benign HTTP-like trace calibrated to the paper's traces: > 90% of
/// packets matchless.
inline workload::Trace benign_trace(const std::vector<std::string>& patterns,
                                    std::size_t num_packets = 2000,
                                    std::uint64_t seed = 7) {
  workload::TrafficConfig config;
  config.num_packets = num_packets;
  config.num_flows = 64;
  config.planted_match_rate = 0.05;
  config.seed = seed;
  const std::size_t take = std::min<std::size_t>(patterns.size(), 32);
  config.planted_patterns.assign(patterns.begin(),
                                 patterns.begin() + static_cast<long>(take));
  return workload::generate_http_trace(config);
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace dpisvc::bench
