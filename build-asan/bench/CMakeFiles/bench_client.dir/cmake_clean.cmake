file(REMOVE_RECURSE
  "CMakeFiles/bench_client.dir/bench_client.cpp.o"
  "CMakeFiles/bench_client.dir/bench_client.cpp.o.d"
  "bench_client"
  "bench_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
