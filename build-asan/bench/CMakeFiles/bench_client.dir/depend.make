# Empty dependencies file for bench_client.
# This may be replaced when dependencies are built.
