file(REMOVE_RECURSE
  "CMakeFiles/bench_dpi_share.dir/bench_dpi_share.cpp.o"
  "CMakeFiles/bench_dpi_share.dir/bench_dpi_share.cpp.o.d"
  "bench_dpi_share"
  "bench_dpi_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dpi_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
