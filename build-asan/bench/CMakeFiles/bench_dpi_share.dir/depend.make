# Empty dependencies file for bench_dpi_share.
# This may be replaced when dependencies are built.
