file(REMOVE_RECURSE
  "CMakeFiles/bench_mca2.dir/bench_mca2.cpp.o"
  "CMakeFiles/bench_mca2.dir/bench_mca2.cpp.o.d"
  "bench_mca2"
  "bench_mca2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mca2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
