# Empty dependencies file for bench_mca2.
# This may be replaced when dependencies are built.
