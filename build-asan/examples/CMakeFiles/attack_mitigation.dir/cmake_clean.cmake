file(REMOVE_RECURSE
  "CMakeFiles/attack_mitigation.dir/attack_mitigation.cpp.o"
  "CMakeFiles/attack_mitigation.dir/attack_mitigation.cpp.o.d"
  "attack_mitigation"
  "attack_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
