# Empty dependencies file for attack_mitigation.
# This may be replaced when dependencies are built.
