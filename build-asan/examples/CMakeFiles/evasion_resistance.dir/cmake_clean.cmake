file(REMOVE_RECURSE
  "CMakeFiles/evasion_resistance.dir/evasion_resistance.cpp.o"
  "CMakeFiles/evasion_resistance.dir/evasion_resistance.cpp.o.d"
  "evasion_resistance"
  "evasion_resistance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evasion_resistance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
