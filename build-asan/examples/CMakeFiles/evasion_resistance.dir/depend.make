# Empty dependencies file for evasion_resistance.
# This may be replaced when dependencies are built.
