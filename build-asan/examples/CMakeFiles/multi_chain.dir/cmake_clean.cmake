file(REMOVE_RECURSE
  "CMakeFiles/multi_chain.dir/multi_chain.cpp.o"
  "CMakeFiles/multi_chain.dir/multi_chain.cpp.o.d"
  "multi_chain"
  "multi_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
