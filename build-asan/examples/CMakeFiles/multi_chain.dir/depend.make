# Empty dependencies file for multi_chain.
# This may be replaced when dependencies are built.
