file(REMOVE_RECURSE
  "CMakeFiles/snort_plugin_sim.dir/snort_plugin_sim.cpp.o"
  "CMakeFiles/snort_plugin_sim.dir/snort_plugin_sim.cpp.o.d"
  "snort_plugin_sim"
  "snort_plugin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snort_plugin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
