# Empty dependencies file for snort_plugin_sim.
# This may be replaced when dependencies are built.
