# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("json")
subdirs("compress")
subdirs("regex")
subdirs("ac")
subdirs("net")
subdirs("netsim")
subdirs("dpi")
subdirs("service")
subdirs("mbox")
subdirs("workload")
