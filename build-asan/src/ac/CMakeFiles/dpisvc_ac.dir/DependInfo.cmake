
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ac/compressed_automaton.cpp" "src/ac/CMakeFiles/dpisvc_ac.dir/compressed_automaton.cpp.o" "gcc" "src/ac/CMakeFiles/dpisvc_ac.dir/compressed_automaton.cpp.o.d"
  "/root/repo/src/ac/full_automaton.cpp" "src/ac/CMakeFiles/dpisvc_ac.dir/full_automaton.cpp.o" "gcc" "src/ac/CMakeFiles/dpisvc_ac.dir/full_automaton.cpp.o.d"
  "/root/repo/src/ac/serialize.cpp" "src/ac/CMakeFiles/dpisvc_ac.dir/serialize.cpp.o" "gcc" "src/ac/CMakeFiles/dpisvc_ac.dir/serialize.cpp.o.d"
  "/root/repo/src/ac/trie.cpp" "src/ac/CMakeFiles/dpisvc_ac.dir/trie.cpp.o" "gcc" "src/ac/CMakeFiles/dpisvc_ac.dir/trie.cpp.o.d"
  "/root/repo/src/ac/wu_manber.cpp" "src/ac/CMakeFiles/dpisvc_ac.dir/wu_manber.cpp.o" "gcc" "src/ac/CMakeFiles/dpisvc_ac.dir/wu_manber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dpisvc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
