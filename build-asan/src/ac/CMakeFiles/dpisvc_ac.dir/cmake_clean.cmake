file(REMOVE_RECURSE
  "CMakeFiles/dpisvc_ac.dir/compressed_automaton.cpp.o"
  "CMakeFiles/dpisvc_ac.dir/compressed_automaton.cpp.o.d"
  "CMakeFiles/dpisvc_ac.dir/full_automaton.cpp.o"
  "CMakeFiles/dpisvc_ac.dir/full_automaton.cpp.o.d"
  "CMakeFiles/dpisvc_ac.dir/serialize.cpp.o"
  "CMakeFiles/dpisvc_ac.dir/serialize.cpp.o.d"
  "CMakeFiles/dpisvc_ac.dir/trie.cpp.o"
  "CMakeFiles/dpisvc_ac.dir/trie.cpp.o.d"
  "CMakeFiles/dpisvc_ac.dir/wu_manber.cpp.o"
  "CMakeFiles/dpisvc_ac.dir/wu_manber.cpp.o.d"
  "libdpisvc_ac.a"
  "libdpisvc_ac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpisvc_ac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
