file(REMOVE_RECURSE
  "libdpisvc_ac.a"
)
