# Empty dependencies file for dpisvc_ac.
# This may be replaced when dependencies are built.
