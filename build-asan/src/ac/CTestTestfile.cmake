# CMake generated Testfile for 
# Source directory: /root/repo/src/ac
# Build directory: /root/repo/build-asan/src/ac
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
