file(REMOVE_RECURSE
  "CMakeFiles/dpisvc_common.dir/bytes.cpp.o"
  "CMakeFiles/dpisvc_common.dir/bytes.cpp.o.d"
  "CMakeFiles/dpisvc_common.dir/checksum.cpp.o"
  "CMakeFiles/dpisvc_common.dir/checksum.cpp.o.d"
  "CMakeFiles/dpisvc_common.dir/logging.cpp.o"
  "CMakeFiles/dpisvc_common.dir/logging.cpp.o.d"
  "CMakeFiles/dpisvc_common.dir/rng.cpp.o"
  "CMakeFiles/dpisvc_common.dir/rng.cpp.o.d"
  "libdpisvc_common.a"
  "libdpisvc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpisvc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
