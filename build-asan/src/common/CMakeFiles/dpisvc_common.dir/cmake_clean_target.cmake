file(REMOVE_RECURSE
  "libdpisvc_common.a"
)
