# Empty dependencies file for dpisvc_common.
# This may be replaced when dependencies are built.
