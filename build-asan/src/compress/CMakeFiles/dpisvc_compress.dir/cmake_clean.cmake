file(REMOVE_RECURSE
  "CMakeFiles/dpisvc_compress.dir/deflate.cpp.o"
  "CMakeFiles/dpisvc_compress.dir/deflate.cpp.o.d"
  "CMakeFiles/dpisvc_compress.dir/inflate.cpp.o"
  "CMakeFiles/dpisvc_compress.dir/inflate.cpp.o.d"
  "libdpisvc_compress.a"
  "libdpisvc_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpisvc_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
