file(REMOVE_RECURSE
  "libdpisvc_compress.a"
)
