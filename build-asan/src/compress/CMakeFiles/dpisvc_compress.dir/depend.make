# Empty dependencies file for dpisvc_compress.
# This may be replaced when dependencies are built.
