
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpi/engine.cpp" "src/dpi/CMakeFiles/dpisvc_dpi.dir/engine.cpp.o" "gcc" "src/dpi/CMakeFiles/dpisvc_dpi.dir/engine.cpp.o.d"
  "/root/repo/src/dpi/flow_table.cpp" "src/dpi/CMakeFiles/dpisvc_dpi.dir/flow_table.cpp.o" "gcc" "src/dpi/CMakeFiles/dpisvc_dpi.dir/flow_table.cpp.o.d"
  "/root/repo/src/dpi/pattern_db.cpp" "src/dpi/CMakeFiles/dpisvc_dpi.dir/pattern_db.cpp.o" "gcc" "src/dpi/CMakeFiles/dpisvc_dpi.dir/pattern_db.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/ac/CMakeFiles/dpisvc_ac.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/regex/CMakeFiles/dpisvc_regex.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/dpisvc_net.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/dpisvc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
