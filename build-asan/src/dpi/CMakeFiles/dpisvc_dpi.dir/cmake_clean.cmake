file(REMOVE_RECURSE
  "CMakeFiles/dpisvc_dpi.dir/engine.cpp.o"
  "CMakeFiles/dpisvc_dpi.dir/engine.cpp.o.d"
  "CMakeFiles/dpisvc_dpi.dir/flow_table.cpp.o"
  "CMakeFiles/dpisvc_dpi.dir/flow_table.cpp.o.d"
  "CMakeFiles/dpisvc_dpi.dir/pattern_db.cpp.o"
  "CMakeFiles/dpisvc_dpi.dir/pattern_db.cpp.o.d"
  "libdpisvc_dpi.a"
  "libdpisvc_dpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpisvc_dpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
