file(REMOVE_RECURSE
  "libdpisvc_dpi.a"
)
