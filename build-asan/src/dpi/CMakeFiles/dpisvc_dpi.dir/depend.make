# Empty dependencies file for dpisvc_dpi.
# This may be replaced when dependencies are built.
