file(REMOVE_RECURSE
  "CMakeFiles/dpisvc_json.dir/json.cpp.o"
  "CMakeFiles/dpisvc_json.dir/json.cpp.o.d"
  "libdpisvc_json.a"
  "libdpisvc_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpisvc_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
