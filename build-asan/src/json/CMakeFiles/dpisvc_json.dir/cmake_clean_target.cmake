file(REMOVE_RECURSE
  "libdpisvc_json.a"
)
