# Empty dependencies file for dpisvc_json.
# This may be replaced when dependencies are built.
