file(REMOVE_RECURSE
  "CMakeFiles/dpisvc_mbox.dir/boxes.cpp.o"
  "CMakeFiles/dpisvc_mbox.dir/boxes.cpp.o.d"
  "CMakeFiles/dpisvc_mbox.dir/middlebox.cpp.o"
  "CMakeFiles/dpisvc_mbox.dir/middlebox.cpp.o.d"
  "CMakeFiles/dpisvc_mbox.dir/middlebox_node.cpp.o"
  "CMakeFiles/dpisvc_mbox.dir/middlebox_node.cpp.o.d"
  "libdpisvc_mbox.a"
  "libdpisvc_mbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpisvc_mbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
