file(REMOVE_RECURSE
  "libdpisvc_mbox.a"
)
