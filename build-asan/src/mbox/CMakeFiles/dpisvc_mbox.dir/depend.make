# Empty dependencies file for dpisvc_mbox.
# This may be replaced when dependencies are built.
