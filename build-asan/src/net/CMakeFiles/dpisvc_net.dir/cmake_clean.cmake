file(REMOVE_RECURSE
  "CMakeFiles/dpisvc_net.dir/addr.cpp.o"
  "CMakeFiles/dpisvc_net.dir/addr.cpp.o.d"
  "CMakeFiles/dpisvc_net.dir/flow.cpp.o"
  "CMakeFiles/dpisvc_net.dir/flow.cpp.o.d"
  "CMakeFiles/dpisvc_net.dir/packet.cpp.o"
  "CMakeFiles/dpisvc_net.dir/packet.cpp.o.d"
  "CMakeFiles/dpisvc_net.dir/reassembly.cpp.o"
  "CMakeFiles/dpisvc_net.dir/reassembly.cpp.o.d"
  "CMakeFiles/dpisvc_net.dir/result.cpp.o"
  "CMakeFiles/dpisvc_net.dir/result.cpp.o.d"
  "libdpisvc_net.a"
  "libdpisvc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpisvc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
