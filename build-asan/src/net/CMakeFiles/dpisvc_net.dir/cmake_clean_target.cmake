file(REMOVE_RECURSE
  "libdpisvc_net.a"
)
