# Empty dependencies file for dpisvc_net.
# This may be replaced when dependencies are built.
