file(REMOVE_RECURSE
  "CMakeFiles/dpisvc_netsim.dir/controller.cpp.o"
  "CMakeFiles/dpisvc_netsim.dir/controller.cpp.o.d"
  "CMakeFiles/dpisvc_netsim.dir/fabric.cpp.o"
  "CMakeFiles/dpisvc_netsim.dir/fabric.cpp.o.d"
  "CMakeFiles/dpisvc_netsim.dir/host.cpp.o"
  "CMakeFiles/dpisvc_netsim.dir/host.cpp.o.d"
  "CMakeFiles/dpisvc_netsim.dir/switch.cpp.o"
  "CMakeFiles/dpisvc_netsim.dir/switch.cpp.o.d"
  "libdpisvc_netsim.a"
  "libdpisvc_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpisvc_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
