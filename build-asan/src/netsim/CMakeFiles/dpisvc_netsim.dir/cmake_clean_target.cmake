file(REMOVE_RECURSE
  "libdpisvc_netsim.a"
)
