# Empty dependencies file for dpisvc_netsim.
# This may be replaced when dependencies are built.
