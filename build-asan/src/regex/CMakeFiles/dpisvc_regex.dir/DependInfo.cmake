
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regex/anchors.cpp" "src/regex/CMakeFiles/dpisvc_regex.dir/anchors.cpp.o" "gcc" "src/regex/CMakeFiles/dpisvc_regex.dir/anchors.cpp.o.d"
  "/root/repo/src/regex/ast.cpp" "src/regex/CMakeFiles/dpisvc_regex.dir/ast.cpp.o" "gcc" "src/regex/CMakeFiles/dpisvc_regex.dir/ast.cpp.o.d"
  "/root/repo/src/regex/matcher.cpp" "src/regex/CMakeFiles/dpisvc_regex.dir/matcher.cpp.o" "gcc" "src/regex/CMakeFiles/dpisvc_regex.dir/matcher.cpp.o.d"
  "/root/repo/src/regex/parser.cpp" "src/regex/CMakeFiles/dpisvc_regex.dir/parser.cpp.o" "gcc" "src/regex/CMakeFiles/dpisvc_regex.dir/parser.cpp.o.d"
  "/root/repo/src/regex/program.cpp" "src/regex/CMakeFiles/dpisvc_regex.dir/program.cpp.o" "gcc" "src/regex/CMakeFiles/dpisvc_regex.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/dpisvc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
