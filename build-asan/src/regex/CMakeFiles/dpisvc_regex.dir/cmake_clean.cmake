file(REMOVE_RECURSE
  "CMakeFiles/dpisvc_regex.dir/anchors.cpp.o"
  "CMakeFiles/dpisvc_regex.dir/anchors.cpp.o.d"
  "CMakeFiles/dpisvc_regex.dir/ast.cpp.o"
  "CMakeFiles/dpisvc_regex.dir/ast.cpp.o.d"
  "CMakeFiles/dpisvc_regex.dir/matcher.cpp.o"
  "CMakeFiles/dpisvc_regex.dir/matcher.cpp.o.d"
  "CMakeFiles/dpisvc_regex.dir/parser.cpp.o"
  "CMakeFiles/dpisvc_regex.dir/parser.cpp.o.d"
  "CMakeFiles/dpisvc_regex.dir/program.cpp.o"
  "CMakeFiles/dpisvc_regex.dir/program.cpp.o.d"
  "libdpisvc_regex.a"
  "libdpisvc_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpisvc_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
