file(REMOVE_RECURSE
  "libdpisvc_regex.a"
)
