# Empty dependencies file for dpisvc_regex.
# This may be replaced when dependencies are built.
