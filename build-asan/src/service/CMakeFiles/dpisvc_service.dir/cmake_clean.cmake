file(REMOVE_RECURSE
  "CMakeFiles/dpisvc_service.dir/controller.cpp.o"
  "CMakeFiles/dpisvc_service.dir/controller.cpp.o.d"
  "CMakeFiles/dpisvc_service.dir/instance.cpp.o"
  "CMakeFiles/dpisvc_service.dir/instance.cpp.o.d"
  "CMakeFiles/dpisvc_service.dir/mca2.cpp.o"
  "CMakeFiles/dpisvc_service.dir/mca2.cpp.o.d"
  "CMakeFiles/dpisvc_service.dir/messages.cpp.o"
  "CMakeFiles/dpisvc_service.dir/messages.cpp.o.d"
  "libdpisvc_service.a"
  "libdpisvc_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpisvc_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
