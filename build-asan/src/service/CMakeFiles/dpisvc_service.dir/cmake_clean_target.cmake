file(REMOVE_RECURSE
  "libdpisvc_service.a"
)
