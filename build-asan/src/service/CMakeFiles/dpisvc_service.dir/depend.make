# Empty dependencies file for dpisvc_service.
# This may be replaced when dependencies are built.
