file(REMOVE_RECURSE
  "CMakeFiles/dpisvc_workload.dir/pattern_gen.cpp.o"
  "CMakeFiles/dpisvc_workload.dir/pattern_gen.cpp.o.d"
  "CMakeFiles/dpisvc_workload.dir/trace_io.cpp.o"
  "CMakeFiles/dpisvc_workload.dir/trace_io.cpp.o.d"
  "CMakeFiles/dpisvc_workload.dir/traffic_gen.cpp.o"
  "CMakeFiles/dpisvc_workload.dir/traffic_gen.cpp.o.d"
  "libdpisvc_workload.a"
  "libdpisvc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpisvc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
