file(REMOVE_RECURSE
  "libdpisvc_workload.a"
)
