# Empty dependencies file for dpisvc_workload.
# This may be replaced when dependencies are built.
