file(REMOVE_RECURSE
  "CMakeFiles/dpi_engine_test.dir/dpi_engine_test.cpp.o"
  "CMakeFiles/dpi_engine_test.dir/dpi_engine_test.cpp.o.d"
  "dpi_engine_test"
  "dpi_engine_test.pdb"
  "dpi_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpi_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
