# Empty dependencies file for dpi_engine_test.
# This may be replaced when dependencies are built.
