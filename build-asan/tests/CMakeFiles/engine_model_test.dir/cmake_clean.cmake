file(REMOVE_RECURSE
  "CMakeFiles/engine_model_test.dir/engine_model_test.cpp.o"
  "CMakeFiles/engine_model_test.dir/engine_model_test.cpp.o.d"
  "engine_model_test"
  "engine_model_test.pdb"
  "engine_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
