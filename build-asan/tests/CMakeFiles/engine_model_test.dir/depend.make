# Empty dependencies file for engine_model_test.
# This may be replaced when dependencies are built.
