file(REMOVE_RECURSE
  "CMakeFiles/mbox_test.dir/mbox_test.cpp.o"
  "CMakeFiles/mbox_test.dir/mbox_test.cpp.o.d"
  "mbox_test"
  "mbox_test.pdb"
  "mbox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
