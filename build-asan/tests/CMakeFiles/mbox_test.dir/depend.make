# Empty dependencies file for mbox_test.
# This may be replaced when dependencies are built.
