file(REMOVE_RECURSE
  "CMakeFiles/pattern_db_test.dir/pattern_db_test.cpp.o"
  "CMakeFiles/pattern_db_test.dir/pattern_db_test.cpp.o.d"
  "pattern_db_test"
  "pattern_db_test.pdb"
  "pattern_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
