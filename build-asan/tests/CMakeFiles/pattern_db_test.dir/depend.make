# Empty dependencies file for pattern_db_test.
# This may be replaced when dependencies are built.
