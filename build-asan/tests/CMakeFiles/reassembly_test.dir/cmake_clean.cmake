file(REMOVE_RECURSE
  "CMakeFiles/reassembly_test.dir/reassembly_test.cpp.o"
  "CMakeFiles/reassembly_test.dir/reassembly_test.cpp.o.d"
  "reassembly_test"
  "reassembly_test.pdb"
  "reassembly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reassembly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
