# Empty dependencies file for reassembly_test.
# This may be replaced when dependencies are built.
