file(REMOVE_RECURSE
  "CMakeFiles/service_controller_test.dir/service_controller_test.cpp.o"
  "CMakeFiles/service_controller_test.dir/service_controller_test.cpp.o.d"
  "service_controller_test"
  "service_controller_test.pdb"
  "service_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
