# Empty dependencies file for service_controller_test.
# This may be replaced when dependencies are built.
