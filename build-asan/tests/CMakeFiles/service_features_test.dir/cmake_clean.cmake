file(REMOVE_RECURSE
  "CMakeFiles/service_features_test.dir/service_features_test.cpp.o"
  "CMakeFiles/service_features_test.dir/service_features_test.cpp.o.d"
  "service_features_test"
  "service_features_test.pdb"
  "service_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
