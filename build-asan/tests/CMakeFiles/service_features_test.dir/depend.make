# Empty dependencies file for service_features_test.
# This may be replaced when dependencies are built.
