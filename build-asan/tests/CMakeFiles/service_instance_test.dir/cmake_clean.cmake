file(REMOVE_RECURSE
  "CMakeFiles/service_instance_test.dir/service_instance_test.cpp.o"
  "CMakeFiles/service_instance_test.dir/service_instance_test.cpp.o.d"
  "service_instance_test"
  "service_instance_test.pdb"
  "service_instance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
