# Empty dependencies file for service_instance_test.
# This may be replaced when dependencies are built.
