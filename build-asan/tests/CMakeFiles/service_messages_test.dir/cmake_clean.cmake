file(REMOVE_RECURSE
  "CMakeFiles/service_messages_test.dir/service_messages_test.cpp.o"
  "CMakeFiles/service_messages_test.dir/service_messages_test.cpp.o.d"
  "service_messages_test"
  "service_messages_test.pdb"
  "service_messages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
