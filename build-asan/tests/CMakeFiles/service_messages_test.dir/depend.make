# Empty dependencies file for service_messages_test.
# This may be replaced when dependencies are built.
