file(REMOVE_RECURSE
  "CMakeFiles/wu_manber_test.dir/wu_manber_test.cpp.o"
  "CMakeFiles/wu_manber_test.dir/wu_manber_test.cpp.o.d"
  "wu_manber_test"
  "wu_manber_test.pdb"
  "wu_manber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wu_manber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
