# Empty dependencies file for wu_manber_test.
# This may be replaced when dependencies are built.
