# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/common_test[1]_include.cmake")
include("/root/repo/build-asan/tests/json_test[1]_include.cmake")
include("/root/repo/build-asan/tests/regex_test[1]_include.cmake")
include("/root/repo/build-asan/tests/ac_test[1]_include.cmake")
include("/root/repo/build-asan/tests/net_test[1]_include.cmake")
include("/root/repo/build-asan/tests/dpi_engine_test[1]_include.cmake")
include("/root/repo/build-asan/tests/flow_table_test[1]_include.cmake")
include("/root/repo/build-asan/tests/pattern_db_test[1]_include.cmake")
include("/root/repo/build-asan/tests/workload_test[1]_include.cmake")
include("/root/repo/build-asan/tests/netsim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/service_messages_test[1]_include.cmake")
include("/root/repo/build-asan/tests/service_instance_test[1]_include.cmake")
include("/root/repo/build-asan/tests/service_controller_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mbox_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/reassembly_test[1]_include.cmake")
include("/root/repo/build-asan/tests/compress_test[1]_include.cmake")
include("/root/repo/build-asan/tests/wu_manber_test[1]_include.cmake")
include("/root/repo/build-asan/tests/service_features_test[1]_include.cmake")
include("/root/repo/build-asan/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build-asan/tests/robustness_test[1]_include.cmake")
include("/root/repo/build-asan/tests/failover_test[1]_include.cmake")
include("/root/repo/build-asan/tests/engine_model_test[1]_include.cmake")
include("/root/repo/build-asan/tests/concurrency_test[1]_include.cmake")
