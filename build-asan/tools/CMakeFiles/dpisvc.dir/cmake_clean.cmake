file(REMOVE_RECURSE
  "CMakeFiles/dpisvc.dir/dpisvc_cli.cpp.o"
  "CMakeFiles/dpisvc.dir/dpisvc_cli.cpp.o.d"
  "dpisvc"
  "dpisvc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpisvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
