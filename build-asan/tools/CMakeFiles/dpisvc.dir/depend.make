# Empty dependencies file for dpisvc.
# This may be replaced when dependencies are built.
