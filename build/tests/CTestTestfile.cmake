# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/regex_test[1]_include.cmake")
include("/root/repo/build/tests/ac_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/dpi_engine_test[1]_include.cmake")
include("/root/repo/build/tests/flow_table_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_db_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/service_messages_test[1]_include.cmake")
include("/root/repo/build/tests/service_instance_test[1]_include.cmake")
include("/root/repo/build/tests/service_controller_test[1]_include.cmake")
include("/root/repo/build/tests/mbox_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/reassembly_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/wu_manber_test[1]_include.cmake")
include("/root/repo/build/tests/service_features_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/failover_test[1]_include.cmake")
include("/root/repo/build/tests/engine_model_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
