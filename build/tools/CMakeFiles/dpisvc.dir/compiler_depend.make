# Empty compiler generated dependencies file for dpisvc.
# This may be replaced when dependencies are built.
