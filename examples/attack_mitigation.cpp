// Figure 6 demo: MCA²-style mitigation of complexity attacks on the DPI
// service (§4.3.1).
//
// Phase 1: benign traffic flows through a regular instance; telemetry stays
//          quiet.
// Phase 2: an attacker sends payloads stitched from signature fragments,
//          driving the accepting-state hit density far above benign levels.
// Phase 3: the DPI controller detects the stress, designates the dedicated
//          instance (running the compressed, attack-resistant automaton),
//          migrates the heavy chain there via the TSA, and the regular
//          instance recovers.
#include <cstdio>

#include "common/logging.hpp"
#include "mbox/boxes.hpp"
#include "mbox/middlebox_node.hpp"
#include "netsim/controller.hpp"
#include "netsim/host.hpp"
#include "netsim/switch.hpp"
#include "service/instance_node.hpp"
#include "workload/pattern_gen.hpp"
#include "workload/traffic_gen.hpp"

using namespace dpisvc;

int main() {
  set_log_level(LogLevel::kInfo);

  service::StressConfig stress;
  stress.hits_per_byte_threshold = 0.005;
  stress.min_window_bytes = 4096;
  stress.smoothing_windows = 2;
  service::DpiController controller(stress);

  // An IDS with a synthetic Snort-like rule set.
  mbox::Ids ids(1, /*stateful=*/false);
  const auto patterns =
      workload::generate_patterns(workload::snort_like(400, 42));
  dpi::PatternId rule_id = 0;
  for (const std::string& p : patterns) {
    mbox::RuleSpec rule;
    rule.id = rule_id++;
    rule.exact = p;
    rule.verdict = mbox::Verdict::kAlert;
    ids.add_rule(rule);
  }
  ids.attach(controller);
  const dpi::ChainId chain = controller.register_policy_chain({1});

  auto regular = controller.create_instance("regular-1");
  service::InstanceConfig dedicated_config;
  dedicated_config.dedicated = true;
  auto dedicated = controller.create_instance("dedicated-1", dedicated_config);
  controller.assign_chain(chain, "regular-1");
  std::printf("regular engine:   full-table AC, %.1f MB\n",
              regular->engine()->memory_bytes() / 1e6);
  std::printf("dedicated engine: compressed AC, %.1f MB\n",
              dedicated->engine()->memory_bytes() / 1e6);

  netsim::Fabric fabric;
  fabric.add_node<netsim::Switch>("s1");
  netsim::Host& src = fabric.add_node<netsim::Host>("src");
  fabric.add_node<netsim::Host>("dst");
  fabric.add_node<service::InstanceNode>("regular-1", regular);
  fabric.add_node<service::InstanceNode>("dedicated-1", dedicated);
  fabric.add_node<mbox::MiddleboxNode>("ids", ids, mbox::NodeMode::kService);
  for (const char* n : {"src", "dst", "regular-1", "dedicated-1", "ids"}) {
    fabric.connect("s1", n);
  }
  src.set_gateway("s1");
  netsim::SdnController sdn(fabric);
  netsim::TrafficSteeringApp tsa(sdn, "s1");
  netsim::PolicyChainSpec spec;
  spec.id = chain;
  spec.ingress = "src";
  spec.sequence = {"regular-1", "ids"};
  spec.egress = "dst";
  tsa.install_chain(spec);

  auto pump = [&](const workload::Trace& trace, std::uint16_t base_id) {
    std::uint16_t ip_id = base_id;
    for (const auto& t : trace) {
      src.send(workload::to_packet(t, ip_id++));
      fabric.run();
    }
  };

  // Phase 1: benign traffic.
  workload::TrafficConfig benign;
  benign.num_packets = 150;
  benign.planted_match_rate = 0.02;
  benign.planted_patterns = {patterns[0], patterns[1]};
  pump(workload::generate_http_trace(benign), 0);
  controller.collect_telemetry();
  std::printf("\n[phase 1] benign: signal=%.4f hits/byte, stressed=%s\n",
              controller.stress_monitor().smoothed_signal("regular-1"),
              controller.stress_monitor().is_stressed("regular-1") ? "YES"
                                                                   : "no");

  // Phase 2: complexity attack.
  workload::TrafficConfig attack_cfg;
  attack_cfg.num_packets = 150;
  const std::vector<std::string> attack_targets(patterns.begin(),
                                                patterns.begin() + 20);
  pump(workload::generate_attack_trace(attack_cfg, attack_targets), 1000);
  controller.collect_telemetry();
  std::printf("[phase 2] attack: signal=%.4f hits/byte, stressed=%s\n",
              controller.stress_monitor().smoothed_signal("regular-1"),
              controller.stress_monitor().is_stressed("regular-1") ? "YES"
                                                                   : "no");

  // Phase 3: mitigation.
  const service::MitigationPlan plan = controller.evaluate_mitigation();
  if (plan.empty()) {
    std::printf("no mitigation required\n");
    return 0;
  }
  controller.apply_mitigation(plan);
  for (const service::Migration& m : plan.migrations) {
    tsa.update_sequence(m.chain, {m.to_instance, "ids"});
    std::printf("[phase 3] chain %u diverted: %s -> %s\n", m.chain,
                m.from_instance.c_str(), m.to_instance.c_str());
  }

  const auto regular_before = regular->telemetry().packets;
  pump(workload::generate_attack_trace(attack_cfg, attack_targets), 2000);
  std::printf("[phase 3] after diversion: regular scanned +%llu packets, "
              "dedicated scanned %llu packets\n",
              static_cast<unsigned long long>(regular->telemetry().packets -
                                              regular_before),
              static_cast<unsigned long long>(
                  dedicated->telemetry().packets));
  std::printf("IDS alerts collected end-to-end: %zu\n", ids.alerts().size());
  return 0;
}
