// Evasion resistance: what the service substrates buy you.
//
// An attacker hides a signature from per-packet matchers three ways:
//   1. splitting it across TCP segment boundaries,
//   2. delivering the segments out of order,
//   3. gzip-compressing the HTTP body that carries it.
// A naive stateless per-packet scanner misses all three. The DPI service's
// stateful scanning (§5.2), stream reassembly (§7) and decompress-once
// preprocessing (§1) catch each one — this example runs all four detectors
// side by side on the same attack traffic.
#include <cstdio>

#include "compress/deflate.hpp"
#include "compress/inflate.hpp"
#include "dpi/engine.hpp"
#include "net/reassembly.hpp"
#include "service/instance.hpp"

using namespace dpisvc;

namespace {

constexpr const char* kSignature = "MALICIOUS-COMMAND-AND-CONTROL";

std::shared_ptr<const dpi::Engine> make_engine(bool stateful) {
  dpi::EngineSpec spec;
  dpi::MiddleboxProfile ids;
  ids.id = 1;
  ids.name = "ids";
  ids.stateful = stateful;
  spec.middleboxes = {ids};
  spec.exact_patterns = {dpi::ExactPatternSpec{kSignature, 1, 0}};
  spec.chains[1] = {1};
  return dpi::Engine::compile(spec);
}

net::Packet tcp_packet(std::uint16_t src_port, std::uint32_t seq,
                       Bytes payload) {
  net::Packet p;
  p.tuple.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  p.tuple.dst_ip = net::Ipv4Addr(10, 0, 0, 2);
  p.tuple.src_port = src_port;
  p.tuple.dst_port = 80;
  p.tcp_seq = seq;
  p.payload = std::move(payload);
  return p;
}

/// Splits `stream` into segments cut so the signature straddles boundaries,
/// then reorders the middle.
std::vector<net::Packet> evasive_segments(std::uint16_t port,
                                          const Bytes& stream) {
  std::vector<net::Packet> out;
  const std::size_t third = stream.size() / 3;
  const std::size_t cuts[4] = {0, third, 2 * third, stream.size()};
  for (int i = 0; i < 3; ++i) {
    out.push_back(tcp_packet(
        port, static_cast<std::uint32_t>(cuts[i]),
        Bytes(stream.begin() + static_cast<std::ptrdiff_t>(cuts[i]),
              stream.begin() + static_cast<std::ptrdiff_t>(cuts[i + 1]))));
  }
  std::swap(out[1], out[2]);  // deliver the middle segment last
  return out;
}

}  // namespace

int main() {
  // The attack stream: HTTP-ish preamble + gzip body hiding the signature.
  std::string body_text = "<html>";
  body_text += kSignature;
  body_text += " beacon</html>";
  const Bytes compressed_body = compress::gzip_compress(to_bytes(body_text));
  Bytes stream = to_bytes("POST /upload HTTP/1.1\r\n\r\n");

  std::printf("attack: signature '%s' split over 3 out-of-order TCP "
              "segments, body gzip-compressed\n\n", kSignature);

  auto stateless = make_engine(false);
  auto stateful = make_engine(true);

  // Detector 1: naive per-packet stateless scan of raw segments.
  // Detector 2: stateful scan of raw segments in arrival order (no
  //             reassembly): the signature bytes arrive out of order.
  // Detector 3: reassembly + stateful scan, but no decompression.
  // Detector 4: the full service stack: reassembly + decompress + scan.
  struct Detector {
    const char* name;
    bool found = false;
  };
  Detector detectors[4] = {{"stateless per-packet scan"},
                           {"stateful scan, no reassembly"},
                           {"reassembly + stateful scan"},
                           {"reassembly + decompress + scan (the service)"}};

  // --- plaintext variant: tests detectors 1-3 -------------------------------
  Bytes plain_stream = stream;
  plain_stream.insert(plain_stream.end(), body_text.begin(), body_text.end());
  const auto plain_segments = evasive_segments(1000, plain_stream);

  dpi::FlowCursor cursor_no_reasm;
  net::FlowReassembler reassembler;
  dpi::FlowCursor cursor_reasm;
  for (const net::Packet& segment : plain_segments) {
    detectors[0].found |=
        stateless->scan_packet(1, segment.payload).has_matches();
    const auto r2 =
        stateful->scan_packet(1, segment.payload, cursor_no_reasm);
    cursor_no_reasm = r2.cursor;
    detectors[1].found |= r2.has_matches();
    if (const auto chunk = reassembler.feed(segment)) {
      const auto r3 = stateful->scan_packet(1, chunk->data, cursor_reasm);
      cursor_reasm = r3.cursor;
      detectors[2].found |= r3.has_matches();
    }
  }

  // --- compressed variant: only the full stack can see through it ----------
  Bytes gz_stream = stream;
  gz_stream.insert(gz_stream.end(), compressed_body.begin(),
                   compressed_body.end());
  const auto gz_segments = evasive_segments(2000, gz_stream);
  net::FlowReassembler gz_reassembler;
  Bytes reassembled;
  for (const net::Packet& segment : gz_segments) {
    if (const auto chunk = gz_reassembler.feed(segment)) {
      reassembled.insert(reassembled.end(), chunk->data.begin(),
                         chunk->data.end());
    }
  }
  // The service's decompress-once stage: locate and inflate the gzip body.
  for (std::size_t at = 0; at + 2 <= reassembled.size(); ++at) {
    const BytesView tail(reassembled.data() + at, reassembled.size() - at);
    if (!compress::looks_like_gzip(tail)) continue;
    try {
      const Bytes inflated = compress::gzip_decompress(tail);
      detectors[3].found |=
          stateless->scan_packet(1, inflated).has_matches();
      break;
    } catch (const compress::InflateError&) {
      continue;  // false magic inside the payload
    }
  }

  std::printf("%-48s %s\n", "detector", "caught the attack?");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-48s %s\n", detectors[i].name,
                detectors[i].found ? "YES" : "no   (evaded)");
  }
  std::printf("%-48s %s  (gzip variant)\n", detectors[3].name,
              detectors[3].found ? "YES" : "no   (evaded)");

  std::printf("\nonly scanning-once-with-state over reassembled, inflated "
              "content sees every variant — and the service does that work "
              "once for all middleboxes on the chain.\n");
  return 0;
}
