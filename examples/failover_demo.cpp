// Failure-scenario demo (§4.3 / §7): the DPI service surviving an instance
// crash.
//
// Phase 1: traffic flows src -> dpi1 -> ids -> dst over a lossy fabric
//          (1% seeded drop on every link); the IDS consumes the instance's
//          result packets.
// Phase 2: dpi1 crashes mid-traffic. Its heartbeats stop; after the
//          configured number of silent telemetry windows the controller
//          declares it failed, builds a FailoverPlan, reassigns the chain
//          to dpi2 (least-loaded live placement), migrates surviving flow
//          state, and pushes the reroute to the traffic steering app.
//          Meanwhile the IDS degrades gracefully: buffered packets whose
//          result packets died with dpi1 time out and are rescanned with
//          the middlebox's private standalone engine.
// Phase 3: dpi1 restarts; recovery re-syncs its engine version before it
//          may take traffic again.
#include <cstdio>

#include "common/logging.hpp"
#include "mbox/boxes.hpp"
#include "mbox/middlebox_node.hpp"
#include "netsim/controller.hpp"
#include "netsim/host.hpp"
#include "netsim/switch.hpp"
#include "service/instance_node.hpp"

using namespace dpisvc;

namespace {

net::Packet make_packet(bool evil, std::uint16_t src_port,
                        std::uint16_t ip_id) {
  net::Packet p;
  p.tuple.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  p.tuple.dst_ip = net::Ipv4Addr(10, 0, 0, 99);
  p.tuple.src_port = src_port;
  p.tuple.dst_port = 80;
  p.ip_id = ip_id;
  p.payload = to_bytes(evil ? "POST /upload attack-sig inside this body"
                            : "GET /static/logo.png HTTP/1.1 benign");
  return p;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kInfo);

  service::FailoverConfig failover;
  failover.miss_windows = 2;
  service::DpiController controller({}, failover);

  mbox::Ids ids(1, /*stateful=*/false);
  mbox::RuleSpec rule;
  rule.id = 1;
  rule.exact = "attack-sig";
  rule.verdict = mbox::Verdict::kAlert;
  ids.add_rule(rule);
  ids.attach(controller);
  const dpi::ChainId chain = controller.register_policy_chain({1});
  auto dpi1 = controller.create_instance("dpi1");
  auto dpi2 = controller.create_instance("dpi2");
  controller.assign_chain(chain, "dpi1");

  netsim::Fabric fabric;
  fabric.add_node<netsim::Switch>("s1");
  netsim::Host& src = fabric.add_node<netsim::Host>("src");
  netsim::Host& dst = fabric.add_node<netsim::Host>("dst");
  fabric.add_node<service::InstanceNode>("dpi1", dpi1);
  fabric.add_node<service::InstanceNode>("dpi2", dpi2);
  mbox::DegradeConfig degrade;
  degrade.result_deadline = 64;
  mbox::MiddleboxNode& ids_node = fabric.add_node<mbox::MiddleboxNode>(
      "ids", ids, mbox::NodeMode::kService, degrade);
  fabric.set_fault_seed(42);
  netsim::LinkFaults faults;
  faults.drop = 0.01;
  for (const char* n : {"src", "dst", "dpi1", "dpi2", "ids"}) {
    fabric.connect("s1", n);
    fabric.set_link_faults("s1", n, faults);
  }
  src.set_gateway("s1");

  netsim::SdnController sdn(fabric);
  netsim::TrafficSteeringApp tsa(sdn, "s1");
  netsim::PolicyChainSpec spec;
  spec.id = chain;
  spec.ingress = "src";
  spec.sequence = {"dpi1", "ids"};
  spec.egress = "dst";
  tsa.install_chain(spec);
  controller.set_routing_listener(
      [&](dpi::ChainId id, const std::string& instance) {
        std::printf(">> TSA reroute: chain %u now via %s\n",
                    static_cast<unsigned>(id), instance.c_str());
        tsa.update_sequence(id, {instance, "ids"});
      });

  std::uint16_t ip_id = 1;
  auto window = [&](int packets) {
    for (int i = 0; i < packets; ++i) {
      src.send(make_packet(i % 8 == 0,
                           static_cast<std::uint16_t>(2000 + i % 8), ip_id++));
      fabric.run();
    }
    for (const std::string& name : controller.instance_names()) {
      if (!fabric.crashed(name)) controller.heartbeat(name);
    }
    controller.collect_telemetry();
    controller.apply_failover(controller.evaluate_failover());
  };

  std::printf("[phase 1] healthy service, 1%% link loss\n");
  for (int w = 0; w < 3; ++w) window(60);
  std::printf("  delivered=%zu alerts=%zu assigned=%s\n",
              dst.received().size(), ids.alerts().size(),
              controller.instance_for_chain(chain)->c_str());

  std::printf("\n[phase 2] crashing dpi1 mid-traffic\n");
  fabric.crash_node("dpi1");
  int windows_until_failover = 0;
  while (controller.instance_for_chain(chain).value_or("dpi1") == "dpi1" &&
         windows_until_failover < 8) {
    window(60);
    ++windows_until_failover;
  }
  std::printf("  failover after %d windows: failed=%s, chain now on %s\n",
              windows_until_failover,
              controller.is_failed("dpi1") ? "dpi1" : "none",
              controller.instance_for_chain(chain)->c_str());
  for (int w = 0; w < 2; ++w) window(60);
  ids_node.expire_pending(/*force=*/true);
  fabric.run();
  std::printf("  delivered=%zu alerts=%zu pending=%zu "
              "(timeouts=%llu local rescans=%llu)\n",
              dst.received().size(), ids.alerts().size(), ids_node.pending(),
              static_cast<unsigned long long>(ids_node.result_timeouts()),
              static_cast<unsigned long long>(ids_node.fallback_scans()));

  std::printf("\n[phase 3] restarting dpi1\n");
  fabric.restore_node("dpi1");
  controller.recover_instance("dpi1");
  std::printf("  dpi1 failed=%s engine v%llu (pool version v%llu)\n",
              controller.is_failed("dpi1") ? "yes" : "no",
              static_cast<unsigned long long>(dpi1->engine_version()),
              static_cast<unsigned long long>(dpi2->engine_version()));
  return ids_node.pending() == 0 ? 0 : 1;
}
