// Figure 3(b) demo: multiple service chains multiplexed over multiple
// virtual DPI instances.
//
// Two traffic classes (HTTP on port 80, P2P on port 6881) have different
// policy chains: HTTP goes to IDS1, P2P goes to IDS2. With DPI as a
// service, both DPI instances are loaded with the *combined* pattern set,
// so the controller can steer either traffic class to either instance —
// the dynamic load-balancing flexibility §6.4/Figure 10 quantifies.
#include <cstdio>

#include "common/logging.hpp"
#include "mbox/boxes.hpp"
#include "mbox/middlebox_node.hpp"
#include "netsim/controller.hpp"
#include "netsim/host.hpp"
#include "netsim/switch.hpp"
#include "service/instance_node.hpp"
#include "workload/traffic_gen.hpp"

using namespace dpisvc;

namespace {
mbox::RuleSpec exact(dpi::PatternId id, const char* pattern,
                     mbox::Verdict verdict) {
  mbox::RuleSpec rule;
  rule.id = id;
  rule.description = pattern;
  rule.exact = pattern;
  rule.verdict = verdict;
  return rule;
}
}  // namespace

int main() {
  set_log_level(LogLevel::kInfo);
  service::DpiController controller;

  mbox::Ids ids_http(1, false);
  ids_http.add_rule(exact(1, "sql' OR 1=1", mbox::Verdict::kAlert));
  ids_http.add_rule(exact(2, "<script>alert(", mbox::Verdict::kAlert));
  mbox::Ids ids_p2p(2, false);
  ids_p2p.add_rule(exact(1, "BitTorrent protocol", mbox::Verdict::kAlert));
  ids_p2p.add_rule(exact(2, "announce?info_hash=", mbox::Verdict::kAlert));

  ids_http.attach(controller);
  ids_p2p.attach(controller);

  const dpi::ChainId http_chain = controller.register_policy_chain({1});
  const dpi::ChainId p2p_chain = controller.register_policy_chain({2});

  // Two DPI instances; both hold the combined pattern set of both chains.
  auto dpi1 = controller.create_instance("dpi-1");
  auto dpi2 = controller.create_instance("dpi-2");
  controller.auto_assign_chain(http_chain);  // least-loaded placement
  controller.auto_assign_chain(p2p_chain);
  std::printf("placement: http-chain -> %s, p2p-chain -> %s\n",
              controller.instance_for_chain(http_chain)->c_str(),
              controller.instance_for_chain(p2p_chain)->c_str());

  netsim::Fabric fabric;
  fabric.add_node<netsim::Switch>("s1");
  netsim::Host& src = fabric.add_node<netsim::Host>("src");
  netsim::Host& dst = fabric.add_node<netsim::Host>("dst");
  fabric.add_node<service::InstanceNode>("dpi-1", dpi1);
  fabric.add_node<service::InstanceNode>("dpi-2", dpi2);
  fabric.add_node<mbox::MiddleboxNode>("ids-http", ids_http,
                                       mbox::NodeMode::kService);
  fabric.add_node<mbox::MiddleboxNode>("ids-p2p", ids_p2p,
                                       mbox::NodeMode::kService);
  for (const char* n :
       {"src", "dst", "dpi-1", "dpi-2", "ids-http", "ids-p2p"}) {
    fabric.connect("s1", n);
  }
  src.set_gateway("s1");

  netsim::SdnController sdn(fabric);
  netsim::TrafficSteeringApp tsa(sdn, "s1");
  {
    netsim::PolicyChainSpec spec;
    spec.id = http_chain;
    spec.ingress = "src";
    spec.classifier.dst_port = 80;
    spec.sequence = {*controller.instance_for_chain(http_chain), "ids-http"};
    spec.egress = "dst";
    tsa.install_chain(spec);
  }
  {
    netsim::PolicyChainSpec spec;
    spec.id = p2p_chain;
    spec.ingress = "src";
    spec.classifier.dst_port = 6881;
    spec.sequence = {*controller.instance_for_chain(p2p_chain), "ids-p2p"};
    spec.egress = "dst";
    tsa.install_chain(spec);
  }

  // HTTP traffic with occasional attacks; P2P traffic with protocol markers.
  workload::TrafficConfig http;
  http.num_packets = 300;
  http.planted_match_rate = 0.06;
  http.planted_patterns = {"sql' OR 1=1", "<script>alert("};
  http.seed = 80;
  workload::TrafficConfig p2p = http;
  p2p.planted_patterns = {"BitTorrent protocol", "announce?info_hash="};
  p2p.planted_match_rate = 0.5;
  p2p.seed = 6881;

  std::uint16_t ip_id = 0;
  for (const auto& t : workload::generate_http_trace(http)) {
    net::Packet packet = workload::to_packet(t, ip_id++);
    packet.tuple.dst_port = 80;
    src.send(std::move(packet));
    fabric.run();
  }
  for (const auto& t : workload::generate_random_trace(p2p)) {
    net::Packet packet = workload::to_packet(t, ip_id++);
    packet.tuple.dst_port = 6881;
    src.send(std::move(packet));
    fabric.run();
  }

  std::printf("\n=== multi-chain results ===\n");
  std::printf("dpi-1 scanned %llu packets; dpi-2 scanned %llu packets\n",
              static_cast<unsigned long long>(dpi1->telemetry().packets),
              static_cast<unsigned long long>(dpi2->telemetry().packets));
  std::printf("http IDS alerts: %zu, p2p IDS alerts: %zu\n",
              ids_http.alerts().size(), ids_p2p.alerts().size());

  // Demonstrate the load-balancing flexibility: consolidate everything on
  // dpi-2 (e.g. dpi-1 is being drained for maintenance) — no pattern-set
  // changes needed, both instances already hold the combined set.
  std::printf("\ndraining dpi-1: steering the HTTP chain to dpi-2...\n");
  controller.assign_chain(http_chain, "dpi-2");
  tsa.update_sequence(http_chain, {"dpi-2", "ids-http"});
  const auto before = dpi2->telemetry().packets;
  for (const auto& t : workload::generate_http_trace(http)) {
    net::Packet packet = workload::to_packet(t, ip_id++);
    packet.tuple.dst_port = 80;
    src.send(std::move(packet));
    fabric.run();
  }
  std::printf("dpi-2 scanned %llu more packets; dpi-1 stayed idle\n",
              static_cast<unsigned long long>(dpi2->telemetry().packets -
                                              before));
  std::printf("total deliveries at dst: %zu\n", dst.received().size());
  return 0;
}
