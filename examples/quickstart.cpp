// Quickstart: the DPI-as-a-Service core API in ~60 lines.
//
// Two middleboxes (an IDS and an antivirus) register their pattern sets
// with the DPI controller over the JSON control channel; a policy chain is
// created; a DPI service instance scans one packet against the *combined*
// pattern set; and each middlebox gets exactly its own matches back.
#include <cstdio>

#include "mbox/boxes.hpp"
#include "service/controller.hpp"

using namespace dpisvc;

int main() {
  service::DpiController controller;

  // An IDS with two rules (one exact, one regular expression).
  mbox::Ids ids(/*id=*/1, /*stateful=*/false);
  {
    mbox::RuleSpec r1;
    r1.id = 1;
    r1.description = "shellcode download";
    r1.exact = "cmd.exe /c";
    r1.verdict = mbox::Verdict::kAlert;
    ids.add_rule(r1);
    mbox::RuleSpec r2;
    r2.id = 2;
    r2.description = "bot beacon";
    r2.regex = R"(beacon_id=\d{4,})";
    r2.verdict = mbox::Verdict::kAlert;
    ids.add_rule(r2);
  }

  // An antivirus sharing one of its signatures with the IDS world.
  mbox::AntiVirus av(/*id=*/2);
  {
    mbox::RuleSpec sig;
    sig.id = 1;
    sig.description = "test signature";
    sig.exact = "cmd.exe /c";  // same bytes as the IDS rule: stored once
    sig.verdict = mbox::Verdict::kQuarantine;
    av.add_rule(sig);
  }

  // Registration + pattern upload over the JSON protocol (§4.1).
  ids.attach(controller);
  av.attach(controller);
  std::printf("distinct exact patterns in the global set: %zu (shared!)\n",
              controller.db().num_distinct_exact());

  // One policy chain covering both middleboxes, one service instance.
  const dpi::ChainId chain = controller.register_policy_chain({1, 2});
  auto instance = controller.create_instance("dpi-1");

  // Scan a packet once, against everything.
  const std::string payload =
      "GET /dl?x=1 HTTP/1.1\r\n\r\n... cmd.exe /c start ... beacon_id=13372 ...";
  net::Packet packet;
  packet.tuple.src_ip = net::Ipv4Addr(10, 0, 0, 1);
  packet.tuple.dst_ip = net::Ipv4Addr(203, 0, 113, 7);
  packet.tuple.src_port = 40000;
  packet.tuple.dst_port = 80;
  packet.payload = to_bytes(payload);
  packet.push_tag(net::TagKind::kPolicyChain, chain);

  service::ProcessOutput out = instance->process(std::move(packet));
  std::printf("packet matched: %s\n", out.had_matches ? "yes" : "no");

  // The result packet carries per-middlebox match lists.
  const net::MatchReport report =
      net::decode_report(out.result->service_header->metadata);
  for (const net::MiddleboxSection& section : report.sections) {
    std::printf("middlebox %u:\n", section.middlebox_id);
    for (const net::MatchEntry& e : section.entries) {
      std::printf("  rule %u matched ending at offset %u (x%u)\n",
                  e.pattern_id, e.position, e.run_length);
    }
  }

  // Middleboxes apply their own logic to the results — no payload scanning.
  for (const net::MiddleboxSection& section : report.sections) {
    if (section.middlebox_id == ids.profile().id) {
      ids.apply_report_entries(out.data, section.entries);
    } else if (section.middlebox_id == av.profile().id) {
      av.apply_report_entries(out.data, section.entries);
    }
  }
  std::printf("IDS alerts: %zu, AV quarantined flows: %zu\n",
              ids.alerts().size(), av.quarantined_flows());
  return 0;
}
