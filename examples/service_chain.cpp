// Figure 2(b) / Figure 5 demo: a full policy chain on the simulated SDN
// fabric.
//
//   src -> s1 -> [ DPI-instance -> IDS -> AV -> traffic-shaper ] -> dst
//
// The Traffic Steering Application installs the chain; packets are scanned
// once by the DPI service instance; every middlebox receives the scan
// results as a dedicated result packet trailing the data packet and applies
// its own rules without touching payloads.
#include <cstdio>

#include "common/logging.hpp"
#include "mbox/boxes.hpp"
#include "mbox/middlebox_node.hpp"
#include "netsim/controller.hpp"
#include "netsim/host.hpp"
#include "netsim/switch.hpp"
#include "service/instance_node.hpp"
#include "workload/traffic_gen.hpp"

using namespace dpisvc;

namespace {

mbox::RuleSpec exact(dpi::PatternId id, const char* description,
                     const char* pattern, mbox::Verdict verdict,
                     int rule_class = 0) {
  mbox::RuleSpec rule;
  rule.id = id;
  rule.description = description;
  rule.exact = pattern;
  rule.verdict = verdict;
  rule.rule_class = rule_class;
  return rule;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kInfo);
  service::DpiController controller;

  // --- middleboxes & their rules ------------------------------------------
  mbox::Ids ids(1, /*stateful=*/false);
  ids.add_rule(exact(1, "exploit kit landing", "eval(unescape(",
                     mbox::Verdict::kAlert, /*severity=*/2));
  ids.add_rule(exact(2, "nop sled", "\x90\x90\x90\x90\x90\x90\x90\x90",
                     mbox::Verdict::kAlert, 3));

  mbox::AntiVirus av(2);
  av.add_rule(exact(1, "eicar-like test file", "X5O!P%@AP[4\\PZX54(P^)",
                    mbox::Verdict::kQuarantine));

  mbox::TrafficShaper shaper(3);
  shaper.add_rule(exact(1, "video stream", "videoplayback?",
                        mbox::Verdict::kShape, /*class=*/1));
  shaper.add_rule(exact(2, "p2p handshake", "BitTorrent protocol",
                        mbox::Verdict::kShape, /*class=*/2));

  ids.attach(controller);
  av.attach(controller);
  shaper.attach(controller);

  const dpi::ChainId chain = controller.register_policy_chain({1, 2, 3});
  auto instance = controller.create_instance("dpi-1");
  controller.assign_chain(chain, "dpi-1");

  // --- fabric ------------------------------------------------------------------
  netsim::Fabric fabric;
  fabric.add_node<netsim::Switch>("s1");
  netsim::Host& src = fabric.add_node<netsim::Host>("src");
  netsim::Host& dst = fabric.add_node<netsim::Host>("dst");
  fabric.add_node<service::InstanceNode>("dpi-1", instance);
  fabric.add_node<mbox::MiddleboxNode>("ids", ids, mbox::NodeMode::kService);
  fabric.add_node<mbox::MiddleboxNode>("av", av, mbox::NodeMode::kService);
  fabric.add_node<mbox::MiddleboxNode>("shaper", shaper,
                                       mbox::NodeMode::kService);
  for (const char* n : {"src", "dst", "dpi-1", "ids", "av", "shaper"}) {
    fabric.connect("s1", n);
  }
  src.set_gateway("s1");

  netsim::SdnController sdn(fabric);
  netsim::TrafficSteeringApp tsa(sdn, "s1");
  netsim::PolicyChainSpec spec;
  spec.id = chain;
  spec.ingress = "src";
  spec.sequence = {"dpi-1", "ids", "av", "shaper"};
  spec.egress = "dst";
  tsa.install_chain(spec);

  // --- traffic --------------------------------------------------------------------
  workload::TrafficConfig traffic;
  traffic.num_packets = 400;
  traffic.num_flows = 24;
  traffic.planted_match_rate = 0.08;
  traffic.planted_patterns = {
      "eval(unescape(", "X5O!P%@AP[4\\PZX54(P^)", "videoplayback?",
      "BitTorrent protocol"};
  traffic.seed = 2014;
  const workload::Trace trace = workload::generate_http_trace(traffic);

  std::uint16_t ip_id = 0;
  for (const workload::TracePacket& t : trace) {
    net::Packet p = workload::to_packet(t, ip_id++);
    src.send(std::move(p));
    fabric.run();
  }

  // --- report -----------------------------------------------------------------------
  std::printf("\n=== service chain results ===\n");
  std::printf("packets sent:              %zu\n", trace.size());
  std::printf("packets delivered to dst:  %zu (incl. result packets)\n",
              dst.received().size());
  std::printf("DPI instance scans:        %llu packets, %llu bytes\n",
              static_cast<unsigned long long>(instance->telemetry().packets),
              static_cast<unsigned long long>(instance->telemetry().bytes));
  std::printf("IDS alerts:                %zu\n", ids.alerts().size());
  std::printf("AV quarantined flows:      %zu\n", av.quarantined_flows());
  std::printf("shaper classified flows:   ");
  for (const auto& [cls, packets] : shaper.packets_per_class()) {
    std::printf("class%d=%llu ", cls,
                static_cast<unsigned long long>(packets));
  }
  std::printf("\n");
  std::printf("middlebox scans performed: 0 (all results came from the DPI "
              "service)\n");
  return 0;
}
