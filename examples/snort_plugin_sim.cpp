// The paper's Snort-plugin experiment, simulated (§6.1).
//
// "We also provide a prototype implementation for a Snort plugin that
//  parses results instead of scanning the packets using Snort's traditional
//  pattern matching engines. The plugin itself requires less than 100 lines
//  of code."
//
// This example plays both roles: a Snort-like IDS whose detection engine is
// replaced by a result-parsing plugin (ResultParserPlugin, genuinely small),
// and the unmodified self-scanning configuration — and shows that the two
// produce identical alert streams over the same traffic while the plugin
// variant never touches a payload.
#include <cstdio>
#include <vector>

#include "mbox/boxes.hpp"
#include "service/controller.hpp"
#include "service/instance_node.hpp"
#include "workload/traffic_gen.hpp"

using namespace dpisvc;

// ---------------------------------------------------------------------------
// The "plugin": everything a middlebox needs in order to consume the DPI
// service instead of running its own matcher. Mirrors the paper's claim of
// a <100-line integration.
// ---------------------------------------------------------------------------
class ResultParserPlugin {
 public:
  ResultParserPlugin(dpi::MiddleboxId self, mbox::Middlebox& engine)
      : self_(self), engine_(engine) {}

  /// Feed every packet on the wire; pairs data packets with their trailing
  /// result packets and pushes match lists into the rule engine.
  void on_packet(const net::Packet& packet) {
    const bool is_result =
        packet.service_header &&
        packet.service_header->service_path_id == service::kResultServicePathId;
    const std::uint64_t ref = service::packet_ref_of(packet);
    if (is_result) {
      auto data = pending_.find(ref);
      if (data == pending_.end()) return;  // not ours / already handled
      deliver(data->second, packet);
      pending_.erase(data);
      return;
    }
    if (!packet.has_match_mark()) {
      engine_.apply_report_entries(packet, {});  // no results will follow
      return;
    }
    pending_.emplace(ref, packet);
  }

 private:
  void deliver(const net::Packet& data, const net::Packet& result) {
    const net::MatchReport report =
        net::decode_report(result.service_header->metadata);
    for (const net::MiddleboxSection& section : report.sections) {
      if (section.middlebox_id == self_) {
        engine_.apply_report_entries(data, section.entries);
        return;
      }
    }
    engine_.apply_report_entries(data, {});
  }

  dpi::MiddleboxId self_;
  mbox::Middlebox& engine_;
  std::map<std::uint64_t, net::Packet> pending_;
};
// --------------------------- end of plugin ---------------------------------

namespace {
mbox::RuleSpec rule(dpi::PatternId id, const char* pattern) {
  mbox::RuleSpec r;
  r.id = id;
  r.description = pattern;
  r.exact = pattern;
  r.verdict = mbox::Verdict::kAlert;
  return r;
}
}  // namespace

int main() {
  // Two identical Snort-like rule configurations.
  const char* signatures[] = {
      "|DEADBEEF| overflow", "GET /etc/passwd",  "cmd.exe /c",
      "union select",        "../../../../",     "<?php eval",
  };
  mbox::Ids with_plugin(1, /*stateful=*/false);
  mbox::Ids self_scanning(1, /*stateful=*/false);
  dpi::PatternId id = 0;
  for (const char* sig : signatures) {
    with_plugin.add_rule(rule(id, sig));
    self_scanning.add_rule(rule(id, sig));
    ++id;
  }

  // DPI service side.
  service::DpiController controller;
  with_plugin.attach(controller);
  const dpi::ChainId chain = controller.register_policy_chain({1});
  auto instance = controller.create_instance("dpi-1");
  ResultParserPlugin plugin(with_plugin.profile().id, with_plugin);

  // Shared traffic.
  workload::TrafficConfig config;
  config.num_packets = 1000;
  config.planted_match_rate = 0.07;
  config.planted_patterns.assign(std::begin(signatures),
                                 std::end(signatures));
  config.seed = 48;
  const workload::Trace trace = workload::generate_http_trace(config);

  std::uint16_t ip_id = 0;
  for (const workload::TracePacket& t : trace) {
    net::Packet p = workload::to_packet(t, ip_id++);
    p.push_tag(net::TagKind::kPolicyChain, chain);

    // Plugin path: the DPI service scans; the plugin only parses results.
    service::ProcessOutput out = instance->process(net::Packet(p));
    plugin.on_packet(out.data);
    if (out.result) plugin.on_packet(*out.result);

    // Baseline path: Snort's own detection engine.
    p.pop_tag(net::TagKind::kPolicyChain);
    self_scanning.process_standalone(p);
  }

  std::printf("=== snort plugin simulation ===\n");
  std::printf("packets: %zu\n", trace.size());
  std::printf("alerts (plugin, via DPI service): %zu\n",
              with_plugin.alerts().size());
  std::printf("alerts (traditional self-scan):   %zu\n",
              self_scanning.alerts().size());
  std::printf("alert streams identical: %s\n",
              with_plugin.alerts().size() == self_scanning.alerts().size() &&
                      with_plugin.total_rule_hits() ==
                          self_scanning.total_rule_hits()
                  ? "YES"
                  : "NO");
  std::printf("payload bytes scanned by the plugin variant: 0\n");
  return 0;
}
