// Fuzz target: regex anchor extraction (§5.3) on attacker-controlled
// patterns, the path a hostile middlebox reaches through add_patterns.
//
// Oracles:
//  * parse/extract either succeed or throw regex::SyntaxError — the group
//    depth cap must turn "((((..." into an error, not stack exhaustion;
//  * every extracted anchor respects the minimum length (the paper's >= 4
//    rule) and is non-empty;
//  * anchors are mandatory substrings: the pattern compiled as a matcher
//    must match a subject consisting of its own anchors only if the regex
//    semantics allow it — we assert the cheaper direction, that extraction
//    is deterministic across two runs.
#include <cstdint>
#include <string_view>
#include <vector>

#include "regex/anchors.hpp"
#include "regex/parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace regex = dpisvc::regex;
  const std::string_view pattern(reinterpret_cast<const char*>(data), size);
  const regex::AnchorOptions options;
  try {
    const std::vector<std::string> anchors =
        regex::extract_anchors(pattern, {}, options);
    for (const std::string& anchor : anchors) {
      if (anchor.size() < options.min_length) __builtin_trap();
    }
    const std::vector<std::string> again =
        regex::extract_anchors(pattern, {}, options);
    if (anchors != again) __builtin_trap();
  } catch (const regex::SyntaxError&) {
    // Malformed or over-deep patterns are rejected by contract.
  }
  return 0;
}
