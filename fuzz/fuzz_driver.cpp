// Standalone replay driver for the fuzz targets.
//
// When the compiler cannot link libFuzzer (-fsanitize=fuzzer), the fuzz
// binaries are built against this main() instead. It feeds every file named
// on the command line — directories are walked recursively — through
// LLVMFuzzerTestOneInput, so the checked-in corpora replay as ordinary
// (sanitizer-instrumented) ctest runs in every build configuration.
// Arguments starting with '-' are ignored for libFuzzer flag compatibility.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

int run_one(const std::filesystem::path& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  std::fprintf(stderr, "replay: %s (%zu bytes)\n", path.c_str(), bytes.size());
  return LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t executed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;
    const std::filesystem::path path(arg);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        run_one(entry.path());
        ++executed;
      }
    } else if (std::filesystem::exists(path, ec)) {
      run_one(path);
      ++executed;
    } else {
      std::fprintf(stderr, "replay: no such input: %s\n", arg.c_str());
      return 2;
    }
  }
  std::fprintf(stderr, "replay: %zu input(s), no crashes\n", executed);
  return 0;
}
