// Fuzz target: json::parse over raw bytes — the outermost untrusted surface
// of the §4.1 control channel.
//
// Oracles:
//  * parse() either returns a Value or throws json::ParseError; any other
//    exception escaping (std::out_of_range from stod once did), any crash,
//    or any sanitizer report is a bug;
//  * a parsed value must survive dump() -> parse() as an equal value (the
//    writer emits %.17g numbers precisely so this holds);
//  * dump_pretty() must accept anything parse() produced.
#include <cstdint>
#include <string_view>

#include "json/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace json = dpisvc::json;
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    const json::Value value = json::parse(text);
    const json::Value round = json::parse(json::dump(value));
    if (!(round == value)) __builtin_trap();
    (void)json::dump_pretty(value);
  } catch (const json::ParseError&) {
    // Rejecting malformed input is the contract, not a failure.
  }
  return 0;
}
