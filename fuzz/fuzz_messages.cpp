// Fuzz target: the §4.1 controller message surface, end to end.
//
// The input bytes are treated as one JSON control message. Oracles:
//  * DpiController::handle_message never throws — malformed or hostile
//    messages must come back as {"ok":false,...} responses (the tested
//    "errors are responses, not exceptions" contract);
//  * per-type decode -> encode canonicalization is idempotent: if a message
//    decodes, re-encoding and re-decoding it must produce the identical
//    JSON value.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "json/json.hpp"
#include "service/controller.hpp"
#include "service/messages.hpp"

namespace {

using dpisvc::json::Value;
namespace service = dpisvc::service;

/// Applies the matching decoder and re-encodes; returns null for messages
/// the decoder rejects.
Value canonicalize(const std::string& type, const Value& message) {
  try {
    if (type == "register") {
      return service::encode(service::decode_register(message));
    } else if (type == "add_patterns") {
      return service::encode(service::decode_add_patterns(message));
    } else if (type == "remove_patterns") {
      return service::encode(service::decode_remove_patterns(message));
    } else if (type == "unregister") {
      return service::encode(service::decode_unregister(message));
    } else if (type == "telemetry_report") {
      return service::encode(service::decode_telemetry_report(message));
    } else if (type == "telemetry_query") {
      return service::encode(service::decode_telemetry_query(message));
    }
  } catch (const dpisvc::json::TypeError&) {
  } catch (const std::invalid_argument&) {
  }
  return Value();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  Value message;
  try {
    message = dpisvc::json::parse(text);
  } catch (const dpisvc::json::ParseError&) {
    return 0;
  }

  // Dispatch contract: a fresh controller per input so state from one
  // iteration cannot mask or fabricate a finding in the next. No try/catch —
  // an exception escaping handle_message aborts the process, which is the
  // point.
  service::DpiController controller;
  (void)controller.handle_message(message);

  try {
    const std::string type = service::message_type(message);
    const Value first = canonicalize(type, message);
    if (!first.is_null()) {
      const Value second = canonicalize(type, first);
      if (!(first == second)) __builtin_trap();
    }
  } catch (const dpisvc::json::TypeError&) {
  } catch (const std::invalid_argument&) {
  }
  return 0;
}
