// Fuzz target: the static admission analyzer (src/analysis) — the gate every
// add_patterns registration passes before the PatternDb is touched.
//
// The input bytes drive an op interpreter that assembles an EngineSpec
// (middlebox profiles, exact patterns, regexes over a '{'-free alphabet,
// chains) plus a random AnalysisBudget. Oracles:
//  * analyze() never throws and never crashes, whatever the spec shape;
//  * verdicts are deterministic: analyzing the same spec twice produces
//    byte-identical reports;
//  * the consistency contract: an admissible verdict means
//    dpi::Engine::compile of the same spec with the same EngineConfig
//    succeeds, AND the predicted state/accepting/memory numbers equal the
//    real engine's exactly (the calibration property, enforced on every
//    fuzz-generated spec, in both automaton representations).
//
// Counted repeats ('{') are excluded from the regex alphabet: the
// compile-side blow-up they cause is covered by unit tests
// (analysis_test.cpp), and materializing them here would only slow the
// fuzzer down. Star/plus nesting stays in — program growth is linear there.
#include <cstdint>
#include <string>

#include "analysis/analyzer.hpp"
#include "dpi/engine.hpp"

namespace {

using namespace dpisvc;

/// Sequential byte reader; yields zeros once exhausted so op decoding never
/// reads out of bounds.
class Input {
 public:
  Input(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool empty() const { return pos_ >= size_; }
  std::uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0; }

  std::string bytes(std::size_t n) {
    const std::size_t take = std::min(n, size_ - std::min(pos_, size_));
    std::string out(reinterpret_cast<const char*>(data_ + pos_), take);
    pos_ += take;
    return out;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Regex bytes come from a curated alphabet: enough metacharacters to reach
/// every parser/cost-model branch, no '{' (see file comment).
std::string regex_bytes(Input& in, std::size_t n) {
  static constexpr char kAlphabet[] = "abcAB019.()[]|*+?^$-\\ez";
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kAlphabet[in.u8() % (sizeof(kAlphabet) - 1)]);
  }
  return out;
}

/// Flattens everything a verdict depends on; byte-compared across repeated
/// runs to prove determinism.
std::string fingerprint(const analysis::PatternSetReport& report) {
  std::string out;
  const auto num = [&out](std::size_t v) {
    out += std::to_string(v);
    out += ';';
  };
  num(report.distinct_strings);
  num(report.predicted_states);
  num(report.predicted_accepting);
  num(report.predicted_match_entries);
  num(report.predicted_target_entries);
  num(report.anchor_bits);
  num(report.predicted_memory_full);
  num(report.predicted_memory_compressed);
  num(report.total_regex_instructions);
  for (const auto& r : report.regexes) {
    num(r.cost.nfa_instructions);
    num(r.cost.dfa_states);
    num(r.cost.byte_classes);
    out += r.error;
    out += ';';
  }
  for (const auto& d : report.violations) {
    out += d.code;
    out += '=';
    out += d.message;
    out += ';';
  }
  for (const auto& d : report.warnings) {
    out += d.code;
    out += '=';
    out += d.message;
    out += ';';
  }
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  Input in(data, size);
  dpi::EngineSpec spec;
  analysis::AnalysisOptions options;
  // Small exploration caps keep each iteration fast; the caps themselves
  // are part of the analyzed surface (capped == dfa blow-up verdict).
  options.dfa_state_cap = 128;
  options.max_program_size = 1u << 12;
  options.engine.use_compressed_automaton = (in.u8() & 1) != 0;

  dpi::PatternId next_rule = 0;
  for (int ops = 0; ops < 64 && !in.empty(); ++ops) {
    const std::uint8_t op = in.u8();
    // Ids mostly land in a small valid range so admissible specs are common;
    // one branch in eight strays out of 1..64 to keep range checks covered.
    const std::uint8_t raw = in.u8();
    const auto mbox = static_cast<dpi::MiddleboxId>(
        (raw & 7) == 0 ? raw % 70 : 1 + raw % 8);
    switch (op % 6) {
      case 0: {
        dpi::MiddleboxProfile profile;
        profile.id = mbox;
        profile.name = "m" + std::to_string(mbox);
        profile.stateful = (in.u8() & 1) != 0;
        spec.middleboxes.push_back(profile);
        break;
      }
      case 1:
        if (spec.exact_patterns.size() < 64) {
          spec.exact_patterns.push_back(dpi::ExactPatternSpec{
              in.bytes(in.u8() % 17), mbox, next_rule++});
        }
        break;
      case 2:
        if (spec.regex_patterns.size() < 8) {
          spec.regex_patterns.push_back(dpi::RegexPatternSpec{
              regex_bytes(in, 1 + in.u8() % 20), mbox, next_rule++,
              (in.u8() & 1) != 0});
        }
        break;
      case 3: {
        const auto chain = static_cast<dpi::ChainId>(1 + in.u8() % 4);
        spec.chains[chain] = {mbox};
        break;
      }
      case 4:
        // Re-register an existing pattern under another middlebox: the
        // §4.1 shared-bytes path (cross-tenant-duplicate warning, shared
        // anchor bits).
        if (!spec.exact_patterns.empty()) {
          dpi::ExactPatternSpec copy =
              spec.exact_patterns[in.u8() % spec.exact_patterns.size()];
          copy.middlebox = mbox;
          copy.pattern_id = next_rule++;
          spec.exact_patterns.push_back(std::move(copy));
        }
        break;
      case 5:
        // Budget knobs; zero stays "disabled", tiny values force the
        // over-budget verdicts.
        switch (in.u8() % 5) {
          case 0:
            options.budget.max_automaton_states = in.u8() * 8u;
            break;
          case 1:
            options.budget.max_memory_bytes = in.u8() * 4096u;
            break;
          case 2:
            options.budget.max_regex_nfa_instructions = in.u8();
            break;
          case 3:
            options.budget.max_regex_dfa_states = in.u8();
            break;
          case 4:
            options.budget.max_patterns_per_middlebox = in.u8() % 16;
            break;
        }
        break;
    }
  }

  // Oracle 1: analyze never throws. Oracle 2: verdicts are deterministic.
  const analysis::PatternSetReport report = analysis::analyze(spec, options);
  const analysis::PatternSetReport again = analysis::analyze(spec, options);
  if (fingerprint(report) != fingerprint(again)) __builtin_trap();

  // Oracle 3: admissible => the compile succeeds and every prediction is
  // exact, in the budgeted representation and the other one.
  if (report.admissible()) {
    for (const bool compressed : {false, true}) {
      dpi::EngineConfig config = options.engine;
      config.use_compressed_automaton = compressed;
      std::shared_ptr<const dpi::Engine> engine;
      try {
        engine = dpi::Engine::compile(spec, config);
      } catch (...) {
        __builtin_trap();  // contract: analysis-ok implies compile-ok
      }
      if (engine->num_automaton_states() != report.predicted_states ||
          engine->num_accepting_states() != report.predicted_accepting ||
          engine->num_distinct_strings() != report.distinct_strings) {
        __builtin_trap();
      }
      const std::size_t predicted_memory =
          compressed ? report.predicted_memory_compressed
                     : report.predicted_memory_full;
      if (engine->memory_bytes() != predicted_memory) __builtin_trap();
    }
  }
  return 0;
}
