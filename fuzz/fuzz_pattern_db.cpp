// Fuzz target: PatternDb loading — the registry behind the §4.1
// register/add/remove/inherit message handlers.
//
// The input bytes drive an op interpreter over one PatternDb: register,
// add exact/regex, remove, inherit, chain, unregister. Oracles:
//  * every mutator either succeeds or throws std::invalid_argument (the
//    typed PatternDbError derives from it) — nothing else may escape;
//  * the version counter never moves backwards;
//  * whatever state the op sequence leaves behind, snapshot() must produce
//    a spec that Engine::compile either accepts or rejects with
//    std::invalid_argument / regex::SyntaxError — never a crash;
//  * a (middlebox, rule) pair reported by has_rule() is removable.
#include <cstdint>
#include <stdexcept>
#include <string>

#include "dpi/engine.hpp"
#include "dpi/pattern_db.hpp"
#include "regex/parser.hpp"

namespace {

using namespace dpisvc;

/// Sequential byte reader; yields zeros once exhausted so op decoding never
/// reads out of bounds.
class Input {
 public:
  Input(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool empty() const { return pos_ >= size_; }
  std::uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0; }

  std::string bytes(std::size_t n) {
    const std::size_t take = std::min(n, size_ - std::min(pos_, size_));
    std::string out(reinterpret_cast<const char*>(data_ + pos_), take);
    pos_ += take;
    return out;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  Input in(data, size);
  dpi::PatternDb db;
  std::uint64_t last_version = db.version();

  // Bound the op count so a large input cannot turn the quadratic-by-design
  // registry scans into a timeout; depth of state, not length, is what this
  // target explores.
  for (int ops = 0; ops < 256 && !in.empty(); ++ops) {
    const std::uint8_t op = in.u8();
    // Ids deliberately overflow the valid 1..64 range sometimes so the
    // range checks stay covered.
    const auto mbox = static_cast<dpi::MiddleboxId>(in.u8() % 70);
    const auto rule = static_cast<dpi::PatternId>(in.u8() % 16);
    try {
      switch (op % 8) {
        case 0: {
          dpi::MiddleboxProfile profile;
          profile.id = mbox;
          profile.name = "m";
          profile.name += std::to_string(mbox);
          profile.stateful = (in.u8() & 1) != 0;
          db.register_middlebox(profile);
          break;
        }
        case 1:
          db.add_exact(mbox, rule, in.bytes(1 + in.u8() % 32));
          break;
        case 2:
          db.add_regex(mbox, rule, in.bytes(1 + in.u8() % 32),
                       (in.u8() & 1) != 0);
          break;
        case 3:
          db.remove_exact(mbox, rule);
          break;
        case 4:
          db.remove_regex(mbox, rule);
          break;
        case 5:
          db.inherit_patterns(mbox, static_cast<dpi::MiddleboxId>(rule + 1));
          break;
        case 6:
          db.set_chain(static_cast<dpi::ChainId>(rule), {mbox});
          break;
        case 7:
          db.unregister_middlebox(mbox);
          break;
      }
    } catch (const std::invalid_argument&) {
      // Typed rejection (including PatternDbError) is the contract.
    }
    if (db.version() < last_version) __builtin_trap();
    last_version = db.version();

    if (db.has_rule(mbox, rule)) {
      // A visible reference must live in exactly one of the two tables.
      dpi::PatternDb probe = db;
      if (!probe.remove_exact(mbox, rule) && !probe.remove_regex(mbox, rule)) {
        __builtin_trap();
      }
    }
  }

  try {
    (void)dpi::Engine::compile(db.snapshot());
  } catch (const std::invalid_argument&) {
  } catch (const regex::SyntaxError&) {
    // Arbitrary bytes registered as a "regex" legitimately fail to parse.
  }
  return 0;
}
