// Fuzz target: the overlap-policy surface of TCP reassembly, cross-checked
// against the independent normalization oracle of workload/adversarial_gen.
//
// The input bytes decode into a bounded op sequence (in-order append, gap
// segment, identical duplicate of an earlier segment, conflicting uppercase
// overwrite of an earlier segment). The same delivery runs through three
// StreamReassemblers — one per OverlapPolicy — and each run is compared
// against normalize_segments(). Oracles:
//  * no crash / sanitizer report under any policy;
//  * released bytes equal the oracle's bytes exactly;
//  * the ambiguity flag and conflicting-byte count agree with the oracle;
//  * kRejectAmbiguous never releases a conflicting (uppercase) byte: every
//    offset an uppercase decoy targets was first delivered lowercase, and
//    the generator keeps the stream inside max_buffered/max_gap, so a decoy
//    can only land on pending or released data — where reject fails closed.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "net/reassembly.hpp"
#include "workload/adversarial_gen.hpp"

namespace {

using namespace dpisvc;

constexpr int kMaxOps = 128;
constexpr std::size_t kMaxSegment = 64;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 3) return 0;

  net::ReassemblyConfig config;
  // Vary the released-history window: disabled, smaller than most segments,
  // and effectively unbounded for these stream sizes.
  switch (data[0] % 3) {
    case 0: config.overlap_history = 0; break;
    case 1: config.overlap_history = 16; break;
    default: config.overlap_history = 4096; break;
  }
  // Optionally straddle the 32-bit sequence wrap.
  const std::uint32_t initial_seq = (data[1] & 1) != 0 ? 0xFFFFFF80u : 1000u;
  std::size_t pos = 2;

  // Decode the delivery. `extent` is the generation-side stream length; all
  // offsets stay far below max_buffered (256K) and max_gap (1M), so every
  // lowercase segment is stored — a precondition of the reject oracle.
  std::vector<workload::SegmentRecord> delivery;
  std::vector<std::size_t> originals;  // indices of ops 0..2 (lowercase)
  std::uint32_t extent = 0;
  for (int ops = 0; ops < kMaxOps && pos < size; ++ops) {
    const std::uint8_t control = data[pos++];
    int type = control >> 6;
    if (type >= 2 && originals.empty()) type = 0;
    if (type <= 1) {
      std::uint32_t offset = extent;
      if (type == 1) {
        if (pos >= size) break;
        offset += 1 + (data[pos++] % 24);  // hole before this segment
      }
      const std::size_t len =
          std::min<std::size_t>(1 + (control & 0x3f), size - pos);
      if (len == 0) break;
      Bytes payload(len);
      for (std::size_t i = 0; i < len; ++i) {
        payload[i] = static_cast<std::uint8_t>('a' + data[pos + i] % 16);
      }
      pos += len;
      originals.push_back(delivery.size());
      delivery.push_back(
          workload::SegmentRecord{initial_seq + offset, std::move(payload)});
      extent = std::max(extent, offset + static_cast<std::uint32_t>(len));
    } else {
      if (pos >= size) break;
      const workload::SegmentRecord& base =
          delivery[originals[data[pos++] % originals.size()]];
      workload::SegmentRecord copy{base.seq, base.data};
      if (type == 3) {
        // Conflicting decoy: same range, every byte differs.
        for (std::uint8_t& b : copy.data) {
          b = static_cast<std::uint8_t>('A' + (b - 'a'));
        }
      }
      delivery.push_back(std::move(copy));
    }
  }
  if (delivery.empty()) return 0;

  constexpr net::OverlapPolicy kPolicies[] = {
      net::OverlapPolicy::kFirstWins, net::OverlapPolicy::kLastWins,
      net::OverlapPolicy::kRejectAmbiguous};
  for (net::OverlapPolicy policy : kPolicies) {
    config.overlap_policy = policy;
    net::StreamReassembler stream(initial_seq, config);
    Bytes released;
    for (const workload::SegmentRecord& s : delivery) {
      stream.accept(s.seq, BytesView(s.data.data(), s.data.size()));
      const Bytes ready = stream.pop_ready();
      released.insert(released.end(), ready.begin(), ready.end());
    }

    const workload::NormalizedView oracle =
        workload::normalize_segments(initial_seq, delivery, policy, config);
    if (released != oracle.bytes) __builtin_trap();
    if ((stream.ambiguous_overlaps() > 0) != oracle.ambiguous) {
      __builtin_trap();
    }
    if (stream.conflicting_overlap_bytes() != oracle.conflicting_bytes) {
      __builtin_trap();
    }
    if (policy == net::OverlapPolicy::kRejectAmbiguous) {
      for (std::uint8_t b : released) {
        if (b >= 'A' && b <= 'Z') __builtin_trap();
      }
    }
  }
  return 0;
}
