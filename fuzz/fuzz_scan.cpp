// Fuzz target: the data-plane ingest path — TCP reassembly feeding
// Engine::scan_packet with cross-packet flow state (§5.2 + §7).
//
// A fixed engine (exact patterns, anchored/anchorless/case-insensitive
// regexes, stateful and stateless chains with stop offsets) is compiled
// once; the input bytes are decoded as an adversarial segment sequence:
// per segment a chain selector, a sequence-number perturbation (in-order,
// overlapping, gapped, duplicate), and a payload slice. Segments pass
// through a StreamReassembler and every released in-order chunk is scanned
// with the flow's carried cursor. Oracles:
//  * no crash / sanitizer report on any segment sequence;
//  * bytes_scanned never exceeds the chunk fed;
//  * the stateful cursor offset never moves backwards;
//  * scanning the same chunk twice from the same cursor is deterministic.
#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "dpi/engine.hpp"
#include "net/reassembly.hpp"

namespace {

using namespace dpisvc;

std::shared_ptr<const dpi::Engine> build_engine() {
  dpi::EngineSpec spec;
  auto mbox = [](dpi::MiddleboxId id, const char* name, bool stateful,
                 std::uint32_t stop) {
    dpi::MiddleboxProfile p;
    p.id = id;
    p.name = name;
    p.stateful = stateful;
    p.stop_offset = stop;
    return p;
  };
  spec.middleboxes.push_back(mbox(1, "ids", /*stateful=*/true, /*stop=*/0));
  spec.middleboxes.push_back(mbox(2, "av", /*stateful=*/false, /*stop=*/64));
  spec.middleboxes.push_back(mbox(3, "lb", /*stateful=*/true, /*stop=*/0));
  spec.exact_patterns.push_back({"attack", 1, 0});
  spec.exact_patterns.push_back({"virus1234", 2, 0});
  spec.exact_patterns.push_back({std::string("\x00\x01\x02\x03", 4), 3, 0});
  spec.regex_patterns.push_back({R"(regular\s*expression\s*\d+)", 1, 1, false});
  spec.regex_patterns.push_back({R"(EvilCase)", 1, 2, true});
  spec.regex_patterns.push_back({R"(x.z)", 2, 1, false});  // anchorless
  spec.chains[1] = {1, 2, 3};
  spec.chains[2] = {2};
  spec.chains[3] = {1};
  return dpi::Engine::compile(spec);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static const std::shared_ptr<const dpi::Engine> engine = build_engine();
  if (size < 2) return 0;

  const dpi::ChainId chain = static_cast<dpi::ChainId>(1 + data[0] % 3);
  std::size_t pos = 1;

  net::StreamReassembler stream(/*initial_seq=*/0);
  std::uint32_t seq = 0;
  dpi::FlowCursor cursor;

  for (int segments = 0; segments < 128 && pos < size; ++segments) {
    const std::uint8_t control = data[pos++];
    const std::size_t len = std::min<std::size_t>(1 + (control & 0x3f),
                                                  size - pos);
    if (len == 0) break;
    const BytesView payload(data + pos, len);
    pos += len;

    // Sequence perturbation: mostly in-order, sometimes overlap the previous
    // segment, jump ahead (buffered out-of-order), or replay (duplicate).
    std::uint32_t send_seq = seq;
    switch (control >> 6) {
      case 1:
        send_seq = seq > 2 ? seq - 2 : 0;  // overlap: first copy must win
        break;
      case 2:
        send_seq = seq + (control & 0x1f);  // gap: buffers until filled
        break;
      case 3:
        send_seq = 0;  // full replay from stream start
        break;
    }
    stream.accept(send_seq, payload);
    if (send_seq == seq) seq += static_cast<std::uint32_t>(len);

    const Bytes ready = stream.pop_ready();
    if (ready.empty()) continue;
    const BytesView chunk(ready.data(), ready.size());

    const dpi::ScanResult first = engine->scan_packet(chain, chunk, cursor);
    const dpi::ScanResult again = engine->scan_packet(chain, chunk, cursor);
    if (first.bytes_scanned != again.bytes_scanned ||
        first.raw_hits != again.raw_hits ||
        first.matches.size() != again.matches.size()) {
      __builtin_trap();
    }
    if (first.bytes_scanned > chunk.size()) __builtin_trap();
    if (cursor.valid && first.cursor.valid &&
        first.cursor.offset < cursor.offset) {
      __builtin_trap();
    }
    cursor = first.cursor;
  }
  return 0;
}
