// Fuzz target: the batched scan kernel against its scalar oracle.
//
// One engine (exact patterns with stop offsets, stateful + stateless
// chains) is compiled once with the kernel forced on, so the hot layout
// exists even under DPISVC_FORCE_SCALAR. The input bytes decode to a chain
// selector and a packet sequence; every packet is scanned twice through
// the same engine — scan_packet_as(kScalar) and scan_packet_as(kBatched) —
// with independently carried flow cursors, and the packet list is also fed
// through scan_batch_as both ways (the flow-interleaved lane path).
// Oracles:
//  * no crash / sanitizer report on any packet sequence;
//  * the batched kernel's results are byte-identical to the scalar loop's:
//    raw hits, bytes scanned, per-middlebox match sections and entries,
//    and the resumed cursor (state + offset) — any divergence traps.
// Packet lengths bias around the kernel's stride and interleave widths so
// stride tails, mid-stride resumes, and partial lane groups stay hot.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "dpi/engine.hpp"

namespace {

using namespace dpisvc;

std::shared_ptr<const dpi::Engine> build_engine() {
  dpi::EngineSpec spec;
  auto mbox = [](dpi::MiddleboxId id, const char* name, bool stateful,
                 std::uint32_t stop) {
    dpi::MiddleboxProfile p;
    p.id = id;
    p.name = name;
    p.stateful = stateful;
    p.stop_offset = stop;
    return p;
  };
  spec.middleboxes.push_back(mbox(1, "ids", /*stateful=*/true, /*stop=*/0));
  spec.middleboxes.push_back(mbox(2, "av", /*stateful=*/false, /*stop=*/13));
  spec.middleboxes.push_back(mbox(3, "fw", /*stateful=*/true, /*stop=*/70));
  // Short overlapping patterns over a narrow alphabet: dense accepting-state
  // traffic, matches straddling stride and packet boundaries.
  spec.exact_patterns.push_back({"ab", 1, 0});
  spec.exact_patterns.push_back({"abab", 1, 1});
  spec.exact_patterns.push_back({"babba", 2, 0});
  spec.exact_patterns.push_back({"aaaa", 3, 0});
  spec.exact_patterns.push_back({std::string("\x00\x01", 2), 3, 1});
  spec.chains[1] = {1, 2, 3};
  spec.chains[2] = {2};
  spec.chains[3] = {1};
  dpi::EngineConfig config;
  config.kernel = dpi::ScanKernel::kBatched;
  return dpi::Engine::compile(spec, config);
}

bool same(const dpi::ScanResult& a, const dpi::ScanResult& b) {
  if (a.raw_hits != b.raw_hits || a.bytes_scanned != b.bytes_scanned ||
      a.anchor_hits_seen != b.anchor_hits_seen ||
      a.matches.size() != b.matches.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    if (a.matches[i].middlebox != b.matches[i].middlebox ||
        a.matches[i].entries != b.matches[i].entries) {
      return false;
    }
  }
  return a.cursor.valid == b.cursor.valid &&
         a.cursor.dfa_state == b.cursor.dfa_state &&
         a.cursor.offset == b.cursor.offset;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  static const std::shared_ptr<const dpi::Engine> engine = build_engine();
  if (size < 2) return 0;

  const dpi::ChainId chain = static_cast<dpi::ChainId>(1 + data[0] % 3);
  std::size_t pos = 1;

  std::vector<BytesView> packets;
  for (int n = 0; n < 64 && pos < size; ++n) {
    const std::uint8_t control = data[pos++];
    // Lengths 1..32: clusters around the stride (4) and the widest
    // interleave group (8), plus empty-tail and tail-only shapes.
    const std::size_t len =
        std::min<std::size_t>(1 + (control & 0x1f), size - pos);
    if (len == 0) break;
    packets.emplace_back(data + pos, len);
    pos += len;
  }
  if (packets.empty()) return 0;

  // Packet-by-packet differential with independently carried cursors: a
  // divergence in any packet's resumed state poisons the rest of the flow,
  // so comparing every step localizes it.
  dpi::FlowCursor scalar_cursor;
  dpi::FlowCursor kernel_cursor;
  for (const BytesView packet : packets) {
    const dpi::ScanResult ref = engine->scan_packet_as(
        dpi::ScanKernel::kScalar, chain, packet, scalar_cursor);
    const dpi::ScanResult got = engine->scan_packet_as(
        dpi::ScanKernel::kBatched, chain, packet, kernel_cursor);
    if (!same(ref, got)) __builtin_trap();
    scalar_cursor = ref.cursor;
    kernel_cursor = got.cursor;
  }

  // Batch differential: the interleaved lane walk over stateless packets
  // must equal the sequential scalar loop item-for-item.
  const auto refs =
      engine->scan_batch_as(dpi::ScanKernel::kScalar, chain, packets, nullptr);
  const auto gots =
      engine->scan_batch_as(dpi::ScanKernel::kBatched, chain, packets, nullptr);
  if (refs.size() != gots.size()) __builtin_trap();
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (!same(refs[i], gots[i])) __builtin_trap();
  }
  return 0;
}
