// Fuzz target: the zero-copy ingest data-path primitives — SpscRing,
// PacketArena, and the LeaseCounter recycle gate — driven by a decoded
// operation stream under ASan.
//
// The input bytes pick a ring capacity and arena chunk size, then decode to
// a sequence of push / pop / recycle / sweep operations mirrored against a
// reference deque. Oracles:
//  * no crash / sanitizer report on any op stream;
//  * construction rejects capacity 0 with the typed SpscRingError;
//  * try_push fails exactly when the ring is full, try_pop exactly when
//    empty, and size()/empty() always agree with the reference model;
//  * strict FIFO: popped sequence numbers are consecutive;
//  * payload integrity: every popped slot's arena-resident bytes still hold
//    the fill pattern recorded at push time — an arena reset while a view
//    is live (a lease-protocol violation) shows up here or as an ASan
//    use-after-poison, never silently;
//  * the arena may be reset only when the lease gate reports idle, which
//    must coincide with the model being fully drained.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <vector>

#include "common/arena.hpp"
#include "common/bytes.hpp"
#include "common/spsc_ring.hpp"
#include "service/batch_sync.hpp"

namespace {

using dpisvc::BytesView;

struct Slot {
  BytesView view;
  std::uint64_t seq = 0;
  std::uint8_t fill = 0;
};

void check(bool cond) {
  if (!cond) std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) return 0;
  std::size_t pos = 0;
  auto next = [&]() -> std::uint8_t { return pos < size ? data[pos++] : 0; };

  // Construction-time contract: impossible capacities are typed errors (and
  // never reach the allocator).
  {
    bool threw = false;
    try {
      dpisvc::SpscRing<int> bad(0);
    } catch (const dpisvc::SpscRingError&) {
      threw = true;
    }
    check(threw);
    threw = false;
    try {
      dpisvc::SpscRing<int> bad(dpisvc::kSpscRingMaxCapacity + 1);
    } catch (const dpisvc::SpscRingError&) {
      threw = true;
    }
    check(threw);
  }

  const std::size_t capacity = static_cast<std::size_t>(next() % 8) + 1;
  // 16..4096 bytes: small enough that payloads regularly straddle chunks
  // and oversized payloads take the dedicated-chunk path.
  const std::size_t chunk_bytes = (static_cast<std::size_t>(next()) + 1) * 16;

  dpisvc::SpscRing<Slot> ring(capacity);
  dpisvc::PacketArena arena(chunk_bytes);
  dpisvc::service::LeaseCounter<> leases;  // one lease per in-ring view
  std::deque<Slot> model;
  std::uint64_t next_seq = 0;
  std::uint64_t expect_seq = 0;

  while (pos < size) {
    switch (next() % 4) {
      case 0: {  // push: copy a payload into the arena, enqueue its view
        const std::size_t len = static_cast<std::size_t>(next()) *
                                ((next() % 4 == 0) ? 37 : 1);
        const auto fill = static_cast<std::uint8_t>(next_seq * 131 + 7);
        const std::vector<std::uint8_t> payload(len, fill);
        const BytesView view =
            arena.append(BytesView(payload.data(), payload.size()));
        check(view.size() == len);
        const bool was_full = ring.size() == ring.capacity();
        const bool pushed = ring.try_push(Slot{view, next_seq, fill});
        check(pushed == !was_full);
        if (pushed) {
          leases.take();
          model.push_back(Slot{view, next_seq, fill});
          ++next_seq;
        }
        break;
      }
      case 1: {  // pop: FIFO order and arena-resident payload intact
        Slot out;
        const bool was_empty = ring.empty();
        const bool popped = ring.try_pop(out);
        check(popped == !was_empty);
        if (popped) {
          check(!model.empty());
          const Slot expect = model.front();
          model.pop_front();
          check(out.seq == expect.seq);
          check(out.seq == expect_seq);
          ++expect_seq;
          check(out.view.size() == expect.view.size());
          for (const std::uint8_t b : out.view) check(b == expect.fill);
          leases.drop();
        }
        break;
      }
      case 2: {  // recycle gate: reset only once every lease is dropped
        if (leases.idle()) {
          check(model.empty());
          arena.reset();
          check(arena.bytes_used() == 0);
        }
        break;
      }
      case 3: {  // invariant sweep + raw in-place allocation path
        check(ring.size() == model.size());
        check(ring.empty() == model.empty());
        check(ring.size() <= ring.capacity());
        check(arena.bytes_reserved() >= arena.bytes_used());
        const std::size_t n = next();
        std::uint8_t* p = arena.alloc(n);
        check((p == nullptr) == (n == 0));
        if (n != 0) std::memset(p, 0xAB, n);  // ASan: allocation is real
        break;
      }
    }
  }
  return 0;
}
