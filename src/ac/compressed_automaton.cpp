#include "ac/compressed_automaton.hpp"

namespace dpisvc::ac {

CompressedAutomaton CompressedAutomaton::build(Trie& trie) {
  trie.finalize();
  const auto n = static_cast<std::uint32_t>(trie.num_states());

  // Same dense renumbering as FullAutomaton so accepting ids agree.
  std::vector<StateIndex> new_id(n, kNoState);
  std::uint32_t next_accepting = 0;
  for (StateIndex s = 0; s < n; ++s) {
    if (!trie.output(s).empty()) {
      new_id[s] = next_accepting++;
    }
  }
  const std::uint32_t f = next_accepting;
  std::uint32_t next_plain = f;
  for (StateIndex s = 0; s < n; ++s) {
    if (new_id[s] == kNoState) {
      new_id[s] = next_plain++;
    }
  }

  CompressedAutomaton out;
  out.num_states_ = n;
  out.num_accepting_ = f;
  out.start_ = new_id[Trie::root()];
  out.ranges_.resize(n);
  out.fail_.assign(n, 0);
  out.match_table_.resize(f);
  out.depth_.assign(n, 0);

  // Count edges, then fill ranges in renumbered order.
  std::size_t total_edges = 0;
  for (StateIndex s = 0; s < n; ++s) {
    total_edges += trie.children(s).size();
  }
  out.edges_.reserve(total_edges);

  // Emit edges grouped by renumbered state id. Build an inverse map first.
  std::vector<StateIndex> old_of(n);
  for (StateIndex s = 0; s < n; ++s) {
    old_of[new_id[s]] = s;
  }
  for (StateIndex ns = 0; ns < n; ++ns) {
    const StateIndex os = old_of[ns];
    out.ranges_[ns].begin = static_cast<std::uint32_t>(out.edges_.size());
    for (const auto& [byte, child] : trie.children(os)) {
      out.edges_.push_back(Edge{byte, new_id[child]});
    }
    out.ranges_[ns].end = static_cast<std::uint32_t>(out.edges_.size());
    out.fail_[ns] = new_id[trie.fail(os)];
    out.depth_[ns] = trie.depth(os);
    if (!trie.output(os).empty()) {
      out.match_table_[ns] = trie.output(os);
    }
  }
  return out;
}

StateIndex CompressedAutomaton::step(StateIndex state,
                                     std::uint8_t byte) const noexcept {
  while (true) {
    const EdgeRange range = ranges_[state];
    // Binary search the sorted edge slice.
    std::uint32_t lo = range.begin;
    std::uint32_t hi = range.end;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (edges_[mid].byte < byte) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < range.end && edges_[lo].byte == byte) {
      return edges_[lo].target;
    }
    if (state == start_) {
      return start_;  // No edge from the root: stay.
    }
    state = fail_[state];
  }
}

std::size_t CompressedAutomaton::memory_bytes() const noexcept {
  std::size_t total = ranges_.size() * sizeof(EdgeRange);
  total += edges_.size() * sizeof(Edge);
  total += fail_.size() * sizeof(StateIndex);
  total += depth_.size() * sizeof(std::uint32_t);
  for (const auto& row : match_table_) {
    total += sizeof(row) + row.size() * sizeof(PatternIndex);
  }
  return total;
}

}  // namespace dpisvc::ac
