// Failure-link (compressed) Aho-Corasick automaton.
//
// Instead of materializing all 256 transitions per state, each state keeps
// only its forward (goto) edges plus the failure pointer; a missing edge is
// resolved by walking failure links at scan time. Memory drops from
// states*256*4 bytes to a few bytes per edge, at the cost of a data-dependent
// number of memory touches per input byte.
//
// This is the "different AC implementation ... more suitable for handling
// this kind of traffic" that MCA² dedicated instances run (§4.3.1, [9,10]):
// its worst-case per-byte work is bounded by the pattern depth and its small
// footprint stays cache-resident under adversarial traffic that is designed
// to thrash a full table.
//
// State numbering matches FullAutomaton: accepting states are exactly
// {0..num_accepting-1}, so match tables and bitmaps index identically across
// the two representations built from the same trie.
#pragma once

#include <cstdint>
#include <vector>

#include "ac/full_automaton.hpp"  // for Match
#include "ac/trie.hpp"
#include "common/bytes.hpp"

namespace dpisvc::ac {

class CompressedAutomaton {
 public:
  CompressedAutomaton() = default;

  static CompressedAutomaton build(Trie& trie);

  std::uint32_t num_states() const noexcept { return num_states_; }
  std::uint32_t num_accepting() const noexcept { return num_accepting_; }
  StateIndex start_state() const noexcept { return start_; }

  bool is_accepting(StateIndex state) const noexcept {
    return state < num_accepting_;
  }

  /// Single transition: follows failure links until a forward edge matches
  /// (or the root is reached).
  StateIndex step(StateIndex state, std::uint8_t byte) const noexcept;

  const std::vector<PatternIndex>& matches_at(StateIndex accept) const {
    return match_table_[accept];
  }

  std::uint32_t depth(StateIndex state) const { return depth_[state]; }

  /// Failure pointer of a state (the start state's failure is itself).
  /// Exposed for the static verifier (src/verify), which proves the links
  /// acyclic and depth-decreasing.
  StateIndex fail_link(StateIndex state) const { return fail_[state]; }

  template <typename OnMatch>
  StateIndex scan(BytesView data, StateIndex state, OnMatch&& on_match) const {
    std::uint64_t cnt = 0;
    for (std::uint8_t byte : data) {
      state = step(state, byte);
      ++cnt;
      if (state < num_accepting_) {
        on_match(Match{cnt, state});
      }
    }
    return state;
  }

  template <typename OnMatch>
  StateIndex scan(BytesView data, OnMatch&& on_match) const {
    return scan(data, start_, std::forward<OnMatch>(on_match));
  }

  StateIndex traverse(BytesView data, StateIndex state) const noexcept {
    for (std::uint8_t byte : data) {
      state = step(state, byte);
    }
    return state;
  }

  std::size_t memory_bytes() const noexcept;

 private:
  struct EdgeRange {
    std::uint32_t begin = 0;  // into edges_
    std::uint32_t end = 0;
  };

  struct Edge {
    std::uint8_t byte = 0;
    StateIndex target = 0;
  };

  std::uint32_t num_states_ = 0;
  std::uint32_t num_accepting_ = 0;
  StateIndex start_ = 0;
  std::vector<EdgeRange> ranges_;  // per state, sorted edges in edges_
  std::vector<Edge> edges_;
  std::vector<StateIndex> fail_;
  std::vector<std::vector<PatternIndex>> match_table_;
  std::vector<std::uint32_t> depth_;
};

}  // namespace dpisvc::ac
