#include "ac/full_automaton.hpp"

#include <deque>

#include "common/invariant.hpp"

namespace dpisvc::ac {

FullAutomaton FullAutomaton::build(Trie& trie) {
  trie.finalize();
  const auto n = static_cast<std::uint32_t>(trie.num_states());

  // Pass 1: renumber states so accepting ones are dense in {0..f-1}.
  std::vector<StateIndex> new_id(n, kNoState);
  std::uint32_t next_accepting = 0;
  for (StateIndex s = 0; s < n; ++s) {
    if (!trie.output(s).empty()) {
      new_id[s] = next_accepting++;
    }
  }
  const std::uint32_t f = next_accepting;
  std::uint32_t next_plain = f;
  for (StateIndex s = 0; s < n; ++s) {
    if (new_id[s] == kNoState) {
      new_id[s] = next_plain++;
    }
  }

  FullAutomaton out;
  out.num_states_ = n;
  out.num_accepting_ = f;
  out.start_ = new_id[Trie::root()];
  out.table_.assign(static_cast<std::size_t>(n) * 256u, 0);
  out.match_table_.resize(f);
  out.depth_.assign(n, 0);

  for (StateIndex s = 0; s < n; ++s) {
    out.depth_[new_id[s]] = trie.depth(s);
    if (!trie.output(s).empty()) {
      out.match_table_[new_id[s]] = trie.output(s);
    }
  }

  // Pass 2: full transition table via BFS. delta(s, b) = goto(s, b) if the
  // trie has a forward edge, else delta(fail(s), b) — which is already
  // complete because BFS processes states in non-decreasing depth order.
  std::vector<StateIndex> delta_row(256);
  std::deque<StateIndex> queue;
  {
    // Root row: forward edges or self-loop.
    const StateIndex root = Trie::root();
    for (unsigned b = 0; b < 256; ++b) {
      const StateIndex via = trie.forward(root, static_cast<std::uint8_t>(b));
      out.table_[static_cast<std::size_t>(new_id[root]) * 256u + b] =
          via == kNoState ? new_id[root] : new_id[via];
    }
    for (const auto& [byte, child] : trie.children(root)) {
      queue.push_back(child);
    }
  }
  while (!queue.empty()) {
    const StateIndex s = queue.front();
    queue.pop_front();
    const std::size_t row = static_cast<std::size_t>(new_id[s]) * 256u;
    const std::size_t fail_row =
        static_cast<std::size_t>(new_id[trie.fail(s)]) * 256u;
    for (unsigned b = 0; b < 256; ++b) {
      const StateIndex via = trie.forward(s, static_cast<std::uint8_t>(b));
      out.table_[row + b] =
          via == kNoState ? out.table_[fail_row + b] : new_id[via];
    }
    for (const auto& [byte, child] : trie.children(s)) {
      queue.push_back(child);
    }
  }
#if defined(DPISVC_CHECK_INVARIANTS) && DPISVC_CHECK_INVARIANTS
  // §5.1 post-conditions: the renumbering is a bijection onto {0..n-1} with
  // accepting states dense in {0..f-1}, and every table entry is a state.
  DPISVC_ASSERT_INVARIANT(next_plain == n,
                          "state renumbering must cover all trie states");
  for (StateIndex target : out.table_) {
    DPISVC_ASSERT_INVARIANT(target < n,
                            "transition table entry must name a valid state");
  }
#endif
  return out;
}

std::size_t FullAutomaton::memory_bytes() const noexcept {
  std::size_t total = table_.size() * sizeof(StateIndex);
  total += depth_.size() * sizeof(std::uint32_t);
  for (const auto& row : match_table_) {
    total += sizeof(row) + row.size() * sizeof(PatternIndex);
  }
  return total;
}

}  // namespace dpisvc::ac
