// Full-table Aho-Corasick DFA with dense accepting-state renumbering (§5.1).
//
// Every (state, byte) transition is precomputed into one flat table, so the
// scan loop is a single indexed load per input byte. State identifiers are
// renumbered so the accepting states occupy exactly {0..f-1}: acceptance is
// then the comparison `state < f` the paper calls out ("it is also possible
// to check whether the state ID is less than a predefined constant"), and
// the per-accepting-state match table is a direct-access array.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ac/trie.hpp"
#include "common/bytes.hpp"

namespace dpisvc::ac {

/// One reported match during a scan.
struct Match {
  /// Byte offset one past the last byte of the matched pattern (i.e. the
  /// number of bytes scanned when the match fired — the paper's `cnt`).
  std::uint64_t end_offset = 0;
  /// The accepting state that fired; key into matches_at() / user tables.
  StateIndex accept_state = 0;
};

class FullAutomaton {
 public:
  FullAutomaton() = default;

  /// Builds from a finalized trie (finalizes it if needed).
  static FullAutomaton build(Trie& trie);

  std::uint32_t num_states() const noexcept { return num_states_; }
  std::uint32_t num_accepting() const noexcept { return num_accepting_; }
  StateIndex start_state() const noexcept { return start_; }

  bool is_accepting(StateIndex state) const noexcept {
    return state < num_accepting_;
  }

  StateIndex step(StateIndex state, std::uint8_t byte) const noexcept {
    return table_[static_cast<std::size_t>(state) * 256u + byte];
  }

  /// Sorted pattern indices reported at an accepting state (with suffix
  /// propagation already applied).
  const std::vector<PatternIndex>& matches_at(StateIndex accept) const {
    return match_table_[accept];
  }

  /// Label length of the state (pattern length for an accepting state's
  /// primary pattern).
  std::uint32_t depth(StateIndex state) const { return depth_[state]; }

  /// Scans `data` starting from `state`, invoking `on_match(Match)` for each
  /// accepting state reached. Returns the final DFA state (to be carried
  /// across packet boundaries for stateful flows, §5.2).
  template <typename OnMatch>
  StateIndex scan(BytesView data, StateIndex state, OnMatch&& on_match) const {
    const StateIndex* table = table_.data();
    const StateIndex accepting = num_accepting_;
    std::uint64_t cnt = 0;
    for (std::uint8_t byte : data) {
      state = table[static_cast<std::size_t>(state) * 256u + byte];
      ++cnt;
      if (state < accepting) {
        on_match(Match{cnt, state});
      }
    }
    return state;
  }

  /// Convenience scan from the start state.
  template <typename OnMatch>
  StateIndex scan(BytesView data, OnMatch&& on_match) const {
    return scan(data, start_, std::forward<OnMatch>(on_match));
  }

  /// Scan that only advances the state machine; used by throughput benches
  /// to measure the raw DFA traversal rate.
  StateIndex traverse(BytesView data, StateIndex state) const noexcept {
    const StateIndex* table = table_.data();
    for (std::uint8_t byte : data) {
      state = table[static_cast<std::size_t>(state) * 256u + byte];
    }
    return state;
  }

  /// Approximate resident size of the runtime structures, in bytes. This is
  /// the "Space" column of Table 2.
  std::size_t memory_bytes() const noexcept;

 private:
  friend FullAutomaton deserialize(BytesView data);

  std::uint32_t num_states_ = 0;
  std::uint32_t num_accepting_ = 0;
  StateIndex start_ = 0;
  std::vector<StateIndex> table_;                     // num_states * 256
  std::vector<std::vector<PatternIndex>> match_table_;  // size num_accepting
  std::vector<std::uint32_t> depth_;                  // size num_states
};

FullAutomaton deserialize(BytesView data);

}  // namespace dpisvc::ac
