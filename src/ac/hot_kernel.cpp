#include "ac/hot_kernel.hpp"

#include <bit>
#include <cstdlib>
#include <unordered_map>

#include "common/invariant.hpp"

namespace dpisvc::ac {

const KernelPolicy& kernel_policy() {
  static const KernelPolicy policy = [] {
    KernelPolicy p;
    const char* env = std::getenv("DPISVC_FORCE_SCALAR");
    p.force_scalar = env != nullptr && env[0] != '\0' &&
                     !(env[0] == '0' && env[1] == '\0');
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    p.wide_interleave = __builtin_cpu_supports("avx2") != 0;
#endif
    p.interleave = p.wide_interleave ? 8 : 4;
    p.reason = p.force_scalar
                   ? "scalar (DPISVC_FORCE_SCALAR)"
                   : (p.wide_interleave ? "batched, interleave 8 (avx2)"
                                        : "batched, interleave 4");
    return p;
  }();
  return policy;
}

HotKernel HotKernel::build(const FullAutomaton& full,
                           std::uint32_t max_hot_states) {
  HotKernel k;
  const std::uint32_t n = full.num_states();
  if (n == 0 || max_hot_states == 0) return k;

  // --- byte-equivalence classes (partition refinement) ---------------------
  // Two bytes are equivalent iff delta(s, b1) == delta(s, b2) for every
  // state s. Start with one class and split it row by row: within a row,
  // bytes of one class that reach different targets can no longer share.
  std::array<std::uint16_t, 256> cls{};
  std::uint32_t num_classes = 1;
  for (StateIndex s = 0; s < n && num_classes < 256; ++s) {
    // (old class, row target) -> refined class, ids in first-seen byte order
    // so the partition is deterministic.
    std::unordered_map<std::uint64_t, std::uint16_t> remap;
    remap.reserve(num_classes * 2);
    std::array<std::uint16_t, 256> next{};
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(cls[b]) << 32) |
          full.step(s, static_cast<std::uint8_t>(b));
      auto [it, inserted] =
          remap.emplace(key, static_cast<std::uint16_t>(remap.size()));
      next[b] = it->second;
    }
    cls = next;
    num_classes = static_cast<std::uint32_t>(remap.size());
  }

  // --- hot-core selection ---------------------------------------------------
  // All states of depth <= D for the largest D whose cumulative state count
  // fits the u16 id space: the dense near-root core almost every input byte
  // lands in. When everything fits (the common case) there are no cold
  // transitions at all.
  std::uint32_t max_depth = 0;
  for (StateIndex s = 0; s < n; ++s) max_depth = std::max(max_depth, full.depth(s));
  std::vector<std::uint32_t> per_depth(max_depth + 1, 0);
  for (StateIndex s = 0; s < n; ++s) ++per_depth[full.depth(s)];
  std::uint32_t hot_depth = 0;
  std::uint64_t cumulative = per_depth[0];
  while (hot_depth < max_depth &&
         cumulative + per_depth[hot_depth + 1] <= max_hot_states) {
    ++hot_depth;
    cumulative += per_depth[hot_depth];
  }
  if (cumulative > max_hot_states) return k;  // even the root layer overflows

  // Renumber the core accepting-first so acceptance stays `id < accepting`
  // (§5.1): full-automaton accepting states are exactly {0..f-1}, so two
  // ascending passes keep both orders aligned with the full numbering.
  k.hot_of_.assign(n, kColdExit);
  k.full_of_.reserve(cumulative);
  const std::uint32_t f = full.num_accepting();
  for (StateIndex s = 0; s < n; ++s) {
    if (s < f && full.depth(s) <= hot_depth) {
      k.hot_of_[s] = static_cast<std::uint16_t>(k.full_of_.size());
      k.full_of_.push_back(s);
    }
  }
  k.hot_accepting_ = static_cast<std::uint32_t>(k.full_of_.size());
  for (StateIndex s = 0; s < n; ++s) {
    if (s >= f && full.depth(s) <= hot_depth) {
      k.hot_of_[s] = static_cast<std::uint16_t>(k.full_of_.size());
      k.full_of_.push_back(s);
    }
  }
  k.num_hot_ = static_cast<std::uint32_t>(k.full_of_.size());
  k.num_classes_ = num_classes;
  k.hot_depth_ = hot_depth;
  k.complete_ = k.num_hot_ == n;
  k.class_of_ = cls;

  // --- hot transition table -------------------------------------------------
  // One representative byte per class suffices: the partition guarantees
  // every byte of the class has the same target row-by-row.
  std::vector<std::uint8_t> rep(num_classes, 0);
  std::vector<bool> seen(num_classes, false);
  for (unsigned b = 0; b < 256; ++b) {
    if (!seen[cls[b]]) {
      seen[cls[b]] = true;
      rep[cls[b]] = static_cast<std::uint8_t>(b);
    }
  }
  // Row stride = classes rounded up to a power of two: the walk then forms
  // the row index with a shift+or instead of a multiply, which shortens the
  // load-to-load dependency chain by the multiplier's latency. The padding
  // columns are never indexed (byte classes are < num_classes) and cost at
  // most 2x table bytes — still far inside L2 for realistic rule sets.
  k.class_shift_ =
      num_classes > 1 ? static_cast<std::uint32_t>(std::bit_width(num_classes - 1))
                      : 0;
  k.table_.assign(static_cast<std::size_t>(k.num_hot_) << k.class_shift_,
                  kColdExit);
  for (std::uint32_t h = 0; h < k.num_hot_; ++h) {
    const StateIndex fs = k.full_of_[h];
    for (std::uint32_t c = 0; c < num_classes; ++c) {
      const StateIndex target = full.step(fs, rep[c]);
      k.table_[(static_cast<std::size_t>(h) << k.class_shift_) | c] =
          k.hot_of_[target];
    }
  }
  DPISVC_ASSERT_INVARIANT(k.hot_of_[full.start_state()] != kColdExit,
                          "hot core must contain the start state");
  return k;
}

std::size_t HotKernel::memory_bytes() const noexcept {
  return table_.size() * sizeof(std::uint16_t) +
         hot_of_.size() * sizeof(std::uint16_t) +
         full_of_.size() * sizeof(StateIndex) + sizeof(class_of_);
}

HotKernel::Lane HotKernel::scan(BytesView data, StateIndex start_state,
                                std::vector<Match>& events) const {
  Lane lane;
  lane.data = data;
  lane.state = start_state;
  lane.events = &events;
  if (!available() || hot_of_[start_state] == kColdExit) return lane;

  const std::uint16_t* tbl = table_.data();
  const std::uint16_t* bc = class_of_.data();
  const StateIndex* full_of = full_of_.data();
  const std::uint8_t* p = data.data();
  const std::size_t n = data.size();
  const std::uint32_t sh = class_shift_;
  const std::uint32_t fa = hot_accepting_;
  std::uint32_t s = hot_of_[start_state];
  std::size_t i = 0;

  if (complete_) {
    // Complete core: no cold exits exist, so the walk drops the sentinel
    // compare and the per-byte position bookkeeping entirely — the loop is
    // instruction-bound once the table sits in L2, and those two saved ops
    // per byte are a direct throughput multiplier.
    while (i + kStride <= n) {
      const std::uint32_t c0 = bc[p[i]];
      const std::uint32_t c1 = bc[p[i + 1]];
      const std::uint32_t c2 = bc[p[i + 2]];
      const std::uint32_t c3 = bc[p[i + 3]];
      s = tbl[(s << sh) | c0];
      if (s < fa) events.push_back(Match{i + 1, full_of[s]});
      s = tbl[(s << sh) | c1];
      if (s < fa) events.push_back(Match{i + 2, full_of[s]});
      s = tbl[(s << sh) | c2];
      if (s < fa) events.push_back(Match{i + 3, full_of[s]});
      s = tbl[(s << sh) | c3];
      if (s < fa) events.push_back(Match{i + 4, full_of[s]});
      i += kStride;
    }
    while (i < n) {
      s = tbl[(s << sh) | bc[p[i]]];
      ++i;
      if (s < fa) events.push_back(Match{i, full_of[s]});
    }
    lane.consumed = n;
    lane.state = full_of[s];
    return lane;
  }

  // One transition; returns false on a cold exit (the byte stays
  // unconsumed: the caller's scalar loop re-resolves it via the full table).
  const auto step = [&](std::uint32_t c) {
    const std::uint32_t t = tbl[(s << sh) | c];
    if (t == kColdExit) return false;
    s = t;
    ++i;
    if (t < fa) events.push_back(Match{i, full_of[t]});
    return true;
  };

  bool cold = false;
  // Stride walk: the stride's class lookups are issued before the dependent
  // transition chain so the (L1-resident) class loads never sit behind a
  // table miss.
  while (i + kStride <= n) {
    const std::uint32_t c0 = bc[p[i]];
    const std::uint32_t c1 = bc[p[i + 1]];
    const std::uint32_t c2 = bc[p[i + 2]];
    const std::uint32_t c3 = bc[p[i + 3]];
    if (!step(c0) || !step(c1) || !step(c2) || !step(c3)) {
      cold = true;
      break;
    }
  }
  if (!cold) {
    while (i < n && step(bc[p[i]])) {
    }
  }
  lane.consumed = i;
  lane.state = full_of[s];
  return lane;
}

void HotKernel::scan_interleaved(Lane* lanes, std::size_t num_lanes) const {
  DPISVC_ASSERT_INVARIANT(num_lanes <= kMaxInterleave,
                          "interleave width exceeds kMaxInterleave");
  // Lanes whose start state is cold (or an unavailable kernel) finish
  // immediately with consumed == 0; the caller runs them scalar. Lane
  // cursors live in dense local arrays for the whole walk — a lane's
  // pointer/position/state round-tripping through the Lane struct every
  // round would cost more than the round's four transitions.
  std::size_t idx[kMaxInterleave];
  std::uint32_t st[kMaxInterleave];
  const std::uint8_t* ptr[kMaxInterleave];
  std::size_t pos[kMaxInterleave];
  std::size_t len[kMaxInterleave];
  std::size_t active = 0;
  for (std::size_t k = 0; k < num_lanes; ++k) {
    lanes[k].consumed = 0;
    if (!available() || lanes[k].data.empty() ||
        hot_of_[lanes[k].state] == kColdExit) {
      continue;
    }
    st[active] = hot_of_[lanes[k].state];
    ptr[active] = lanes[k].data.data();
    pos[active] = 0;
    len[active] = lanes[k].data.size();
    idx[active] = k;
    ++active;
  }

  const std::uint16_t* tbl = table_.data();
  const std::uint16_t* bc = class_of_.data();
  const StateIndex* full_of = full_of_.data();
  const std::uint32_t sh = class_shift_;
  const std::uint32_t fa = hot_accepting_;
  const bool complete = complete_;

  // Lockstep rounds of kStride bytes per lane: the transition loads of
  // distinct lanes are data-independent, so one round keeps `active`
  // cache misses in flight instead of one.
  while (active > 0) {
    for (std::size_t j = 0; j < active;) {
      Lane& lane = lanes[idx[j]];
      const std::uint8_t* p = ptr[j];
      const std::size_t n = len[j];
      std::size_t i = pos[j];
      std::uint32_t s = st[j];
      bool done = false;

      if (complete && i + kStride <= n) {
        // Complete core: no cold exits, so the round is four bare
        // transitions (see the matching fast path in scan()). kStride
        // stays at 4 deliberately: an 8-byte round measured ~40% slower
        // here — eight dependent table loads per lane, times eight lanes,
        // overflow the out-of-order scheduler and the misses serialize.
        const std::uint32_t c0 = bc[p[i]];
        const std::uint32_t c1 = bc[p[i + 1]];
        const std::uint32_t c2 = bc[p[i + 2]];
        const std::uint32_t c3 = bc[p[i + 3]];
        s = tbl[(s << sh) | c0];
        if (s < fa) lane.events->push_back(Match{i + 1, full_of[s]});
        s = tbl[(s << sh) | c1];
        if (s < fa) lane.events->push_back(Match{i + 2, full_of[s]});
        s = tbl[(s << sh) | c2];
        if (s < fa) lane.events->push_back(Match{i + 3, full_of[s]});
        s = tbl[(s << sh) | c3];
        if (s < fa) lane.events->push_back(Match{i + 4, full_of[s]});
        pos[j] = i + kStride;
        st[j] = s;
        ++j;
        continue;
      }

      const auto step = [&](std::uint32_t c) {
        const std::uint32_t t = tbl[(s << sh) | c];
        if (t == kColdExit) return false;
        s = t;
        ++i;
        if (t < fa) lane.events->push_back(Match{i, full_of[t]});
        return true;
      };

      if (i + kStride <= n) {
        const std::uint32_t c0 = bc[p[i]];
        const std::uint32_t c1 = bc[p[i + 1]];
        const std::uint32_t c2 = bc[p[i + 2]];
        const std::uint32_t c3 = bc[p[i + 3]];
        done = !(step(c0) && step(c1) && step(c2) && step(c3));
      } else {
        while (i < n && step(bc[p[i]])) {
        }
        done = true;  // reached the end (or a cold exit in the tail)
      }

      pos[j] = i;
      st[j] = s;
      if (done) {
        // Retire the lane: write its final cursor back, then swap-with-last
        // to keep the active set dense.
        lane.consumed = i;
        lane.state = full_of[s];
        --active;
        idx[j] = idx[active];
        st[j] = st[active];
        ptr[j] = ptr[active];
        pos[j] = pos[active];
        len[j] = len[active];
      } else {
        ++j;
      }
    }
  }
}

}  // namespace dpisvc::ac
