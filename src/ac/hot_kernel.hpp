// Batched, cache-conscious scan kernel over the full-table DFA.
//
// The scalar scan loop (FullAutomaton::scan) chases one 32-bit transition
// per input byte through a `num_states * 256 * 4`-byte table. For realistic
// rule sets that table runs to megabytes, so the per-byte load misses L1/L2
// and the core stalls on memory latency — ROADMAP item 1 names this as
// where the next order of magnitude lives. This kernel rebuilds the hot
// transition path along the lines of Hyperflex (PAPERS.md, "A SIMD-based
// DFA Model for Deep Packet Inspection"):
//
//  * Byte-equivalence classes. Two input bytes are equivalent iff every
//    state maps them to the same target; the table then needs one column
//    per class, not per byte. Rule-set alphabets are narrow (ASCII-heavy
//    Snort/ClamAV strings), so 256 columns typically collapse to well under
//    half that — a direct multiplier on cache residency.
//  * Narrow (u16) state ids for the hot core: the states reachable within
//    the smallest depth bound that keeps the core within kMaxHotStates.
//    Together with class columns the hot table is
//    `hot_states * classes * 2` bytes — routinely 10-20x smaller than the
//    full table, small enough to stay L2-resident under scan load.
//  * Accepting-first renumbering is preserved inside the core (hot ids of
//    accepting states are exactly {0..hot_accepting-1}), so acceptance
//    stays the single compare the paper calls out (§5.1).
//  * Transitions that leave the hot core are encoded as the kColdExit
//    sentinel; the kernel returns the position and the full-table state and
//    the caller finishes that packet with the scalar loop. When the whole
//    automaton fits (the common case), no cold exits exist at all.
//  * A multi-byte-stride walk (kStride bytes per iteration, class lookups
//    issued up front) plus an interleaved mode that advances several
//    independent flows per pass: the transition loads of different lanes
//    have no data dependency, so the out-of-order core overlaps their
//    cache misses instead of serializing them — the memory-level-
//    parallelism trick Hyperflex applies with SIMD lane groups.
//
// Matches are emitted as (end_offset, accepting state) events into a
// caller-owned buffer instead of through a per-byte callback, which keeps
// the inner loop free of calls; the engine replays the events through the
// identical §5.1/§5.2 filtering it applies to the scalar path. The kernel
// is portable C++ (no intrinsics required); cpu-feature detection only
// widens the interleave factor where the memory subsystem can use it, and
// DPISVC_FORCE_SCALAR pins every engine to the scalar loop (see
// kernel_policy()). src/verify proves the layout equal to the full table
// transition-for-transition and cross-checks scan results byte-for-byte.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ac/full_automaton.hpp"
#include "common/bytes.hpp"

namespace dpisvc::ac {

/// Narrow state id inside the hot core.
using HotStateIndex = std::uint16_t;

/// Sentinel hot-table entry: the transition leaves the hot core (resolve it
/// through the full table and continue with the scalar loop). Also the
/// "not a hot state" value of the full->hot map.
inline constexpr std::uint16_t kColdExit = 0xFFFF;

/// Hot ids must stay below the sentinel.
inline constexpr std::uint32_t kMaxHotStates = 0xFFFF;

/// Process-wide scan-kernel dispatch policy, resolved once on first use.
struct KernelPolicy {
  /// DPISVC_FORCE_SCALAR was set (any value but "0"): every engine keeps
  /// the scalar loop regardless of kernel availability.
  bool force_scalar = false;
  /// CPU supports AVX2 (x86): the memory subsystem sustains enough
  /// outstanding misses to feed the wide interleave factor.
  bool wide_interleave = false;
  /// Flows advanced per interleaved pass (8 wide, 4 otherwise).
  std::uint32_t interleave = 4;
  /// Human-readable dispatch decision for logs/benches.
  const char* reason = "";
};

const KernelPolicy& kernel_policy();

class HotKernel {
 public:
  /// One lane of an interleaved scan. `state` carries the full-automaton
  /// resume state in and the reached state out; `consumed` reports how many
  /// bytes the kernel walked (== data.size() unless a cold exit stopped the
  /// lane early — the caller then continues scalar from `state` at
  /// data[consumed]). Match events append to `events` with end offsets
  /// relative to the start of `data`.
  struct Lane {
    BytesView data;
    StateIndex state = 0;
    std::size_t consumed = 0;
    std::vector<Match>* events = nullptr;
  };

  HotKernel() = default;

  /// Builds the hot-core layout from a full-table automaton. The hot set is
  /// all states of depth <= D for the largest D that fits `max_hot_states`;
  /// an automaton that fits entirely has no cold transitions. Returns an
  /// unavailable kernel for degenerate inputs (no states).
  static HotKernel build(const FullAutomaton& full,
                         std::uint32_t max_hot_states = kMaxHotStates);

  bool available() const noexcept { return num_hot_ != 0; }

  // --- layout introspection (src/verify proves these against the table) ---

  std::uint32_t num_hot_states() const noexcept { return num_hot_; }
  std::uint32_t num_hot_accepting() const noexcept { return hot_accepting_; }
  std::uint32_t num_classes() const noexcept { return num_classes_; }
  /// Depth bound of the hot core (max depth over hot states).
  std::uint32_t hot_depth() const noexcept { return hot_depth_; }
  /// True when every automaton state is in the core (no cold exits).
  bool complete() const noexcept { return complete_; }

  std::uint16_t byte_class(std::uint8_t byte) const noexcept {
    return class_of_[byte];
  }
  /// Hot id of a full-automaton state, or kColdExit if it is outside the
  /// core.
  std::uint16_t hot_id(StateIndex full_state) const {
    return hot_of_[full_state];
  }
  StateIndex full_id(HotStateIndex hot_state) const {
    return full_of_[hot_state];
  }
  /// Raw table entry: hot id of delta(full_id(state), b) for any byte b of
  /// class `cls`, or kColdExit.
  std::uint16_t table_entry(HotStateIndex state, std::uint16_t cls) const {
    return table_[(static_cast<std::size_t>(state) << class_shift_) | cls];
  }

  /// Resident bytes of the hot layout (table + maps).
  std::size_t memory_bytes() const noexcept;

  // --- scanning -----------------------------------------------------------

  /// Single-flow walk. Returns with consumed == data.size(), or earlier at
  /// a cold exit (never consumes the cold byte: the caller's scalar loop
  /// re-resolves it through the full table). A start state outside the core
  /// returns immediately with consumed == 0.
  Lane scan(BytesView data, StateIndex start_state,
            std::vector<Match>& events) const;

  /// Interleaved walk: advances up to kMaxInterleave lanes in lockstep
  /// strides so their transition loads overlap. Each lane ends exactly as
  /// scan() would have left it — the interleave is invisible in the
  /// results.
  static constexpr std::size_t kMaxInterleave = 8;
  void scan_interleaved(Lane* lanes, std::size_t num_lanes) const;

 private:
  /// Bytes walked per lane per lockstep round.
  static constexpr std::size_t kStride = 4;

  std::uint32_t num_hot_ = 0;
  std::uint32_t hot_accepting_ = 0;
  std::uint32_t num_classes_ = 0;
  /// log2 of the table row stride: num_classes rounded up to a power of
  /// two, so the row index is `(state << shift) | class` — a shift and an
  /// or on the load-to-load dependency chain where a row multiply would
  /// add three more latency cycles per byte.
  std::uint32_t class_shift_ = 0;
  std::uint32_t hot_depth_ = 0;
  bool complete_ = false;
  std::array<std::uint16_t, 256> class_of_{};
  std::vector<std::uint16_t> table_;   ///< num_hot << class_shift
  std::vector<std::uint16_t> hot_of_;  ///< full id -> hot id / kColdExit
  std::vector<StateIndex> full_of_;    ///< hot id -> full id
};

}  // namespace dpisvc::ac
