#include "ac/serialize.hpp"

#include <cstring>
#include <stdexcept>

namespace dpisvc::ac {

namespace {

constexpr std::uint32_t kMagic = 0x46444341u;  // "ACDF" little-endian
constexpr std::uint32_t kVersion = 1;

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint32_t u32() {
    if (pos_ + 4 > data_.size()) {
      throw std::invalid_argument("ac::deserialize: truncated input");
    }
    std::uint32_t v = 0;
    v |= data_[pos_];
    v |= static_cast<std::uint32_t>(data_[pos_ + 1]) << 8;
    v |= static_cast<std::uint32_t>(data_[pos_ + 2]) << 16;
    v |= static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace

Bytes serialize(const FullAutomaton& automaton) {
  Bytes out;
  const std::uint32_t n = automaton.num_states();
  const std::uint32_t f = automaton.num_accepting();
  out.reserve(20 + static_cast<std::size_t>(n) * 256u * 4u + n * 4u);
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, n);
  put_u32(out, f);
  put_u32(out, automaton.start_state());
  for (StateIndex s = 0; s < n; ++s) {
    for (unsigned b = 0; b < 256; ++b) {
      put_u32(out, automaton.step(s, static_cast<std::uint8_t>(b)));
    }
  }
  for (StateIndex s = 0; s < n; ++s) {
    put_u32(out, automaton.depth(s));
  }
  for (StateIndex s = 0; s < f; ++s) {
    const auto& row = automaton.matches_at(s);
    put_u32(out, static_cast<std::uint32_t>(row.size()));
    for (PatternIndex p : row) {
      put_u32(out, p);
    }
  }
  return out;
}

FullAutomaton deserialize(BytesView data) {
  Reader reader(data);
  if (reader.u32() != kMagic) {
    throw std::invalid_argument("ac::deserialize: bad magic");
  }
  if (reader.u32() != kVersion) {
    throw std::invalid_argument("ac::deserialize: unsupported version");
  }
  FullAutomaton out;
  out.num_states_ = reader.u32();
  out.num_accepting_ = reader.u32();
  out.start_ = reader.u32();
  if (out.num_accepting_ > out.num_states_ ||
      out.start_ >= std::max(out.num_states_, 1u)) {
    throw std::invalid_argument("ac::deserialize: inconsistent header");
  }
  const std::size_t n = out.num_states_;
  out.table_.resize(n * 256u);
  for (std::size_t i = 0; i < n * 256u; ++i) {
    const std::uint32_t target = reader.u32();
    if (target >= n) {
      throw std::invalid_argument("ac::deserialize: transition out of range");
    }
    out.table_[i] = target;
  }
  out.depth_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.depth_[i] = reader.u32();
  }
  out.match_table_.resize(out.num_accepting_);
  for (std::uint32_t s = 0; s < out.num_accepting_; ++s) {
    const std::uint32_t count = reader.u32();
    if (count > 1u << 24) {
      throw std::invalid_argument("ac::deserialize: implausible match count");
    }
    out.match_table_[s].resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      out.match_table_[s][i] = reader.u32();
    }
  }
  if (!reader.done()) {
    throw std::invalid_argument("ac::deserialize: trailing bytes");
  }
  return out;
}

}  // namespace dpisvc::ac
