// Binary serialization for the full-table automaton.
//
// The paper distributes *pattern sets* to instances (they are compact) and
// each instance builds its own DFA (§4.1). Serialization exists for the
// complementary deployment mode: a controller-side build shipped to
// instances that should not pay construction cost (e.g. fast scale-out of a
// dedicated MCA² instance), and for the space accounting of Table 2.
//
// Format (all integers little-endian):
//   magic "ACDF" | u32 version | u32 num_states | u32 num_accepting |
//   u32 start | num_states*256 u32 table | num_states u32 depth |
//   per accepting state: u32 count, count u32 pattern indices
#pragma once

#include "ac/full_automaton.hpp"
#include "common/bytes.hpp"

namespace dpisvc::ac {

Bytes serialize(const FullAutomaton& automaton);

/// Throws std::invalid_argument on malformed input.
FullAutomaton deserialize(BytesView data);

}  // namespace dpisvc::ac
