#include "ac/trie.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace dpisvc::ac {

Trie::Trie() { nodes_.emplace_back(); }

void Trie::insert(BytesView pattern, PatternIndex index) {
  if (finalized_) {
    throw std::logic_error("Trie::insert after finalize");
  }
  if (pattern.empty()) {
    throw std::invalid_argument("Trie::insert: empty pattern");
  }
  StateIndex at = root();
  for (std::uint8_t byte : pattern) {
    auto it = nodes_[at].children.find(byte);
    if (it == nodes_[at].children.end()) {
      const auto next = static_cast<StateIndex>(nodes_.size());
      nodes_.emplace_back();
      nodes_.back().depth = nodes_[at].depth + 1;
      nodes_[at].children.emplace(byte, next);
      at = next;
    } else {
      at = it->second;
    }
  }
  nodes_[at].output.push_back(index);
  ++inserted_;
}

void Trie::insert(std::string_view pattern, PatternIndex index) {
  insert(BytesView(reinterpret_cast<const std::uint8_t*>(pattern.data()),
                   pattern.size()),
         index);
}

void Trie::finalize() {
  if (finalized_) return;
  // BFS from the root; a node's failure target is already final when the
  // node is dequeued, so output propagation composes transitively.
  std::deque<StateIndex> queue;
  nodes_[root()].fail = root();
  for (const auto& [byte, child] : nodes_[root()].children) {
    nodes_[child].fail = root();
    queue.push_back(child);
  }
  while (!queue.empty()) {
    const StateIndex at = queue.front();
    queue.pop_front();
    // Propagate the failure target's output: L(fail(at)) is a suffix of
    // L(at), so every pattern matched there is matched here too (§5.1).
    const auto& fail_output = nodes_[nodes_[at].fail].output;
    auto& out = nodes_[at].output;
    out.insert(out.end(), fail_output.begin(), fail_output.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());

    for (const auto& [byte, child] : nodes_[at].children) {
      // Walk failure links until a state with a `byte` child (or the root).
      StateIndex f = nodes_[at].fail;
      while (true) {
        const StateIndex via = forward(f, byte);
        if (via != kNoState && via != child) {
          nodes_[child].fail = via;
          break;
        }
        if (f == root()) {
          nodes_[child].fail = root();
          break;
        }
        f = nodes_[f].fail;
      }
      queue.push_back(child);
    }
  }
  finalized_ = true;
}

StateIndex Trie::forward(StateIndex state, std::uint8_t byte) const {
  const auto& children = nodes_[state].children;
  auto it = children.find(byte);
  return it == children.end() ? kNoState : it->second;
}

StateIndex Trie::fail(StateIndex state) const { return nodes_[state].fail; }

std::uint32_t Trie::depth(StateIndex state) const {
  return nodes_[state].depth;
}

const std::vector<PatternIndex>& Trie::output(StateIndex state) const {
  return nodes_[state].output;
}

const std::map<std::uint8_t, StateIndex>& Trie::children(
    StateIndex state) const {
  return nodes_[state].children;
}

}  // namespace dpisvc::ac
