// Aho-Corasick goto trie with failure links and output sets.
//
// This is the phase-1/phase-2 construction of §3: patterns are inserted as
// chains from the root (shared prefixes share states), then a BFS computes
// for every state the failure link — the state whose label is the longest
// proper suffix of this state's label — and the output set (patterns ending
// at the state, unioned with the failure target's output so that suffix
// patterns are reported, the propagation rule of §5.1).
//
// The trie is the shared intermediate for both runtime representations:
//  - ac::FullAutomaton  — full 256-ary transition table (fastest, largest);
//  - ac::CompressedAutomaton — forward transitions + failure pointers
//    (the compact variant dedicated MCA² instances run, §4.3.1).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "common/bytes.hpp"

namespace dpisvc::ac {

using PatternIndex = std::uint32_t;
using StateIndex = std::uint32_t;

inline constexpr StateIndex kNoState = std::numeric_limits<StateIndex>::max();

class Trie {
 public:
  Trie();

  /// Inserts a pattern and associates it with `pattern` index. Empty patterns
  /// are rejected (they would make the root accepting and match everywhere).
  /// Duplicate insertions of the same byte string are allowed and simply add
  /// another index to the same terminal state.
  void insert(BytesView pattern, PatternIndex index);
  void insert(std::string_view pattern, PatternIndex index);

  /// Computes failure links and propagated output sets. Must be called after
  /// all insertions and before the accessors below are used. Idempotent.
  void finalize();

  bool finalized() const noexcept { return finalized_; }
  std::size_t num_states() const noexcept { return nodes_.size(); }
  std::size_t num_patterns_inserted() const noexcept { return inserted_; }

  /// Forward (goto) transition or kNoState.
  StateIndex forward(StateIndex state, std::uint8_t byte) const;

  /// Failure link (root's failure is the root itself). Requires finalize().
  StateIndex fail(StateIndex state) const;

  /// Depth = label length of the state.
  std::uint32_t depth(StateIndex state) const;

  /// Full output set (with suffix propagation). Requires finalize().
  const std::vector<PatternIndex>& output(StateIndex state) const;

  /// Children of a state in byte order, as (byte, target) pairs.
  const std::map<std::uint8_t, StateIndex>& children(StateIndex state) const;

  static constexpr StateIndex root() noexcept { return 0; }

 private:
  struct Node {
    std::map<std::uint8_t, StateIndex> children;
    std::vector<PatternIndex> output;  // Propagated after finalize().
    StateIndex fail = kNoState;
    std::uint32_t depth = 0;
  };

  std::vector<Node> nodes_;
  std::size_t inserted_ = 0;
  bool finalized_ = false;
};

}  // namespace dpisvc::ac
