#include "ac/wu_manber.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace dpisvc::ac {

WuManber WuManber::build(const std::vector<std::string>& patterns) {
  if (patterns.empty()) {
    throw std::invalid_argument("WuManber: empty pattern set");
  }
  WuManber out;
  out.patterns_ = patterns;
  std::size_t window = SIZE_MAX;
  for (const std::string& p : patterns) {
    if (p.size() < 2) {
      throw std::invalid_argument("WuManber: pattern shorter than 2 bytes");
    }
    window = std::min(window, p.size());
  }
  out.window_ = window;

  const auto m = static_cast<std::uint16_t>(window);
  const std::uint16_t default_shift = static_cast<std::uint16_t>(m - 1);
  out.shift_.fill(default_shift);

  // SHIFT: for every 2-gram ending at position i (1 <= i < m) of a
  // pattern's first m bytes, the window may shift at most m-1-i before the
  // gram could align with the window end.
  for (const std::string& p : patterns) {
    for (std::size_t i = 1; i < window; ++i) {
      const auto block = static_cast<std::uint16_t>(
          (static_cast<std::uint8_t>(p[i - 1]) << 8) |
          static_cast<std::uint8_t>(p[i]));
      const auto shift = static_cast<std::uint16_t>(window - 1 - i);
      out.shift_[block] = std::min(out.shift_[block], shift);
    }
  }

  // Buckets for shift-0 grams: the patterns whose first-m window ends with
  // that gram. Shared empty bucket at index 0.
  out.buckets_.emplace_back();
  out.bucket_index_.fill(0);
  for (PatternIndex index = 0; index < patterns.size(); ++index) {
    const std::string& p = patterns[index];
    const auto block = static_cast<std::uint16_t>(
        (static_cast<std::uint8_t>(p[window - 2]) << 8) |
        static_cast<std::uint8_t>(p[window - 1]));
    if (out.bucket_index_[block] == 0) {
      out.bucket_index_[block] =
          static_cast<std::uint32_t>(out.buckets_.size());
      out.buckets_.emplace_back();
    }
    out.buckets_[out.bucket_index_[block]].patterns.push_back(index);
  }
  return out;
}

std::size_t WuManber::memory_bytes() const noexcept {
  std::size_t total = sizeof(shift_) + sizeof(bucket_index_);
  for (const Bucket& b : buckets_) {
    total += sizeof(b) + b.patterns.size() * sizeof(PatternIndex);
  }
  for (const std::string& p : patterns_) {
    total += sizeof(p) + p.size();
  }
  return total;
}

}  // namespace dpisvc::ac
