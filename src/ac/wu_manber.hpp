// Wu-Manber multi-pattern string matching.
//
// §2.2: "The classical algorithms for exact multiple string matching used
// for DPI are those of Aho-Corasick [2] and Wu-Manber [51]." This is the
// second of the two, implemented as a comparison baseline for the ablation
// bench: shift-table over 2-byte blocks, hash buckets on the block ending
// the m-length window, full verification on shift-0 hits.
//
// Unlike the AC automata, Wu-Manber has no per-byte carried state, so it
// cannot resume across packet boundaries — one of the reasons the DPI
// service's stateful path builds on AC. It shines on long patterns and
// benign traffic (large average shifts) and degrades on adversarial inputs
// that force dense verification.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ac/trie.hpp"  // for PatternIndex
#include "common/bytes.hpp"

namespace dpisvc::ac {

class WuManber {
 public:
  /// Builds the matcher. Throws std::invalid_argument if `patterns` is
  /// empty or any pattern is shorter than 2 bytes.
  static WuManber build(const std::vector<std::string>& patterns);

  /// Reports every occurrence of every pattern: on_match(end_offset,
  /// pattern_index), end_offset = 1-based offset just past the match.
  template <typename OnMatch>
  void scan(BytesView text, OnMatch&& on_match) const {
    if (text.size() < window_) return;
    std::size_t pos = window_ - 1;  // index of the window's last byte
    while (pos < text.size()) {
      const std::uint16_t block = block_at(text, pos);
      const std::uint16_t shift = shift_[block];
      if (shift > 0) {
        pos += shift;
        continue;
      }
      // Candidate window: verify every pattern whose first-m-block ends in
      // this 2-gram.
      const std::size_t window_start = pos + 1 - window_;
      const Bucket& bucket = buckets_[bucket_index_[block]];
      for (PatternIndex index : bucket.patterns) {
        const std::string& p = patterns_[index];
        if (window_start + p.size() > text.size()) continue;
        if (std::memcmp(p.data(), text.data() + window_start, p.size()) == 0) {
          on_match(static_cast<std::uint64_t>(window_start + p.size()), index);
        }
      }
      ++pos;
    }
  }

  std::size_t window() const noexcept { return window_; }
  std::size_t num_patterns() const noexcept { return patterns_.size(); }
  std::size_t memory_bytes() const noexcept;

 private:
  struct Bucket {
    std::vector<PatternIndex> patterns;
  };

  static std::uint16_t block_at(BytesView text, std::size_t pos) noexcept {
    return static_cast<std::uint16_t>((text[pos - 1] << 8) | text[pos]);
  }

  std::size_t window_ = 0;  ///< m = shortest pattern length
  std::vector<std::string> patterns_;
  std::array<std::uint16_t, 65536> shift_{};
  std::array<std::uint32_t, 65536> bucket_index_{};
  std::vector<Bucket> buckets_;
};

}  // namespace dpisvc::ac
