#include "analysis/analyzer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "regex/parser.hpp"

namespace dpisvc::analysis {

namespace {

constexpr std::size_t kSaturated = static_cast<std::size_t>(-1) >> 2;

std::size_t sat_add(std::size_t a, std::size_t b) {
  return (a >= kSaturated - b) ? kSaturated : a + b;
}

/// Same cap-and-truncate discipline as verify's Reporter: one systemic
/// problem (every pattern over quota) must not produce megabytes of output.
class Findings {
 public:
  explicit Findings(std::vector<verify::Diagnostic>& out, std::size_t cap = 32)
      : out_(out), cap_(cap) {}

  template <typename... Args>
  void add(const char* code, const Args&... args) {
    ++total_;
    if (out_.size() >= cap_) return;
    std::ostringstream os;
    (os << ... << args);
    out_.push_back(verify::Diagnostic{code, os.str()});
  }

  ~Findings() {
    if (total_ > cap_) {
      out_.push_back(verify::Diagnostic{
          "diagnostics-truncated",
          "suppressed " + std::to_string(total_ - cap_) + " further findings"});
    }
  }

 private:
  std::vector<verify::Diagnostic>& out_;
  std::size_t cap_;
  std::size_t total_ = 0;
};

/// Engine::compile's degenerate placeholder (see engine.cpp): an empty
/// string table still builds a one-pattern automaton over these 22 bytes.
constexpr std::string_view kPlaceholder("\x00\x01\x02\x03placeholder-unused",
                                        22);

// Compiled-artifact element sizes the memory model multiplies out. Where the
// type is public we take sizeof directly; CompressedAutomaton's EdgeRange
// {uint32, uint32} and Edge {uint8, StateIndex} are private, so their sizes
// (8 each after padding) are mirrored here and cross-checked by the
// calibration test against actual memory_bytes().
constexpr std::size_t kEdgeRangeBytes = 8;
constexpr std::size_t kEdgeBytes = 8;
constexpr std::size_t kMatchRowOverhead = sizeof(std::vector<ac::PatternIndex>);
constexpr std::size_t kTargetRowOverhead =
    sizeof(std::vector<dpi::Engine::MatchTarget>);

struct MemoryModel {
  std::size_t full = 0;        ///< FullAutomaton::memory_bytes()
  std::size_t compressed = 0;  ///< CompressedAutomaton::memory_bytes()
};

MemoryModel automaton_memory(std::size_t states, std::size_t accepting,
                             std::size_t match_entries) {
  MemoryModel m;
  const std::size_t rows =
      accepting * kMatchRowOverhead + match_entries * sizeof(ac::PatternIndex);
  m.full = states * 256 * sizeof(ac::StateIndex) +
           states * sizeof(std::uint32_t) + rows;
  m.compressed = states * kEdgeRangeBytes + (states - 1) * kEdgeBytes +
                 states * sizeof(ac::StateIndex) +
                 states * sizeof(std::uint32_t) + rows;
  return m;
}

/// Body split out so the Findings destructors (which append the
/// "diagnostics-truncated" marker) provably run before the report is
/// returned — NRVO is not guaranteed, and the fuzz harness asserts
/// byte-identical reports across repeated runs.
void analyze_into(const dpi::EngineSpec& spec, const AnalysisOptions& options,
                  PatternSetReport& report) {
  Findings violations(report.violations);
  Findings warnings(report.warnings);

  // --- middlebox profiles (mirrors Engine::compile's id validation) --------
  dpi::MiddleboxBitmap seen = 0;
  for (const auto& p : spec.middleboxes) {
    if (p.id == 0 || p.id > dpi::kMaxMiddleboxes) {
      violations.add("middlebox-id-out-of-range", "middlebox id ", p.id,
                     " outside 1..", dpi::kMaxMiddleboxes);
      continue;
    }
    if (seen & dpi::bitmap_of(p.id)) {
      violations.add("duplicate-middlebox-id", "middlebox id ", p.id,
                     " registered twice");
      continue;
    }
    seen |= dpi::bitmap_of(p.id);
  }
  const auto known = [&seen](dpi::MiddleboxId id) {
    return id >= 1 && id <= dpi::kMaxMiddleboxes &&
           (seen & dpi::bitmap_of(id)) != 0;
  };

  // --- exact patterns ------------------------------------------------------
  // Distinct bytes -> distinct (middlebox, rule) registrations; the engine
  // dedupes identical registrations the same way.
  std::map<std::string, std::set<std::pair<dpi::MiddleboxId, dpi::PatternId>>>
      exact_refs;
  std::map<dpi::MiddleboxId, std::size_t> per_middlebox;
  for (const auto& pat : spec.exact_patterns) {
    if (!known(pat.middlebox)) {
      violations.add("pattern-unknown-middlebox", "exact pattern (rule ",
                     pat.pattern_id, ") references unregistered middlebox ",
                     pat.middlebox);
    } else {
      ++per_middlebox[pat.middlebox];
    }
    if (pat.bytes.empty()) {
      violations.add("pattern-empty", "middlebox ", pat.middlebox, " rule ",
                     pat.pattern_id, " is the empty string");
      continue;
    }
    if (pat.bytes.size() > dpi::kMaxPatternBytes) {
      violations.add("pattern-too-long", "middlebox ", pat.middlebox, " rule ",
                     pat.pattern_id, " is ", pat.bytes.size(),
                     " bytes (limit ", dpi::kMaxPatternBytes, ")");
    }
    if (!exact_refs[pat.bytes].insert({pat.middlebox, pat.pattern_id}).second) {
      warnings.add("duplicate-registration", "middlebox ", pat.middlebox,
                   " rule ", pat.pattern_id,
                   " registers the same bytes twice (compile dedupes)");
    }
  }
  std::size_t shared_patterns = 0;
  for (const auto& [bytes, refs] : exact_refs) {
    std::set<dpi::MiddleboxId> owners;
    for (const auto& [mbox, rule] : refs) owners.insert(mbox);
    if (owners.size() > 1) ++shared_patterns;
  }
  if (shared_patterns > 0) {
    // §5.1's whole point: shared registrations cost one automaton entry.
    warnings.add("cross-tenant-duplicate", shared_patterns,
                 " distinct pattern(s) registered by multiple middleboxes "
                 "(deduplicated into one shared entry each)");
  }

  // --- regexes -------------------------------------------------------------
  RegexCostOptions ropts;
  ropts.anchors.min_length = options.engine.anchor_min_length;
  ropts.max_dfa_states = options.dfa_state_cap;
  ropts.max_program_size = options.max_program_size;
  std::set<std::string> anchor_strings;
  std::size_t anchor_occurrences = 0;
  std::size_t program_bytes = 0;
  for (const auto& re : spec.regex_patterns) {
    if (!known(re.middlebox)) {
      violations.add("regex-unknown-middlebox", "regex (rule ", re.pattern_id,
                     ") references unregistered middlebox ", re.middlebox);
    } else {
      ++per_middlebox[re.middlebox];
    }
    RegexReport rr;
    rr.middlebox = re.middlebox;
    rr.pattern_id = re.pattern_id;
    ropts.parse.case_insensitive = re.case_insensitive;
    try {
      rr.cost = analyze_regex(re.expression, ropts);
    } catch (const regex::SyntaxError& e) {
      rr.error = e.what();
      violations.add("regex-syntax-error", "middlebox ", re.middlebox,
                     " rule ", re.pattern_id, ": ", e.what());
      report.regexes.push_back(std::move(rr));
      continue;
    }
    const RegexCost& cost = rr.cost;
    report.total_regex_instructions =
        sat_add(report.total_regex_instructions, cost.nfa_instructions);
    program_bytes = sat_add(
        program_bytes, cost.program_oversized
                           ? kSaturated
                           : cost.nfa_instructions * sizeof(regex::Inst));
    anchor_occurrences += cost.anchor_count;
    for (const std::string& anchor : cost.anchors) {
      anchor_strings.insert(anchor);
    }

    const auto id = [&re] {
      std::ostringstream os;
      os << "middlebox " << re.middlebox << " rule " << re.pattern_id;
      return os.str();
    }();
    if (cost.program_oversized) {
      // Unconditionally fatal: materializing this program (which admission
      // into the PatternDb would eventually force on every engine compile)
      // is a memory bomb, whatever the budget says.
      violations.add("regex-program-too-large", id, " expands to ",
                     cost.nfa_instructions,
                     " NFA instructions (materialization cap ",
                     options.max_program_size, ")");
    }
    if (options.budget.max_regex_nfa_instructions != 0 &&
        cost.nfa_instructions > options.budget.max_regex_nfa_instructions) {
      violations.add("regex-nfa-over-budget", id, " compiles to ",
                     cost.nfa_instructions, " NFA instructions (budget ",
                     options.budget.max_regex_nfa_instructions, ")");
    }
    if (options.budget.max_regex_dfa_states != 0 &&
        (cost.dfa_capped ||
         cost.dfa_states > options.budget.max_regex_dfa_states)) {
      violations.add("regex-dfa-blowup", id, " determinizes to ",
                     cost.dfa_capped ? ">= " : "", cost.dfa_states,
                     " DFA states (budget ",
                     options.budget.max_regex_dfa_states, ")");
    } else if (cost.dfa_capped && !cost.program_oversized) {
      warnings.add("regex-dfa-capped", id,
                   " subset construction capped at ", cost.dfa_states,
                   " states");
    }
    if (cost.anchorless) {
      if (options.budget.reject_anchorless_regex) {
        violations.add("regex-anchorless", id, " has no literal anchor of ",
                       options.engine.anchor_min_length,
                       "+ bytes; it would be evaluated on every flow");
      } else {
        warnings.add("regex-anchorless", id,
                     " has no extractable anchor (no AC pre-filter)");
      }
    }
    if (cost.has_unbounded_repeat) {
      if (options.budget.reject_unbounded_repeat) {
        violations.add("regex-unbounded-repeat", id,
                       " contains an unbounded repetition");
      } else {
        warnings.add("regex-unbounded-repeat", id,
                     " contains an unbounded repetition");
      }
    }
    if (cost.large_class_repeat) {
      if (options.budget.reject_large_class_repeat) {
        violations.add("regex-large-class-repeat", id,
                       " repeats a >=128-byte class without bound — the "
                       "classic combined-DFA explosion shape");
      } else {
        warnings.add("regex-large-class-repeat", id,
                     " repeats a >=128-byte class without bound");
      }
    }
    report.regexes.push_back(std::move(rr));
  }
  report.anchor_bits = anchor_strings.size();
  if (report.anchor_bits > options.engine.max_anchor_bits) {
    // Mirrors Engine::compile's hard failure.
    violations.add("anchor-bits-exceeded", report.anchor_bits,
                   " distinct regex anchors exceed the per-scan hit-set "
                   "capacity (EngineConfig::max_anchor_bits = ",
                   options.engine.max_anchor_bits, ")");
  }

  // --- chains --------------------------------------------------------------
  for (const auto& [chain, members] : spec.chains) {
    for (dpi::MiddleboxId id : members) {
      if (!known(id)) {
        violations.add("chain-unknown-middlebox", "chain ", chain,
                       " references unregistered middlebox ", id);
      }
    }
  }

  // --- per-tenant quota ----------------------------------------------------
  if (options.budget.max_patterns_per_middlebox != 0) {
    for (const auto& [mbox, count] : per_middlebox) {
      if (count > options.budget.max_patterns_per_middlebox) {
        violations.add("middlebox-quota-exceeded", "middlebox ", mbox,
                       " registers ", count, " patterns (quota ",
                       options.budget.max_patterns_per_middlebox, ")");
      }
    }
  }

  // --- combined automaton prediction ---------------------------------------
  // The string table is exact patterns plus regex anchors, deduplicated —
  // exactly Engine::compile's collection (and verify::derive_string_table).
  // Per-string match-row weight: distinct (middlebox, rule) exact
  // registrations plus one anchor target if the string anchors any regex.
  TrieEstimator trie;
  std::set<std::string_view> inserted;
  for (const auto& [bytes, refs] : exact_refs) {
    if (bytes.empty()) continue;  // already a violation; keep the model sane
    const std::size_t weight =
        refs.size() + (anchor_strings.count(bytes) ? 1 : 0);
    trie.insert(bytes, weight);
    inserted.insert(bytes);
  }
  for (const std::string& anchor : anchor_strings) {
    if (anchor.empty() || inserted.count(anchor)) continue;
    trie.insert(anchor, 1);
  }

  MemoryModel automaton;
  if (trie.num_states() == 1) {
    // Degenerate spec: Engine::compile swaps in a never-matching placeholder
    // pattern (always in the full-table representation).
    TrieEstimator placeholder;
    placeholder.insert(kPlaceholder, 0);
    const TrieStats stats = placeholder.stats();
    report.distinct_strings = 0;
    report.predicted_states = stats.states;
    report.predicted_accepting = stats.accepting;
    report.predicted_match_entries = stats.match_entries;
    report.predicted_target_entries = 0;
    report.trie = TrieStats{};
    automaton = automaton_memory(stats.states, stats.accepting,
                                 stats.match_entries);
    automaton.compressed = automaton.full;
  } else {
    report.trie = trie.stats();
    report.distinct_strings = report.trie.pattern_count;
    report.predicted_states = report.trie.states;
    report.predicted_accepting = report.trie.accepting;
    report.predicted_match_entries = report.trie.match_entries;
    report.predicted_target_entries = report.trie.weighted_match_entries;
    automaton = automaton_memory(report.trie.states, report.trie.accepting,
                                 report.trie.match_entries);
  }

  // Engine-level additions on top of the automaton (Engine::memory_bytes).
  const std::size_t engine_extra =
      report.predicted_accepting * sizeof(dpi::MiddleboxBitmap) +
      report.predicted_accepting * kTargetRowOverhead +
      report.predicted_target_entries * sizeof(dpi::Engine::MatchTarget) +
      anchor_occurrences * sizeof(std::uint32_t);
  report.predicted_memory_full =
      sat_add(sat_add(automaton.full, engine_extra), program_bytes);
  report.predicted_memory_compressed =
      sat_add(sat_add(automaton.compressed, engine_extra), program_bytes);

  // --- combined budgets ----------------------------------------------------
  if (options.budget.max_automaton_states != 0 &&
      report.predicted_states > options.budget.max_automaton_states) {
    violations.add("states-over-budget", "predicted combined automaton has ",
                   report.predicted_states, " states (budget ",
                   options.budget.max_automaton_states, ")");
  }
  const std::size_t predicted_memory = options.engine.use_compressed_automaton
                                           ? report.predicted_memory_compressed
                                           : report.predicted_memory_full;
  if (options.budget.max_memory_bytes != 0 &&
      predicted_memory > options.budget.max_memory_bytes) {
    violations.add("memory-over-budget", "predicted engine footprint is ",
                   predicted_memory, " bytes (budget ",
                   options.budget.max_memory_bytes, ")");
  }
}

}  // namespace

PatternSetReport analyze(const dpi::EngineSpec& spec,
                         const AnalysisOptions& options) {
  PatternSetReport report;
  analyze_into(spec, options, report);
  return report;
}

}  // namespace dpisvc::analysis
