// Pattern-set admission analysis: predict the combined engine an EngineSpec
// would compile to — states, accepting states, match-row totals, memory in
// both automaton representations — and police it against a configurable
// budget, all without compiling the spec.
//
// The analyzer plays two roles:
//
//  - Admission control (src/service/controller.cpp): every add_patterns
//    request is analyzed against the controller's budget before the
//    PatternDb is touched. Violations reject the request fail-closed with a
//    stable diagnostic code; already-admitted tenants keep scanning on the
//    previous engine.
//  - Offline linting (tools/dpisvc_lint): the same analysis over a pattern
//    file or the built-in seed workloads, with --calibrate cross-checking
//    every prediction against an actual compile.
//
// Consistency contract (fuzz_pattern_analysis enforces it): if analyze()
// reports no violation, dpi::Engine::compile of the same spec with the same
// EngineConfig succeeds. The reverse is deliberately not promised — the
// analyzer is allowed to be stricter (budgets, oversized-program guards).
//
// Diagnostics reuse verify::Diagnostic so dpisvc_lint, dpisvc_check and the
// controller speak one code scheme.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cost_model.hpp"
#include "dpi/engine.hpp"
#include "verify/verifier.hpp"

namespace dpisvc::analysis {

/// Budget knobs. 0 (or false) disables the corresponding check, so a
/// default-constructed budget admits everything a compile would accept.
struct AnalysisBudget {
  std::size_t max_automaton_states = 0;   ///< predicted combined AC states
  std::size_t max_memory_bytes = 0;       ///< predicted engine memory
  std::size_t max_regex_nfa_instructions = 0;  ///< per expression
  std::size_t max_regex_dfa_states = 0;   ///< per expression (capped == over)
  std::size_t max_patterns_per_middlebox = 0;  ///< exact + regex per tenant
  bool reject_anchorless_regex = false;   ///< no AC pre-filter possible
  bool reject_unbounded_repeat = false;   ///< '*' / '+' / '{m,}'
  bool reject_large_class_repeat = false; ///< >=128-byte class under one
};

struct AnalysisOptions {
  AnalysisBudget budget;
  /// Must match the EngineConfig the spec will actually be compiled with:
  /// anchor_min_length changes the distinct-string set, max_anchor_bits is a
  /// hard compile failure, use_compressed_automaton selects which memory
  /// model the budget is checked against.
  dpi::EngineConfig engine;
  /// Per-expression subset-construction exploration cap (see RegexCostOptions).
  std::size_t dfa_state_cap = 2048;
  /// Per-expression Pike-VM materialization cap (see RegexCostOptions).
  std::size_t max_program_size = 1u << 20;
};

/// One analyzed expression, parallel to EngineSpec::regex_patterns. When
/// `error` is non-empty the expression failed to parse and `cost` is
/// default-initialized.
struct RegexReport {
  dpi::MiddleboxId middlebox = 0;
  dpi::PatternId pattern_id = 0;
  RegexCost cost;
  std::string error;  ///< SyntaxError message, empty if parsed
};

struct PatternSetReport {
  // --- predicted combined-engine artifacts (exact unless noted) ------------
  std::size_t distinct_strings = 0;     ///< exact patterns + regex anchors
  std::size_t predicted_states = 0;     ///< == Engine::num_automaton_states()
  std::size_t predicted_accepting = 0;  ///< == num_accepting_states()
  std::size_t predicted_match_entries = 0;   ///< automaton match-row total
  std::size_t predicted_target_entries = 0;  ///< engine accept-target total
  std::size_t anchor_bits = 0;          ///< distinct anchor strings
  std::size_t predicted_memory_full = 0;        ///< full-table engine bytes
  std::size_t predicted_memory_compressed = 0;  ///< compressed engine bytes
  std::size_t total_regex_instructions = 0;  ///< saturating sum
  TrieStats trie;
  std::vector<RegexReport> regexes;

  // --- verdict -------------------------------------------------------------
  /// Fatal findings; admission rejects when non-empty. Codes:
  /// "middlebox-id-out-of-range", "duplicate-middlebox-id",
  /// "pattern-unknown-middlebox", "pattern-empty", "pattern-too-long",
  /// "regex-unknown-middlebox", "regex-syntax-error", "anchor-bits-exceeded",
  /// "chain-unknown-middlebox", "states-over-budget", "memory-over-budget",
  /// "regex-nfa-over-budget", "regex-dfa-blowup", "regex-program-too-large",
  /// "middlebox-quota-exceeded", "regex-anchorless",
  /// "regex-unbounded-repeat", "regex-large-class-repeat".
  std::vector<verify::Diagnostic> violations;
  /// Advisory findings; never reject. Codes: "cross-tenant-duplicate",
  /// "duplicate-registration", "regex-anchorless",
  /// "regex-unbounded-repeat", "regex-large-class-repeat",
  /// "regex-dfa-capped".
  std::vector<verify::Diagnostic> warnings;

  bool admissible() const noexcept { return violations.empty(); }
};

/// Analyzes a full spec. Never throws on bad pattern input — malformed
/// regexes, unknown middleboxes etc. become violations.
PatternSetReport analyze(const dpi::EngineSpec& spec,
                         const AnalysisOptions& options = {});

/// The memory-model constant documented for the calibration test: predicted
/// memory is exact for the automaton tables; only allocator slack is outside
/// the model, so predictions must equal Engine::memory_bytes() exactly.
/// (Kept as a named factor so the docs and tests share one number.)
inline constexpr double kMemoryCalibrationFactor = 1.0;

}  // namespace dpisvc::analysis
