#include "analysis/cost_model.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "regex/program.hpp"

namespace dpisvc::analysis {

namespace {

/// AST walk for the structural risk flags. `under_unbounded` is true when an
/// ancestor repeat has no upper bound — a wide class there is the signature
/// of combined-DFA state explosion.
void walk_flags(const regex::Node& node, bool under_unbounded, RegexCost& out) {
  switch (node.kind) {
    case regex::NodeKind::kClass: {
      const std::size_t size = node.cls.bits.count();
      out.max_class_size = std::max(out.max_class_size, size);
      if (under_unbounded && size >= 128) {
        out.large_class_repeat = true;
      }
      break;
    }
    case regex::NodeKind::kRepeat: {
      const bool unbounded = node.max < 0;
      if (unbounded) out.has_unbounded_repeat = true;
      if (node.child) {
        walk_flags(*node.child, under_unbounded || unbounded, out);
      }
      break;
    }
    case regex::NodeKind::kConcat:
    case regex::NodeKind::kAlternate:
      for (const auto& child : node.children) {
        walk_flags(*child, under_unbounded, out);
      }
      break;
    default:
      break;
  }
}

/// Epsilon closure over the Pike-VM program: expands kSplit/kJmp and the
/// zero-width assertions, collecting the byte-consuming frontier plus a
/// match flag. kLineStart is traversable only in the position-0 closure;
/// kLineEnd is treated as always traversable (an over-approximation — the
/// estimator predicts an upper bound of states, never an undercount).
struct Frontier {
  std::vector<std::uint32_t> byte_pcs;  // sorted, deduped
  bool match = false;
};

Frontier closure(const std::vector<regex::Inst>& code,
                 const std::vector<std::uint32_t>& pcs, bool at_start) {
  // Iterative (explicit stack): adversarial nested counted repeats can chain
  // millions of kSplit/kJmp instructions, which would overflow the call
  // stack if this recursed.
  Frontier out;
  std::vector<bool> seen(code.size(), false);
  std::vector<std::uint32_t> stack(pcs.rbegin(), pcs.rend());
  while (!stack.empty()) {
    const std::uint32_t pc = stack.back();
    stack.pop_back();
    if (pc >= code.size() || seen[pc]) continue;
    seen[pc] = true;
    const regex::Inst& inst = code[pc];
    switch (inst.op) {
      case regex::Op::kByte:
        out.byte_pcs.push_back(pc);
        break;
      case regex::Op::kSplit:
        stack.push_back(inst.y);
        stack.push_back(inst.x);
        break;
      case regex::Op::kJmp:
        stack.push_back(inst.x);
        break;
      case regex::Op::kLineStart:
        if (at_start) stack.push_back(pc + 1);
        break;
      case regex::Op::kLineEnd:
        stack.push_back(pc + 1);
        break;
      case regex::Op::kMatch:
        out.match = true;
        break;
    }
  }
  std::sort(out.byte_pcs.begin(), out.byte_pcs.end());
  return out;
}

/// DFA state identity for the subset construction: the consuming frontier
/// plus the match flag (encoded as a sentinel past any valid pc).
std::vector<std::uint32_t> state_key(const Frontier& f, std::size_t code_size) {
  std::vector<std::uint32_t> key = f.byte_pcs;
  if (f.match) key.push_back(static_cast<std::uint32_t>(code_size) + 1);
  return key;
}

/// Saturating arithmetic for the AST-level size prediction: a nested counted
/// repeat can express sizes far beyond any integer, and the only question we
/// need answered is "does it exceed the cap".
constexpr std::size_t kSaturated = static_cast<std::size_t>(-1) >> 2;

std::size_t sat_add(std::size_t a, std::size_t b) {
  return (a >= kSaturated - b) ? kSaturated : a + b;
}

std::size_t sat_mul(std::size_t a, std::size_t b) {
  if (a == 0 || b == 0) return 0;
  return (a >= kSaturated / b) ? kSaturated : a * b;
}

struct PredictedCounts {
  std::size_t insts = 0;  ///< total instructions the emitter would produce
  std::size_t bytes = 0;  ///< kByte instructions among them
};

/// Replicates Program::compile_node's emission counts arithmetically. Kept in
/// lock-step with the emitter; analysis_test asserts equality against actual
/// compiled programs.
PredictedCounts predict_counts(const regex::Node& node) {
  PredictedCounts out;
  switch (node.kind) {
    case regex::NodeKind::kEmpty:
      break;
    case regex::NodeKind::kClass:
      out.insts = out.bytes = 1;
      break;
    case regex::NodeKind::kConcat:
      for (const auto& child : node.children) {
        const PredictedCounts c = predict_counts(*child);
        out.insts = sat_add(out.insts, c.insts);
        out.bytes = sat_add(out.bytes, c.bytes);
      }
      break;
    case regex::NodeKind::kAlternate: {
      for (const auto& child : node.children) {
        const PredictedCounts c = predict_counts(*child);
        out.insts = sat_add(out.insts, c.insts);
        out.bytes = sat_add(out.bytes, c.bytes);
      }
      // One split + one jmp per non-last branch.
      if (!node.children.empty()) {
        out.insts = sat_add(out.insts, 2 * (node.children.size() - 1));
      }
      break;
    }
    case regex::NodeKind::kRepeat: {
      const PredictedCounts c =
          node.child ? predict_counts(*node.child) : PredictedCounts{};
      const auto min = static_cast<std::size_t>(node.min);
      out.insts = sat_mul(min, c.insts);
      out.bytes = sat_mul(min, c.bytes);
      if (node.max < 0) {
        // split + body + jmp.
        out.insts = sat_add(out.insts, sat_add(c.insts, 2));
        out.bytes = sat_add(out.bytes, c.bytes);
      } else {
        // (max - min) copies of split + body.
        const auto opt = static_cast<std::size_t>(node.max) - min;
        out.insts = sat_add(out.insts, sat_mul(opt, sat_add(c.insts, 1)));
        out.bytes = sat_add(out.bytes, sat_mul(opt, c.bytes));
      }
      break;
    }
    case regex::NodeKind::kLineStart:
    case regex::NodeKind::kLineEnd:
      out.insts = 1;
      break;
  }
  return out;
}

/// Collects the distinct CharSets of the AST (expansion only duplicates
/// them, so this equals the distinct sets of the compiled program).
void collect_classes(const regex::Node& node,
                     std::vector<regex::CharSet>& out) {
  switch (node.kind) {
    case regex::NodeKind::kClass: {
      for (const regex::CharSet& s : out) {
        if (s.bits == node.cls.bits) return;
      }
      out.push_back(node.cls);
      break;
    }
    case regex::NodeKind::kRepeat:
      if (node.child) collect_classes(*node.child, out);
      break;
    case regex::NodeKind::kConcat:
    case regex::NodeKind::kAlternate:
      for (const auto& child : node.children) {
        collect_classes(*child, out);
      }
      break;
    default:
      break;
  }
}

}  // namespace

RegexCost analyze_regex(std::string_view expression,
                        const RegexCostOptions& options) {
  RegexCost cost;
  regex::NodePtr ast = regex::parse(expression, options.parse);  // may throw
  walk_flags(*ast, /*under_unbounded=*/false, cost);

  cost.anchors = regex::extract_anchors(*ast, options.anchors);
  cost.anchor_count = cost.anchors.size();
  for (const std::string& a : cost.anchors) {
    cost.longest_anchor = std::max(cost.longest_anchor, a.size());
  }
  cost.anchorless = cost.anchors.empty();

  const PredictedCounts predicted = predict_counts(*ast);
  cost.nfa_instructions = sat_add(predicted.insts, 1);  // + the kMatch
  cost.closure_width_bound = sat_add(predicted.bytes, 1);

  // Byte-equivalence classes: two bytes transition identically iff every
  // CharSet in the program agrees on them. Partition by per-byte signature
  // over the distinct AST classes (repeat expansion only duplicates sets).
  std::vector<regex::CharSet> sets;
  collect_classes(*ast, sets);
  std::map<std::vector<std::uint64_t>, std::vector<std::uint8_t>> classes;
  const std::size_t words = (sets.size() + 63) / 64;
  for (unsigned b = 0; b < 256; ++b) {
    std::vector<std::uint64_t> sig(words == 0 ? 1 : words, 0);
    for (std::size_t i = 0; i < sets.size(); ++i) {
      if (sets[i].contains(static_cast<std::uint8_t>(b))) {
        sig[i >> 6] |= 1ull << (i & 63);
      }
    }
    classes[std::move(sig)].push_back(static_cast<std::uint8_t>(b));
  }
  cost.byte_classes = classes.size();

  if (cost.nfa_instructions > options.max_program_size) {
    // Never materialize a program this size — predicting the blow-up without
    // allocating it is the point of admission analysis.
    cost.program_oversized = true;
    cost.dfa_capped = true;
    cost.dfa_states = 0;
    return cost;
  }

  const regex::Program program = regex::Program::compile(*ast);
  const std::vector<regex::Inst>& code = program.code();
  std::vector<std::uint8_t> representatives;
  representatives.reserve(classes.size());
  for (const auto& [sig, members] : classes) {
    representatives.push_back(members.front());
  }

  // Bounded subset construction with unanchored-search semantics: a scanning
  // DFA restarts a match attempt at every byte, so the fresh-start closure is
  // folded into every successor state.
  const Frontier base = closure(code, {0}, /*at_start=*/false);
  const Frontier start = closure(code, {0}, /*at_start=*/true);

  std::map<std::vector<std::uint32_t>, std::uint32_t> dfa;
  std::queue<Frontier> worklist;
  auto intern = [&](Frontier f) {
    auto [it, inserted] = dfa.emplace(state_key(f, code.size()),
                                      static_cast<std::uint32_t>(dfa.size()));
    if (inserted && dfa.size() <= options.max_dfa_states) {
      worklist.push(std::move(f));
    }
    return it->second;
  };
  intern(start);
  while (!worklist.empty() && !cost.dfa_capped) {
    const Frontier current = std::move(worklist.front());
    worklist.pop();
    for (std::uint8_t rep : representatives) {
      std::vector<std::uint32_t> moved;
      for (std::uint32_t pc : current.byte_pcs) {
        if (code[pc].cls.contains(rep)) moved.push_back(pc + 1);
      }
      Frontier next = closure(code, moved, /*at_start=*/false);
      // Fold the restart threads in (unanchored search).
      next.byte_pcs.insert(next.byte_pcs.end(), base.byte_pcs.begin(),
                           base.byte_pcs.end());
      std::sort(next.byte_pcs.begin(), next.byte_pcs.end());
      next.byte_pcs.erase(
          std::unique(next.byte_pcs.begin(), next.byte_pcs.end()),
          next.byte_pcs.end());
      next.match = next.match || base.match;
      intern(std::move(next));
      if (dfa.size() > options.max_dfa_states) {
        cost.dfa_capped = true;
        break;
      }
    }
  }
  cost.dfa_states = std::min(dfa.size(), options.max_dfa_states);
  return cost;
}

std::uint32_t TrieEstimator::child_of(std::uint32_t node,
                                      std::uint8_t byte) const {
  const auto& kids = nodes_[node].children;
  auto it = std::lower_bound(
      kids.begin(), kids.end(), byte,
      [](const std::pair<std::uint8_t, std::uint32_t>& e, std::uint8_t b) {
        return e.first < b;
      });
  if (it == kids.end() || it->first != byte) return UINT32_MAX;
  return it->second;
}

std::size_t TrieEstimator::insert(std::string_view bytes, std::size_t weight) {
  std::size_t created = 0;
  std::uint32_t node = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const auto byte = static_cast<std::uint8_t>(bytes[i]);
    std::uint32_t next = child_of(node, byte);
    if (next == UINT32_MAX) {
      next = static_cast<std::uint32_t>(nodes_.size());
      NodeRec rec;
      rec.depth = nodes_[node].depth + 1;
      auto& kids = nodes_[node].children;
      kids.insert(std::lower_bound(
                      kids.begin(), kids.end(), byte,
                      [](const std::pair<std::uint8_t, std::uint32_t>& e,
                         std::uint8_t b) { return e.first < b; }),
                  {byte, next});
      nodes_.push_back(std::move(rec));
      ++created;
    } else {
      shared_prefix_bytes_ += created == 0 ? 1 : 0;
    }
    node = next;
  }
  nodes_[node].ends_here += 1;
  nodes_[node].weight_here += weight;
  ++pattern_count_;
  total_bytes_ += bytes.size();
  return created;
}

TrieStats TrieEstimator::stats() const {
  TrieStats out;
  out.states = nodes_.size();
  out.edges = nodes_.size() - 1;
  out.pattern_count = pattern_count_;
  out.total_bytes = total_bytes_;
  out.shared_prefix_bytes = shared_prefix_bytes_;

  // Classic failure-link BFS, but propagating integer totals instead of
  // materialized output sets: ends_total(v) = ends_here(v) + ends_total(
  // fail(v)). fail(v) is strictly shallower than v, so in BFS order its
  // total is final when v is dequeued.
  std::vector<std::uint32_t> fail(nodes_.size(), 0);
  std::vector<std::uint64_t> ends_total(nodes_.size(), 0);
  std::vector<std::uint64_t> weight_total(nodes_.size(), 0);
  std::queue<std::uint32_t> queue;
  for (const auto& [byte, child] : nodes_[0].children) {
    (void)byte;
    fail[child] = 0;
    queue.push(child);
  }
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop();
    ends_total[u] = nodes_[u].ends_here + ends_total[fail[u]];
    weight_total[u] = nodes_[u].weight_here + weight_total[fail[u]];
    for (const auto& [byte, v] : nodes_[u].children) {
      std::uint32_t f = fail[u];
      std::uint32_t target = child_of(f, byte);
      while (target == UINT32_MAX && f != 0) {
        f = fail[f];
        target = child_of(f, byte);
      }
      fail[v] = target == UINT32_MAX ? 0 : target;
      queue.push(v);
    }
  }
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    out.max_depth = std::max<std::size_t>(out.max_depth, nodes_[v].depth);
    if (ends_total[v] > 0) {
      ++out.accepting;
      out.match_entries += static_cast<std::size_t>(ends_total[v]);
      out.weighted_match_entries += static_cast<std::size_t>(weight_total[v]);
    }
  }
  out.suffix_overlap_entries = out.match_entries - out.pattern_count;
  return out;
}

}  // namespace dpisvc::analysis
