// Static cost models for pattern-set admission (§ "DPI as a service" pooling).
//
// When many middleboxes share one DPI engine, a single tenant's pattern set
// can blow up the combined automaton for everyone. These models predict the
// blow-up *before* anything is compiled:
//
//  - RegexCost walks the AST and the compiled Pike-VM program of a single
//    expression: NFA instruction count, an epsilon-closure width bound (the
//    largest thread frontier the VM can ever hold), and a bounded subset
//    construction over the program that estimates how many DFA states the
//    expression would contribute to a determinized engine. Structural risk
//    flags (unbounded repeats, large classes under unbounded repeats,
//    anchorless expressions) catch the classic ".*[a-z]+" state-explosion
//    drivers even when the bounded exploration gives up.
//  - TrieEstimator models the shared Aho-Corasick automaton incrementally:
//    insert() returns the marginal state growth of each pattern (shared
//    prefixes are free), and stats() computes — via its own failure-link
//    BFS, sharing no code with src/ac — the exact state/accepting counts and
//    propagated match-row totals the real FullAutomaton would materialize.
//
// The estimator is deliberately exact where exactness is cheap (trie states,
// accepting states, match-row entries are reproduced by definition) and a
// documented upper-bound elsewhere; tests/analysis_test.cpp calibrates both
// against actual src/ac + dpi::Engine compilation of the seed workloads.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "regex/anchors.hpp"
#include "regex/parser.hpp"

namespace dpisvc::analysis {

struct RegexCostOptions {
  regex::ParseOptions parse;      ///< must match the engine's compile options
  regex::AnchorOptions anchors;   ///< must match EngineConfig::anchor_min_length
  /// Bounded subset-construction exploration cap. Exploration stops (and
  /// RegexCost::dfa_capped is set) once this many DFA states were discovered;
  /// a capped result is itself the blow-up signal.
  std::size_t max_dfa_states = 2048;
  /// Hard cap on the Pike-VM program size the model is willing to actually
  /// compile. Nested counted repeats expand multiplicatively ("(a{999}){999}"
  /// is ~10^6 instructions from 12 bytes of input), so the instruction count
  /// is first predicted arithmetically from the AST; beyond this cap the
  /// program is never materialized (RegexCost::program_oversized) — this is
  /// what lets admission control reject a compile-time memory bomb without
  /// detonating it.
  std::size_t max_program_size = 1u << 20;
};

struct RegexCost {
  /// Pike-VM program length. Predicted exactly from the AST (the emitter's
  /// instruction counts are replicated arithmetically, saturating), so it is
  /// available even when the program was too large to materialize; equals
  /// Program::compile(...).size() whenever program_oversized is false.
  std::size_t nfa_instructions = 0;
  /// Predicted program size exceeded RegexCostOptions::max_program_size; the
  /// program was not compiled and dfa_states is meaningless (dfa_capped is
  /// set — an expression this large is a blow-up by definition).
  bool program_oversized = false;
  /// Upper bound on simultaneous VM threads after epsilon closure: the number
  /// of byte-consuming instructions plus the match instruction. Proportional
  /// to worst-case per-byte scan cost of the NFA simulation.
  std::size_t closure_width_bound = 0;
  /// DFA states discovered by bounded subset construction over the program
  /// (unanchored-search semantics: the start closure is folded into every
  /// state, as a scanning DFA would). Exact when dfa_capped is false.
  std::size_t dfa_states = 0;
  bool dfa_capped = false;  ///< exploration hit max_dfa_states
  /// Byte-equivalence classes of the program: bytes indistinguishable by
  /// every CharSet collapse into one class; DFA fan-out is bounded by this.
  std::size_t byte_classes = 0;
  std::size_t anchor_count = 0;    ///< literal anchors extractable (§5.3)
  std::size_t longest_anchor = 0;  ///< length of the longest anchor
  /// The anchor strings themselves, exactly as the engine would register
  /// them into the shared AC set (the analyzer feeds these to TrieEstimator).
  std::vector<std::string> anchors;
  /// No anchor of at least AnchorOptions::min_length exists, so the engine
  /// must evaluate this expression against every flow with no AC pre-filter.
  bool anchorless = false;
  bool has_unbounded_repeat = false;  ///< '*', '+' or '{m,}' anywhere
  std::size_t max_class_size = 0;     ///< cardinality of the widest class
  /// A class of >= 128 bytes sits under an unbounded repeat — the structural
  /// signature of combined-DFA state explosion (e.g. ".*foo").
  bool large_class_repeat = false;
};

/// Analyzes one expression. Throws regex::SyntaxError on malformed input —
/// the same exception Engine::compile would surface.
RegexCost analyze_regex(std::string_view expression,
                        const RegexCostOptions& options = {});

/// Aggregate statistics of the predicted shared AC automaton; all counts are
/// exact for the trie the engine would build over the same distinct strings.
struct TrieStats {
  std::size_t states = 1;          ///< incl. root; == FullAutomaton::num_states
  std::size_t accepting = 0;       ///< states with non-empty propagated output
  std::size_t edges = 0;           ///< goto edges (== states - 1)
  std::size_t pattern_count = 0;   ///< distinct strings inserted
  std::size_t total_bytes = 0;     ///< sum of pattern lengths
  std::size_t shared_prefix_bytes = 0;  ///< bytes absorbed by existing states
  std::size_t max_depth = 0;
  /// Total match-row entries after suffix propagation at distinct-string
  /// granularity (one entry per string per accepting state whose failure
  /// chain ends it) — the row total a FullAutomaton materializes.
  std::size_t match_entries = 0;
  /// Same propagation weighted by caller-supplied per-string weights (the
  /// analyzer passes registration counts + anchor bits, predicting the
  /// engine's accept_targets row total).
  std::size_t weighted_match_entries = 0;
  /// match_entries - pattern_count: propagated entries caused by one string
  /// being a proper suffix of a path to another state (cross-set overlap).
  std::size_t suffix_overlap_entries = 0;
};

/// Incremental prefix-trie model of the shared AC automaton. Shares no code
/// with src/ac on purpose: the calibration test proves this independent
/// derivation equals the real construction.
class TrieEstimator {
 public:
  /// Adds one distinct string; returns the number of NEW states it creates
  /// (0 for a duplicate or a prefix of an existing pattern). `weight` is the
  /// caller's per-string match-row weight (see TrieStats).
  std::size_t insert(std::string_view bytes, std::size_t weight = 1);

  std::size_t num_states() const noexcept { return nodes_.size(); }

  /// Runs the failure-link BFS and aggregates. Non-destructive; may be
  /// called repeatedly as patterns accumulate.
  TrieStats stats() const;

 private:
  struct NodeRec {
    std::vector<std::pair<std::uint8_t, std::uint32_t>> children;  // sorted
    std::uint32_t depth = 0;
    std::uint32_t ends_here = 0;       ///< distinct strings terminating here
    std::uint64_t weight_here = 0;     ///< summed weights of those strings
  };
  std::uint32_t child_of(std::uint32_t node, std::uint8_t byte) const;

  std::vector<NodeRec> nodes_ = {NodeRec{}};  // node 0 = root
  std::size_t pattern_count_ = 0;
  std::size_t total_bytes_ = 0;
  std::size_t shared_prefix_bytes_ = 0;
};

}  // namespace dpisvc::analysis
