#include "common/arena.hpp"

#include <algorithm>
#include <cstring>

namespace dpisvc {

PacketArena::PacketArena(std::size_t chunk_bytes)
    : chunk_bytes_(std::max<std::size_t>(chunk_bytes, 64)) {}

std::uint8_t* PacketArena::alloc(std::size_t n) {
  if (n == 0) return nullptr;
  // Find room in the current chunk, or advance to a reusable one.
  while (current_ < chunks_.size() &&
         offset_ + n > chunks_[current_].size) {
    ++current_;
    offset_ = 0;
  }
  if (current_ == chunks_.size()) {
    const std::size_t size = std::max(chunk_bytes_, n);
    chunks_.push_back(Chunk{std::make_unique<std::uint8_t[]>(size), size});
    bytes_reserved_ += size;
    offset_ = 0;
  }
  std::uint8_t* out = chunks_[current_].data.get() + offset_;
  offset_ += n;
  bytes_used_ += n;
  return out;
}

BytesView PacketArena::append(BytesView payload) {
  if (payload.empty()) return {};
  std::uint8_t* dst = alloc(payload.size());
  std::memcpy(dst, payload.data(), payload.size());
  return BytesView(dst, payload.size());
}

void PacketArena::reset() noexcept {
  current_ = 0;
  offset_ = 0;
  bytes_used_ = 0;
}

}  // namespace dpisvc
