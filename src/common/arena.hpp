// Chunked bump-allocator arena for packet payload bytes.
//
// The zero-copy ingest pipeline (DESIGN.md §4h) writes each payload exactly
// once — at fabric ingress, into one of these arenas — and every later
// stage (shard scan, middlebox verdict) works on BytesView references into
// it. Chunks are never reallocated, so a view handed out by append() stays
// valid until reset(); growth allocates a new chunk and leaves the old ones
// (and all views into them) untouched.
//
// reset() rewinds the arena for reuse without returning chunks to the heap:
// a recycled ingest batch reaches steady state with zero allocations per
// batch. Not thread-safe — each arena is owned by exactly one batch, which
// is written by one producer and read (immutably) by the shard workers;
// the batch's pending/lease protocol orders the writes before the reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.hpp"

namespace dpisvc {

class PacketArena {
 public:
  /// `chunk_bytes` is the granularity of growth; an oversized payload gets
  /// a dedicated chunk of its exact size.
  explicit PacketArena(std::size_t chunk_bytes = 128 * 1024);

  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  /// Copies `payload` into the arena (the pipeline's single copy) and
  /// returns a stable view of the arena-resident bytes.
  BytesView append(BytesView payload);

  /// Uninitialized allocation for callers that produce bytes in place
  /// (e.g. reassembled chunks). Returns nullptr only for n == 0.
  std::uint8_t* alloc(std::size_t n);

  /// Payload bytes currently allocated (not capacity).
  std::size_t bytes_used() const noexcept { return bytes_used_; }

  /// Heap footprint of all chunks, used or not — what a bounded batch pool
  /// multiplies by to bound ingest memory.
  std::size_t bytes_reserved() const noexcept { return bytes_reserved_; }

  /// Rewinds to empty, keeping every chunk for reuse. All previously
  /// returned views become invalid.
  void reset() noexcept;

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;   ///< chunk being filled (chunks_ index)
  std::size_t offset_ = 0;    ///< fill position within the current chunk
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace dpisvc
