#include "common/bytes.hpp"

#include <stdexcept>

namespace dpisvc {

Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string_view as_text(BytesView bytes) noexcept {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

std::string to_string(BytesView bytes) {
  return std::string(as_text(bytes));
}

std::string to_hex(BytesView bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: non-hex character");
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_nibble(hex[i]) << 4) |
                                            hex_nibble(hex[i + 1])));
  }
  return out;
}

void put_be(Bytes& out, std::uint64_t value, int width) {
  for (int i = width - 1; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xFF));
  }
}

std::uint64_t get_be(BytesView data, std::size_t offset, int width) {
  if (offset + static_cast<std::size_t>(width) > data.size()) {
    throw std::out_of_range("get_be: read past end of buffer");
  }
  std::uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    value = (value << 8) | data[offset + static_cast<std::size_t>(i)];
  }
  return value;
}

}  // namespace dpisvc
