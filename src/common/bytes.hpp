// Byte-buffer primitives shared across the DPI service codebase.
//
// Payloads and wire messages are untyped byte sequences. We standardize on
// std::vector<uint8_t> for owned buffers and std::span<const uint8_t> for
// non-owning views, with conversion helpers to/from text for tests and
// pattern handling.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dpisvc {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Builds an owned byte buffer from text (no NUL terminator is added).
Bytes to_bytes(std::string_view text);

/// Reinterprets a byte view as text. The bytes are not required to be UTF-8;
/// this is a bit-preserving view conversion used by pattern matching code.
std::string_view as_text(BytesView bytes) noexcept;

/// Copies a byte view into a std::string (for diagnostics and JSON fields).
std::string to_string(BytesView bytes);

/// Renders bytes as lowercase hex, e.g. {0xDE, 0xAD} -> "dead".
std::string to_hex(BytesView bytes);

/// Parses lowercase/uppercase hex back into bytes. Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Appends an unsigned integer in big-endian byte order, width bytes wide.
void put_be(Bytes& out, std::uint64_t value, int width);

/// Reads a big-endian unsigned integer of the given width from data[offset..].
/// Throws std::out_of_range if the buffer is too short.
std::uint64_t get_be(BytesView data, std::size_t offset, int width);

}  // namespace dpisvc
