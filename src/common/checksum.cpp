#include "common/checksum.hpp"

#include <array>

namespace dpisvc {

std::uint16_t internet_checksum(BytesView data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(sum);
}

namespace {
std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(BytesView data) noexcept {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c = kTable[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a(BytesView data) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace dpisvc
