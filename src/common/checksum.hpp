// Checksums used by the packet layer.
//
// - Internet checksum (RFC 1071) for the simulated IPv4/TCP headers.
// - CRC32 (IEEE 802.3 polynomial, table-driven) for frame integrity and as a
//   stable content fingerprint in flow hashing.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace dpisvc {

/// RFC 1071 ones'-complement checksum over the buffer (odd trailing byte is
/// zero-padded). Returns the folded 16-bit checksum, not yet complemented.
std::uint16_t internet_checksum(BytesView data) noexcept;

/// IEEE CRC32 (reflected, init 0xFFFFFFFF, final xor 0xFFFFFFFF).
std::uint32_t crc32(BytesView data) noexcept;

/// 64-bit FNV-1a hash; used for flow-key hashing where speed matters more
/// than cryptographic strength.
std::uint64_t fnv1a(BytesView data) noexcept;

}  // namespace dpisvc
