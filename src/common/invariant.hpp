// Compiled-in invariant checks for the engine and service hot paths.
//
// DPISVC_ASSERT_INVARIANT(cond, msg) is the cheap runtime companion of the
// static verifier (src/verify): the verifier proves whole-structure
// properties offline, while these asserts guard the per-packet and
// per-control-operation code against the same corruptions at the moment
// they would first bite. They compile to nothing unless the build enables
// -DDPISVC_CHECK_INVARIANTS=ON (CMake option of the same name), so Release
// hot paths pay zero cost.
//
// A failed invariant is a programming error, never an input error: the
// handler prints the condition and location to stderr and aborts, which
// sanitizer CI turns into a first-class failure with a stack trace.
#pragma once

#if defined(DPISVC_CHECK_INVARIANTS) && DPISVC_CHECK_INVARIANTS

#include <cstdio>
#include <cstdlib>

namespace dpisvc::detail {
[[noreturn]] inline void invariant_failed(const char* cond, const char* msg,
                                          const char* file, int line) {
  std::fprintf(stderr, "dpisvc invariant violated: %s (%s) at %s:%d\n", msg,
               cond, file, line);
  std::abort();
}
}  // namespace dpisvc::detail

#define DPISVC_ASSERT_INVARIANT(cond, msg)                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::dpisvc::detail::invariant_failed(#cond, (msg), __FILE__, __LINE__); \
    }                                                                      \
  } while (false)

#else

#define DPISVC_ASSERT_INVARIANT(cond, msg) \
  do {                                     \
  } while (false)

#endif
