#include "common/logging.hpp"

#include <atomic>
#include <iostream>

#include "common/thread_safety.hpp"

namespace dpisvc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// The sink mutex is intentionally leaked: logging can be reached from
/// static destructors (e.g. an instance torn down at exit logging its
/// shutdown), after a function-local static mutex would already have been
/// destroyed. A leaked mutex is immortal and therefore always safe to lock.
/// The capability only serializes the stderr stream — there is no guarded
/// field, just the write itself.
Mutex& sink_mutex() {
  static Mutex* m = new Mutex;
  return *m;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

// The level is a plain threshold with no data published under it, so
// relaxed ordering suffices; readers only need atomicity, not ordering.
void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < log_level()) return;
  const MutexLock lock(sink_mutex());
  std::cerr << "[" << level_name(level) << "] " << component << ": " << message
            << '\n';
}

}  // namespace dpisvc
