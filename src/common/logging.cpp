#include "common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace dpisvc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << component << ": " << message
            << '\n';
}

}  // namespace dpisvc
