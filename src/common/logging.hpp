// Minimal leveled logger.
//
// Control-plane components (DPI controller, TSA, stress monitor) log their
// decisions so examples can show the orchestration happening; the data plane
// never logs on the per-packet path.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace dpisvc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded. Defaults to kWarn so
/// tests and benches stay quiet; examples raise it to kInfo.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes one formatted line to stderr if level passes the threshold.
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  append_all(os, rest...);
}
}  // namespace detail

/// Streams all arguments into one log line: LOG(kInfo, "ctrl", "x=", x).
template <typename... Args>
void log(LogLevel level, std::string_view component, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(level, component, os.str());
}

}  // namespace dpisvc
