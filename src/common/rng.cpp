#include "common/rng.hpp"

#include <numeric>

namespace dpisvc {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& s : state_) {
    s = splitmix64(seed);
  }
}

std::uint64_t Rng::next() noexcept {
  // xoshiro256** step.
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  const std::uint64_t span = hi - lo;
  if (span == UINT64_MAX) return next();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t range = span + 1;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + v % range;
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: empty range");
  return static_cast<std::size_t>(uniform(0, n - 1));
}

std::size_t Rng::weighted(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::weighted: no positive weight");
  }
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point tail.
}

}  // namespace dpisvc
