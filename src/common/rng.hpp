// Deterministic pseudo-random generator used by all workload generators.
//
// Experiments must be reproducible run-to-run, so every randomized component
// takes an explicit Rng seeded by the caller. The engine is xoshiro256**,
// seeded via SplitMix64 — fast, high quality, and stable across platforms
// (unlike std::default_random_engine / std::uniform_int_distribution, whose
// outputs are implementation-defined).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace dpisvc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Samples an index proportionally to the given non-negative weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace dpisvc
