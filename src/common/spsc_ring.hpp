// Fixed-capacity single-producer / single-consumer ring buffer.
//
// The fabric→shard handoff of the batched ingest pipeline (DESIGN.md §4h)
// replaces the old mutex+deque job queues with one of these per shard: the
// producer (ingest thread) pushes job descriptors, the shard worker pops
// them, and neither side ever takes a lock on the data path. Capacity is
// fixed at construction — a full ring is the backpressure signal, not a
// reason to allocate — which is what turns a slow consumer from an OOM
// (unbounded std::deque growth) into an observable overload.
//
// Memory ordering: the producer publishes a slot with a release store of
// `tail_`; the consumer acquires `tail_` before reading the slot, and
// releases `head_` after consuming it so the producer's acquire of `head_`
// may safely reuse the slot. Indices increase monotonically (64-bit, never
// wrap in practice); the slot index is `pos % capacity`, so the configured
// capacity is exact — no power-of-two rounding that would loosen a
// queue-depth bound the operator asked for. The modulo runs once per job
// descriptor (a batch of packets), not per packet, so its cost is noise.
//
// Contract: exactly one producer thread and one concurrent consumer thread.
// Multiple producers must serialize externally (ScanPool uses a per-worker
// submit mutex, taken once per job, to collapse N producers into one).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dpisvc {

template <typename T>
class SpscRing {
 public:
  /// Throws std::invalid_argument when capacity is zero. T must be
  /// default-constructible (slots are pre-built) and movable.
  explicit SpscRing(std::size_t capacity) : slots_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("SpscRing: capacity must be positive");
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side. Returns false when the ring is full (the caller decides
  /// whether that means block, retry, or shed).
  bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= slots_.size()) {
      return false;  // full
    }
    slots_[tail % slots_.size()] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return false;  // empty
    }
    out = std::move(slots_[head % slots_.size()]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Instantaneous occupancy. Exact from either endpoint's own thread;
  /// a racing observer sees a value that was true at some recent instant
  /// (good enough for the fill-level gauge it feeds).
  std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  bool empty() const noexcept { return size() == 0; }

 private:
  std::vector<T> slots_;
  /// Producer and consumer cursors on separate cache lines so the two
  /// threads' writes never false-share.
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next slot to pop
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next slot to push
};

}  // namespace dpisvc
