// Fixed-capacity single-producer / single-consumer ring buffer.
//
// The fabric→shard handoff of the batched ingest pipeline (DESIGN.md §4h)
// replaces the old mutex+deque job queues with one of these per shard: the
// producer (ingest thread) pushes job descriptors, the shard worker pops
// them, and neither side ever takes a lock on the data path. Capacity is
// fixed at construction — a full ring is the backpressure signal, not a
// reason to allocate — which is what turns a slow consumer from an OOM
// (unbounded std::deque growth) into an observable overload.
//
// Ownership contract (the "SP" and "SC" in SPSC): at any instant at most
// ONE thread may call try_push() and at most ONE thread may call try_pop().
// The two may be (and usually are) different threads, and either role may
// migrate between threads only through an external happens-before edge (a
// mutex hand-off, a thread join). ScanPool keeps the producer role single
// by serializing submitters on a per-worker submit mutex, taken once per
// job; the consumer role is the worker thread for its whole life. Two
// concurrent pushers — or two concurrent poppers — race on the cursor
// read-modify-write sequences below and corrupt the ring; that contract is
// exactly what the dpisvc_mc model checker explores (DESIGN.md §7).
//
// Memory ordering: the producer publishes a slot with a release store of
// `tail_`; the consumer acquires `tail_` before reading the slot, and
// releases `head_` after consuming it so the producer's acquire of `head_`
// may safely reuse the slot. Indices increase monotonically (64-bit, never
// wrap in practice); the slot index is `pos % capacity`, so the configured
// capacity is exact — no power-of-two rounding that would loosen a
// queue-depth bound the operator asked for. The modulo runs once per job
// descriptor (a batch of packets), not per packet, so its cost is noise.
//
// The `Sync` template parameter is the dpisvc_mc synchronization facade
// (mc/sync.hpp): production code uses the default RealSync, which aliases
// std::atomic and compiles to exactly the pre-facade code; the model
// checker instantiates the SAME ring over mc::ModelSync so the checker
// executes this shipped algorithm, not a hand-copied model.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mc/sync.hpp"

namespace dpisvc {

/// Construction-time rejection of impossible ring capacities. Derives from
/// std::invalid_argument so pre-existing catch sites (and tests) that
/// expect the untyped error keep working.
class SpscRingError : public std::invalid_argument {
 public:
  explicit SpscRingError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Capacity ceiling: a ring is a bounded queue-depth knob, not bulk
/// storage. Anything above 2^30 slots is a configuration bug (it could
/// also overflow `capacity * sizeof(T)` on 32-bit size_t), so construction
/// rejects it before attempting the allocation.
inline constexpr std::size_t kSpscRingMaxCapacity = std::size_t{1} << 30;

namespace detail {
// Fault-injection hook for the dpisvc_mc "teeth" test ONLY: defining
// DPISVC_SPSC_PUBLISH_ORDER_RELAXED demotes the producer's tail publish
// from release to relaxed, re-introducing the classic unsynchronized-slot
// bug so the model checker can prove it detects wrong memory orders. The
// macro may only be defined in a translation unit whose ring instantiations
// use a TU-local Sync tag (tests/mc_fault_test.cpp does `struct FaultSync :
// mc::ModelSync {}`). The order is a variable template on Sync so the ODR
// story is airtight: the faulting TU only instantiates
// kSpscPublishOrder<FaultSync>, a specialization no other TU mentions, and
// the shared specializations (RealSync, ModelSync) keep one definition.
template <typename Sync>
inline constexpr std::memory_order kSpscPublishOrder =
#if defined(DPISVC_SPSC_PUBLISH_ORDER_RELAXED)
    std::memory_order_relaxed;
#else
    std::memory_order_release;
#endif
}  // namespace detail

template <typename T, typename Sync = mc::RealSync>
class SpscRing {
 public:
  /// Throws SpscRingError (a std::invalid_argument) when capacity is zero
  /// or above kSpscRingMaxCapacity — validated BEFORE any allocation, so an
  /// absurd capacity is a typed error, not a bad_alloc (or a silent modulo
  /// of an overflowed size). T must be default-constructible (slots are
  /// pre-built) and movable.
  explicit SpscRing(std::size_t capacity) {
    if (capacity == 0) {
      throw SpscRingError("SpscRing: capacity must be positive");
    }
    if (capacity > kSpscRingMaxCapacity) {
      throw SpscRingError("SpscRing: capacity " + std::to_string(capacity) +
                          " exceeds the 2^30-slot ceiling");
    }
    slots_.resize(capacity);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side. Returns false when the ring is full (the caller decides
  /// whether that means block, retry, or shed).
  bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= slots_.size()) {
      return false;  // full
    }
    T& slot = slots_[tail % slots_.size()];
    Sync::race_write(&slot);  // non-atomic slot write, published by tail_
    slot = std::move(value);
    tail_.store(tail + 1, detail::kSpscPublishOrder<Sync>);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return false;  // empty
    }
    T& slot = slots_[head % slots_.size()];
    Sync::race_read(&slot);  // paired with the producer's race_write
    out = std::move(slot);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Instantaneous occupancy. Exact from either endpoint's own thread;
  /// a racing observer sees a value that was true at some recent instant
  /// (good enough for the fill-level gauge it feeds).
  std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  bool empty() const noexcept { return size() == 0; }

 private:
  std::vector<T> slots_;
  /// Producer and consumer cursors on separate cache lines so the two
  /// threads' writes never false-share.
  alignas(64) typename Sync::template Atomic<std::uint64_t> head_{0};
  alignas(64) typename Sync::template Atomic<std::uint64_t> tail_{0};
};

}  // namespace dpisvc
