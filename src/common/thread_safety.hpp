// Annotated capability types for compile-time thread-safety analysis.
//
// Clang's -Wthread-safety analysis turns the repo's locking contracts into
// compiler-checked invariants: every field that a mutex guards is declared
// DPISVC_GUARDED_BY(mu), every function that expects its caller to hold a
// lock is declared DPISVC_REQUIRES(mu), and a build with
// -DDPISVC_THREAD_SAFETY=ON (Clang only) promotes any violation — an
// unguarded access, a lock leaked out of a function, a contract-free call —
// into a hard compile error. PR 2's TSan matrix only catches the races a
// test happens to execute; the capability pass rejects the whole class at
// compile time.
//
// The wrappers forward directly to the std primitives, so they cost nothing
// at runtime and compile to the exact same code. On non-Clang compilers all
// attributes expand to nothing and the types degrade to plain std::mutex /
// std::shared_mutex forwarding shims.
//
// Lock hierarchy (documented here, enforced by convention + TSan; Clang's
// acquired_before/after checking is still beta):
//
//   DpiController::mu_  >  DpiInstance::control_mu_  >  Shard::mu
//
// i.e. a thread may take an instance lock while holding the controller lock
// and a shard lock while holding the instance control lock, never the other
// way round; two shard mutexes are never held at once.
//
// The single sanctioned escape hatch is CondVar::wait / wait_for below: a
// condition variable releases and re-acquires the mutex inside the wait,
// which the static analysis cannot model, so those two function bodies are
// excluded from analysis (see DESIGN.md §7). No other code may use
// DPISVC_NO_THREAD_SAFETY_ANALYSIS.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DPISVC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DPISVC_THREAD_ANNOTATION
#define DPISVC_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define DPISVC_CAPABILITY(x) DPISVC_THREAD_ANNOTATION(capability(x))
#define DPISVC_SCOPED_CAPABILITY DPISVC_THREAD_ANNOTATION(scoped_lockable)
#define DPISVC_GUARDED_BY(x) DPISVC_THREAD_ANNOTATION(guarded_by(x))
#define DPISVC_PT_GUARDED_BY(x) DPISVC_THREAD_ANNOTATION(pt_guarded_by(x))
#define DPISVC_REQUIRES(...) \
  DPISVC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DPISVC_REQUIRES_SHARED(...) \
  DPISVC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define DPISVC_ACQUIRE(...) \
  DPISVC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DPISVC_ACQUIRE_SHARED(...) \
  DPISVC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define DPISVC_RELEASE(...) \
  DPISVC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DPISVC_RELEASE_SHARED(...) \
  DPISVC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define DPISVC_TRY_ACQUIRE(...) \
  DPISVC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define DPISVC_EXCLUDES(...) DPISVC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define DPISVC_RETURN_CAPABILITY(x) DPISVC_THREAD_ANNOTATION(lock_returned(x))
#define DPISVC_NO_THREAD_SAFETY_ANALYSIS \
  DPISVC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dpisvc {

/// std::mutex carrying the Clang `capability` attribute so guarded fields
/// and lock contracts can reference it.
class DPISVC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DPISVC_ACQUIRE() { mu_.lock(); }
  void unlock() DPISVC_RELEASE() { mu_.unlock(); }
  bool try_lock() DPISVC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with capability attributes: exclusive lock/unlock plus
/// shared (reader) acquisition.
class DPISVC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DPISVC_ACQUIRE() { mu_.lock(); }
  void unlock() DPISVC_RELEASE() { mu_.unlock(); }
  bool try_lock() DPISVC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() DPISVC_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() DPISVC_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() DPISVC_TRY_ACQUIRE(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over Mutex (the std::lock_guard replacement; the
/// scoped_lockable attribute tells the analysis the capability is released
/// when the guard goes out of scope).
class DPISVC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DPISVC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DPISVC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// Scoped exclusive (writer) lock over SharedMutex.
class DPISVC_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) DPISVC_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SharedMutexLock() DPISVC_RELEASE() { mu_.unlock(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock over SharedMutex.
class DPISVC_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mu) DPISVC_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedReaderLock() DPISVC_RELEASE() { mu_.unlock_shared(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with dpisvc::Mutex. Waiters hold a MutexLock
/// and loop on their predicate:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.wait(lock);   // ready_ is GUARDED_BY(mu_)
///
/// Checking the predicate in the caller's body (instead of passing a lambda)
/// keeps every guarded access visible to the analysis while the capability
/// is held.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases the lock's mutex and blocks; the mutex is held
  /// again when the call returns (spurious wakeups possible — always loop).
  /// The documented condition-variable escape hatch: the release/re-acquire
  /// inside the wait is invisible to the static analysis, and from the
  /// caller's perspective the capability is continuously held.
  void wait(MutexLock& lock) DPISVC_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(lock.mu_);  // Mutex is BasicLockable: unlock, block, re-lock
  }

  /// Timed variant of wait(); returns after `timeout` even without a
  /// notification (callers always re-check their predicate in a loop, so a
  /// timeout is indistinguishable from a spurious wakeup). The scan pool's
  /// worker parking uses this as a liveness backstop on top of its
  /// fence-ordered wakeup protocol. Shares wait()'s sanctioned
  /// condition-variable escape from the static analysis.
  template <typename Rep, typename Period>
  void wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& timeout)
      DPISVC_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait_for(lock.mu_, timeout);
  }

 private:
  std::condition_variable_any cv_;
};

/// Phantom capability representing exclusive occupancy of a single-thread
/// role (e.g. "the ingest producer thread", "worker i's consumer loop").
/// It has no runtime state — enter()/exit() compile to nothing — but lets
/// the thread-safety analysis check a lock-free class's thread-confinement
/// contract the same way it checks mutexes: fields owned by the role are
/// DPISVC_GUARDED_BY(role_), internal helpers declare
/// DPISVC_REQUIRES(role_), and each public entry point claims the role once
/// with a RoleGuard. The claim is a *declaration* ("this method runs on the
/// role's thread"), not an enforcement; the dpisvc_mc model checker is what
/// proves the declaration safe (DESIGN.md §7).
class DPISVC_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void enter() DPISVC_ACQUIRE() {}
  void exit() DPISVC_RELEASE() {}
};

/// Scoped claim of a ThreadRole for the duration of a public entry point.
class DPISVC_SCOPED_CAPABILITY RoleGuard {
 public:
  explicit RoleGuard(ThreadRole& role) DPISVC_ACQUIRE(role) : role_(role) {
    role_.enter();
  }
  ~RoleGuard() DPISVC_RELEASE() { role_.exit(); }

  RoleGuard(const RoleGuard&) = delete;
  RoleGuard& operator=(const RoleGuard&) = delete;

 private:
  ThreadRole& role_;
};

}  // namespace dpisvc
