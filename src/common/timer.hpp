// Monotonic stopwatch for throughput measurement in benches and telemetry.
#pragma once

#include <chrono>
#include <cstdint>

namespace dpisvc {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Converts a byte count over a duration to megabits per second, the unit the
/// paper reports all throughput numbers in.
inline double to_mbps(std::uint64_t bytes, double seconds) noexcept {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / 1e6 / seconds;
}

}  // namespace dpisvc
