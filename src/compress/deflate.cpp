#include "compress/deflate.hpp"

#include <array>
#include <cstring>

#include "common/checksum.hpp"
#include "compress/inflate.hpp"

namespace dpisvc::compress {

namespace {

// --- bit output -----------------------------------------------------------------

class BitWriter {
 public:
  /// Appends `count` bits of `value`, LSB first (DEFLATE data element order).
  void bits(std::uint32_t value, int count) {
    hold_ |= static_cast<std::uint64_t>(value & ((1u << count) - 1))
             << bit_count_;
    bit_count_ += count;
    while (bit_count_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(hold_ & 0xFF));
      hold_ >>= 8;
      bit_count_ -= 8;
    }
  }

  /// Appends a Huffman code: code bits are emitted most-significant first.
  void code(std::uint32_t value, int length) {
    std::uint32_t reversed = 0;
    for (int i = 0; i < length; ++i) {
      reversed = (reversed << 1) | ((value >> i) & 1);
    }
    bits(reversed, length);
  }

  void align() {
    if (bit_count_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(hold_ & 0xFF));
      hold_ = 0;
      bit_count_ = 0;
    }
  }

  void raw_bytes(BytesView data) {
    align();
    out_.insert(out_.end(), data.begin(), data.end());
  }

  Bytes take() {
    align();
    return std::move(out_);
  }

 private:
  Bytes out_;
  std::uint64_t hold_ = 0;
  int bit_count_ = 0;
};

// --- fixed Huffman code tables -----------------------------------------------------

struct FixedCode {
  std::uint16_t code = 0;
  std::uint8_t length = 0;
};

/// Literal/length symbol -> (code, length) for the fixed code (RFC 3.2.6).
FixedCode fixed_literal_code(int symbol) {
  if (symbol < 144) {
    return {static_cast<std::uint16_t>(0x30 + symbol), 8};
  }
  if (symbol < 256) {
    return {static_cast<std::uint16_t>(0x190 + (symbol - 144)), 9};
  }
  if (symbol < 280) {
    return {static_cast<std::uint16_t>(symbol - 256), 7};
  }
  return {static_cast<std::uint16_t>(0xC0 + (symbol - 280)), 8};
}

// Length -> (symbol, extra bits, extra value); mirrors the inflate tables.
constexpr std::uint16_t kLengthBase[29] = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::uint8_t kLengthExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                           1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                           4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::uint16_t kDistBase[30] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::uint8_t kDistExtra[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                         4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                         9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

int length_symbol(std::uint32_t length) {
  for (int i = 28; i >= 0; --i) {
    if (length >= kLengthBase[i]) return i;
  }
  return 0;
}

int distance_symbol(std::uint32_t distance) {
  for (int i = 29; i >= 0; --i) {
    if (distance >= kDistBase[i]) return i;
  }
  return 0;
}

// --- LZ77 greedy matcher ---------------------------------------------------------

constexpr std::size_t kWindow = 32768;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 258;
constexpr std::size_t kHashSize = 1 << 15;
constexpr int kMaxChainProbes = 32;

std::uint32_t hash3(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) * 2654435761u ^
          (static_cast<std::uint32_t>(p[1]) << 11) ^
          (static_cast<std::uint32_t>(p[2]) << 22)) &
         (kHashSize - 1);
}

void emit_fixed_block(BitWriter& out, BytesView data, bool final_block) {
  out.bits(final_block ? 1 : 0, 1);
  out.bits(1, 2);  // fixed Huffman

  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> chain(data.size(), -1);

  std::size_t at = 0;
  while (at < data.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (at + kMinMatch <= data.size()) {
      const std::uint32_t h = hash3(data.data() + at);
      const std::int32_t chain_head = head[h];
      std::int32_t candidate = chain_head;
      int probes = kMaxChainProbes;
      while (candidate >= 0 && probes-- > 0 &&
             at - static_cast<std::size_t>(candidate) <= kWindow) {
        const auto cand = static_cast<std::size_t>(candidate);
        std::size_t len = 0;
        const std::size_t cap = std::min(kMaxMatch, data.size() - at);
        while (len < cap && data[cand + len] == data[at + len]) {
          ++len;
        }
        if (len > best_len) {
          best_len = len;
          best_dist = at - cand;
          if (len == kMaxMatch) break;
        }
        candidate = chain[cand];
      }
      head[h] = static_cast<std::int32_t>(at);
      chain[at] = chain_head;
    }

    if (best_len >= kMinMatch) {
      const int lsym = length_symbol(static_cast<std::uint32_t>(best_len));
      const FixedCode lc = fixed_literal_code(257 + lsym);
      out.code(lc.code, lc.length);
      out.bits(static_cast<std::uint32_t>(best_len) - kLengthBase[lsym],
               kLengthExtra[lsym]);
      const int dsym = distance_symbol(static_cast<std::uint32_t>(best_dist));
      out.code(static_cast<std::uint32_t>(dsym), 5);  // fixed: 5-bit codes
      out.bits(static_cast<std::uint32_t>(best_dist) - kDistBase[dsym],
               kDistExtra[dsym]);
      // Insert hash entries for the skipped positions so later matches can
      // reference them.
      for (std::size_t i = 1; i < best_len && at + i + kMinMatch <= data.size();
           ++i) {
        const std::uint32_t h = hash3(data.data() + at + i);
        chain[at + i] = head[h];
        head[h] = static_cast<std::int32_t>(at + i);
      }
      at += best_len;
    } else {
      const FixedCode lc = fixed_literal_code(data[at]);
      out.code(lc.code, lc.length);
      ++at;
    }
  }
  const FixedCode end = fixed_literal_code(256);
  out.code(end.code, end.length);
}

void emit_stored(BitWriter& out, BytesView data, bool only_block) {
  // Stored blocks carry at most 65535 bytes each.
  std::size_t at = 0;
  do {
    const std::size_t take = std::min<std::size_t>(0xFFFF, data.size() - at);
    const bool final_block = (at + take == data.size());
    out.bits(final_block ? 1 : 0, 1);
    out.bits(0, 2);
    std::uint8_t header[4];
    header[0] = static_cast<std::uint8_t>(take & 0xFF);
    header[1] = static_cast<std::uint8_t>(take >> 8);
    header[2] = static_cast<std::uint8_t>(~header[0]);
    header[3] = static_cast<std::uint8_t>(~header[1]);
    out.align();
    out.raw_bytes(BytesView(header, 4));
    out.raw_bytes(data.subspan(at, take));
    at += take;
  } while (at < data.size());
  (void)only_block;
}

}  // namespace

Bytes deflate(BytesView data, DeflateStrategy strategy) {
  BitWriter out;
  if (strategy == DeflateStrategy::kStored || data.empty()) {
    if (data.empty()) {
      // A single empty stored block terminates the stream.
      out.bits(1, 1);
      out.bits(0, 2);
      out.align();
      const std::uint8_t header[4] = {0, 0, 0xFF, 0xFF};
      out.raw_bytes(BytesView(header, 4));
    } else {
      emit_stored(out, data, true);
    }
  } else {
    emit_fixed_block(out, data, /*final_block=*/true);
  }
  return out.take();
}

Bytes zlib_compress(BytesView data, DeflateStrategy strategy) {
  Bytes out;
  out.push_back(0x78);  // CM=8, CINFO=7 (32K window)
  // FLG: FLEVEL=0, FDICT=0, FCHECK chosen so (CMF<<8 | FLG) % 31 == 0.
  std::uint8_t flg = 0;
  while (((0x78u << 8) | flg) % 31 != 0) ++flg;
  out.push_back(flg);
  const Bytes body = deflate(data, strategy);
  out.insert(out.end(), body.begin(), body.end());
  const std::uint32_t checksum = adler32(data);
  out.push_back(static_cast<std::uint8_t>(checksum >> 24));
  out.push_back(static_cast<std::uint8_t>((checksum >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((checksum >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(checksum & 0xFF));
  return out;
}

Bytes gzip_compress(BytesView data, DeflateStrategy strategy) {
  Bytes out = {0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 0xFF};  // OS = unknown
  const Bytes body = deflate(data, strategy);
  out.insert(out.end(), body.begin(), body.end());
  const std::uint32_t checksum = crc32(data);
  const auto size = static_cast<std::uint32_t>(data.size());
  for (std::uint32_t v : {checksum, size}) {
    out.push_back(static_cast<std::uint8_t>(v & 0xFF));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
    out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
  }
  return out;
}

}  // namespace dpisvc::compress
