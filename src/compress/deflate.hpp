// DEFLATE compression (RFC 1951) — the encoding side of the substrate.
//
// The DPI service itself only needs to *inflate* (§1: decompress once,
// scan once), but the workload generators need to produce realistic
// gzip-encoded HTTP bodies, and the inflate implementation needs an
// independent encoder to round-trip against. This encoder supports:
//   - stored blocks,
//   - fixed-Huffman blocks with greedy hash-chain LZ77 matching
//     (window 32 KiB, match lengths 3..258),
// plus zlib and gzip framing. It favors clarity over ratio; it is not a
// zlib replacement.
#pragma once

#include "common/bytes.hpp"

namespace dpisvc::compress {

enum class DeflateStrategy {
  kStored,        ///< no compression: stored blocks only
  kFixedHuffman,  ///< LZ77 + the fixed Huffman code
};

/// Produces a raw DEFLATE stream decodable by inflate().
Bytes deflate(BytesView data,
              DeflateStrategy strategy = DeflateStrategy::kFixedHuffman);

/// zlib (RFC 1950) framing around deflate().
Bytes zlib_compress(BytesView data,
                    DeflateStrategy strategy = DeflateStrategy::kFixedHuffman);

/// gzip (RFC 1952) framing around deflate().
Bytes gzip_compress(BytesView data,
                    DeflateStrategy strategy = DeflateStrategy::kFixedHuffman);

}  // namespace dpisvc::compress
