#include "compress/inflate.hpp"

#include <array>

#include "common/checksum.hpp"

namespace dpisvc::compress {

namespace {

// --- bit input ---------------------------------------------------------------

/// LSB-first bit reader over a byte buffer (DEFLATE bit order).
class BitReader {
 public:
  explicit BitReader(BytesView data) : data_(data) {}

  std::uint32_t bits(int count) {
    while (bit_count_ < count) {
      if (at_ >= data_.size()) {
        throw InflateError("inflate: unexpected end of input");
      }
      hold_ |= static_cast<std::uint64_t>(data_[at_++]) << bit_count_;
      bit_count_ += 8;
    }
    const auto value = static_cast<std::uint32_t>(hold_ & ((1u << count) - 1));
    hold_ >>= count;
    bit_count_ -= count;
    return value;
  }

  std::uint32_t bit() { return bits(1); }

  /// Discards buffered bits up to the next byte boundary (stored blocks).
  void align() {
    const int drop = bit_count_ % 8;
    hold_ >>= drop;
    bit_count_ -= drop;
  }

  /// Reads raw bytes (must be byte-aligned).
  void read_bytes(std::uint8_t* out, std::size_t count) {
    while (bit_count_ >= 8 && count > 0) {
      *out++ = static_cast<std::uint8_t>(hold_ & 0xFF);
      hold_ >>= 8;
      bit_count_ -= 8;
      --count;
    }
    if (at_ + count > data_.size()) {
      throw InflateError("inflate: unexpected end of stored data");
    }
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = data_[at_ + i];
    }
    at_ += count;
  }

  std::size_t byte_position() const noexcept { return at_; }

 private:
  BytesView data_;
  std::size_t at_ = 0;
  std::uint64_t hold_ = 0;
  int bit_count_ = 0;
};

// --- canonical Huffman decoding -------------------------------------------------

constexpr int kMaxBits = 15;

/// Canonical Huffman decoder built from code lengths (RFC 1951 §3.2.2),
/// using the per-length first-code/first-symbol tables.
class Huffman {
 public:
  void build(const std::uint8_t* lengths, std::size_t count) {
    std::array<std::uint16_t, kMaxBits + 1> length_count{};
    for (std::size_t i = 0; i < count; ++i) {
      if (lengths[i] > kMaxBits) {
        throw InflateError("inflate: code length exceeds 15");
      }
      ++length_count[lengths[i]];
    }
    length_count[0] = 0;
    // Over-subscription check (incomplete codes are tolerated for the
    // single-symbol distance-code case, per the RFC's note).
    int left = 1;
    for (std::size_t len = 1; len <= kMaxBits; ++len) {
      left <<= 1;
      left -= length_count[len];
      if (left < 0) {
        throw InflateError("inflate: over-subscribed Huffman code");
      }
    }
    std::array<std::uint16_t, kMaxBits + 2> next_offset{};
    for (std::size_t len = 1; len <= kMaxBits; ++len) {
      next_offset[len + 1] =
          static_cast<std::uint16_t>(next_offset[len] + length_count[len]);
    }
    symbols_.assign(count, 0);
    for (std::size_t i = 0; i < count; ++i) {
      if (lengths[i] != 0) {
        symbols_[next_offset[lengths[i]]++] = static_cast<std::uint16_t>(i);
      }
    }
    counts_ = length_count;
  }

  int decode(BitReader& in) const {
    std::uint32_t code = 0;
    std::uint32_t first = 0;
    std::uint32_t index = 0;
    for (std::size_t len = 1; len <= kMaxBits; ++len) {
      code |= in.bit();
      const std::uint32_t count = counts_[len];
      if (code < first + count) {
        return symbols_[index + (code - first)];
      }
      index += count;
      first = (first + count) << 1;
      code <<= 1;
    }
    throw InflateError("inflate: invalid Huffman code");
  }

 private:
  std::array<std::uint16_t, kMaxBits + 1> counts_{};
  std::vector<std::uint16_t> symbols_;
};

// --- LZ77 length / distance tables (RFC 1951 §3.2.5) ---------------------------

constexpr std::uint16_t kLengthBase[29] = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::uint8_t kLengthExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                           1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                           4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::uint16_t kDistBase[30] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::uint8_t kDistExtra[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                         4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                         9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

class Inflater {
 public:
  Inflater(BytesView input, const InflateLimits& limits)
      : in_(input), limits_(limits) {}

  Bytes run() {
    bool final_block = false;
    while (!final_block) {
      final_block = in_.bit() != 0;
      const std::uint32_t type = in_.bits(2);
      switch (type) {
        case 0:
          stored_block();
          break;
        case 1:
          fixed_block();
          break;
        case 2:
          dynamic_block();
          break;
        default:
          throw InflateError("inflate: reserved block type 3");
      }
    }
    return std::move(out_);
  }

  std::size_t consumed() const noexcept { return in_.byte_position(); }

 private:
  void emit(std::uint8_t byte) {
    if (out_.size() >= limits_.max_output) {
      throw InflateError("inflate: output limit exceeded");
    }
    out_.push_back(byte);
  }

  void stored_block() {
    in_.align();
    std::uint8_t header[4];
    in_.read_bytes(header, 4);
    const std::uint16_t len =
        static_cast<std::uint16_t>(header[0] | (header[1] << 8));
    const std::uint16_t nlen =
        static_cast<std::uint16_t>(header[2] | (header[3] << 8));
    if (len != static_cast<std::uint16_t>(~nlen)) {
      throw InflateError("inflate: stored block LEN/NLEN mismatch");
    }
    if (out_.size() + len > limits_.max_output) {
      throw InflateError("inflate: output limit exceeded");
    }
    const std::size_t at = out_.size();
    out_.resize(at + len);
    in_.read_bytes(out_.data() + at, len);
  }

  void fixed_block() {
    if (!fixed_ready_) {
      std::array<std::uint8_t, 288> lit_lengths;
      for (int i = 0; i < 144; ++i) lit_lengths[static_cast<std::size_t>(i)] = 8;
      for (int i = 144; i < 256; ++i) lit_lengths[static_cast<std::size_t>(i)] = 9;
      for (int i = 256; i < 280; ++i) lit_lengths[static_cast<std::size_t>(i)] = 7;
      for (int i = 280; i < 288; ++i) lit_lengths[static_cast<std::size_t>(i)] = 8;
      fixed_literals_.build(lit_lengths.data(), lit_lengths.size());
      std::array<std::uint8_t, 30> dist_lengths;
      dist_lengths.fill(5);
      fixed_distances_.build(dist_lengths.data(), dist_lengths.size());
      fixed_ready_ = true;
    }
    compressed_block(fixed_literals_, fixed_distances_);
  }

  void dynamic_block() {
    const std::uint32_t hlit = in_.bits(5) + 257;
    const std::uint32_t hdist = in_.bits(5) + 1;
    const std::uint32_t hclen = in_.bits(4) + 4;
    if (hlit > 286 || hdist > 30) {
      throw InflateError("inflate: bad HLIT/HDIST");
    }
    static constexpr std::uint8_t kOrder[19] = {
        16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};
    std::array<std::uint8_t, 19> cl_lengths{};
    for (std::uint32_t i = 0; i < hclen; ++i) {
      cl_lengths[kOrder[i]] = static_cast<std::uint8_t>(in_.bits(3));
    }
    Huffman cl_code;
    cl_code.build(cl_lengths.data(), cl_lengths.size());

    std::array<std::uint8_t, 286 + 30> lengths{};
    std::uint32_t at = 0;
    const std::uint32_t total = hlit + hdist;
    while (at < total) {
      const int symbol = cl_code.decode(in_);
      if (symbol < 16) {
        lengths[at++] = static_cast<std::uint8_t>(symbol);
      } else if (symbol == 16) {
        if (at == 0) throw InflateError("inflate: repeat with no previous");
        const std::uint8_t prev = lengths[at - 1];
        std::uint32_t repeat = 3 + in_.bits(2);
        while (repeat-- > 0) {
          if (at >= total) throw InflateError("inflate: repeat overflows");
          lengths[at++] = prev;
        }
      } else if (symbol == 17) {
        std::uint32_t repeat = 3 + in_.bits(3);
        while (repeat-- > 0) {
          if (at >= total) throw InflateError("inflate: repeat overflows");
          lengths[at++] = 0;
        }
      } else {  // 18
        std::uint32_t repeat = 11 + in_.bits(7);
        while (repeat-- > 0) {
          if (at >= total) throw InflateError("inflate: repeat overflows");
          lengths[at++] = 0;
        }
      }
    }
    if (lengths[256] == 0) {
      throw InflateError("inflate: missing end-of-block code");
    }
    Huffman literals;
    literals.build(lengths.data(), hlit);
    Huffman distances;
    distances.build(lengths.data() + hlit, hdist);
    compressed_block(literals, distances);
  }

  void compressed_block(const Huffman& literals, const Huffman& distances) {
    while (true) {
      const int symbol = literals.decode(in_);
      if (symbol < 256) {
        emit(static_cast<std::uint8_t>(symbol));
        continue;
      }
      if (symbol == 256) return;  // end of block
      if (symbol > 285) throw InflateError("inflate: invalid length symbol");
      const int length_index = symbol - 257;
      const std::uint32_t length =
          kLengthBase[length_index] +
          in_.bits(kLengthExtra[length_index]);
      const int dist_symbol = distances.decode(in_);
      if (dist_symbol > 29) throw InflateError("inflate: invalid distance");
      const std::uint32_t distance =
          kDistBase[dist_symbol] + in_.bits(kDistExtra[dist_symbol]);
      if (distance > out_.size()) {
        throw InflateError("inflate: distance beyond output start");
      }
      for (std::uint32_t i = 0; i < length; ++i) {
        emit(out_[out_.size() - distance]);
      }
    }
  }

  BitReader in_;
  InflateLimits limits_;
  Bytes out_;

  bool fixed_ready_ = false;
  Huffman fixed_literals_;
  Huffman fixed_distances_;
};

std::uint32_t le32(BytesView data, std::size_t at) {
  if (at + 4 > data.size()) {
    throw InflateError("inflate: truncated trailer");
  }
  return static_cast<std::uint32_t>(data[at]) |
         (static_cast<std::uint32_t>(data[at + 1]) << 8) |
         (static_cast<std::uint32_t>(data[at + 2]) << 16) |
         (static_cast<std::uint32_t>(data[at + 3]) << 24);
}

}  // namespace

Bytes inflate(BytesView deflate_stream, const InflateLimits& limits) {
  Inflater inflater(deflate_stream, limits);
  return inflater.run();
}

std::uint32_t adler32(BytesView data) noexcept {
  std::uint32_t a = 1;
  std::uint32_t b = 0;
  std::size_t at = 0;
  while (at < data.size()) {
    // Largest n such that 255n(n+1)/2 + (n+1)(65520) < 2^32 (zlib's 5552).
    const std::size_t chunk = std::min<std::size_t>(5552, data.size() - at);
    for (std::size_t i = 0; i < chunk; ++i) {
      a += data[at + i];
      b += a;
    }
    a %= 65521;
    b %= 65521;
    at += chunk;
  }
  return (b << 16) | a;
}

bool looks_like_zlib(BytesView data) noexcept {
  if (data.size() < 2) return false;
  const std::uint8_t cmf = data[0];
  if ((cmf & 0x0F) != 8) return false;          // CM must be deflate
  if (((cmf >> 4) & 0x0F) > 7) return false;    // CINFO <= 7
  return ((static_cast<unsigned>(cmf) << 8) | data[1]) % 31 == 0;
}

Bytes zlib_decompress(BytesView stream, const InflateLimits& limits) {
  if (stream.size() < 6 || !looks_like_zlib(stream)) {
    throw InflateError("zlib: bad header");
  }
  if (stream[1] & 0x20) {
    throw InflateError("zlib: preset dictionary not supported");
  }
  Inflater inflater(stream.subspan(2), limits);
  Bytes out = inflater.run();
  const std::size_t trailer_at = 2 + inflater.consumed();
  if (trailer_at + 4 > stream.size()) {
    throw InflateError("zlib: missing Adler-32 trailer");
  }
  const std::uint32_t expected =
      (static_cast<std::uint32_t>(stream[trailer_at]) << 24) |
      (static_cast<std::uint32_t>(stream[trailer_at + 1]) << 16) |
      (static_cast<std::uint32_t>(stream[trailer_at + 2]) << 8) |
      static_cast<std::uint32_t>(stream[trailer_at + 3]);
  if (adler32(out) != expected) {
    throw InflateError("zlib: Adler-32 mismatch");
  }
  return out;
}

bool looks_like_gzip(BytesView data) noexcept {
  return data.size() >= 2 && data[0] == 0x1F && data[1] == 0x8B;
}

Bytes gzip_decompress(BytesView stream, const InflateLimits& limits) {
  if (stream.size() < 18 || !looks_like_gzip(stream)) {
    throw InflateError("gzip: bad magic");
  }
  if (stream[2] != 8) {
    throw InflateError("gzip: unsupported compression method");
  }
  const std::uint8_t flags = stream[3];
  if (flags & 0xE0) {
    throw InflateError("gzip: reserved flag bits set");
  }
  std::size_t at = 10;  // magic(2) CM(1) FLG(1) MTIME(4) XFL(1) OS(1)
  if (flags & 0x04) {  // FEXTRA
    if (at + 2 > stream.size()) throw InflateError("gzip: truncated FEXTRA");
    const std::size_t xlen = stream[at] | (stream[at + 1] << 8);
    at += 2 + xlen;
  }
  auto skip_zstring = [&] {
    while (true) {
      if (at >= stream.size()) throw InflateError("gzip: truncated string");
      if (stream[at++] == 0) break;
    }
  };
  if (flags & 0x08) skip_zstring();  // FNAME
  if (flags & 0x10) skip_zstring();  // FCOMMENT
  if (flags & 0x02) {                // FHCRC
    if (at + 2 > stream.size()) throw InflateError("gzip: truncated FHCRC");
    const std::uint16_t expected =
        static_cast<std::uint16_t>(stream[at] | (stream[at + 1] << 8));
    const std::uint16_t actual =
        static_cast<std::uint16_t>(crc32(stream.first(at)) & 0xFFFF);
    if (expected != actual) throw InflateError("gzip: header CRC mismatch");
    at += 2;
  }
  if (at >= stream.size()) {
    throw InflateError("gzip: missing deflate payload");
  }

  Inflater inflater(stream.subspan(at), limits);
  Bytes out = inflater.run();
  const std::size_t trailer_at = at + inflater.consumed();
  const std::uint32_t expected_crc = le32(stream, trailer_at);
  const std::uint32_t expected_size = le32(stream, trailer_at + 4);
  if (crc32(out) != expected_crc) {
    throw InflateError("gzip: CRC-32 mismatch");
  }
  if ((out.size() & 0xFFFFFFFFu) != expected_size) {
    throw InflateError("gzip: ISIZE mismatch");
  }
  return out;
}

}  // namespace dpisvc::compress
