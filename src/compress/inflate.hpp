// DEFLATE decompression (RFC 1951) with zlib (RFC 1950) and gzip (RFC 1952)
// wrappers — implemented from scratch.
//
// Why this lives in a DPI service: §1 argues that when DPI is consolidated,
// "the effect of decompression or decryption, which usually takes place
// prior to the DPI phase, may be reduced significantly, as these heavy
// processes are executed only once for each packet". HTTP bodies are
// overwhelmingly gzip-encoded; a DPI service that cannot inflate them scans
// opaque bytes. This module is that shared decompression stage.
//
// Scope: complete inflate — stored, fixed-Huffman and dynamic-Huffman
// blocks, full LZ77 length/distance coding — plus header/trailer handling
// and checksum verification for both wrappers. Malformed input raises
// InflateError; output size is bounded to keep decompression bombs from
// exhausting an instance.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"

namespace dpisvc::compress {

class InflateError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct InflateLimits {
  /// Maximum decompressed size; exceeding it throws (bomb protection).
  std::size_t max_output = 64u << 20;
};

/// Decompresses a raw DEFLATE stream (no wrapper).
Bytes inflate(BytesView deflate_stream, const InflateLimits& limits = {});

/// Decompresses a zlib stream (RFC 1950): header checks + Adler-32 verify.
Bytes zlib_decompress(BytesView stream, const InflateLimits& limits = {});

/// Decompresses a gzip member (RFC 1952): header fields (FEXTRA/FNAME/
/// FCOMMENT/FHCRC) are parsed and skipped; CRC-32 and ISIZE are verified.
Bytes gzip_decompress(BytesView stream, const InflateLimits& limits = {});

/// True if the buffer starts with a gzip magic header.
bool looks_like_gzip(BytesView data) noexcept;

/// True if the buffer starts with a plausible zlib header.
bool looks_like_zlib(BytesView data) noexcept;

/// Adler-32 checksum (RFC 1950 §8.2).
std::uint32_t adler32(BytesView data) noexcept;

}  // namespace dpisvc::compress
