#include "dpi/engine.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <map>
#include <stdexcept>
#include <type_traits>

#include "ac/trie.hpp"
#include "common/invariant.hpp"
#include "regex/anchors.hpp"

namespace dpisvc::dpi {

const MiddleboxProfile* Engine::find_middlebox(MiddleboxId id) const noexcept {
  for (const auto& p : profiles_) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

MiddleboxBitmap Engine::chain_bitmap(ChainId chain) const {
  auto it = chain_bitmaps_.find(chain);
  if (it == chain_bitmaps_.end()) {
    throw std::invalid_argument("Engine: unknown policy chain");
  }
  return it->second;
}

bool Engine::chain_stateful(ChainId chain) const {
  auto it = chain_stateful_.find(chain);
  if (it == chain_stateful_.end()) {
    throw std::invalid_argument("Engine: unknown policy chain");
  }
  return it->second;
}

bool Engine::chain_read_only(ChainId chain) const {
  auto it = chain_members_.find(chain);
  if (it == chain_members_.end()) {
    throw std::invalid_argument("Engine: unknown policy chain");
  }
  for (MiddleboxId id : it->second) {
    const MiddleboxProfile* p = find_middlebox(id);
    if (p == nullptr || !p->read_only) return false;
  }
  return !it->second.empty();
}

std::uint32_t Engine::num_automaton_states() const noexcept {
  return std::visit([](const auto& a) { return a.num_states(); }, automaton_);
}

std::size_t Engine::memory_bytes() const noexcept {
  std::size_t total =
      std::visit([](const auto& a) { return a.memory_bytes(); }, automaton_);
  total += accept_bitmaps_.size() * sizeof(MiddleboxBitmap);
  for (const auto& row : accept_targets_) {
    total += sizeof(row) + row.size() * sizeof(MatchTarget);
  }
  for (const auto& re : regexes_) {
    total += re.matcher.program().size() * sizeof(regex::Inst);
    total += re.anchor_bits.size() * sizeof(std::uint32_t);
  }
  return total;
}

ac::StateIndex Engine::traverse_only(BytesView payload) const noexcept {
  return std::visit(
      [&](const auto& a) { return a.traverse(payload, a.start_state()); },
      automaton_);
}

std::shared_ptr<const Engine> Engine::compile(const EngineSpec& spec,
                                              const EngineConfig& config) {
  auto engine = std::shared_ptr<Engine>(new Engine());

  // --- middlebox profiles --------------------------------------------------
  MiddleboxBitmap seen = 0;
  for (const auto& p : spec.middleboxes) {
    if (p.id == 0 || p.id > kMaxMiddleboxes) {
      throw std::invalid_argument("Engine: middlebox id out of range 1..64");
    }
    if (seen & bitmap_of(p.id)) {
      throw std::invalid_argument("Engine: duplicate middlebox id");
    }
    seen |= bitmap_of(p.id);
  }
  engine->profiles_ = spec.middleboxes;
  engine->use_accept_bitmaps_ = config.use_accept_bitmaps;
  engine->mbox_stop_.fill(kNoStopCondition);
  for (const auto& p : spec.middleboxes) {
    engine->mbox_stateful_[p.id] = p.stateful;
    engine->mbox_stop_[p.id] = p.stop_offset;
  }

  // --- global string table -------------------------------------------------
  // Distinct byte strings (exact patterns and regex anchors) mapped to the
  // targets interested in them. §5.1: two middleboxes registering the same
  // pattern share one entry with both references.
  struct StringEntry {
    std::vector<MatchTarget> targets;
  };
  std::map<std::string, StringEntry> strings;

  for (const auto& pat : spec.exact_patterns) {
    if (!(seen & bitmap_of(pat.middlebox))) {
      throw std::invalid_argument("Engine: exact pattern for unknown middlebox");
    }
    if (pat.bytes.empty()) {
      throw std::invalid_argument("Engine: empty exact pattern");
    }
    MatchTarget target;
    target.owners = bitmap_of(pat.middlebox);
    target.middlebox = pat.middlebox;
    target.pattern_id = pat.pattern_id;
    target.pattern_length = static_cast<std::uint32_t>(pat.bytes.size());
    auto& entry = strings[pat.bytes];
    // Dedupe identical registrations (same middlebox + id).
    const bool dup = std::any_of(
        entry.targets.begin(), entry.targets.end(), [&](const MatchTarget& t) {
          return !t.is_anchor && t.middlebox == pat.middlebox &&
                 t.pattern_id == pat.pattern_id;
        });
    if (!dup) entry.targets.push_back(target);
    ++engine->num_exact_;
  }

  // --- regexes and their anchors -------------------------------------------
  std::map<std::string, std::uint32_t> anchor_bits;  // anchor string -> bit
  for (const auto& re : spec.regex_patterns) {
    if (!(seen & bitmap_of(re.middlebox))) {
      throw std::invalid_argument("Engine: regex for unknown middlebox");
    }
    regex::ParseOptions popts;
    popts.case_insensitive = re.case_insensitive;
    regex::NodePtr ast = regex::parse(re.expression, popts);  // throws on error

    regex::AnchorOptions aopts;
    aopts.min_length = config.anchor_min_length;
    std::vector<std::string> anchors = regex::extract_anchors(*ast, aopts);

    CompiledRegex compiled{re.middlebox, re.pattern_id,
                           regex::Matcher(regex::Program::compile(*ast)),
                           {}};
    for (const std::string& anchor : anchors) {
      auto [it, inserted] =
          anchor_bits.emplace(anchor, static_cast<std::uint32_t>(anchor_bits.size()));
      if (inserted && anchor_bits.size() > config.max_anchor_bits) {
        // Every scan allocates an anchor hit set of num_anchor_bits_
        // entries; reject instead of silently growing the per-scan scratch
        // (and the bit indices) without bound.
        throw std::invalid_argument(
            "Engine: regex anchors exceed the per-scan anchor hit-set "
            "capacity (" +
            std::to_string(anchor_bits.size()) + " distinct anchors > " +
            std::to_string(config.max_anchor_bits) +
            "); raise EngineConfig::max_anchor_bits or coarsen "
            "anchor_min_length");
      }
      const std::uint32_t bit = it->second;
      compiled.anchor_bits.push_back(bit);

      auto& entry = strings[anchor];
      auto existing = std::find_if(
          entry.targets.begin(), entry.targets.end(),
          [&](const MatchTarget& t) { return t.is_anchor && t.anchor_bit == bit; });
      if (existing != entry.targets.end()) {
        existing->owners |= bitmap_of(re.middlebox);
      } else {
        MatchTarget target;
        target.owners = bitmap_of(re.middlebox);
        target.pattern_length = static_cast<std::uint32_t>(anchor.size());
        target.is_anchor = true;
        target.anchor_bit = bit;
        entry.targets.push_back(target);
      }
    }
    if (engine->mbox_stateful_[re.middlebox]) {
      engine->stateful_regex_owners_ |= bitmap_of(re.middlebox);
    }
    engine->regexes_.push_back(std::move(compiled));
  }
  engine->num_anchor_bits_ = static_cast<std::uint32_t>(anchor_bits.size());
  engine->num_strings_ = strings.size();
  engine->stateful_regex_window_ = config.stateful_regex_window;

  // --- combined automaton (§5.1) -------------------------------------------
  ac::Trie trie;
  std::vector<const StringEntry*> entry_of_index;
  entry_of_index.reserve(strings.size());
  for (const auto& [bytes, entry] : strings) {
    trie.insert(std::string_view(bytes),
                static_cast<ac::PatternIndex>(entry_of_index.size()));
    entry_of_index.push_back(&entry);
  }

  auto fill_tables = [&](const auto& automaton) {
    const std::uint32_t f = automaton.num_accepting();
    engine->accept_bitmaps_.assign(f, 0);
    engine->accept_targets_.resize(f);
    for (std::uint32_t s = 0; s < f; ++s) {
      std::vector<MatchTarget>& row = engine->accept_targets_[s];
      for (ac::PatternIndex g : automaton.matches_at(s)) {
        const StringEntry& entry = *entry_of_index[g];
        row.insert(row.end(), entry.targets.begin(), entry.targets.end());
        for (const MatchTarget& t : entry.targets) {
          engine->accept_bitmaps_[s] |= t.owners;
        }
      }
      // §5.1: the match table stores a list sorted by middlebox id.
      std::sort(row.begin(), row.end(),
                [](const MatchTarget& a, const MatchTarget& b) {
                  if (a.is_anchor != b.is_anchor) return b.is_anchor;
                  if (a.middlebox != b.middlebox) return a.middlebox < b.middlebox;
                  return a.pattern_id < b.pattern_id;
                });
      // §5.1: an accepting state with no interested target would mean the
      // dense renumbering and the match table disagree about acceptance.
      DPISVC_ASSERT_INVARIANT(!row.empty(),
                              "accepting state must have at least one target");
    }
  };

  if (strings.empty()) {
    // Degenerate engine (regex-only or empty); build a one-state automaton
    // by leaving the variant's default (empty FullAutomaton is unusable, so
    // insert a never-matching placeholder pattern).
    ac::Trie placeholder;
    placeholder.insert(std::string_view("\x00\x01\x02\x03placeholder-unused",
                                        22),
                       0);
    auto automaton = ac::FullAutomaton::build(placeholder);
    engine->accept_bitmaps_.assign(automaton.num_accepting(), 0);
    engine->accept_targets_.resize(automaton.num_accepting());
    engine->automaton_ = std::move(automaton);
  } else if (config.use_compressed_automaton) {
    auto automaton = ac::CompressedAutomaton::build(trie);
    fill_tables(automaton);
    engine->automaton_ = std::move(automaton);
  } else {
    auto automaton = ac::FullAutomaton::build(trie);
    fill_tables(automaton);
    engine->automaton_ = std::move(automaton);
  }

  // --- policy chains (§5.2) ------------------------------------------------
  for (const auto& [chain, members] : spec.chains) {
    MiddleboxBitmap bitmap = 0;
    StopSpec stop;
    bool any_stateful = false;
    for (MiddleboxId id : members) {
      if (!(seen & bitmap_of(id))) {
        throw std::invalid_argument("Engine: chain references unknown middlebox");
      }
      bitmap |= bitmap_of(id);
      const MiddleboxProfile* p = engine->find_middlebox(id);
      // Stateless and stateful depths are tracked separately: the former
      // renew per packet, the latter are consumed by the flow offset, and
      // the scan clamp needs both maxima (scan_impl).
      if (p->stateful) {
        stop.stateful = std::max(stop.stateful, p->stop_offset);
      } else {
        stop.stateless = std::max(stop.stateless, p->stop_offset);
      }
      any_stateful |= p->stateful;
    }
    engine->chain_members_[chain] = members;
    engine->chain_bitmaps_[chain] = bitmap;
    engine->chain_stop_[chain] = stop;
    engine->chain_stateful_[chain] = any_stateful;
  }

  // --- batched scan kernel -------------------------------------------------
  // Built only over the full-table automaton (the compressed automaton's
  // bitmap rows already trade speed for memory). kAuto defers to the
  // process-wide policy (DPISVC_FORCE_SCALAR + cpu features); an explicit
  // kBatched config overrides the environment.
  if (const auto* full = std::get_if<ac::FullAutomaton>(&engine->automaton_)) {
    const bool want_kernel =
        config.kernel == ScanKernel::kBatched ||
        (config.kernel == ScanKernel::kAuto &&
         !ac::kernel_policy().force_scalar);
    if (want_kernel) {
      engine->kernel_ = ac::HotKernel::build(*full);
      engine->use_kernel_ = engine->kernel_.available();
    }
  }

  return engine;
}

MiddleboxMatches& Engine::section_for(ScanResult& result,
                                      SectionIndex& sections, MiddleboxId id) {
  std::int16_t& slot = sections[id];
  if (slot < 0) {
    slot = static_cast<std::int16_t>(result.matches.size());
    result.matches.push_back(MiddleboxMatches{id, {}});
  }
  return result.matches[static_cast<std::size_t>(slot)];
}

Engine::Prepared Engine::prepare_scan(ac::StateIndex start_state,
                                      const StopSpec& stop, bool any_stateful,
                                      BytesView payload,
                                      const FlowCursor& cursor) const {
  Prepared prep;
  prep.resume = any_stateful && cursor.valid;
  prep.offset = prep.resume ? cursor.offset : 0;
  prep.state = prep.resume ? cursor.dfa_state : start_state;

  // Stopping condition (§5.2). Boundary convention (see
  // MiddleboxProfile::stop_offset): a match is reported iff its end
  // position — 1-based count of its last byte, packet-relative for
  // stateless middleboxes, flow-relative for stateful ones — is <= the
  // middlebox's stop offset. The clamp therefore feeds every byte any
  // active middlebox could still report: stateless depths renew on each
  // packet, while stateful depths shrink by the flow offset already
  // scanned. Taking only the flow-relative remainder here used to cut
  // resumed packets short of the stateless members' per-packet depth,
  // silently dropping their in-depth matches.
  std::uint64_t limit = payload.size();
  if (stop.stateless != kNoStopCondition && stop.stateful != kNoStopCondition) {
    const std::uint64_t stateful_remaining =
        stop.stateful > prep.offset ? stop.stateful - prep.offset : 0;
    limit = std::min<std::uint64_t>(
        limit, std::max<std::uint64_t>(stop.stateless, stateful_remaining));
  }
  prep.scanned = payload.first(static_cast<std::size_t>(limit));
  return prep;
}

namespace {

/// Reusable per-thread raw-match accumulator (pattern id, reported position
/// per middlebox). The rows reset lazily by epoch: only rows touched during
/// a scan are cleared at their first touch of the next scan, and clear()
/// keeps the capacity, so steady-state scanning allocates nothing. (The
/// previous per-scan std::array<std::vector, 65> constructed and destroyed
/// 65 vectors on every packet.)
struct RawScratch {
  std::array<std::vector<std::pair<std::uint16_t, std::uint32_t>>,
             kMaxMiddleboxes + 1>
      rows;
  std::array<std::uint64_t, kMaxMiddleboxes + 1> row_epoch{};
  std::uint64_t epoch = 0;

  std::vector<std::pair<std::uint16_t, std::uint32_t>>& row(MiddleboxId id) {
    auto& r = rows[id];
    if (row_epoch[id] != epoch) {
      r.clear();
      row_epoch[id] = epoch;
    }
    return r;
  }
};

}  // namespace

void Engine::finish_scan(MiddleboxBitmap active, bool any_stateful,
                         const Prepared& prep, const FlowCursor& cursor,
                         ac::StateIndex final_state,
                         const std::vector<ac::Match>& events,
                         ScanResult& result) const {
  const BytesView scanned = prep.scanned;
  const std::uint64_t offset = prep.offset;

  static thread_local RawScratch scratch;
  ++scratch.epoch;
  // Per-packet anchor hit set, as bit words in a per-thread scratch: no
  // per-packet allocation, and skipped entirely for regex-free engines.
  static thread_local std::vector<std::uint64_t> packet_hit_scratch;
  std::vector<std::uint64_t>* packet_hits = nullptr;
  if (num_anchor_bits_ != 0) {
    packet_hit_scratch.assign((num_anchor_bits_ + 63) / 64, 0);
    packet_hits = &packet_hit_scratch;
  }
  MiddleboxBitmap mboxes_with_matches = 0;

  // §5.1 filtering of the walk's accepting-state events. The walk (scalar
  // loop or batched kernel) only reports (end offset, accepting state)
  // pairs; everything per-middlebox happens here, identically for both.
  result.raw_hits = events.size();
  for (const ac::Match& m : events) {
    DPISVC_ASSERT_INVARIANT(m.accept_state < accept_targets_.size(),
                            "match event must name a renumbered accepting "
                            "state below f");
    if (use_accept_bitmaps_) {
      const MiddleboxBitmap interested = accept_bitmaps_[m.accept_state];
      if (!(interested & active)) continue;  // §5.1 bitmap short-circuit
    }
    const std::uint64_t cnt = m.end_offset;
    for (const MatchTarget& t : accept_targets_[m.accept_state]) {
      if (!(t.owners & active)) continue;
      if (t.is_anchor) {
        (*packet_hits)[t.anchor_bit >> 6] |= 1ull << (t.anchor_bit & 63);
        continue;
      }
      std::uint64_t position;
      if (mbox_stateful_[t.middlebox]) {
        position = cnt + offset;  // flow-relative (§5.2)
      } else {
        // Stateless: a match whose pattern is longer than cnt began in a
        // previous packet (possible when resuming from a restored state) and
        // must be ignored (§5.2, footnote 7).
        if (cnt < t.pattern_length) continue;
        position = cnt;
      }
      // Stop filter: report iff end position <= stop — the boundary byte is
      // inclusive (see MiddleboxProfile::stop_offset).
      if (position > mbox_stop_[t.middlebox]) continue;
      scratch.row(t.middlebox)
          .emplace_back(t.pattern_id, static_cast<std::uint32_t>(position));
      mboxes_with_matches |= bitmap_of(t.middlebox);
    }
  }

  result.bytes_scanned = scanned.size();
  if (any_stateful) {
    result.cursor.dfa_state = final_state;
    result.cursor.offset = offset + scanned.size();
    result.cursor.valid = true;
  }
  if (packet_hits != nullptr) {
    for (std::uint64_t w : *packet_hits) {
      result.anchor_hits_seen += static_cast<std::uint64_t>(std::popcount(w));
    }
  }

  // §5.3 per-flow pre-filter state: carried only when a stateful middlebox
  // on the active set owns regexes, so regex-free stateful chains pay
  // nothing here. Merge this packet's anchor bits into the flow's set and
  // keep the previous payload tail for cross-packet evaluation.
  const bool carry =
      any_stateful && (active & stateful_regex_owners_) != 0;
  BytesView window;
  if (carry) {
    if (prep.resume) {
      result.cursor.anchor_hits = cursor.anchor_hits;
      window = BytesView(cursor.regex_window);
    }
    if (packet_hits != nullptr) {
      auto& flow_bits = result.cursor.anchor_hits;
      if (flow_bits.size() < packet_hits->size()) {
        flow_bits.resize(packet_hits->size(), 0);
      }
      for (std::size_t i = 0; i < packet_hits->size(); ++i) {
        flow_bits[i] |= (*packet_hits)[i];
      }
    }
  }

  // Per-scan middlebox -> section index (O(1) section lookups however many
  // matches the packet reports).
  SectionIndex sections;
  sections.fill(-1);

  // Regex evaluation over the scanned slice (§5.3), against the retained
  // flow tail + packet for stateful-owned regexes.
  evaluate_regexes(active, packet_hits, carry, window, scanned, offset,
                   sections, result);

  // Advance the retained tail past this packet's bytes (after evaluation:
  // the regexes above must see the tail as it stood before this packet).
  if (carry && stateful_regex_window_ > 0) {
    Bytes& next = result.cursor.regex_window;
    const std::size_t cap = stateful_regex_window_;
    if (scanned.size() >= cap) {
      next.assign(scanned.end() - static_cast<std::ptrdiff_t>(cap),
                  scanned.end());
    } else {
      const std::size_t keep =
          std::min(window.size(), cap - scanned.size());
      Bytes merged;
      merged.reserve(keep + scanned.size());
      merged.insert(merged.end(),
                    window.end() - static_cast<std::ptrdiff_t>(keep),
                    window.end());
      merged.insert(merged.end(), scanned.begin(), scanned.end());
      next = std::move(merged);
    }
  }

  // Emit sections sorted by (pattern, position) with run compression (§6.5).
  // Iterating the set bits ascending keeps the section order of the old
  // 1..kMaxMiddleboxes sweep.
  for (MiddleboxBitmap bits = mboxes_with_matches; bits != 0;
       bits &= bits - 1) {
    const auto id = static_cast<MiddleboxId>(std::countr_zero(bits) + 1);
    auto& list = scratch.row(id);
    std::sort(list.begin(), list.end());
    auto& section = section_for(result, sections, id);
    auto compressed = net::compress_runs(list);
    section.entries.insert(section.entries.end(), compressed.begin(),
                           compressed.end());
  }
}

template <typename Automaton>
ScanResult Engine::scan_impl(const Automaton& automaton, bool use_kernel,
                             MiddleboxBitmap active, const StopSpec& stop,
                             bool any_stateful, BytesView payload,
                             const FlowCursor& cursor) const {
  const Prepared prep = prepare_scan(automaton.start_state(), stop,
                                     any_stateful, payload, cursor);
  static thread_local std::vector<ac::Match> event_scratch;
  event_scratch.clear();
  ac::StateIndex state = prep.state;

  bool walked = false;
  if constexpr (std::is_same_v<Automaton, ac::FullAutomaton>) {
    if (use_kernel) {
      const ac::HotKernel::Lane lane =
          kernel_.scan(prep.scanned, state, event_scratch);
      if (lane.consumed < prep.scanned.size()) {
        // Cold exit (or a resume state outside the hot core): finish the
        // packet with the scalar loop from where the kernel stopped,
        // shifting event offsets back to the scanned view.
        const std::size_t done = lane.consumed;
        state = automaton.scan(
            prep.scanned.subspan(done), lane.state, [&](ac::Match m) {
              event_scratch.push_back(
                  ac::Match{m.end_offset + done, m.accept_state});
            });
      } else {
        state = lane.state;
      }
      walked = true;
    }
  } else {
    (void)use_kernel;
  }
  if (!walked) {
    state = automaton.scan(prep.scanned, state, [&](ac::Match m) {
      event_scratch.push_back(m);
    });
  }

  ScanResult result;
  finish_scan(active, any_stateful, prep, cursor, state, event_scratch,
              result);
  return result;
}

void Engine::scan_batch_interleaved(const ac::FullAutomaton& automaton,
                                    MiddleboxBitmap active,
                                    const StopSpec& stop, bool any_stateful,
                                    const std::vector<BytesView>& payloads,
                                    std::vector<FlowCursor>* cursors,
                                    std::vector<ScanResult>& out) const {
  constexpr std::size_t kMaxLanes = ac::HotKernel::kMaxInterleave;
  const std::size_t width =
      std::min<std::size_t>(ac::kernel_policy().interleave, kMaxLanes);
  static thread_local std::array<std::vector<ac::Match>, kMaxLanes>
      lane_events;
  std::array<Prepared, kMaxLanes> preps;
  std::array<ac::HotKernel::Lane, kMaxLanes> lanes;
  const FlowCursor no_cursor;

  for (std::size_t base = 0; base < payloads.size(); base += width) {
    const std::size_t group = std::min(width, payloads.size() - base);
    for (std::size_t j = 0; j < group; ++j) {
      const FlowCursor& cursor =
          cursors != nullptr ? (*cursors)[base + j] : no_cursor;
      preps[j] = prepare_scan(automaton.start_state(), stop, any_stateful,
                              payloads[base + j], cursor);
      lane_events[j].clear();
      lanes[j] = ac::HotKernel::Lane{preps[j].scanned, preps[j].state, 0,
                                     &lane_events[j]};
    }
    kernel_.scan_interleaved(lanes.data(), group);
    for (std::size_t j = 0; j < group; ++j) {
      ac::StateIndex state;
      if (lanes[j].consumed < preps[j].scanned.size()) {
        const std::size_t done = lanes[j].consumed;
        state = automaton.scan(
            preps[j].scanned.subspan(done), lanes[j].state, [&](ac::Match m) {
              lane_events[j].push_back(
                  ac::Match{m.end_offset + done, m.accept_state});
            });
      } else {
        state = lanes[j].state;
      }
      const FlowCursor& cursor =
          cursors != nullptr ? (*cursors)[base + j] : no_cursor;
      ScanResult result;
      finish_scan(active, any_stateful, preps[j], cursor, state,
                  lane_events[j], result);
      if (cursors != nullptr) (*cursors)[base + j] = result.cursor;
      out.push_back(std::move(result));
    }
  }
}

namespace {

bool bit_set(const std::vector<std::uint64_t>& words,
             std::uint32_t bit) noexcept {
  const std::size_t w = bit >> 6;
  // Defensive bound: an imported cursor may carry a hit set sized for a
  // previous engine generation; missing words read as unset.
  return w < words.size() && ((words[w] >> (bit & 63)) & 1) != 0;
}

}  // namespace

void Engine::evaluate_regexes(MiddleboxBitmap active,
                              const std::vector<std::uint64_t>* packet_hits,
                              bool carry, BytesView window, BytesView scanned,
                              std::uint64_t base_offset,
                              SectionIndex& sections, ScanResult& result) const {
  static thread_local Bytes concat_scratch;
  for (const CompiledRegex& re : regexes_) {
    if (!(bitmap_of(re.middlebox) & active)) continue;
    // A stateful-owned regex draws its pre-filter bits from the flow's
    // accumulated set (anchors may have matched in earlier packets) and
    // evaluates over the retained tail + this packet; a stateless-owned one
    // sees only this packet's bits and bytes.
    const bool flow_scope = carry && mbox_stateful_[re.middlebox];
    const std::vector<std::uint64_t>* hits =
        flow_scope ? &result.cursor.anchor_hits : packet_hits;
    // Pre-filter: all anchors must have been seen (§5.3). Anchorless
    // regexes run unconditionally (the "parallel path" of §5.3).
    bool all_anchors = true;
    for (std::uint32_t bit : re.anchor_bits) {
      if (hits == nullptr || !bit_set(*hits, bit)) {
        all_anchors = false;
        break;
      }
    }
    if (!all_anchors) continue;
    ++result.regexes_evaluated;

    BytesView haystack = scanned;
    std::size_t min_end = 0;
    if (flow_scope && !window.empty()) {
      concat_scratch.assign(window.begin(), window.end());
      concat_scratch.insert(concat_scratch.end(), scanned.begin(),
                            scanned.end());
      haystack = BytesView(concat_scratch);
      // A match ending inside the tail ends at a flow position that was
      // already evaluable when those bytes were current; only matches
      // ending in the new bytes are reportable now (also prevents a stale
      // earliest-end match in the tail from shadowing a fresh one).
      min_end = window.size();
    }
    const std::optional<std::size_t> end =
        re.matcher.search_end(haystack, min_end);
    if (!end) continue;
    std::uint64_t position = *end;
    if (mbox_stateful_[re.middlebox]) {
      // Flow-relative end: base_offset is the flow offset of the packet's
      // first byte; *end counts from the start of the retained tail.
      position = base_offset - min_end + position;
    }
    // Stop filter: same inclusive-boundary convention as the exact-match
    // site above (report iff end position <= stop).
    if (position > mbox_stop_[re.middlebox]) continue;
    auto& section = section_for(result, sections, re.middlebox);
    section.entries.push_back(net::MatchEntry{
        re.pattern_id, static_cast<std::uint32_t>(position), 1});
    ++result.regex_matches;
  }
}

ScanResult Engine::scan_packet(ChainId chain, BytesView payload,
                               const FlowCursor& cursor) const {
  return scan_packet_as(ScanKernel::kAuto, chain, payload, cursor);
}

ScanResult Engine::scan_packet_as(ScanKernel mode, ChainId chain,
                                  BytesView payload,
                                  const FlowCursor& cursor) const {
  auto members = chain_bitmaps_.find(chain);
  if (members == chain_bitmaps_.end()) {
    throw std::invalid_argument("Engine::scan_packet: unknown policy chain");
  }
  const MiddleboxBitmap active = members->second;
  const StopSpec stop = chain_stop_.at(chain);
  const bool any_stateful = chain_stateful_.at(chain);
  const bool use_kernel = resolve_kernel(mode);
  return std::visit(
      [&](const auto& automaton) {
        return scan_impl(automaton, use_kernel, active, stop, any_stateful,
                         payload, cursor);
      },
      automaton_);
}

std::vector<ScanResult> Engine::scan_batch(ChainId chain,
                                           const std::vector<BytesView>& payloads,
                                           std::vector<FlowCursor>* cursors) const {
  return scan_batch_as(ScanKernel::kAuto, chain, payloads, cursors);
}

std::vector<ScanResult> Engine::scan_batch_as(
    ScanKernel mode, ChainId chain, const std::vector<BytesView>& payloads,
    std::vector<FlowCursor>* cursors) const {
  auto members = chain_bitmaps_.find(chain);
  if (members == chain_bitmaps_.end()) {
    throw std::invalid_argument("Engine::scan_batch: unknown policy chain");
  }
  if (cursors != nullptr && cursors->size() != payloads.size()) {
    throw std::invalid_argument(
        "Engine::scan_batch: cursors must match payloads one-to-one");
  }
  const MiddleboxBitmap active = members->second;
  const StopSpec stop = chain_stop_.at(chain);
  const bool any_stateful = chain_stateful_.at(chain);
  const bool use_kernel = resolve_kernel(mode);
  std::vector<ScanResult> out;
  out.reserve(payloads.size());
  // One variant visit for the whole batch; the per-packet loop then runs
  // with the automaton type resolved. With the kernel active the batch runs
  // interleaved: several packets' hot-table walks advance in lockstep so
  // their transition loads overlap (results stay byte-identical to the
  // sequential order — each lane ends exactly as a lone scan would).
  std::visit(
      [&](const auto& automaton) {
        using A = std::decay_t<decltype(automaton)>;
        if constexpr (std::is_same_v<A, ac::FullAutomaton>) {
          if (use_kernel) {
            scan_batch_interleaved(automaton, active, stop, any_stateful,
                                   payloads, cursors, out);
            return;
          }
        }
        for (std::size_t i = 0; i < payloads.size(); ++i) {
          const FlowCursor cursor = cursors ? (*cursors)[i] : FlowCursor{};
          out.push_back(scan_impl(automaton, use_kernel, active, stop,
                                  any_stateful, payloads[i], cursor));
          if (cursors) (*cursors)[i] = out.back().cursor;
        }
      },
      automaton_);
  return out;
}

ScanResult Engine::scan_packet_for(MiddleboxBitmap active, BytesView payload,
                                   const FlowCursor& cursor) const {
  StopSpec stop;
  bool any_stateful = false;
  for (const auto& p : profiles_) {
    if (bitmap_of(p.id) & active) {
      if (p.stateful) {
        stop.stateful = std::max(stop.stateful, p.stop_offset);
      } else {
        stop.stateless = std::max(stop.stateless, p.stop_offset);
      }
      any_stateful |= p.stateful;
    }
  }
  return std::visit(
      [&](const auto& automaton) {
        return scan_impl(automaton, use_kernel_, active, stop, any_stateful,
                         payload, cursor);
      },
      automaton_);
}

}  // namespace dpisvc::dpi
