// The virtual DPI engine — the paper's core algorithm (§5).
//
// An Engine is an immutable compiled artifact built from the pattern sets of
// all registered middleboxes:
//
//  * one combined Aho-Corasick automaton over the union of all exact
//    patterns and all regex anchors, with accepting states renumbered to
//    {0..f-1} (§5.1);
//  * a direct-access match table: accepting state -> sorted list of
//    (middlebox id, local pattern id, pattern length) triples, with suffix
//    patterns propagated;
//  * a bitmap per accepting state of the middleboxes interested in it, so a
//    single AND against the packet's active-middlebox bitmap decides whether
//    the match table must be consulted at all (§5.1);
//  * per-middlebox regex programs plus the anchor -> regex mapping used for
//    pre-filtered evaluation, and the list of anchorless regexes that must
//    run unconditionally (§5.3);
//  * the policy-chain table: chain id -> active middlebox set (§5.2).
//
// scan_packet() implements §5.2 end to end: active-set resolution, stopping
// condition, stateful state restore via the caller-provided FlowCursor,
// match-list collection, post-scan filtering, and regex evaluation.
//
// Engines are immutable after compile; service instances share one via
// shared_ptr and swap atomically on pattern-set updates.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ac/compressed_automaton.hpp"
#include "ac/full_automaton.hpp"
#include "ac/hot_kernel.hpp"
#include "common/bytes.hpp"
#include "dpi/types.hpp"
#include "net/result.hpp"
#include "regex/matcher.hpp"

namespace dpisvc::dpi {

/// One exact-match registration.
struct ExactPatternSpec {
  std::string bytes;  ///< raw pattern bytes
  MiddleboxId middlebox = 0;
  PatternId pattern_id = 0;
};

/// One regular-expression registration.
struct RegexPatternSpec {
  std::string expression;
  MiddleboxId middlebox = 0;
  PatternId pattern_id = 0;
  bool case_insensitive = false;
};

/// Everything needed to compile an engine. Produced by the controller's
/// PatternDb snapshot (service layer) or assembled directly in tests.
struct EngineSpec {
  std::vector<MiddleboxProfile> middleboxes;
  std::vector<ExactPatternSpec> exact_patterns;
  std::vector<RegexPatternSpec> regex_patterns;
  /// Policy chain -> middlebox ids on the chain that use the DPI service.
  std::map<ChainId, std::vector<MiddleboxId>> chains;
};

/// Scan-kernel dispatch choice, resolved once at compile() (the scan hot
/// path never re-checks the environment).
enum class ScanKernel : std::uint8_t {
  /// Batched kernel when the engine runs the full-table automaton, the hot
  /// layout built, and DPISVC_FORCE_SCALAR is not set (ac::kernel_policy()).
  kAuto = 0,
  /// Always the scalar per-byte loop (the pre-kernel behavior, and the
  /// oracle side of the kernel cross-check).
  kScalar = 1,
  /// Batched kernel even under DPISVC_FORCE_SCALAR (used by the verifier
  /// so the cross-check still drives both paths); silently scalar when the
  /// kernel cannot be built (compressed automaton).
  kBatched = 2,
};

struct EngineConfig {
  /// Use the failure-link automaton instead of the full table (the MCA²
  /// dedicated-instance configuration, §4.3.1).
  bool use_compressed_automaton = false;
  /// Scan-kernel dispatch (see ScanKernel). The batched kernel is proven
  /// byte-identical to the scalar loop by src/verify and dpisvc_check
  /// --kernel-xcheck.
  ScanKernel kernel = ScanKernel::kAuto;
  /// Anchors shorter than this are not extracted from regexes (§5.3).
  std::size_t anchor_min_length = 4;
  /// §5.1's accepting-state bitmap optimization: one AND against the active
  /// set decides whether the match table is consulted. Disable only for the
  /// ablation bench quantifying its value.
  bool use_accept_bitmaps = true;
  /// Upper bound on distinct regex anchors (= bits in the per-scan anchor
  /// hit set). Every scan allocates a hit set of this many entries at most,
  /// so the bound keeps the per-packet scratch cost predictable. compile()
  /// rejects a spec whose regexes contribute more distinct anchors with a
  /// diagnostic instead of growing the hit set without limit.
  std::uint32_t max_anchor_bits = 1u << 16;
  /// Payload tail (bytes) retained per stateful flow for cross-packet regex
  /// evaluation (§5.3 x §5.2). Anchors are mandatory substrings of every
  /// match a regex can produce, so when a regex's anchors land in different
  /// packets of one flow the match itself must also straddle the packet
  /// boundary — evaluating the regex against the current packet alone can
  /// never report it. Stateful-owned regexes therefore evaluate against the
  /// retained tail + current packet, and a match is reported iff it ends in
  /// the new bytes (ends inside the tail = was already reportable earlier).
  /// Bounds the per-flow memory cost; matches spanning more than this many
  /// bytes of history are missed (documented best-effort, like any bounded
  /// reassembly depth). 0 disables tail retention: anchor bits still
  /// persist per flow, but cross-packet regex matches are not found.
  std::uint32_t stateful_regex_window = 256;
};

/// Cross-packet scan state for one flow (§5.2): the DFA state where the
/// previous packet left off and the number of payload bytes already scanned.
/// For flows whose chain has a stateful middlebox owning regexes, the cursor
/// additionally carries the §5.3 pre-filter state: the anchor hit bits
/// accumulated over the flow's lifetime (so anchors split across packets
/// still arm the regex) and a bounded payload tail
/// (EngineConfig::stateful_regex_window) the regex evaluates over together
/// with the next packet. Both stay empty for stateless chains and for
/// engines without stateful-owned regexes, so the common case copies two
/// empty vectors. New fields are appended after `valid` so existing
/// three-field aggregate initializers keep their meaning.
struct FlowCursor {
  ac::StateIndex dfa_state = 0;
  std::uint64_t offset = 0;
  bool valid = false;  ///< false for the first packet of a flow
  /// Anchor hit bits (64 per word, indexed by MatchTarget::anchor_bit)
  /// accumulated across the flow's packets. Cleared on eviction/reset with
  /// the rest of the cursor.
  std::vector<std::uint64_t> anchor_hits;
  /// Last min(stateful_regex_window, bytes seen) scanned payload bytes.
  Bytes regex_window;
};

/// Per-middlebox match list for one packet.
struct MiddleboxMatches {
  MiddleboxId middlebox = 0;
  std::vector<net::MatchEntry> entries;
};

struct ScanResult {
  std::vector<MiddleboxMatches> matches;
  /// Updated cursor (valid only when some active middlebox is stateful).
  FlowCursor cursor;
  /// Bytes actually fed to the automaton (after the stop condition cut).
  std::uint64_t bytes_scanned = 0;
  /// Total accepting-state hits during the scan, before per-middlebox
  /// filtering; exported as a stress telemetry input (§4.3.1).
  std::uint64_t raw_hits = 0;
  /// Distinct anchor bits newly observed in this packet (§5.3 pre-filter
  /// progress); an observability input for anchor hit-rate telemetry.
  std::uint64_t anchor_hits_seen = 0;
  /// Regex programs actually run (passed the anchor pre-filter) and match
  /// entries they emitted — the §5.3 selectivity signal.
  std::uint64_t regexes_evaluated = 0;
  std::uint64_t regex_matches = 0;

  bool has_matches() const noexcept {
    for (const auto& m : matches) {
      if (!m.entries.empty()) return true;
    }
    return false;
  }
};

class Engine {
 public:
  /// One entry of the per-accepting-state match table (§5.1). Public so the
  /// static verifier (src/verify) can cross-check the table against the
  /// accepting-state bitmaps.
  struct MatchTarget {
    /// Bitmap of middleboxes interested in this target. For an exact pattern
    /// this is bitmap_of(middlebox); an anchor shared by regexes of several
    /// middleboxes carries their union.
    MiddleboxBitmap owners = 0;
    MiddleboxId middlebox = 0;
    PatternId pattern_id = 0;
    std::uint32_t pattern_length = 0;
    /// Anchor targets mark anchor hits instead of producing match entries.
    bool is_anchor = false;
    std::uint32_t anchor_bit = 0;  ///< index into the per-scan anchor hit set
  };

  /// Compiles a spec. Throws std::invalid_argument on inconsistent input
  /// (unknown middlebox referenced, ids out of range, empty patterns,
  /// malformed regexes).
  static std::shared_ptr<const Engine> compile(const EngineSpec& spec,
                                               const EngineConfig& config = {});

  /// Scans one packet payload (§5.2).
  ///
  /// `chain` selects the active middlebox set. `cursor` carries stateful
  /// flow state: pass the stored cursor for this flow (or a default-
  /// constructed one for a new flow); the updated cursor is returned in the
  /// result. Stateless-only chains ignore it.
  ScanResult scan_packet(ChainId chain, BytesView payload,
                         const FlowCursor& cursor = {}) const;

  /// Batched ingest (§6 scaling): scans a vector of independent packets of
  /// one chain with a single chain resolution and automaton dispatch,
  /// instead of one map lookup + variant visit per packet. When `cursors`
  /// is non-null it must have one entry per payload; each entry supplies
  /// that packet's resume state and receives the updated cursor. Packets of
  /// the same flow must not appear twice in one batch with caller-managed
  /// cursors (each would resume from the same stored state) — the sharded
  /// instance path feeds per-flow sequential batches instead.
  std::vector<ScanResult> scan_batch(ChainId chain,
                                     const std::vector<BytesView>& payloads,
                                     std::vector<FlowCursor>* cursors =
                                         nullptr) const;

  /// Scan against an explicit set of active middleboxes instead of a chain.
  ScanResult scan_packet_for(MiddleboxBitmap active, BytesView payload,
                             const FlowCursor& cursor = {}) const;

  /// scan_packet with an explicit kernel-dispatch override. The kernel
  /// cross-check (src/verify, dpisvc_check --kernel-xcheck) drives both the
  /// scalar oracle and the batched kernel over one compiled engine with
  /// this; production callers use scan_packet(), which applies the choice
  /// resolved at compile().
  ScanResult scan_packet_as(ScanKernel mode, ChainId chain, BytesView payload,
                            const FlowCursor& cursor = {}) const;

  /// scan_batch with an explicit kernel-dispatch override (kBatched takes
  /// the flow-interleaved lane path, kScalar the per-packet scalar loop).
  std::vector<ScanResult> scan_batch_as(ScanKernel mode, ChainId chain,
                                        const std::vector<BytesView>& payloads,
                                        std::vector<FlowCursor>* cursors =
                                            nullptr) const;

  // --- introspection -------------------------------------------------------

  const std::vector<MiddleboxProfile>& middleboxes() const noexcept {
    return profiles_;
  }
  const MiddleboxProfile* find_middlebox(MiddleboxId id) const noexcept;

  bool chain_known(ChainId chain) const noexcept {
    return chain_members_.count(chain) != 0;
  }
  MiddleboxBitmap chain_bitmap(ChainId chain) const;

  /// True if any middlebox on the chain registered as stateful (the scan
  /// must then carry flow state across packets).
  bool chain_stateful(ChainId chain) const;

  /// True if every middlebox on the chain is read-only (§4.2: the packet
  /// itself need not be routed; results alone suffice).
  bool chain_read_only(ChainId chain) const;

  /// True when scan_packet()/scan_batch() run the batched kernel (full-table
  /// automaton, hot layout built, dispatch resolved in its favor).
  bool kernel_active() const noexcept { return use_kernel_; }
  /// The compiled hot-core layout, or nullptr when none was built. The
  /// static verifier proves it transition-for-transition equal to the full
  /// table. NOT counted in memory_bytes() (which is the Table 2 "Space"
  /// column that src/analysis predicts exactly); see kernel_memory_bytes().
  const ac::HotKernel* hot_kernel() const noexcept {
    return kernel_.available() ? &kernel_ : nullptr;
  }
  std::size_t kernel_memory_bytes() const noexcept {
    return kernel_.memory_bytes();
  }

  std::size_t num_exact_patterns() const noexcept { return num_exact_; }
  std::size_t num_regex_patterns() const noexcept { return regexes_.size(); }
  std::size_t num_distinct_strings() const noexcept { return num_strings_; }
  std::uint32_t num_automaton_states() const noexcept;
  bool uses_compressed_automaton() const noexcept {
    return std::holds_alternative<ac::CompressedAutomaton>(automaton_);
  }

  /// Resident size of the compiled structures (Table 2 "Space" column).
  std::size_t memory_bytes() const noexcept;

  // --- verifier introspection (src/verify) ---------------------------------

  const std::variant<ac::FullAutomaton, ac::CompressedAutomaton>& automaton()
      const noexcept {
    return automaton_;
  }
  std::uint32_t num_accepting_states() const noexcept {
    return static_cast<std::uint32_t>(accept_targets_.size());
  }
  MiddleboxBitmap accept_bitmap(ac::StateIndex accept) const {
    return accept_bitmaps_[accept];
  }
  const std::vector<MatchTarget>& accept_targets(ac::StateIndex accept) const {
    return accept_targets_[accept];
  }
  const std::map<ChainId, std::vector<MiddleboxId>>& chain_table()
      const noexcept {
    return chain_members_;
  }

  /// Raw automaton traversal with no match collection; the throughput
  /// baseline benches use this to isolate DFA speed. Returns the final
  /// automaton state (callers must consume it so the traversal is not
  /// optimized away).
  ac::StateIndex traverse_only(BytesView payload) const noexcept;

 private:
  Engine() = default;

  struct CompiledRegex {
    MiddleboxId middlebox = 0;
    PatternId pattern_id = 0;
    regex::Matcher matcher;
    /// Anchor-hit bits that must all be set before evaluation (§5.3);
    /// empty means anchorless: always evaluated.
    std::vector<std::uint32_t> anchor_bits;
  };

  /// Per-chain scan-depth bounds, split by statefulness because the two
  /// kinds consume depth differently (see MiddleboxProfile::stop_offset):
  /// stateless depths are packet-relative and renew every packet, stateful
  /// depths are flow-relative and shrink as the flow offset advances. The
  /// scan clamp must feed every byte either kind could still report.
  struct StopSpec {
    std::uint32_t stateless = 0;  ///< max stop over stateless members
    std::uint32_t stateful = 0;   ///< max stop over stateful members
  };

  /// The scanned slice and resume point of one packet, computed before the
  /// automaton walk (shared by the scalar, kernel, and interleaved paths).
  struct Prepared {
    BytesView scanned;
    std::uint64_t offset = 0;
    ac::StateIndex state = 0;
    bool resume = false;
  };
  Prepared prepare_scan(ac::StateIndex start_state, const StopSpec& stop,
                        bool any_stateful, BytesView payload,
                        const FlowCursor& cursor) const;

  template <typename Automaton>
  ScanResult scan_impl(const Automaton& automaton, bool use_kernel,
                       MiddleboxBitmap active, const StopSpec& stop,
                       bool any_stateful, BytesView payload,
                       const FlowCursor& cursor) const;

  /// Flow-interleaved batch walk over the full-table automaton: packets are
  /// grouped into kernel lanes (ac::kernel_policy().interleave wide) so
  /// their transition loads overlap, then finished per packet in submission
  /// order — results are byte-identical to the sequential path.
  void scan_batch_interleaved(const ac::FullAutomaton& automaton,
                              MiddleboxBitmap active, const StopSpec& stop,
                              bool any_stateful,
                              const std::vector<BytesView>& payloads,
                              std::vector<FlowCursor>* cursors,
                              std::vector<ScanResult>& out) const;

  /// Per-scan middlebox -> result-section index: section lookups stay O(1)
  /// however many matches a packet reports (the linear section_for scan was
  /// quadratic on heavy-match packets).
  using SectionIndex = std::array<std::int16_t, kMaxMiddleboxes + 1>;

  /// Everything after the automaton walk: §5.1 match-event filtering
  /// against the active set, cursor/anchor-state update, §5.3 regex
  /// evaluation, and section emission. Pure function of the walk's match
  /// events and final state, so the scalar loop and the batched kernel
  /// share it verbatim — the cross-check only has to prove the walks equal.
  void finish_scan(MiddleboxBitmap active, bool any_stateful,
                   const Prepared& prep, const FlowCursor& cursor,
                   ac::StateIndex final_state,
                   const std::vector<ac::Match>& events,
                   ScanResult& result) const;

  /// §5.3 regex evaluation. `packet_hits` holds the anchor bits set by this
  /// packet's automaton pass (null when the engine has no anchor bits);
  /// stateless-owned regexes pre-filter on it and evaluate over `scanned`.
  /// When `carry` is true (stateful chain with stateful-owned regexes),
  /// stateful-owned regexes pre-filter on the merged per-flow bits in
  /// `result.cursor.anchor_hits` and evaluate over `window` + `scanned`,
  /// reporting only matches that end in the new bytes.
  void evaluate_regexes(MiddleboxBitmap active,
                        const std::vector<std::uint64_t>* packet_hits,
                        bool carry, BytesView window, BytesView scanned,
                        std::uint64_t base_offset, SectionIndex& sections,
                        ScanResult& result) const;

  static MiddleboxMatches& section_for(ScanResult& result,
                                       SectionIndex& sections, MiddleboxId id);

  /// Resolves an explicit dispatch override against what was compiled.
  bool resolve_kernel(ScanKernel mode) const noexcept {
    switch (mode) {
      case ScanKernel::kScalar:
        return false;
      case ScanKernel::kBatched:
        return kernel_.available();
      case ScanKernel::kAuto:
      default:
        return use_kernel_;
    }
  }

  std::vector<MiddleboxProfile> profiles_;
  /// Profile fields denormalized by middlebox id for the per-match hot path.
  std::array<bool, kMaxMiddleboxes + 1> mbox_stateful_{};
  std::array<std::uint32_t, kMaxMiddleboxes + 1> mbox_stop_{};
  std::map<ChainId, std::vector<MiddleboxId>> chain_members_;
  std::map<ChainId, MiddleboxBitmap> chain_bitmaps_;
  std::map<ChainId, StopSpec> chain_stop_;
  std::map<ChainId, bool> chain_stateful_;

  std::variant<ac::FullAutomaton, ac::CompressedAutomaton> automaton_;
  /// Cache-conscious hot-core layout over the full-table automaton (empty
  /// when compressed, or when compile() resolved dispatch to scalar).
  ac::HotKernel kernel_;
  /// Compile-time-resolved dispatch: scan_packet()/scan_batch() use the
  /// kernel. The scalar loop stays reachable via scan_packet_as().
  bool use_kernel_ = false;
  /// Per accepting state: interested-middlebox bitmap (anchor targets
  /// contribute their owning middlebox too).
  std::vector<MiddleboxBitmap> accept_bitmaps_;
  /// Per accepting state: match targets sorted by middlebox id (§5.1).
  std::vector<std::vector<MatchTarget>> accept_targets_;

  std::vector<CompiledRegex> regexes_;
  std::uint32_t num_anchor_bits_ = 0;
  bool use_accept_bitmaps_ = true;
  /// Stateful middleboxes owning at least one regex: flows only carry
  /// anchor bits / a payload tail when the active set intersects this, so
  /// regex-free stateful chains pay nothing for the §5.3 flow state.
  MiddleboxBitmap stateful_regex_owners_ = 0;
  std::uint32_t stateful_regex_window_ = 0;

  std::size_t num_exact_ = 0;
  std::size_t num_strings_ = 0;
};

}  // namespace dpisvc::dpi
