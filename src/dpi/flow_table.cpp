#include "dpi/flow_table.hpp"

#include <stdexcept>

#include "common/invariant.hpp"

namespace dpisvc::dpi {

FlowTable::FlowTable(std::size_t max_flows) : max_flows_(max_flows) {
  if (max_flows_ == 0) {
    throw std::invalid_argument("FlowTable: capacity must be positive");
  }
}

void FlowTable::touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

FlowCursor FlowTable::lookup(const net::FiveTuple& flow) {
  auto it = entries_.find(flow.canonical());
  if (it == entries_.end()) {
    return FlowCursor{};
  }
  touch(it->second);
  return it->second->cursor;
}

bool FlowTable::update(const net::FiveTuple& flow, const FlowCursor& cursor) {
  const net::FiveTuple key = flow.canonical();
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->cursor = cursor;
    touch(it->second);
    return false;
  }
  bool evicted_live_cursor = false;
  if (entries_.size() >= max_flows_) {
    const Entry& victim = lru_.back();
    evicted_live_cursor = victim.cursor.valid;
    entries_.erase(victim.flow);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, cursor});
  entries_.emplace(key, lru_.begin());
  DPISVC_ASSERT_INVARIANT(entries_.size() == lru_.size(),
                          "flow index and LRU list must stay in lockstep");
  DPISVC_ASSERT_INVARIANT(entries_.size() <= max_flows_,
                          "flow table must not exceed its capacity");
  return evicted_live_cursor;
}

bool FlowTable::erase(const net::FiveTuple& flow) {
  auto it = entries_.find(flow.canonical());
  if (it == entries_.end()) return false;
  lru_.erase(it->second);
  entries_.erase(it);
  return true;
}

FlowCursor FlowTable::extract(const net::FiveTuple& flow) {
  auto it = entries_.find(flow.canonical());
  if (it == entries_.end()) return FlowCursor{};
  const FlowCursor cursor = it->second->cursor;
  lru_.erase(it->second);
  entries_.erase(it);
  DPISVC_ASSERT_INVARIANT(entries_.size() == lru_.size(),
                          "flow index and LRU list must stay in lockstep");
  return cursor;
}

std::vector<net::FiveTuple> FlowTable::keys() const {
  std::vector<net::FiveTuple> out;
  out.reserve(lru_.size());
  for (const Entry& entry : lru_) {
    out.push_back(entry.flow);
  }
  return out;
}

std::vector<std::pair<net::FiveTuple, FlowCursor>> FlowTable::drain() {
  std::vector<std::pair<net::FiveTuple, FlowCursor>> out;
  out.reserve(lru_.size());
  for (const Entry& entry : lru_) {
    out.emplace_back(entry.flow, entry.cursor);
  }
  lru_.clear();
  entries_.clear();
  return out;
}

void FlowTable::clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace dpisvc::dpi
