// Active-flow table for stateful scanning (§5.1/§5.2).
//
// A DPI service instance keeps, per flow, only the DFA state where the last
// packet's scan ended and the byte offset within the flow — the property the
// paper highlights (§4.3) as making DPI instances much easier to migrate
// than full middleboxes. Capacity is bounded with LRU eviction so an
// instance cannot be memory-exhausted by flow-creation floods.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dpi/engine.hpp"
#include "net/flow.hpp"

namespace dpisvc::dpi {

class FlowTable {
 public:
  explicit FlowTable(std::size_t max_flows = 1 << 20);

  /// Returns the stored cursor, or an invalid cursor for an unknown flow.
  /// A hit refreshes the flow's LRU position.
  FlowCursor lookup(const net::FiveTuple& flow);

  /// Inserts or updates; may evict the least-recently-used flow. Returns
  /// true when a *live* stateful cursor was evicted to make room — the
  /// victim flow's next packet then resumes from the DFA root, so any
  /// pattern straddling the eviction point is silently missed. Callers
  /// (the service instance) surface the signal in their telemetry so the
  /// loss is at least observable.
  bool update(const net::FiveTuple& flow, const FlowCursor& cursor);

  /// Removes a flow (end of connection, or hand-off after migration).
  /// Returns false if the flow was unknown.
  bool erase(const net::FiveTuple& flow);

  /// Extracts the cursor for migration to another instance (§4.3): returns
  /// the cursor and removes the local entry.
  FlowCursor extract(const net::FiveTuple& flow);

  /// All currently tracked flows, most recently used first (failover uses
  /// this to migrate a dead instance's surviving state, §4.3).
  std::vector<net::FiveTuple> keys() const;

  /// Extracts every entry, most recently used first, and clears the table.
  /// Bulk-migration counterpart of extract(): failover and shard re-homing
  /// move a whole table in one pass instead of per-flow lookups.
  std::vector<std::pair<net::FiveTuple, FlowCursor>> drain();

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return max_flows_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

  void clear();

 private:
  struct Entry {
    net::FiveTuple flow;
    FlowCursor cursor;
  };

  using LruList = std::list<Entry>;

  void touch(LruList::iterator it);

  std::size_t max_flows_;
  LruList lru_;  ///< front = most recent
  std::unordered_map<net::FiveTuple, LruList::iterator> entries_;
  std::uint64_t evictions_ = 0;
};

}  // namespace dpisvc::dpi
