#include "dpi/pattern_db.hpp"

#include <stdexcept>

namespace dpisvc::dpi {

namespace {
/// Regexes are distinct patterns when either the text or the flags differ.
std::string regex_key(const std::string& expression, bool case_insensitive) {
  return (case_insensitive ? "i:" : "s:") + expression;
}
}  // namespace

void PatternDb::require_registered(MiddleboxId id) const {
  if (!is_registered(id)) {
    throw std::invalid_argument("PatternDb: middlebox not registered");
  }
}

bool PatternDb::is_registered(MiddleboxId id) const noexcept {
  return profiles_.count(id) != 0;
}

const MiddleboxProfile* PatternDb::profile(MiddleboxId id) const noexcept {
  auto it = profiles_.find(id);
  return it == profiles_.end() ? nullptr : &it->second;
}

void PatternDb::register_middlebox(const MiddleboxProfile& profile) {
  if (profile.id == 0 || profile.id > kMaxMiddleboxes) {
    throw std::invalid_argument("PatternDb: middlebox id out of range 1..64");
  }
  if (is_registered(profile.id)) {
    throw std::invalid_argument("PatternDb: middlebox id already registered");
  }
  profiles_.emplace(profile.id, profile);
  bump();
}

bool PatternDb::unregister_middlebox(MiddleboxId id) {
  if (profiles_.erase(id) == 0) return false;
  auto scrub = [&](auto& table) {
    for (auto it = table.begin(); it != table.end();) {
      auto& refs = it->second.refs;
      for (auto ref = refs.begin(); ref != refs.end();) {
        ref = ref->first == id ? refs.erase(ref) : std::next(ref);
      }
      it = refs.empty() ? table.erase(it) : std::next(it);
    }
  };
  scrub(exact_);
  scrub(regex_);
  // Chains referencing the middlebox keep their other members; drop the id.
  for (auto& [chain, members] : chains_) {
    std::erase(members, id);
  }
  bump();
  return true;
}

void PatternDb::inherit_patterns(MiddleboxId to, MiddleboxId from) {
  require_registered(to);
  require_registered(from);
  for (auto& [bytes, entry] : exact_) {
    std::vector<PatternId> rules;
    for (const auto& [mbox, rule] : entry.refs) {
      if (mbox == from) rules.push_back(rule);
    }
    for (PatternId rule : rules) {
      entry.refs.emplace(to, rule);
    }
  }
  for (auto& [key, entry] : regex_) {
    std::vector<PatternId> rules;
    for (const auto& [mbox, rule] : entry.refs) {
      if (mbox == from) rules.push_back(rule);
    }
    for (PatternId rule : rules) {
      entry.refs.emplace(to, rule);
    }
  }
  bump();
}

bool PatternDb::has_rule(MiddleboxId middlebox, PatternId rule) const noexcept {
  for (const auto& [bytes, entry] : exact_) {
    if (entry.refs.count({middlebox, rule})) return true;
  }
  for (const auto& [key, entry] : regex_) {
    if (entry.refs.count({middlebox, rule})) return true;
  }
  return false;
}

void PatternDb::add_exact(MiddleboxId middlebox, PatternId rule,
                          std::string bytes) {
  require_registered(middlebox);
  if (bytes.empty()) {
    throw std::invalid_argument("PatternDb: empty pattern");
  }
  if (bytes.size() > kMaxPatternBytes) {
    throw PatternDbError(PatternDbError::Code::kPatternTooLong,
                         "PatternDb: pattern exceeds " +
                             std::to_string(kMaxPatternBytes) + " bytes");
  }
  if (has_rule(middlebox, rule)) {
    throw PatternDbError(PatternDbError::Code::kDuplicateRule,
                         "PatternDb: (middlebox, rule id) already registered");
  }
  auto [it, inserted] = exact_.try_emplace(std::move(bytes));
  if (inserted) {
    it->second.internal_id = next_internal_id_++;
  }
  it->second.refs.emplace(middlebox, rule);
  bump();
}

void PatternDb::add_regex(MiddleboxId middlebox, PatternId rule,
                          std::string expression, bool case_insensitive) {
  require_registered(middlebox);
  if (expression.empty()) {
    throw std::invalid_argument("PatternDb: empty regex");
  }
  if (expression.size() > kMaxPatternBytes) {
    throw PatternDbError(PatternDbError::Code::kPatternTooLong,
                         "PatternDb: regex exceeds " +
                             std::to_string(kMaxPatternBytes) + " bytes");
  }
  if (has_rule(middlebox, rule)) {
    throw PatternDbError(PatternDbError::Code::kDuplicateRule,
                         "PatternDb: (middlebox, rule id) already registered");
  }
  std::string key = regex_key(expression, case_insensitive);
  auto [it, inserted] = regex_.try_emplace(std::move(key));
  if (inserted) {
    it->second.internal_id = next_internal_id_++;
    it->second.case_insensitive = case_insensitive;
  }
  it->second.refs.emplace(middlebox, rule);
  bump();
}

bool PatternDb::remove_exact(MiddleboxId middlebox, PatternId rule) {
  for (auto it = exact_.begin(); it != exact_.end(); ++it) {
    if (it->second.refs.erase({middlebox, rule}) > 0) {
      if (it->second.refs.empty()) {
        exact_.erase(it);  // Last reference gone: drop the pattern (§4.1).
      }
      bump();
      return true;
    }
  }
  return false;
}

bool PatternDb::remove_regex(MiddleboxId middlebox, PatternId rule) {
  for (auto it = regex_.begin(); it != regex_.end(); ++it) {
    if (it->second.refs.erase({middlebox, rule}) > 0) {
      if (it->second.refs.empty()) {
        regex_.erase(it);
      }
      bump();
      return true;
    }
  }
  return false;
}

void PatternDb::set_chain(ChainId chain, std::vector<MiddleboxId> members) {
  for (MiddleboxId id : members) {
    require_registered(id);
  }
  chains_[chain] = std::move(members);
  bump();
}

bool PatternDb::remove_chain(ChainId chain) {
  if (chains_.erase(chain) == 0) return false;
  bump();
  return true;
}

EngineSpec PatternDb::snapshot() const {
  EngineSpec spec;
  spec.middleboxes.reserve(profiles_.size());
  for (const auto& [id, profile] : profiles_) {
    spec.middleboxes.push_back(profile);
  }
  for (const auto& [bytes, entry] : exact_) {
    for (const auto& [mbox, rule] : entry.refs) {
      spec.exact_patterns.push_back(ExactPatternSpec{bytes, mbox, rule});
    }
  }
  for (const auto& [key, entry] : regex_) {
    const std::string expression = key.substr(2);  // strip "i:"/"s:"
    for (const auto& [mbox, rule] : entry.refs) {
      spec.regex_patterns.push_back(
          RegexPatternSpec{expression, mbox, rule, entry.case_insensitive});
    }
  }
  spec.chains = chains_;
  return spec;
}

std::size_t PatternDb::num_references(MiddleboxId id) const noexcept {
  std::size_t n = 0;
  for (const auto& [bytes, entry] : exact_) {
    for (const auto& ref : entry.refs) {
      if (ref.first == id) ++n;
    }
  }
  for (const auto& [key, entry] : regex_) {
    for (const auto& ref : entry.refs) {
      if (ref.first == id) ++n;
    }
  }
  return n;
}

std::optional<std::uint64_t> PatternDb::internal_id_of_exact(
    const std::string& bytes) const {
  auto it = exact_.find(bytes);
  if (it == exact_.end()) return std::nullopt;
  return it->second.internal_id;
}

}  // namespace dpisvc::dpi
