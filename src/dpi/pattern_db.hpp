// The DPI controller's global pattern registry (§4.1).
//
// The controller "maintains a global pattern set with its own internal IDs.
// If two middleboxes register the same pattern ... it keeps track of each of
// the rule IDs reported by each middlebox and associates them with its
// internal ID. ... when a pattern removal request is received, the DPI
// Controller removes the middlebox reference to the corresponding pattern.
// Only if there are no other middleboxes referrals to that pattern, is it
// removed."
//
// PatternDb implements exactly that: distinct patterns are stored once with
// a stable internal id and a reference list of (middlebox, local rule id)
// pairs. snapshot() flattens the current registry into an EngineSpec that
// dpi::Engine::compile() turns into the combined automaton; version() lets
// instances detect staleness cheaply.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "dpi/engine.hpp"
#include "dpi/types.hpp"

namespace dpisvc::dpi {

/// Upper bound on the byte length of an exact pattern / regex expression the
/// loader accepts. Longer "patterns" are rejected with PatternDbError: real
/// NIDS signatures are tens of bytes, and an unbounded length would let one
/// registration message inflate the compiled automaton arbitrarily.
inline constexpr std::size_t kMaxPatternBytes = 4096;

/// Typed loader rejection with a stable code, so callers (and the fuzz
/// harness) can assert *why* an input was refused rather than string-match
/// the message. Derives from std::invalid_argument to stay catchable by
/// pre-existing error handling.
class PatternDbError : public std::invalid_argument {
 public:
  enum class Code {
    kDuplicateRule,   ///< (middlebox, rule id) pair already registered
    kPatternTooLong,  ///< pattern/expression exceeds kMaxPatternBytes
  };

  PatternDbError(Code code, const std::string& what)
      : std::invalid_argument(what), code_(code) {}
  Code code() const noexcept { return code_; }

 private:
  Code code_;
};

class PatternDb {
 public:
  // --- middlebox registration ---------------------------------------------

  /// Registers a middlebox type. Throws std::invalid_argument for duplicate
  /// or out-of-range ids.
  void register_middlebox(const MiddleboxProfile& profile);

  /// Removes a middlebox and all its pattern references (patterns with no
  /// remaining references disappear). Returns false if unknown.
  bool unregister_middlebox(MiddleboxId id);

  /// §4.1: "A middlebox may inherit the pattern set of an already registered
  /// middlebox." Copies all of `from`'s current references to `to`, keeping
  /// the same local rule ids.
  void inherit_patterns(MiddleboxId to, MiddleboxId from);

  bool is_registered(MiddleboxId id) const noexcept;
  const MiddleboxProfile* profile(MiddleboxId id) const noexcept;

  // --- pattern management ---------------------------------------------------

  /// Adds an exact pattern reference. A (middlebox, rule id) pair may be
  /// registered at most once across exact and regex patterns: re-adding it —
  /// even with identical bytes — throws PatternDbError{kDuplicateRule}, and
  /// patterns longer than kMaxPatternBytes throw
  /// PatternDbError{kPatternTooLong}. (The loader used to merge same-bytes
  /// re-adds silently, which left fuzzing without an oracle: a corrupted
  /// duplicate-laden message and a valid one were indistinguishable.)
  void add_exact(MiddleboxId middlebox, PatternId rule, std::string bytes);

  /// Adds a regular-expression reference (same semantics as add_exact).
  void add_regex(MiddleboxId middlebox, PatternId rule, std::string expression,
                 bool case_insensitive = false);

  /// True when the (middlebox, rule id) pair references any pattern, exact
  /// or regex.
  bool has_rule(MiddleboxId middlebox, PatternId rule) const noexcept;

  /// Removes one middlebox's reference; the pattern itself is dropped only
  /// when its last reference goes (§4.1). Returns false if no such
  /// reference existed.
  bool remove_exact(MiddleboxId middlebox, PatternId rule);
  bool remove_regex(MiddleboxId middlebox, PatternId rule);

  // --- policy chains ---------------------------------------------------------

  void set_chain(ChainId chain, std::vector<MiddleboxId> members);
  bool remove_chain(ChainId chain);

  // --- snapshot / stats ------------------------------------------------------

  /// Flattens the registry into a compilable spec.
  EngineSpec snapshot() const;

  /// Monotonic counter bumped on every mutation; instances compare engine
  /// versions against it to detect staleness.
  std::uint64_t version() const noexcept { return version_; }

  std::size_t num_middleboxes() const noexcept { return profiles_.size(); }
  std::size_t num_distinct_exact() const noexcept { return exact_.size(); }
  std::size_t num_distinct_regex() const noexcept { return regex_.size(); }

  /// Total references held by a middlebox (its pattern-set size).
  std::size_t num_references(MiddleboxId id) const noexcept;

  /// Internal id of an exact pattern, if present (for introspection/tests).
  std::optional<std::uint64_t> internal_id_of_exact(
      const std::string& bytes) const;

 private:
  struct ExactEntry {
    std::uint64_t internal_id = 0;
    /// (middlebox, local rule id) references; a middlebox may reference the
    /// same bytes under several of its own rule ids.
    std::set<std::pair<MiddleboxId, PatternId>> refs;
  };

  struct RegexEntry {
    std::uint64_t internal_id = 0;
    bool case_insensitive = false;
    std::set<std::pair<MiddleboxId, PatternId>> refs;
  };

  void require_registered(MiddleboxId id) const;
  void bump() noexcept { ++version_; }

  std::map<MiddleboxId, MiddleboxProfile> profiles_;
  std::map<std::string, ExactEntry> exact_;           // bytes -> entry
  std::map<std::string, RegexEntry> regex_;           // expression -> entry
  std::map<ChainId, std::vector<MiddleboxId>> chains_;
  std::uint64_t next_internal_id_ = 1;
  std::uint64_t version_ = 0;
};

}  // namespace dpisvc::dpi
