// Shared identifier types and middlebox metadata for the DPI service (§4-5).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace dpisvc::dpi {

/// Middlebox-type identifier, allocated sequentially {1..n} by the DPI
/// controller (§5.1). Bitmap acceleration supports up to 64 registered
/// middlebox types; the controller enforces the bound.
using MiddleboxId = std::uint16_t;

/// Pattern/rule identifier local to one middlebox (the id the middlebox
/// reported when registering the pattern; results are expressed in it).
using PatternId = std::uint16_t;

/// Policy-chain identifier assigned by the DPI controller (§4.1).
using ChainId = std::uint16_t;

inline constexpr std::size_t kMaxMiddleboxes = 64;

/// "No stopping condition": scan the entire L7 stream.
inline constexpr std::uint32_t kNoStopCondition =
    std::numeric_limits<std::uint32_t>::max();

/// Per-middlebox registration properties (§4.1, §5.1).
struct MiddleboxProfile {
  MiddleboxId id = 0;
  std::string name;
  /// Stateful middleboxes need the scan to continue across the packet
  /// boundaries of a flow; stateless ones scan each packet separately.
  bool stateful = false;
  /// Read-only middleboxes perform no action on the packet itself and can be
  /// served by a dedicated result packet without the payload (§4.2).
  bool read_only = false;
  /// Stopping condition: how deep into the L7 stream this middlebox cares
  /// about (e.g. middleboxes that only parse application-layer headers).
  ///
  /// Boundary convention (shared by the engine's scan clamp and both of its
  /// match-filter sites): a match is reported iff its end position — the
  /// 1-based count of its last byte, packet-relative for stateless
  /// middleboxes and flow-relative for stateful ones — is <= stop_offset.
  /// A pattern ending exactly at the stop offset is therefore still
  /// reported; one ending a byte past it is not. Stateless depths renew on
  /// every packet; stateful depths are consumed by the flow offset.
  std::uint32_t stop_offset = kNoStopCondition;
};

/// Bitmap over middlebox ids; bit (id - 1) set means the middlebox is
/// active/registered (ids start at 1).
using MiddleboxBitmap = std::uint64_t;

inline constexpr MiddleboxBitmap bitmap_of(MiddleboxId id) noexcept {
  return id == 0 || id > kMaxMiddleboxes
             ? 0
             : MiddleboxBitmap{1} << (id - 1);
}

}  // namespace dpisvc::dpi
