#include "json/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace dpisvc::json {

// ---------------------------------------------------------------------------
// Object
// ---------------------------------------------------------------------------

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  entries_.emplace_back(key, Value());
  return entries_.back().second;
}

const Value& Object::at(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  throw TypeError("json object: missing key '" + key + "'");
}

bool Object::contains(const std::string& key) const noexcept {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

bool Object::operator==(const Object& other) const {
  // Order-insensitive comparison: same keys, equal values.
  if (entries_.size() != other.entries_.size()) return false;
  for (const auto& [k, v] : entries_) {
    if (!other.contains(k) || !(other.at(k) == v)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

Type Value::type() const noexcept {
  return static_cast<Type>(data_.index());
}

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  throw TypeError("json: not a bool");
}

double Value::as_number() const {
  if (const double* d = std::get_if<double>(&data_)) return *d;
  throw TypeError("json: not a number");
}

std::int64_t Value::as_int() const {
  const double d = as_number();
  const double rounded = std::nearbyint(d);
  if (rounded != d || std::abs(d) > 9.007199254740992e15) {
    throw TypeError("json: number is not an exact integer");
  }
  return static_cast<std::int64_t>(d);
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  throw TypeError("json: not a string");
}

const Array& Value::as_array() const {
  if (const Array* a = std::get_if<Array>(&data_)) return *a;
  throw TypeError("json: not an array");
}

Array& Value::as_array() {
  if (Array* a = std::get_if<Array>(&data_)) return *a;
  throw TypeError("json: not an array");
}

const Object& Value::as_object() const {
  if (const Object* o = std::get_if<Object>(&data_)) return *o;
  throw TypeError("json: not an object");
}

Object& Value::as_object() {
  if (Object* o = std::get_if<Object>(&data_)) return *o;
  throw TypeError("json: not an object");
}

const Value& Value::get_or(const std::string& key,
                           const Value& fallback) const {
  const Object& o = as_object();
  return o.contains(key) ? o.at(key) : fallback;
}

Object obj(std::initializer_list<std::pair<std::string, Value>> fields) {
  Object o;
  for (const auto& [k, v] : fields) {
    o[k] = v;
  }
  return o;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw ParseError("trailing content", pos_);
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, pos_);
  }

  char peek() const {
    if (pos_ >= text_.size()) throw ParseError("unexpected end", pos_);
    return text_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  /// RAII depth guard: each '{' / '[' frame counts against kMaxParseDepth
  /// so adversarial nesting fails with ParseError instead of exhausting the
  /// stack.
  class DepthGuard {
   public:
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxParseDepth) {
        parser_.fail("nesting too deep");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& parser_;
  };

  Value parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    const DepthGuard depth(*this);
    expect('{');
    Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      if (out.contains(key)) fail("duplicate object key '" + key + "'");
      skip_ws();
      expect(':');
      skip_ws();
      out[key] = parse_value();
      skip_ws();
      char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
    return Value(std::move(out));
  }

  Value parse_array() {
    const DepthGuard depth(*this);
    expect('[');
    Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      out.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
    return Value(std::move(out));
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = take();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      char esc = take();
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate; must be followed by \uDC00..\uDFFF.
            if (take() != '\\' || take() != 'u') {
              --pos_;
              fail("lone high surrogate");
            }
            unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("invalid escape");
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size()) fail("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && isdigit_(text_[pos_])) ++pos_;
    } else {
      fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !isdigit_(text_[pos_])) fail("bad fraction");
      while (pos_ < text_.size() && isdigit_(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !isdigit_(text_[pos_])) fail("bad exponent");
      while (pos_ < text_.size() && isdigit_(text_[pos_])) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    // std::stod throws std::out_of_range for magnitudes beyond double
    // (e.g. "1e999"); every parser failure must surface as ParseError, so
    // translate. Subnormal underflow does not throw and parses as ±0.
    try {
      return Value(std::stod(token));
    } catch (const std::out_of_range&) {
      pos_ = start;
      fail("number out of range");
    }
  }

  static bool isdigit_(char c) noexcept { return c >= '0' && c <= '9'; }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void write_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_number(std::string& out, double d) {
  if (std::nearbyint(d) == d && std::abs(d) < 9.007199254740992e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void write_value(std::string& out, const Value& v, int indent, int depth) {
  const bool pretty = indent > 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Type::kNumber:
      write_number(out, v.as_number());
      break;
    case Type::kString:
      write_string(out, v.as_string());
      break;
    case Type::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const Value& item : a) {
        if (!first) out.push_back(',');
        first = false;
        newline_pad(depth + 1);
        write_value(out, item, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [k, field] : o) {
        if (!first) out.push_back(',');
        first = false;
        newline_pad(depth + 1);
        write_string(out, k);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        write_value(out, field, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string dump(const Value& value) {
  std::string out;
  write_value(out, value, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string dump_pretty(const Value& value) {
  std::string out;
  write_value(out, value, /*indent=*/2, /*depth=*/0);
  return out;
}

}  // namespace dpisvc::json
