// Minimal JSON library for the DPI control plane.
//
// The paper (§4.1) specifies that middleboxes talk to the DPI controller
// "using JSON messages sent over a direct (possibly secure) communication
// channel". This module provides the value model, a strict recursive-descent
// parser, and a deterministic writer (object keys serialized in insertion
// order) so control messages are stable and testable.
//
// Scope: full JSON per RFC 8259, except that numbers are stored as double
// (sufficient for the integer ids used by the protocol — exact up to 2^53).
// String escapes are handled in full: \uXXXX decodes to UTF-8, including
// characters outside the BMP written as \uD800-\uDBFF + \uDC00-\uDFFF
// surrogate pairs (e.g. "😀" -> U+1F600); lone or misordered
// surrogates are rejected. The writer emits non-ASCII characters as raw
// UTF-8 bytes, never as \u escapes, so decode(encode(s)) == s but the
// escape spelling itself does not round-trip.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace dpisvc::json {

class Value;

using Array = std::vector<Value>;

/// Object preserving insertion order: pair list + no duplicate keys.
class Object {
 public:
  Value& operator[](const std::string& key);
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const noexcept;
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

  bool operator==(const Object& other) const;

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

/// Maximum container nesting the parser accepts. Every '{' or '[' being
/// parsed is one recursive-descent frame, so untrusted input deeper than
/// this would otherwise convert directly into stack consumption; messages
/// past the cap are rejected with ParseError. The protocol never nests more
/// than a handful of levels, so 256 is generous headroom, not a tight fit.
inline constexpr std::size_t kMaxParseDepth = 256;

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class TypeError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() noexcept : data_(nullptr) {}
  Value(std::nullptr_t) noexcept : data_(nullptr) {}
  Value(bool b) noexcept : data_(b) {}
  Value(double d) noexcept : data_(d) {}
  Value(int i) noexcept : data_(static_cast<double>(i)) {}
  Value(unsigned i) noexcept : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) noexcept : data_(static_cast<double>(i)) {}
  Value(std::uint64_t i) noexcept : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const noexcept;
  bool is_null() const noexcept { return type() == Type::kNull; }
  bool is_bool() const noexcept { return type() == Type::kBool; }
  bool is_number() const noexcept { return type() == Type::kNumber; }
  bool is_string() const noexcept { return type() == Type::kString; }
  bool is_array() const noexcept { return type() == Type::kArray; }
  bool is_object() const noexcept { return type() == Type::kObject; }

  // Checked accessors; throw TypeError on mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  ///< as_number() checked to be integral.
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object field access shorthand; throws if not an object / key missing.
  const Value& at(const std::string& key) const { return as_object().at(key); }

  /// Object field access returning fallback when key is absent. Lifetime
  /// caveat: when `fallback` is a temporary, the returned reference is only
  /// valid within the full expression — copy the result (or pass a named
  /// fallback) if it must outlive the statement.
  const Value& get_or(const std::string& key, const Value& fallback) const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Convenience builder: obj({{"type","register"},{"id",7}}).
Object obj(std::initializer_list<std::pair<std::string, Value>> fields);

/// Parses a complete JSON document; trailing non-whitespace is an error.
Value parse(std::string_view text);

/// Serializes compactly (no whitespace). Keys keep insertion order.
std::string dump(const Value& value);

/// Serializes with 2-space indentation, for logs and examples.
std::string dump_pretty(const Value& value);

}  // namespace dpisvc::json
