#include "mbox/boxes.hpp"

namespace dpisvc::mbox {

namespace {
dpi::MiddleboxProfile make_profile(dpi::MiddleboxId id, const char* name,
                                   bool stateful, bool read_only) {
  dpi::MiddleboxProfile p;
  p.id = id;
  p.name = name;
  p.stateful = stateful;
  p.read_only = read_only;
  return p;
}
}  // namespace

// --- IDS ---------------------------------------------------------------------

Ids::Ids(dpi::MiddleboxId id, bool stateful)
    : Middlebox(make_profile(id, "ids", stateful, /*read_only=*/true)) {}

void Ids::on_rule_hit(const RuleSpec& rule, const net::MatchEntry& entry,
                      const net::Packet& data) {
  alerts_.push_back(
      Alert{rule.id, data.tuple, entry.position, rule.rule_class});
}

// --- AntiVirus -----------------------------------------------------------------

AntiVirus::AntiVirus(dpi::MiddleboxId id)
    : Middlebox(make_profile(id, "antivirus", /*stateful=*/true,
                             /*read_only=*/false)) {}

void AntiVirus::on_packet_done(const net::Packet& data, Verdict verdict) {
  if (verdict >= Verdict::kQuarantine) {
    quarantined_.insert(data.tuple.canonical());
  }
}

bool AntiVirus::is_quarantined(const net::FiveTuple& flow) const {
  return quarantined_.count(flow.canonical()) > 0;
}

// --- L7 firewall ------------------------------------------------------------------

L7Firewall::L7Firewall(dpi::MiddleboxId id)
    : Middlebox(make_profile(id, "l7-firewall", /*stateful=*/false,
                             /*read_only=*/false)) {}

void L7Firewall::on_packet_done(const net::Packet& data, Verdict verdict) {
  (void)data;
  if (verdict >= Verdict::kDrop) {
    ++dropped_;
  }
}

// --- traffic shaper ------------------------------------------------------------------

TrafficShaper::TrafficShaper(dpi::MiddleboxId id)
    : Middlebox(make_profile(id, "traffic-shaper", /*stateful=*/false,
                             /*read_only=*/true)) {}

void TrafficShaper::on_rule_hit(const RuleSpec& rule,
                                const net::MatchEntry& entry,
                                const net::Packet& data) {
  (void)entry;
  flow_class_[data.tuple.canonical()] = rule.rule_class;
}

void TrafficShaper::on_packet_done(const net::Packet& data, Verdict verdict) {
  (void)verdict;
  ++class_packets_[flow_class(data.tuple)];
}

int TrafficShaper::flow_class(const net::FiveTuple& flow) const {
  auto it = flow_class_.find(flow.canonical());
  return it == flow_class_.end() ? 0 : it->second;
}

// --- DLP ------------------------------------------------------------------------------

DataLeakagePrevention::DataLeakagePrevention(dpi::MiddleboxId id)
    : Middlebox(make_profile(id, "dlp", /*stateful=*/true,
                             /*read_only=*/false)) {}

void DataLeakagePrevention::on_rule_hit(const RuleSpec& rule,
                                        const net::MatchEntry& entry,
                                        const net::Packet& data) {
  (void)entry;
  leaks_.push_back(LeakEvent{rule.id, data.tuple, rule.description});
}

// --- L7 load balancer ---------------------------------------------------------------------

L7LoadBalancer::L7LoadBalancer(dpi::MiddleboxId id, std::size_t num_backends)
    : Middlebox(make_profile(id, "l7-lb", /*stateful=*/false,
                             /*read_only=*/true)),
      backend_packets_(num_backends == 0 ? 1 : num_backends, 0) {}

void L7LoadBalancer::on_rule_hit(const RuleSpec& rule,
                                 const net::MatchEntry& entry,
                                 const net::Packet& data) {
  (void)entry;
  const auto backend =
      static_cast<std::size_t>(rule.rule_class) % backend_packets_.size();
  assignment_[data.tuple.canonical()] = backend;
}

void L7LoadBalancer::on_packet_done(const net::Packet& data, Verdict verdict) {
  (void)verdict;
  ++backend_packets_[backend_for(data.tuple)];
}

std::size_t L7LoadBalancer::backend_for(const net::FiveTuple& flow) const {
  auto it = assignment_.find(flow.canonical());
  return it == assignment_.end() ? 0 : it->second;
}

}  // namespace dpisvc::mbox
