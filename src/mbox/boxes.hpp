// Concrete middlebox types (Table 1 of the paper).
//
// Each subclass gives rules its domain semantics through the Middlebox
// hooks; the DPI work itself is identical across all of them — which is the
// paper's whole point.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "mbox/middlebox.hpp"

namespace dpisvc::mbox {

/// Intrusion Detection System (read-only: consumes results, never modifies
/// or blocks traffic — the paper's example of a read-only middlebox, §4.1).
class Ids : public Middlebox {
 public:
  struct Alert {
    dpi::PatternId rule = 0;
    net::FiveTuple flow;
    std::uint32_t position = 0;
    int severity = 0;
  };

  explicit Ids(dpi::MiddleboxId id, bool stateful = true);

  const std::vector<Alert>& alerts() const noexcept { return alerts_; }

 protected:
  void on_rule_hit(const RuleSpec& rule, const net::MatchEntry& entry,
                   const net::Packet& data) override;

 private:
  std::vector<Alert> alerts_;
};

/// AntiVirus: quarantines flows carrying signature matches.
class AntiVirus : public Middlebox {
 public:
  explicit AntiVirus(dpi::MiddleboxId id);

  bool is_quarantined(const net::FiveTuple& flow) const;
  std::size_t quarantined_flows() const noexcept {
    return quarantined_.size();
  }

 protected:
  void on_packet_done(const net::Packet& data, Verdict verdict) override;

 private:
  std::set<net::FiveTuple> quarantined_;  // canonical tuples
};

/// L7 firewall: drops packets matching block rules.
class L7Firewall : public Middlebox {
 public:
  explicit L7Firewall(dpi::MiddleboxId id);

  std::uint64_t dropped_packets() const noexcept { return dropped_; }

 protected:
  void on_packet_done(const net::Packet& data, Verdict verdict) override;

 private:
  std::uint64_t dropped_ = 0;
};

/// Traffic shaper: classifies flows into rate classes by application
/// patterns (rule_class = rate class).
class TrafficShaper : public Middlebox {
 public:
  explicit TrafficShaper(dpi::MiddleboxId id);

  /// Rate class assigned to a flow (0 = default/best effort).
  int flow_class(const net::FiveTuple& flow) const;
  const std::map<int, std::uint64_t>& packets_per_class() const noexcept {
    return class_packets_;
  }

 protected:
  void on_rule_hit(const RuleSpec& rule, const net::MatchEntry& entry,
                   const net::Packet& data) override;
  void on_packet_done(const net::Packet& data, Verdict verdict) override;

 private:
  std::map<net::FiveTuple, int> flow_class_;  // canonical tuple -> class
  std::map<int, std::uint64_t> class_packets_;
};

/// Data Leakage Prevention: records exfiltration events (rule hits on
/// outbound content).
class DataLeakagePrevention : public Middlebox {
 public:
  explicit DataLeakagePrevention(dpi::MiddleboxId id);

  struct LeakEvent {
    dpi::PatternId rule = 0;
    net::FiveTuple flow;
    std::string description;
  };

  const std::vector<LeakEvent>& leaks() const noexcept { return leaks_; }

 protected:
  void on_rule_hit(const RuleSpec& rule, const net::MatchEntry& entry,
                   const net::Packet& data) override;

 private:
  std::vector<LeakEvent> leaks_;
};

/// L7 load balancer: picks a backend per flow by URL/app patterns
/// (rule_class = backend index). Flows with no match go to backend 0.
class L7LoadBalancer : public Middlebox {
 public:
  L7LoadBalancer(dpi::MiddleboxId id, std::size_t num_backends);

  std::size_t backend_for(const net::FiveTuple& flow) const;
  const std::vector<std::uint64_t>& packets_per_backend() const noexcept {
    return backend_packets_;
  }

 protected:
  void on_rule_hit(const RuleSpec& rule, const net::MatchEntry& entry,
                   const net::Packet& data) override;
  void on_packet_done(const net::Packet& data, Verdict verdict) override;

 private:
  std::map<net::FiveTuple, std::size_t> assignment_;
  std::vector<std::uint64_t> backend_packets_;
};

}  // namespace dpisvc::mbox
