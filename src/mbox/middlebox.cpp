#include "mbox/middlebox.hpp"

#include <stdexcept>

namespace dpisvc::mbox {

namespace {
/// Internal chain id used by the standalone engine ({this middlebox} only).
constexpr dpi::ChainId kSelfChain = 1;
}  // namespace

const char* verdict_name(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kPass:
      return "pass";
    case Verdict::kShape:
      return "shape";
    case Verdict::kAlert:
      return "alert";
    case Verdict::kQuarantine:
      return "quarantine";
    case Verdict::kDrop:
      return "drop";
  }
  return "?";
}

Middlebox::Middlebox(dpi::MiddleboxProfile profile)
    : profile_(std::move(profile)) {}

void Middlebox::add_rule(RuleSpec rule) {
  if (rules_.count(rule.id)) {
    throw std::invalid_argument("Middlebox::add_rule: duplicate rule id");
  }
  const bool has_exact = !rule.exact.empty();
  const bool has_regex = !rule.regex.empty();
  if (has_exact == has_regex) {
    throw std::invalid_argument(
        "Middlebox::add_rule: rule needs exactly one of exact/regex");
  }
  rules_.emplace(rule.id, std::move(rule));
  invalidate_engine();
}

const RuleSpec* Middlebox::find_rule(dpi::PatternId id) const noexcept {
  auto it = rules_.find(id);
  return it == rules_.end() ? nullptr : &it->second;
}

service::RegisterRequest Middlebox::registration() const {
  service::RegisterRequest request;
  request.profile = profile_;
  return request;
}

service::AddPatternsRequest Middlebox::pattern_upload() const {
  service::AddPatternsRequest request;
  request.middlebox = profile_.id;
  for (const auto& [id, rule] : rules_) {
    if (!rule.exact.empty()) {
      request.exact.push_back(service::ExactPatternMsg{id, rule.exact});
    } else {
      request.regex.push_back(
          service::RegexPatternMsg{id, rule.regex, rule.case_insensitive});
    }
  }
  return request;
}

void Middlebox::attach(service::DpiController& controller) {
  const json::Value reg_response =
      controller.handle_message(service::encode(registration()));
  if (!service::response_ok(reg_response)) {
    throw std::runtime_error("Middlebox::attach: registration failed: " +
                             json::dump(reg_response));
  }
  const json::Value pat_response =
      controller.handle_message(service::encode(pattern_upload()));
  if (!service::response_ok(pat_response)) {
    throw std::runtime_error("Middlebox::attach: pattern upload failed: " +
                             json::dump(pat_response));
  }
}

void Middlebox::on_rule_hit(const RuleSpec& rule, const net::MatchEntry& entry,
                            const net::Packet& data) {
  (void)rule;
  (void)entry;
  (void)data;
}

void Middlebox::on_packet_done(const net::Packet& data, Verdict verdict) {
  (void)data;
  (void)verdict;
}

Verdict Middlebox::apply_report_entries(
    const net::Packet& data, const std::vector<net::MatchEntry>& entries) {
  ++packets_;
  Verdict verdict = Verdict::kPass;
  for (const net::MatchEntry& entry : entries) {
    const RuleSpec* rule = find_rule(entry.pattern_id);
    if (rule == nullptr) continue;  // stale result for a removed rule
    hits_[entry.pattern_id] += entry.run_length;
    total_hits_ += entry.run_length;
    verdict = std::max(verdict, rule->verdict);
    on_rule_hit(*rule, entry, data);
  }
  on_packet_done(data, verdict);
  return verdict;
}

std::vector<Verdict> Middlebox::apply_report_batch(
    const std::vector<net::FiveTuple>& flows,
    const std::vector<dpi::ScanResult>& results) {
  if (flows.size() != results.size()) {
    throw std::invalid_argument(
        "Middlebox::apply_report_batch: flows/results size mismatch");
  }
  std::vector<Verdict> verdicts;
  verdicts.reserve(flows.size());
  static const std::vector<net::MatchEntry> kNoEntries;
  // One reused header-only context: the hooks only consume header fields in
  // service mode, so the batch's payload bytes stay in the ingest arena.
  net::Packet context;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    context.tuple = flows[i];
    const std::vector<net::MatchEntry>* entries = &kNoEntries;
    for (const dpi::MiddleboxMatches& m : results[i].matches) {
      if (m.middlebox == profile_.id) {
        entries = &m.entries;
        break;
      }
    }
    verdicts.push_back(apply_report_entries(context, *entries));
  }
  return verdicts;
}

const dpi::Engine& Middlebox::standalone_engine() {
  if (standalone_engine_ == nullptr) {
    dpi::EngineSpec spec;
    spec.middleboxes = {profile_};
    for (const auto& [id, rule] : rules_) {
      if (!rule.exact.empty()) {
        spec.exact_patterns.push_back(
            dpi::ExactPatternSpec{rule.exact, profile_.id, id});
      } else {
        spec.regex_patterns.push_back(dpi::RegexPatternSpec{
            rule.regex, profile_.id, id, rule.case_insensitive});
      }
    }
    spec.chains[kSelfChain] = {profile_.id};
    standalone_engine_ = dpi::Engine::compile(spec);
    standalone_flows_.clear();
  }
  return *standalone_engine_;
}

Verdict Middlebox::process_standalone(const net::Packet& data) {
  const dpi::Engine& engine = standalone_engine();
  dpi::FlowCursor cursor;
  if (profile_.stateful) {
    cursor = standalone_flows_.lookup(data.tuple);
  }
  const dpi::ScanResult scanned =
      engine.scan_packet(kSelfChain, data.payload, cursor);
  if (profile_.stateful) {
    standalone_flows_.update(data.tuple, scanned.cursor);
  }
  for (const dpi::MiddleboxMatches& m : scanned.matches) {
    if (m.middlebox == profile_.id) {
      return apply_report_entries(data, m.entries);
    }
  }
  return apply_report_entries(data, {});
}

std::vector<Verdict> Middlebox::process_standalone_batch(
    const std::vector<net::Packet>& packets) {
  std::vector<Verdict> verdicts;
  verdicts.reserve(packets.size());
  if (profile_.stateful) {
    // Cursor-carrying scans go through the flow table one packet at a time:
    // the engine's batch API does not allow one flow to appear twice in a
    // batch with caller-managed cursors.
    for (const net::Packet& packet : packets) {
      verdicts.push_back(process_standalone(packet));
    }
    return verdicts;
  }
  const dpi::Engine& engine = standalone_engine();
  std::vector<BytesView> payloads;
  payloads.reserve(packets.size());
  for (const net::Packet& packet : packets) {
    payloads.emplace_back(packet.payload);
  }
  const std::vector<dpi::ScanResult> scanned =
      engine.scan_batch(kSelfChain, payloads);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    bool applied = false;
    for (const dpi::MiddleboxMatches& m : scanned[i].matches) {
      if (m.middlebox == profile_.id) {
        verdicts.push_back(apply_report_entries(packets[i], m.entries));
        applied = true;
        break;
      }
    }
    if (!applied) {
      verdicts.push_back(apply_report_entries(packets[i], {}));
    }
  }
  return verdicts;
}

void Middlebox::reset_stats() {
  hits_.clear();
  total_hits_ = 0;
  packets_ = 0;
}

}  // namespace dpisvc::mbox
