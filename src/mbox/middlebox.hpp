// Middlebox framework (§3, §4.1).
//
// "Abstractly, middleboxes operate by rules that contain actions, and
// conditions that should be satisfied to activate the actions. Some of the
// conditions are based on patterns in the packet's content. The DPI service
// responsibility is only to indicate appearances of patterns, while
// resolving the logic behind a condition and performing the action itself
// is the middlebox's responsibility."
//
// A Middlebox holds pattern-conditioned rules and supports both operating
// modes the paper compares:
//  - *service mode*: match results arrive from the DPI service
//    (apply_report_entries) — the middlebox never scans payloads;
//  - *standalone mode*: the middlebox runs its own private DPI engine over
//    its own pattern set (process_standalone) — the baseline configuration
//    of Figures 2(a)/3(a).
//
// attach() performs the §4.1 handshake against a DpiController using the
// JSON protocol (registration + pattern upload), exactly as an external
// middlebox process would over the control channel.
//
// Subclasses (boxes.hpp) give the concrete middlebox types of Table 1 their
// action semantics via the on_rule_hit/on_packet_done hooks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dpi/engine.hpp"
#include "dpi/flow_table.hpp"
#include "dpi/types.hpp"
#include "net/packet.hpp"
#include "net/result.hpp"
#include "service/controller.hpp"
#include "service/messages.hpp"

namespace dpisvc::mbox {

/// Action severity; when several rules hit one packet the strongest wins.
enum class Verdict {
  kPass = 0,
  kShape = 1,
  kAlert = 2,
  kQuarantine = 3,
  kDrop = 4,
};

const char* verdict_name(Verdict verdict) noexcept;

struct RuleSpec {
  dpi::PatternId id = 0;
  std::string description;
  Verdict verdict = Verdict::kAlert;
  /// Exactly one of `exact` / `regex` must be non-empty.
  std::string exact;  ///< raw pattern bytes
  std::string regex;  ///< regular expression
  bool case_insensitive = false;
  /// Small subclass-interpreted payload: rate class for a traffic shaper,
  /// backend index for a load balancer, severity for an IDS, ...
  int rule_class = 0;
};

class Middlebox {
 public:
  explicit Middlebox(dpi::MiddleboxProfile profile);
  virtual ~Middlebox() = default;

  Middlebox(const Middlebox&) = delete;
  Middlebox& operator=(const Middlebox&) = delete;

  const dpi::MiddleboxProfile& profile() const noexcept { return profile_; }

  /// Adds a rule; throws std::invalid_argument on duplicate id or a rule
  /// with neither/both pattern kinds.
  void add_rule(RuleSpec rule);

  const RuleSpec* find_rule(dpi::PatternId id) const noexcept;
  std::size_t num_rules() const noexcept { return rules_.size(); }

  // --- control plane (§4.1) ------------------------------------------------

  service::RegisterRequest registration() const;
  service::AddPatternsRequest pattern_upload() const;

  /// Registers this middlebox and uploads its patterns to the controller
  /// over the JSON channel. Throws std::runtime_error on an error response.
  void attach(service::DpiController& controller);

  // --- data plane -------------------------------------------------------------

  /// Service mode: applies the DPI service's match entries for this
  /// middlebox to the packet. Returns the strongest verdict triggered.
  Verdict apply_report_entries(const net::Packet& data,
                               const std::vector<net::MatchEntry>& entries);

  /// Zero-copy service-mode batch verdicts for the ingest pipeline: applies
  /// this middlebox's section of each scan result, with flows[i] naming
  /// packet i's five-tuple. The rule hooks receive a header-only packet
  /// context — in service mode the DPI service already scanned the payload,
  /// so no hook reads payload bytes and the batch's arena bytes are never
  /// copied here. Verdicts are returned in batch order. Throws
  /// std::invalid_argument when the vectors' sizes differ.
  std::vector<Verdict> apply_report_batch(
      const std::vector<net::FiveTuple>& flows,
      const std::vector<dpi::ScanResult>& results);

  /// Standalone mode: scans the payload with this middlebox's private
  /// engine (compiled lazily from its own rules) and applies the matches.
  Verdict process_standalone(const net::Packet& data);

  /// Batched standalone processing: stateless middleboxes scan the whole
  /// vector through the engine's batch API (one chain resolution and
  /// automaton dispatch for all packets); stateful ones fall back to the
  /// per-packet path, whose flow table serializes same-flow cursors.
  /// Verdicts are returned in submission order.
  std::vector<Verdict> process_standalone_batch(
      const std::vector<net::Packet>& packets);

  /// Direct access to the private engine (benchmarks compare its throughput
  /// against the shared service engine).
  const dpi::Engine& standalone_engine();

  // --- statistics ---------------------------------------------------------------

  std::uint64_t packets_processed() const noexcept { return packets_; }
  std::uint64_t total_rule_hits() const noexcept { return total_hits_; }
  const std::map<dpi::PatternId, std::uint64_t>& hits_by_rule() const noexcept {
    return hits_;
  }
  void reset_stats();

 protected:
  /// Subclass hook: one rule hit on one packet (entry runs are expanded by
  /// run_length before this is called once per entry, not per position).
  virtual void on_rule_hit(const RuleSpec& rule, const net::MatchEntry& entry,
                           const net::Packet& data);

  /// Subclass hook: packet fully evaluated with its final verdict.
  virtual void on_packet_done(const net::Packet& data, Verdict verdict);

 private:
  void invalidate_engine() noexcept { standalone_engine_.reset(); }

  dpi::MiddleboxProfile profile_;
  std::map<dpi::PatternId, RuleSpec> rules_;

  std::map<dpi::PatternId, std::uint64_t> hits_;
  std::uint64_t total_hits_ = 0;
  std::uint64_t packets_ = 0;

  // Standalone-mode engine over this middlebox's own pattern set.
  std::shared_ptr<const dpi::Engine> standalone_engine_;
  dpi::FlowTable standalone_flows_;
};

}  // namespace dpisvc::mbox
