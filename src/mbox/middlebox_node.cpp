#include "mbox/middlebox_node.hpp"

#include "common/logging.hpp"

namespace dpisvc::mbox {

MiddleboxNode::MiddleboxNode(netsim::Fabric& fabric, netsim::NodeId name,
                             Middlebox& middlebox, NodeMode mode)
    : Node(fabric, std::move(name)), middlebox_(middlebox), mode_(mode) {}

std::vector<net::MatchEntry> MiddleboxNode::entries_for_self(
    const net::MatchReport& report) const {
  for (const net::MiddleboxSection& section : report.sections) {
    if (section.middlebox_id == middlebox_.profile().id) {
      return section.entries;
    }
  }
  return {};
}

void MiddleboxNode::evaluate_and_forward(
    net::Packet data, const std::vector<net::MatchEntry>& entries,
    std::optional<net::Packet> result, const netsim::NodeId& to) {
  const Verdict verdict = middlebox_.apply_report_entries(data, entries);
  if (verdict >= Verdict::kDrop) {
    ++dropped_;
    log(LogLevel::kDebug, name(), "dropping ", data.summary());
    return;  // neither data nor result continues down the chain
  }
  ++forwarded_;
  emit(to, std::move(data));
  if (result) {
    emit(to, std::move(*result));
  }
}

void MiddleboxNode::receive(net::Packet packet, const netsim::NodeId& from) {
  if (mode_ == NodeMode::kStandalone) {
    const Verdict verdict = middlebox_.process_standalone(packet);
    if (verdict >= Verdict::kDrop) {
      ++dropped_;
      return;
    }
    ++forwarded_;
    emit(from, std::move(packet));
    return;
  }

  // Service mode.
  const bool is_result =
      packet.service_header &&
      packet.service_header->service_path_id == service::kResultServicePathId;
  const std::uint64_t ref = service::packet_ref_of(packet);

  if (is_result) {
    auto waiting = pending_data_.find(ref);
    if (waiting == pending_data_.end()) {
      pending_results_.emplace(ref, std::move(packet));  // result came first
      return;
    }
    net::Packet data = std::move(waiting->second);
    pending_data_.erase(waiting);
    const net::MatchReport report =
        net::decode_report(packet.service_header->metadata);
    evaluate_and_forward(std::move(data), entries_for_self(report),
                         std::move(packet), from);
    return;
  }

  // Data packet carrying results inline (NSH mode).
  if (packet.service_header) {
    const net::MatchReport report =
        net::decode_report(packet.service_header->metadata);
    evaluate_and_forward(std::move(packet), entries_for_self(report),
                         std::nullopt, from);
    return;
  }

  // Plain data packet: unmarked means no results will follow (§4.2).
  if (!packet.has_match_mark()) {
    evaluate_and_forward(std::move(packet), {}, std::nullopt, from);
    return;
  }

  // Marked data packet: pair with its result.
  auto result = pending_results_.find(ref);
  if (result == pending_results_.end()) {
    pending_data_.emplace(ref, std::move(packet));
    return;
  }
  net::Packet result_packet = std::move(result->second);
  pending_results_.erase(result);
  const net::MatchReport report =
      net::decode_report(result_packet.service_header->metadata);
  evaluate_and_forward(std::move(packet), entries_for_self(report),
                       std::move(result_packet), from);
}

}  // namespace dpisvc::mbox
