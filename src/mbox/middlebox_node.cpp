#include "mbox/middlebox_node.hpp"

#include <limits>
#include <utility>

#include "common/logging.hpp"

namespace dpisvc::mbox {

MiddleboxNode::MiddleboxNode(netsim::Fabric& fabric, netsim::NodeId name,
                             Middlebox& middlebox, NodeMode mode,
                             DegradeConfig degrade)
    : Node(fabric, std::move(name)),
      middlebox_(middlebox),
      mode_(mode),
      degrade_(degrade),
      result_wait_(metrics_.histogram(
          "result_wait_deliveries",
          obs::Histogram::exponential_bounds(1, 2.0, 16))) {}

std::vector<net::MatchEntry> MiddleboxNode::entries_for_self(
    const net::MatchReport& report) const {
  for (const net::MiddleboxSection& section : report.sections) {
    if (section.middlebox_id == middlebox_.profile().id) {
      return section.entries;
    }
  }
  return {};
}

void MiddleboxNode::evaluate_and_forward(
    net::Packet data, const std::vector<net::MatchEntry>& entries,
    std::optional<net::Packet> result, const netsim::NodeId& to) {
  const Verdict verdict = middlebox_.apply_report_entries(data, entries);
  if (verdict >= Verdict::kDrop) {
    ++dropped_;
    log(LogLevel::kDebug, name(), "dropping ", data.summary());
    return;  // neither data nor result continues down the chain
  }
  ++forwarded_;
  emit(to, std::move(data));
  if (result) {
    emit(to, std::move(*result));
  }
}

void MiddleboxNode::degrade(PendingEntry entry) {
  if (degrade_.fallback == FallbackPolicy::kScanLocal) {
    ++fallback_scans_;
    const Verdict verdict = middlebox_.process_standalone(entry.packet);
    if (verdict >= Verdict::kDrop) {
      ++dropped_;
      return;
    }
  } else {
    ++forwarded_unscanned_;
  }
  ++forwarded_;
  emit(entry.from, std::move(entry.packet));
}

void MiddleboxNode::degrade_batch(std::vector<PendingEntry> entries) {
  if (entries.empty()) return;
  if (degrade_.fallback != FallbackPolicy::kScanLocal) {
    for (PendingEntry& entry : entries) {
      ++forwarded_unscanned_;
      ++forwarded_;
      emit(entry.from, std::move(entry.packet));
    }
    return;
  }
  fallback_scans_ += entries.size();
  std::vector<net::Packet> packets;
  packets.reserve(entries.size());
  for (PendingEntry& entry : entries) {
    packets.push_back(std::move(entry.packet));
  }
  const std::vector<Verdict> verdicts =
      middlebox_.process_standalone_batch(packets);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (verdicts[i] >= Verdict::kDrop) {
      ++dropped_;
      continue;
    }
    ++forwarded_;
    emit(entries[i].from, std::move(packets[i]));
  }
}

void MiddleboxNode::buffer(PendingMap& map, std::uint64_t ref,
                           net::Packet packet, const netsim::NodeId& from,
                           bool is_data) {
  if (map.size() >= degrade_.max_pending && !map.count(ref)) {
    // Capacity eviction: retire the entry closest to its deadline (= the
    // oldest, since deadlines grow monotonically with arrival time).
    auto oldest = map.begin();
    for (auto it = map.begin(); it != map.end(); ++it) {
      if (it->second.deadline < oldest->second.deadline) oldest = it;
    }
    PendingEntry evicted = std::move(oldest->second);
    map.erase(oldest);
    ++evictions_;
    if (is_data) degrade(std::move(evicted));
  }
  const std::uint64_t deadline =
      degrade_.result_deadline == 0
          ? std::numeric_limits<std::uint64_t>::max()
          : now() + degrade_.result_deadline;
  // A fault-duplicated packet may reuse a buffered ref; the copies are
  // identical, so the later one simply replaces the earlier.
  map.insert_or_assign(ref,
                       PendingEntry{std::move(packet), from, deadline, now()});
}

json::Value MiddleboxNode::metrics_json() const {
  // The six forwarding/degradation counters mirror into the registry here
  // rather than on the hot path: the fabric delivers to a node serially, so
  // a snapshot-time sync is exact and the receive path stays untouched.
  const std::pair<const char*, std::uint64_t> mirrored[] = {
      {"forwarded", forwarded_},
      {"dropped", dropped_},
      {"result_timeouts", result_timeouts_},
      {"fallback_scans", fallback_scans_},
      {"forwarded_unscanned", forwarded_unscanned_},
      {"evictions", evictions_},
  };
  for (const auto& [cname, value] : mirrored) {
    obs::Counter& c = metrics_.counter(cname);
    c.reset();
    c.add(value);
  }
  metrics_.gauge("pending_data").set(
      static_cast<std::int64_t>(pending_data_.size()));
  metrics_.gauge("pending_results").set(
      static_cast<std::int64_t>(pending_results_.size()));
  json::Object root;
  root["node"] = json::Value(name());
  root["metrics"] = metrics_.snapshot();
  return json::Value(std::move(root));
}

std::size_t MiddleboxNode::expire_pending(bool force) {
  const std::uint64_t clock = now();
  std::size_t retired = 0;
  std::vector<PendingEntry> expired;
  for (auto it = pending_data_.begin(); it != pending_data_.end();) {
    if (force || it->second.deadline <= clock) {
      expired.push_back(std::move(it->second));
      it = pending_data_.erase(it);
      ++result_timeouts_;
      ++retired;
    } else {
      ++it;
    }
  }
  // One batched fallback pass for the whole sweep.
  degrade_batch(std::move(expired));
  for (auto it = pending_results_.begin(); it != pending_results_.end();) {
    if (force || it->second.deadline <= clock) {
      // Orphaned result: its data packet was lost or already degraded.
      it = pending_results_.erase(it);
      ++evictions_;
      ++retired;
    } else {
      ++it;
    }
  }
  return retired;
}

void MiddleboxNode::receive(net::Packet packet, const netsim::NodeId& from) {
  if (mode_ == NodeMode::kStandalone) {
    const Verdict verdict = middlebox_.process_standalone(packet);
    if (verdict >= Verdict::kDrop) {
      ++dropped_;
      return;
    }
    ++forwarded_;
    emit(from, std::move(packet));
    return;
  }

  // Service mode. Age out waiters first so a lost result cannot stall its
  // data packet behind an open-ended wait.
  expire_pending();

  const bool is_result =
      packet.service_header &&
      packet.service_header->service_path_id == service::kResultServicePathId;
  const std::uint64_t ref = service::packet_ref_of(packet);

  if (is_result) {
    auto waiting = pending_data_.find(ref);
    if (waiting == pending_data_.end()) {
      // Result came first (or its data packet was already degraded).
      buffer(pending_results_, ref, std::move(packet), from,
             /*is_data=*/false);
      return;
    }
    PendingEntry entry = std::move(waiting->second);
    pending_data_.erase(waiting);
    result_wait_.record(now() - entry.enqueued);
    const net::MatchReport report =
        net::decode_report(packet.service_header->metadata);
    evaluate_and_forward(std::move(entry.packet), entries_for_self(report),
                         std::move(packet), entry.from);
    return;
  }

  // Data packet carrying results inline (NSH mode).
  if (packet.service_header) {
    const net::MatchReport report =
        net::decode_report(packet.service_header->metadata);
    evaluate_and_forward(std::move(packet), entries_for_self(report),
                         std::nullopt, from);
    return;
  }

  // Plain data packet: unmarked means no results will follow (§4.2).
  if (!packet.has_match_mark()) {
    evaluate_and_forward(std::move(packet), {}, std::nullopt, from);
    return;
  }

  // Marked data packet: pair with its result.
  auto result = pending_results_.find(ref);
  if (result == pending_results_.end()) {
    buffer(pending_data_, ref, std::move(packet), from, /*is_data=*/true);
    return;
  }
  result_wait_.record(now() - result->second.enqueued);
  net::Packet result_packet = std::move(result->second.packet);
  pending_results_.erase(result);
  const net::MatchReport report =
      net::decode_report(result_packet.service_header->metadata);
  evaluate_and_forward(std::move(packet), entries_for_self(report),
                       std::move(result_packet), from);
}

}  // namespace dpisvc::mbox
