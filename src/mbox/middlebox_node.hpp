// Fabric adapter for middleboxes (§6.1).
//
// In service mode the node mirrors the paper's "sample virtual middlebox
// application that receives traffic from the DPI service instance and, if
// necessary, buffers packets until their corresponding results or data
// packet arrives": a match-marked data packet waits for its result packet
// (and vice versa, should reordering deliver the result first); unmarked
// packets are forwarded immediately, since no-match packets carry no result.
//
// In standalone mode the node scans every packet with the middlebox's
// private DPI engine — the baseline configuration the paper compares
// against.
//
// A kDrop verdict suppresses forwarding of both the data packet and its
// result packet.
#pragma once

#include <cstdint>
#include <map>

#include "mbox/middlebox.hpp"
#include "netsim/fabric.hpp"
#include "service/instance_node.hpp"

namespace dpisvc::mbox {

enum class NodeMode {
  kService,     ///< consumes DPI-service results
  kStandalone,  ///< scans payloads itself
};

class MiddleboxNode : public netsim::Node {
 public:
  MiddleboxNode(netsim::Fabric& fabric, netsim::NodeId name,
                Middlebox& middlebox, NodeMode mode);

  void receive(net::Packet packet, const netsim::NodeId& from) override;

  std::uint64_t forwarded() const noexcept { return forwarded_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::size_t pending() const noexcept {
    return pending_data_.size() + pending_results_.size();
  }

 private:
  void evaluate_and_forward(net::Packet data,
                            const std::vector<net::MatchEntry>& entries,
                            std::optional<net::Packet> result,
                            const netsim::NodeId& to);

  std::vector<net::MatchEntry> entries_for_self(
      const net::MatchReport& report) const;

  Middlebox& middlebox_;
  NodeMode mode_;
  std::map<std::uint64_t, net::Packet> pending_data_;
  std::map<std::uint64_t, net::Packet> pending_results_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace dpisvc::mbox
