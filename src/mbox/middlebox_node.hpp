// Fabric adapter for middleboxes (§6.1).
//
// In service mode the node mirrors the paper's "sample virtual middlebox
// application that receives traffic from the DPI service instance and, if
// necessary, buffers packets until their corresponding results or data
// packet arrives": a match-marked data packet waits for its result packet
// (and vice versa, should reordering deliver the result first); unmarked
// packets are forwarded immediately, since no-match packets carry no result.
//
// In standalone mode the node scans every packet with the middlebox's
// private DPI engine — the baseline configuration the paper compares
// against.
//
// A kDrop verdict suppresses forwarding of both the data packet and its
// result packet.
//
// Graceful degradation (§2/§7): result packets can be lost — a link drops
// them, or the DPI instance dies mid-flight. Both pending buffers are
// therefore bounded (capacity + age-based eviction), and a buffered data
// packet whose result misses its deadline is degraded per the configured
// fallback: scanned locally with the middlebox's private standalone engine
// (the paper notes each middlebox "may still keep its own DPI engine" as a
// fallback), or forwarded unscanned. Ages are measured in fabric
// deliveries; expiry runs opportunistically on every receive and can be
// forced via expire_pending() (e.g. once per telemetry window).
#pragma once

#include <cstdint>
#include <map>

#include "json/json.hpp"
#include "mbox/middlebox.hpp"
#include "netsim/fabric.hpp"
#include "obs/metrics.hpp"
#include "service/instance_node.hpp"

namespace dpisvc::mbox {

enum class NodeMode {
  kService,     ///< consumes DPI-service results
  kStandalone,  ///< scans payloads itself
};

/// What to do with a buffered data packet whose result never arrived.
enum class FallbackPolicy {
  kScanLocal,         ///< scan with the middlebox's private engine
  kForwardUnscanned,  ///< forward uninspected (availability over security)
};

struct DegradeConfig {
  /// Capacity of each pending buffer; the oldest entry is evicted (data:
  /// through the fallback path, results: discarded) to admit a new one.
  std::size_t max_pending = 1024;
  /// Fabric deliveries a buffered packet may wait for its counterpart
  /// before the fallback runs. 0 = wait forever (the pre-failover model).
  std::uint64_t result_deadline = 512;
  FallbackPolicy fallback = FallbackPolicy::kScanLocal;
};

class MiddleboxNode : public netsim::Node {
 public:
  MiddleboxNode(netsim::Fabric& fabric, netsim::NodeId name,
                Middlebox& middlebox, NodeMode mode,
                DegradeConfig degrade = {});

  void receive(net::Packet packet, const netsim::NodeId& from) override;

  /// Sweeps both pending buffers: data packets past their deadline are
  /// degraded per the fallback policy; orphaned results past theirs are
  /// discarded. Returns the number of entries retired. `force` retires
  /// everything regardless of deadline — the end-of-run drain for a
  /// quiesced fabric whose delivery clock no longer advances.
  std::size_t expire_pending(bool force = false);

  std::uint64_t forwarded() const noexcept { return forwarded_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::size_t pending() const noexcept {
    return pending_data_.size() + pending_results_.size();
  }

  // --- degradation counters -------------------------------------------------
  std::uint64_t result_timeouts() const noexcept { return result_timeouts_; }
  std::uint64_t fallback_scans() const noexcept { return fallback_scans_; }
  std::uint64_t forwarded_unscanned() const noexcept {
    return forwarded_unscanned_;
  }
  std::uint64_t evictions() const noexcept { return evictions_; }

  // --- observability --------------------------------------------------------

  /// Metrics snapshot for this node: the forwarding/degradation counters,
  /// current pending-buffer occupancy, and the result-wait histogram
  /// (fabric deliveries a buffered packet waited before its counterpart
  /// arrived — the §6.1 buffering cost made visible).
  json::Value metrics_json() const;

  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

 private:
  struct PendingEntry {
    net::Packet packet;
    netsim::NodeId from;        ///< neighbor to forward back through
    std::uint64_t deadline;     ///< total_deliveries() when the wait expires
    std::uint64_t enqueued = 0; ///< total_deliveries() at buffering time
  };
  using PendingMap = std::map<std::uint64_t, PendingEntry>;

  void evaluate_and_forward(net::Packet data,
                            const std::vector<net::MatchEntry>& entries,
                            std::optional<net::Packet> result,
                            const netsim::NodeId& to);

  /// Runs the configured fallback on a data packet whose result is gone.
  void degrade(PendingEntry entry);

  /// Batch form: local-scan fallbacks go through the middlebox's batched
  /// standalone path (one engine dispatch for the whole sweep) instead of
  /// one scan call per expired packet.
  void degrade_batch(std::vector<PendingEntry> entries);

  /// Inserts into a pending buffer, evicting the oldest entry when full.
  void buffer(PendingMap& map, std::uint64_t ref, net::Packet packet,
              const netsim::NodeId& from, bool is_data);

  std::vector<net::MatchEntry> entries_for_self(
      const net::MatchReport& report) const;

  std::uint64_t now() noexcept { return fabric().total_deliveries(); }

  Middlebox& middlebox_;
  NodeMode mode_;
  DegradeConfig degrade_;
  PendingMap pending_data_;
  PendingMap pending_results_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t result_timeouts_ = 0;
  std::uint64_t fallback_scans_ = 0;
  std::uint64_t forwarded_unscanned_ = 0;
  std::uint64_t evictions_ = 0;
  /// Counters above mirror into the registry at snapshot time (the node is
  /// single-threaded under the fabric, so no hot-path double writes needed);
  /// the result-wait histogram is the only instrument written inline.
  mutable obs::MetricsRegistry metrics_;
  obs::Histogram& result_wait_;
};

}  // namespace dpisvc::mbox
