// ModelSync: the model-checked synchronization facade (DESIGN.md §7).
//
// Drop-in replacement for mc::RealSync (mc/sync.hpp): the same policy
// surface, but every operation is routed through the central mc::Scheduler,
// which serializes the model threads and explores their interleavings
// exhaustively. Production code never includes this header — only the
// dpisvc_mc library, tool, and tests (the DPISVC_MODEL_CHECK CMake mode)
// instantiate templates over ModelSync.
//
// Outside an active exploration (Scheduler::in_model_thread() false — e.g.
// object construction before Explorer::explore runs the scenario) every
// operation falls through to a plain non-atomic equivalent; scenarios are
// single-threaded at that point by construction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>

#include "mc/scheduler.hpp"

namespace dpisvc::mc {

namespace detail {

template <typename T>
std::uint64_t to_bits(T v) noexcept {
  if constexpr (std::is_pointer_v<T>) {
    return reinterpret_cast<std::uint64_t>(v);
  } else {
    return static_cast<std::uint64_t>(v);
  }
}

template <typename T>
T from_bits(std::uint64_t bits) noexcept {
  if constexpr (std::is_pointer_v<T>) {
    return reinterpret_cast<T>(bits);
  } else if constexpr (std::is_same_v<T, bool>) {
    return bits != 0;
  } else {
    return static_cast<T>(bits);
  }
}

}  // namespace detail

struct ModelSync {
  /// std::atomic<T>-shaped wrapper routing every access through the
  /// scheduler. T must be an integral/enum/pointer type of <= 8 bytes (all
  /// the data-path primitives qualify: cursors, counters, flags).
  template <typename T>
  class Atomic {
    static_assert(sizeof(T) <= sizeof(std::uint64_t),
                  "model Atomic supports word-sized types only");

   public:
    Atomic() noexcept = default;
    constexpr Atomic(T v) noexcept : mirror_(detail::to_bits(v)) {}  // NOLINT
    ~Atomic() { Scheduler::object_destroy(this); }

    Atomic(const Atomic&) = delete;
    Atomic& operator=(const Atomic&) = delete;

    T load(std::memory_order order = std::memory_order_seq_cst) const {
      return detail::from_bits<T>(Scheduler::atomic_load(this, order, mirror_));
    }
    void store(T v, std::memory_order order = std::memory_order_seq_cst) {
      const std::uint64_t bits = detail::to_bits(v);
      // Scheduler first, mirror second: the mirror is the fallback other
      // threads read for a never-stored location, so writing it before the
      // scheduler APPLIES the store would leak the value to interleavings
      // scheduled before this transition.
      Scheduler::atomic_store(this, bits, order);
      mirror_ = bits;
    }
    T fetch_add(T d, std::memory_order order = std::memory_order_seq_cst) {
      const std::uint64_t prev = Scheduler::atomic_rmw(
          this, RmwKind::kAdd, detail::to_bits(d), order, mirror_);
      mirror_ = prev + detail::to_bits(d);
      return detail::from_bits<T>(prev);
    }
    T fetch_sub(T d, std::memory_order order = std::memory_order_seq_cst) {
      const std::uint64_t prev = Scheduler::atomic_rmw(
          this, RmwKind::kSub, detail::to_bits(d), order, mirror_);
      mirror_ = prev - detail::to_bits(d);
      return detail::from_bits<T>(prev);
    }
    T exchange(T v, std::memory_order order = std::memory_order_seq_cst) {
      const std::uint64_t bits = detail::to_bits(v);
      const std::uint64_t prev =
          Scheduler::atomic_rmw(this, RmwKind::kExchange, bits, order, mirror_);
      mirror_ = bits;
      return detail::from_bits<T>(prev);
    }

   private:
    /// Out-of-run fallback value; inside a run the scheduler's per-location
    /// store history is authoritative and this mirror merely shadows the
    /// latest store (threads are serialized, so the shadow write is benign).
    mutable std::uint64_t mirror_ = 0;
  };

  class CondVar;

  /// dpisvc::Mutex-shaped model mutex.
  class Mutex {
   public:
    Mutex() { Scheduler::mutex_create(this); }
    ~Mutex() { Scheduler::object_destroy(this); }

    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() { Scheduler::mutex_lock(this); }
    void unlock() { Scheduler::mutex_unlock(this); }

   private:
    friend class CondVar;
  };

  /// Scoped lock over the model mutex.
  class MutexLock {
   public:
    explicit MutexLock(Mutex& mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

   private:
    friend class CondVar;
    Mutex& mu_;
  };

  /// Model condition variable. wait_for NEVER times out under the model: a
  /// timed backstop that is actually load-bearing therefore shows up as an
  /// MC004 deadlock, not as silent extra latency. No spurious wakeups are
  /// modeled (they only add schedules in which waiters loop once more).
  class CondVar {
   public:
    CondVar() { Scheduler::cv_create(this); }
    ~CondVar() { Scheduler::object_destroy(this); }

    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void notify_one() noexcept { Scheduler::cv_notify(this, /*all=*/false); }
    void notify_all() noexcept { Scheduler::cv_notify(this, /*all=*/true); }

    void wait(MutexLock& lock) { Scheduler::cv_wait(this, &lock.mu_); }

    template <typename Rep, typename Period>
    void wait_for(MutexLock& lock,
                  const std::chrono::duration<Rep, Period>& /*timeout*/) {
      Scheduler::cv_wait(this, &lock.mu_);
    }

   private:
  };

  /// std::thread-shaped model thread handle.
  class Thread {
   public:
    Thread() noexcept = default;
    template <typename Fn, typename = std::enable_if_t<
                               std::is_invocable_v<std::decay_t<Fn>>>>
    explicit Thread(Fn&& fn)
        : id_(Scheduler::spawn_thread(std::function<void()>(
              std::forward<Fn>(fn)))) {}

    Thread(Thread&& other) noexcept : id_(other.id_) { other.id_ = -1; }
    Thread& operator=(Thread&& other) noexcept {
      id_ = other.id_;
      other.id_ = -1;
      return *this;
    }
    Thread(const Thread&) = delete;
    Thread& operator=(const Thread&) = delete;

    bool joinable() const noexcept { return id_ >= 0; }
    void join() {
      Scheduler::join_thread(id_);
      id_ = -1;
    }

   private:
    int id_ = -1;
  };

  static void yield() { Scheduler::yield(); }
  static void fence(std::memory_order order) { Scheduler::fence(order); }
  static void race_read(const void* addr) { Scheduler::race_read(addr); }
  static void race_write(const void* addr) { Scheduler::race_write(addr); }
};

}  // namespace dpisvc::mc
