#include "mc/scenario.hpp"

#include "mc/model_sync.hpp"
#include "mc/scenarios.hpp"

namespace dpisvc::mc {

namespace {

std::vector<ScenarioInfo> build_registry() {
  std::vector<ScenarioInfo> list;

  {
    ScenarioInfo s;
    s.name = "batch_pending";
    s.description =
        "ingest batch completion latch: shard results visible after "
        "all_done() (release-dec/acquire-zero pairing)";
    s.body = [] { scenarios::batch_pending_body<ModelSync>(); };
    list.push_back(std::move(s));
  }
  {
    ScenarioInfo s;
    s.name = "completion_latch";
    s.description =
        "ScanPool::Completion destroyed by the waiter the moment wait_zero() "
        "returns; notify-under-mutex keeps the finisher off the freed latch";
    s.body = [] { scenarios::completion_latch_body<ModelSync>(); };
    list.push_back(std::move(s));
  }
  {
    ScenarioInfo s;
    s.name = "lease_recycle";
    s.description =
        "lease-gated arena recycle: reset only after LeaseCounter::idle(), "
        "ordered against the leaseholder's payload reads";
    s.body = [] { scenarios::lease_recycle_body<ModelSync>(); };
    list.push_back(std::move(s));
  }
  {
    ScenarioInfo s;
    s.name = "obs_counter_take";
    s.description =
        "telemetry snapshot-and-reset: concurrent add() vs take() never "
        "loses or double-counts";
    s.body = [] { scenarios::obs_counter_take_body<ModelSync>(); };
    list.push_back(std::move(s));
  }
  {
    ScenarioInfo s;
    s.name = "pool_park_wake";
    s.description =
        "ScanPool park/wake: untimed modeled waits prove the 1ms backstop "
        "is never load-bearing (a lost wakeup would deadlock, MC004)";
    // 3 model threads x a destructor protocol: bounded-preemption fallback.
    s.options.max_preemptions = 2;
    s.body = [] { scenarios::pool_park_wake_body<ModelSync>(); };
    list.push_back(std::move(s));
  }
  {
    ScenarioInfo s;
    s.name = "ring_capacity_one";
    s.description =
        "SpscRing at capacity 1: every push/pop alternation explored, no "
        "overrun or underrun at the exact-full boundary";
    s.body = [] { scenarios::ring_spsc_body<ModelSync>(1, 2); };
    list.push_back(std::move(s));
  }
  {
    ScenarioInfo s;
    s.name = "ring_spsc";
    s.description =
        "SpscRing capacity 2, 3 items: FIFO order and release/acquire "
        "publication of every slot payload";
    s.body = [] { scenarios::ring_spsc_body<ModelSync>(2, 3); };
    list.push_back(std::move(s));
  }

  return list;
}

}  // namespace

const std::vector<ScenarioInfo>& scenario_registry() {
  static const std::vector<ScenarioInfo> registry = build_registry();
  return registry;
}

const ScenarioInfo* find_scenario(std::string_view name) {
  for (const ScenarioInfo& s : scenario_registry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace dpisvc::mc
