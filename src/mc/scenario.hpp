// Scenario registry for the dpisvc_mc tool and tests: every shipped
// concurrency contract (scenarios.hpp) instantiated over mc::ModelSync,
// with per-scenario exploration bounds tuned so the whole suite stays fast.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "mc/scheduler.hpp"

namespace dpisvc::mc {

struct ScenarioInfo {
  std::string name;
  std::string description;
  /// Tuned defaults: exhaustive (max_preemptions = -1) for the small
  /// scenarios, a preemption bound for the pool (3 model threads and a
  /// destructor protocol make unbounded DFS needlessly slow for CI).
  ExploreOptions options;
  std::function<void()> body;  ///< over mc::ModelSync
};

/// All registered scenarios, in stable (alphabetical) order.
const std::vector<ScenarioInfo>& scenario_registry();

/// nullptr when `name` is not registered.
const ScenarioInfo* find_scenario(std::string_view name);

}  // namespace dpisvc::mc
