// Model-checking scenarios over the SHIPPED concurrency primitives
// (DESIGN.md §7). Each body is a function template over the sync facade so
// the registry instantiates it with mc::ModelSync while the fault-injection
// tests re-instantiate the same body with their TU-local Sync tag — the
// checked code paths are the production templates, never hand-copied models.
//
// Scenario sizing: 2–3 model threads, a handful of facade operations each,
// so the exhaustive DFS finishes in well under a second inside ctest. The
// dpisvc_mc CLI runs the same bodies with wider bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include "common/spsc_ring.hpp"
#include "mc/scheduler.hpp"
#include "obs/metrics.hpp"
#include "service/batch_sync.hpp"
#include "service/scan_pool.hpp"

namespace dpisvc::mc::scenarios {

/// SPSC ring at exact capacity: FIFO order, no overrun (push fails on a
/// full ring rather than clobbering), no underrun (pop fails on empty),
/// and the release/acquire cursor hand-off publishes each slot's payload
/// (the per-slot race_read/race_write hooks inside SpscRing itself would
/// report MC002 otherwise — that is the weak-publish seeded-bug test).
template <typename Sync>
void ring_spsc_body(std::size_t capacity, int items) {
  SpscRing<int, Sync> ring(capacity);
  typename Sync::Thread consumer([&ring, items] {
    int next = 0;
    while (next < items) {
      int v = -1;
      if (!ring.try_pop(v)) {
        Sync::yield();
        continue;
      }
      require(v == next, "SPSC ring must pop values in FIFO order");
      ++next;
    }
    int v = -1;
    require(!ring.try_pop(v), "pop from a drained ring must fail");
  });
  for (int i = 0; i < items; ++i) {
    while (!ring.try_push(int(i))) Sync::yield();
  }
  consumer.join();
}

/// Completion latch: the waiter owns the latch and destroys it the moment
/// wait_zero() returns (placement-new keeps the raw memory valid, so only
/// the model's destroy tombstones — not ASan — decide what counts as a
/// use-after-destroy). The shipped notify-under-mutex discipline makes this
/// safe; the DPISVC_MC_FAULT_COMPLETION_NOTIFY variant reintroduces the
/// pre-PR9 signal-after-unlock bug, which must surface as MC003.
template <typename Sync>
void completion_latch_body() {
  using Completion = typename service::BasicScanPool<Sync>::Completion;
  alignas(Completion) unsigned char storage[sizeof(Completion)];
  auto* done = new (storage) Completion();
  done->expect(1);
  typename Sync::Thread finisher([done] { done->finish_one(); });
  done->wait_zero();
  done->~Completion();  // waiter frees the stack latch immediately
  finisher.join();
}

namespace detail {
/// Plain-int job body for the pool scenarios; the counter is handed through
/// the JobFn ctx pointer, with race hooks marking the non-atomic access.
template <typename Sync>
void count_job(void* ctx, std::size_t /*arg*/) {
  auto* hits = static_cast<int*>(ctx);
  Sync::race_write(hits);
  ++*hits;
}
}  // namespace detail

/// Park/wake protocol of the shipped worker pool: one job submitted to a
/// worker that may already be parked (or parking, or still draining). The
/// modeled cv wait never times out, so the pool's 1ms backstop cannot paper
/// over a lost wakeup — if the seq_cst parked/fence hand-off were wrong,
/// this deadlocks (MC004). The destructor's stop/wake/join sequence is
/// explored in the same run.
template <typename Sync>
void pool_park_wake_body() {
  using Pool = service::BasicScanPool<Sync>;
  int hits = 0;
  {
    // 2 workers is the smallest pool that spawns threads at all.
    Pool pool(2, /*queue_capacity=*/1, service::OverloadPolicy::kBlock,
              typename Pool::Instruments{});
    pool.submit_blocking(0, &detail::count_job<Sync>, &hits, 0);
  }  // ~BasicScanPool: stop + wake + join both workers
  Sync::race_read(&hits);
  require(hits == 1, "a submitted job must run exactly once");
}

/// Batch completion latch used by the ingest pipeline: results written by
/// shard jobs before complete_one() must be visible to the producer after
/// all_done() — the release-decrement / acquire-zero-load pairing on the
/// shipped BatchPending.
template <typename Sync>
void batch_pending_body() {
  int result0 = 0;
  int result1 = 0;
  service::BatchPending<Sync> pending;
  pending.arm(2);
  typename Sync::Thread w0([&] {
    Sync::race_write(&result0);
    result0 = 7;
    pending.complete_one();
  });
  typename Sync::Thread w1([&] {
    Sync::race_write(&result1);
    result1 = 9;
    pending.complete_one();
  });
  while (!pending.all_done()) Sync::yield();
  Sync::race_read(&result0);
  Sync::race_read(&result1);
  require(result0 == 7 && result1 == 9,
          "shard results must be visible once all_done() observes zero");
  w0.join();
  w1.join();
}

/// Lease-gated arena recycle: the producer may reset the arena (modeled as
/// a plain write to the payload) only after LeaseCounter::idle() — the
/// consumer's reads of the leased bytes must happen-before the reset via
/// the release-drop / acquire-idle pairing on the shipped LeaseCounter.
template <typename Sync>
void lease_recycle_body() {
  int payload = 0;
  service::LeaseCounter<Sync> leases;
  leases.take();  // lease handed to the consumer along with the data
  Sync::race_write(&payload);
  payload = 42;
  typename Sync::Thread consumer([&] {
    Sync::race_read(&payload);
    require(payload == 42, "leaseholder must see the payload intact");
    leases.drop();
  });
  while (!leases.idle()) Sync::yield();
  Sync::race_write(&payload);  // the arena reset the lease gate protects
  payload = 0;
  consumer.join();
}

/// Telemetry snapshot-and-reset: concurrent add() vs take() on the shipped
/// BasicCounter must neither lose nor double-count an event in any
/// interleaving (take() is a single exchange, not load-then-store).
template <typename Sync>
void obs_counter_take_body() {
  obs::BasicCounter<Sync> counter;
  typename Sync::Thread writer([&] {
    counter.add(1);
    counter.add(1);
  });
  std::uint64_t drained = counter.take();
  drained += counter.take();
  writer.join();
  drained += counter.take();
  require(drained == 2,
          "snapshot-and-reset must neither lose nor double-count");
}

}  // namespace dpisvc::mc::scenarios
