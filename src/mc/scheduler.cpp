// Implementation of the dpisvc_mc scheduler/explorer (see scheduler.hpp for
// the model and DESIGN.md §7 for the architecture rationale).
#include "mc/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace dpisvc::mc {
namespace {

// ---------------------------------------------------------------------------
// Vector clocks (one component per model thread).

struct Clock {
  std::vector<std::uint64_t> t;

  std::uint64_t get(std::size_t i) const { return i < t.size() ? t[i] : 0; }
  void set(std::size_t i, std::uint64_t v) {
    if (t.size() <= i) t.resize(i + 1, 0);
    t[i] = v;
  }
  void join(const Clock& other) {
    if (t.size() < other.t.size()) t.resize(other.t.size(), 0);
    for (std::size_t i = 0; i < other.t.size(); ++i) {
      t[i] = std::max(t[i], other.t[i]);
    }
  }
  /// true when every component of *this is <= the matching one in `other`
  /// (i.e. *this happens-before-or-equals other).
  bool leq(const Clock& other) const {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i] > other.get(i)) return false;
    }
    return true;
  }
};

/// Per-location "view": for each atomic location, the minimum store timestamp
/// a thread is allowed to read (coherence floor). Keyed by location id.
using View = std::unordered_map<const void*, std::uint64_t>;

void view_join(View& into, const View& from) {
  for (const auto& [loc, ts] : from) {
    auto [it, inserted] = into.emplace(loc, ts);
    if (!inserted && it->second < ts) it->second = ts;
  }
}

bool is_acquire(std::memory_order o) {
  return o == std::memory_order_acquire || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}
bool is_release(std::memory_order o) {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}

// ---------------------------------------------------------------------------
// Model objects.

/// One store message in an atomic location's bounded history.
struct StoreMsg {
  std::uint64_t ts = 0;     ///< per-location sequence number
  std::uint64_t value = 0;  ///< stored bits
  bool release = false;     ///< carries clock+view to acquire loaders
  Clock clock;              ///< release clock (if release)
  View view;                ///< release view  (if release)
};

struct AtomicObj {
  std::vector<StoreMsg> history;  ///< ascending ts; bounded
  std::uint64_t next_ts = 1;
};

struct MutexObj {
  int owner = -1;  ///< model thread id, -1 = free
  Clock clock;     ///< release clock of the last unlock
  View view;
};

struct CvObj {
  std::vector<int> waiters;  ///< model thread ids, FIFO for determinism
};

/// Race-detection epochs for one plain (non-atomic) address.
struct RaceCell {
  Clock writes;  ///< per-thread last-write timestamps
  Clock reads;   ///< per-thread last-read timestamps
};

enum class ThreadPhase : std::uint8_t {
  kRunnable,   ///< has a pending op the controller may grant
  kBlocked,    ///< blocked on mutex / cv / join — not schedulable
  kFinished,   ///< body returned (or unwound)
  kUnused,     ///< slot never started this run
};

/// One model thread's per-run record plus its handshake cell.
struct ModelThread {
  ThreadPhase phase = ThreadPhase::kUnused;
  Op pending{};
  bool has_pending = false;
  bool yielded = false;  ///< fairness: deprioritized until others move
  int stale_reads_left = 0;

  Clock clock;  ///< this thread's vector clock
  View view;    ///< per-location read floors

  // blocking bookkeeping
  const void* waiting_mutex = nullptr;  ///< blocked in lock()
  const void* waiting_cv = nullptr;     ///< parked in a cv wait set
  const void* cv_mutex = nullptr;       ///< mutex to reacquire after wakeup
  bool cv_woken = false;                ///< notified, now contends for cv_mutex
  int joining = -1;                     ///< blocked joining this thread id

  std::uint64_t result = 0;             ///< load/rmw result set by controller
  const char* fail_code = nullptr;      ///< diagnostic code for kAssertFail
  bool body_returned = false;           ///< OS-level body completion (joins)

  std::function<void()> body;
};

// ---------------------------------------------------------------------------
// DFS decision records.

enum class ChoiceKind : std::uint8_t { kThread, kValue, kWaiter };

struct Decision {
  ChoiceKind kind = ChoiceKind::kThread;
  std::vector<std::size_t> options;  ///< option ids (thread id / history idx / waiter idx)
  std::size_t chosen = 0;            ///< index into options
  std::set<std::size_t> explored;    ///< option *ids* already fully explored
  std::set<std::size_t> sleep;       ///< thread ids asleep at this state (kThread only)
  int preemptions_used = 0;          ///< preemption count up to this decision
  int prev_thread = -1;              ///< thread that moved before this decision
};

/// Signals the controller loop that the current run ended with a bug or was
/// pruned; model threads are unwound via AbortRun separately.
struct RunEnd {
  bool bug = false;
};

std::string order_name(std::memory_order o) {
  switch (o) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

std::string describe_op(int tid, const Op& op) {
  std::ostringstream os;
  os << "T" << tid << " ";
  switch (op.kind) {
    case OpKind::kThreadStart: os << "start"; break;
    case OpKind::kThreadExit: os << "exit"; break;
    case OpKind::kThreadJoin: os << "join(T" << op.value << ")"; break;
    case OpKind::kAtomicLoad:
      os << "load(" << op.obj << ", " << order_name(op.order) << ")";
      break;
    case OpKind::kAtomicStore:
      os << "store(" << op.obj << ", " << op.value << ", "
         << order_name(op.order) << ")";
      break;
    case OpKind::kAtomicRmw:
      os << "rmw(" << op.obj << ", "
         << (op.rmw == RmwKind::kAdd      ? "add"
             : op.rmw == RmwKind::kSub    ? "sub"
                                          : "xchg")
         << " " << op.value << ", " << order_name(op.order) << ")";
      break;
    case OpKind::kFence: os << "fence(" << order_name(op.order) << ")"; break;
    case OpKind::kMutexLock: os << "lock(" << op.obj << ")"; break;
    case OpKind::kMutexUnlock: os << "unlock(" << op.obj << ")"; break;
    case OpKind::kCondWait:
      os << "cv_wait(" << op.obj << ", mu=" << op.obj2 << ")";
      break;
    case OpKind::kCondNotify:
      os << (op.value != 0 ? "cv_notify_all(" : "cv_notify_one(") << op.obj
         << ")";
      break;
    case OpKind::kRaceRead: os << "read(" << op.obj << ")"; break;
    case OpKind::kRaceWrite: os << "write(" << op.obj << ")"; break;
    case OpKind::kYield: os << "yield"; break;
    case OpKind::kDestroy: os << "destroy(" << op.obj << ")"; break;
    case OpKind::kAssertFail: os << "assert-fail"; break;
  }
  return os.str();
}

/// Conservative dependence relation for sleep sets: two ops are independent
/// when they can never enable/disable each other or change each other's
/// result. Anything uncertain is declared dependent (sound, just less
/// pruning).
bool ops_dependent(const Op& a, const Op& b) {
  auto touches_obj = [](const Op& op) {
    return op.obj != nullptr;
  };
  // Fences order everything through the global SC state.
  if (a.kind == OpKind::kFence || b.kind == OpKind::kFence) return true;
  // Thread lifecycle ops interact with scheduling globally.
  auto lifecycle = [](OpKind k) {
    return k == OpKind::kThreadStart || k == OpKind::kThreadExit ||
           k == OpKind::kThreadJoin;
  };
  if (lifecycle(a.kind) || lifecycle(b.kind)) return true;
  if (a.kind == OpKind::kYield || b.kind == OpKind::kYield) return false;
  if (!touches_obj(a) || !touches_obj(b)) return true;
  if (a.obj != b.obj && a.obj != b.obj2 && a.obj2 != b.obj &&
      (a.obj2 == nullptr || a.obj2 != b.obj2)) {
    return false;  // disjoint objects
  }
  // Same object: two atomic loads commute; everything else conflicts.
  if (a.kind == OpKind::kAtomicLoad && b.kind == OpKind::kAtomicLoad) {
    return false;
  }
  if (a.kind == OpKind::kRaceRead && b.kind == OpKind::kRaceRead) return false;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Scheduler::Impl — all per-explorer state, including the OS-thread pool.

struct Scheduler::Impl {
  // ---- configuration ----
  ExploreOptions opts;

  // ---- handshake (all guarded by mu) ----
  std::mutex mu;
  std::condition_variable cv;
  int active = -1;  ///< model thread id allowed to run; -1 = controller
  bool aborting = false;  ///< current run is unwinding

  // ---- per-run model state ----
  std::vector<ModelThread> threads;
  std::unordered_map<const void*, AtomicObj> atomics;
  std::unordered_map<const void*, MutexObj> mutexes;
  std::unordered_map<const void*, CvObj> cvs;
  std::unordered_map<const void*, RaceCell> races;
  std::unordered_set<const void*> destroyed;  ///< tombstones
  View sc_view;    ///< read floors propagated by every seq_cst op
  Clock sc_clock;  ///< clock accumulated by seq_cst ops/fences
  std::uint64_t steps = 0;
  std::vector<std::string> trace;
  /// Line for the op currently being applied: raise() flushes it into the
  /// trace so the FAILING access itself appears in the printed schedule.
  std::string pending_line;

  // ---- DFS state (persists across runs) ----
  std::vector<Decision> stack;
  std::size_t depth = 0;  ///< index of the next decision during a run
  std::uint64_t executions = 0;
  std::uint64_t transitions = 0;
  std::optional<Diagnostic> bug;
  bool pruned = false;  ///< run ended via sleep-set prune, not completion

  // ---- OS thread pool (cells live for the whole Explorer lifetime) ----
  struct OsCell {
    std::thread os;
    std::function<void()> job;  ///< set under mu before waking
    bool has_job = false;
    bool quit = false;
  };
  std::vector<std::unique_ptr<OsCell>> cells;

  ~Impl() {
    {
      std::unique_lock<std::mutex> lk(mu);
      for (auto& c : cells) c->quit = true;
      cv.notify_all();
    }
    for (auto& c : cells) {
      if (c->os.joinable()) c->os.join();
    }
  }

  // -------------------------------------------------------------------------
  // Handshake plumbing.

  /// Blocks the calling model thread until the controller grants it. Must be
  /// called with `lk` held. Throws AbortRun when the run is being torn down.
  /// Blocks the calling model thread until the controller grants it (held
  /// under `lk`). When the run is aborting instead, the thread switches to
  /// FREE-RUN mode (tl_unwinding): it returns normally and keeps executing
  /// its body to completion with every facade operation degraded to a
  /// no-op/mirror fallback. Throwing here is not an option — the parked
  /// frame may be inside a noexcept production method (complete_one(),
  /// destructors), where an in-flight exception is instant std::terminate.
  void wait_for_grant(std::unique_lock<std::mutex>& lk, int tid) {
    cv.wait(lk, [&] { return active == tid || aborting; });
    if (aborting) tl_unwinding = true;
  }

  /// Called from a model thread at a schedule point: publish the pending op,
  /// hand control to the controller, wait to be granted again.
  void schedule_point(int tid, const Op& op) {
    std::unique_lock<std::mutex> lk(mu);
    if (aborting) {
      tl_unwinding = true;
      return;
    }
    ModelThread& t = threads[static_cast<std::size_t>(tid)];
    t.pending = op;
    t.has_pending = true;
    active = -1;
    cv.notify_all();
    wait_for_grant(lk, tid);
  }

  /// Controller side: hand control to thread `tid` and wait until it parks
  /// again (publishes a new pending op, blocks, or finishes).
  void grant_and_wait(std::unique_lock<std::mutex>& lk, int tid) {
    threads[static_cast<std::size_t>(tid)].has_pending = false;
    active = tid;
    cv.notify_all();
    cv.wait(lk, [&] { return active == -1; });
  }

  // -------------------------------------------------------------------------
  // Model-thread lifecycle.

  int alloc_thread(std::function<void()> body) {
    const int tid = static_cast<int>(threads.size());
    threads.emplace_back();
    ModelThread& t = threads.back();
    t.phase = ThreadPhase::kRunnable;
    t.stale_reads_left = opts.stale_read_budget;
    t.clock.set(static_cast<std::size_t>(tid), 1);
    t.body = std::move(body);
    ensure_cell(static_cast<std::size_t>(tid));
    return tid;
  }

  void ensure_cell(std::size_t idx) {
    while (cells.size() <= idx) {
      auto cell = std::make_unique<OsCell>();
      OsCell* raw = cell.get();
      raw->os = std::thread([this, raw] { cell_loop(raw); });
      cells.push_back(std::move(cell));
    }
  }

  void cell_loop(OsCell* cell) {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return cell->has_job || cell->quit; });
        if (cell->quit) return;
        cell->has_job = false;
        job = std::move(cell->job);
      }
      job();
    }
  }

  /// Launch model thread `tid`'s body on its OS cell. The body runs the
  /// start schedule point, the user code, then the exit schedule point.
  void launch(int tid) {
    OsCell* cell = cells[static_cast<std::size_t>(tid)].get();
    cell->job = [this, tid] { run_model_thread(tid); };
    cell->has_job = true;
    // caller holds mu and will notify
  }

  void run_model_thread(int tid);

  // -------------------------------------------------------------------------
  // Effects: the controller applies the granted thread's pending op while
  // everyone is parked. Returns false when the op *blocks* (thread moved to
  // kBlocked with the op still pending re-evaluation).

  [[noreturn]] void raise(const char* code, std::string message) {
    if (!pending_line.empty()) {
      trace.push_back(std::move(pending_line));
      pending_line.clear();
    }
    Diagnostic d;
    d.code = code;
    d.message = std::move(message);
    d.schedule_text = trace;
    for (std::size_t i = 0; i < depth && i < stack.size(); ++i) {
      d.schedule.push_back(stack[i].options[stack[i].chosen]);
    }
    bug = d;
    throw RunEnd{true};
  }

  void check_alive(const void* obj, const char* what) {
    if (destroyed.count(obj) != 0) {
      std::ostringstream os;
      os << what << " on destroyed object " << obj;
      raise("MC003", os.str());
    }
  }

  /// seq_cst accesses synchronize through the global SC state both ways.
  void sc_sync(ModelThread& t) {
    t.clock.join(sc_clock);
    view_join(t.view, sc_view);
    sc_clock.join(t.clock);
    view_join(sc_view, t.view);
  }

  std::uint64_t tick(int tid) {
    ModelThread& t = threads[static_cast<std::size_t>(tid)];
    const auto i = static_cast<std::size_t>(tid);
    const std::uint64_t next = t.clock.get(i) + 1;
    t.clock.set(i, next);
    return next;
  }

  // -------------------------------------------------------------------------
  // Value choice: enumerate which stores thread `tid` may read at `obj`.
  // The latest store is always readable; older ones only with stale budget,
  // and never below the thread's per-location floor.

  std::vector<std::size_t> readable_stores(int tid, const void* obj,
                                           std::memory_order order) {
    AtomicObj& a = atomics[obj];
    std::vector<std::size_t> opts_out;
    if (a.history.empty()) return opts_out;
    ModelThread& t = threads[static_cast<std::size_t>(tid)];
    const std::size_t latest = a.history.size() - 1;
    if (order == std::memory_order_seq_cst) {
      opts_out.push_back(latest);  // SC loads read the latest store
      return opts_out;
    }
    std::uint64_t floor = 0;
    if (auto it = t.view.find(obj); it != t.view.end()) floor = it->second;
    opts_out.push_back(latest);
    if (t.stale_reads_left > 0) {
      for (std::size_t i = latest; i-- > 0;) {
        if (a.history[i].ts < floor) break;
        opts_out.push_back(i);
      }
    }
    return opts_out;
  }

  /// Applies the read effects of loading history index `idx` at `obj`.
  std::uint64_t apply_load(int tid, const void* obj, std::memory_order order,
                           std::size_t idx) {
    AtomicObj& a = atomics[obj];
    ModelThread& t = threads[static_cast<std::size_t>(tid)];
    const StoreMsg& msg = a.history[idx];
    if (idx + 1 != a.history.size()) --t.stale_reads_left;
    // Coherence: this thread may never read an older store here again.
    auto [it, inserted] = t.view.emplace(obj, msg.ts);
    if (!inserted && it->second < msg.ts) it->second = msg.ts;
    if (msg.release && is_acquire(order)) {
      t.clock.join(msg.clock);
      view_join(t.view, msg.view);
    }
    if (order == std::memory_order_seq_cst) sc_sync(t);
    return msg.value;
  }

  void apply_store(int tid, const void* obj, std::uint64_t bits,
                   std::memory_order order) {
    AtomicObj& a = atomics[obj];
    ModelThread& t = threads[static_cast<std::size_t>(tid)];
    tick(tid);
    StoreMsg msg;
    msg.ts = a.next_ts++;
    msg.value = bits;
    msg.release = is_release(order);
    if (msg.release) {
      msg.clock = t.clock;
      msg.view = t.view;
    }
    // The storer itself can never read below its own store.
    auto [it, inserted] = t.view.emplace(obj, msg.ts);
    if (!inserted && it->second < msg.ts) it->second = msg.ts;
    a.history.push_back(std::move(msg));
    if (a.history.size() > opts.max_store_history) {
      a.history.erase(a.history.begin());
    }
    if (order == std::memory_order_seq_cst) sc_sync(t);
  }

  std::uint64_t apply_rmw(int tid, const Op& op) {
    AtomicObj& a = atomics[op.obj];
    ModelThread& t = threads[static_cast<std::size_t>(tid)];
    // RMW always reads the latest store (atomicity), and acquires from it.
    std::uint64_t prev = 0;
    Clock carry_clock;
    View carry_view;
    bool carry_release = false;
    if (!a.history.empty()) {
      const StoreMsg& last = a.history.back();
      prev = last.value;
      if (last.release) {
        if (is_acquire(op.order)) {
          t.clock.join(last.clock);
          view_join(t.view, last.view);
        }
        // Release sequence (C++ [intro.races]): an RMW — of ANY order —
        // continues the sequence headed by the release op it reads from, so
        // its message must keep carrying that op's clock for later acquire
        // loads. This is what makes the fetch_sub(release)/load(acquire)
        // latch idiom (BatchPending, LeaseCounter) sound with >1 finisher.
        carry_release = true;
        carry_clock = last.clock;
        carry_view = last.view;
      }
    }
    std::uint64_t next = prev;
    switch (op.rmw) {
      case RmwKind::kAdd: next = prev + op.value; break;
      case RmwKind::kSub: next = prev - op.value; break;
      case RmwKind::kExchange: next = op.value; break;
      case RmwKind::kNone: break;
    }
    tick(tid);
    StoreMsg msg;
    msg.ts = a.next_ts++;
    msg.value = next;
    msg.release = is_release(op.order) || carry_release;
    if (is_release(op.order)) {
      msg.clock = t.clock;
      msg.view = t.view;
    }
    if (carry_release) {
      msg.clock.join(carry_clock);
      view_join(msg.view, carry_view);
    }
    auto [it, inserted] = t.view.emplace(op.obj, msg.ts);
    if (!inserted && it->second < msg.ts) it->second = msg.ts;
    a.history.push_back(std::move(msg));
    if (a.history.size() > opts.max_store_history) {
      a.history.erase(a.history.begin());
    }
    if (op.order == std::memory_order_seq_cst) sc_sync(t);
    return prev;
  }

  void apply_fence(int tid, std::memory_order order) {
    ModelThread& t = threads[static_cast<std::size_t>(tid)];
    if (order == std::memory_order_seq_cst) {
      sc_sync(t);
    }
    // acquire/release fences without an associated atomic op are modeled
    // conservatively as no-ops; every fence in shipped code is seq_cst.
  }

  void apply_race_access(int tid, const void* addr, bool is_write) {
    RaceCell& cell = races[addr];
    ModelThread& t = threads[static_cast<std::size_t>(tid)];
    const auto i = static_cast<std::size_t>(tid);
    // A write must happen-after every prior access; a read must happen-after
    // every prior write.
    auto report = [&](const char* kind) {
      std::ostringstream os;
      os << "data race on " << addr << ": T" << tid << " "
         << (is_write ? "write" : "read") << " conflicts with earlier " << kind
         << " not ordered by happens-before";
      raise("MC002", os.str());
    };
    if (!cell.writes.leq(t.clock)) report("write");
    if (is_write && !cell.reads.leq(t.clock)) report("read");
    const std::uint64_t now = tick(tid);
    if (is_write) {
      cell.writes.set(i, now);
    } else {
      cell.reads.set(i, now);
    }
  }

  // -------------------------------------------------------------------------
  // Blocking-op helpers.

  bool mutex_available(int tid, const void* obj) {
    auto it = mutexes.find(obj);
    return it == mutexes.end() || it->second.owner == -1 ||
           it->second.owner == tid;
  }

  void apply_mutex_lock(int tid, const void* obj) {
    MutexObj& m = mutexes[obj];
    if (m.owner == tid) {
      raise("MC006", "recursive lock of a non-recursive mutex");
    }
    m.owner = tid;
    ModelThread& t = threads[static_cast<std::size_t>(tid)];
    t.clock.join(m.clock);
    view_join(t.view, m.view);
    tick(tid);
  }

  void apply_mutex_unlock(int tid, const void* obj) {
    auto it = mutexes.find(obj);
    if (it == mutexes.end() || it->second.owner != tid) {
      raise("MC006", "unlock by non-owner");
    }
    MutexObj& m = it->second;
    tick(tid);
    ModelThread& t = threads[static_cast<std::size_t>(tid)];
    m.clock = t.clock;
    m.view = t.view;
    m.owner = -1;
  }

  // -------------------------------------------------------------------------
  // Scheduling: enablement, decisions, one-step execution.

  // run-local scheduling trackers (reset per run)
  int prev_thread = -1;           ///< last thread granted a transition
  int preemptions = 0;            ///< CHESS preemption count this run
  int last_thread_decision = -1;  ///< stack index of the last kThread node
  Op last_exec_op{};              ///< op executed from that node
  int live_bodies = 0;            ///< OS jobs still inside run_model_thread

  bool is_enabled(int tid) {
    ModelThread& t = threads[static_cast<std::size_t>(tid)];
    if (t.phase == ThreadPhase::kFinished) return false;
    if (t.waiting_cv != nullptr) {
      return t.cv_woken && mutex_available(tid, t.cv_mutex);
    }
    if (!t.has_pending) return false;
    switch (t.pending.kind) {
      case OpKind::kMutexLock:
        return mutex_available(tid, t.pending.obj);
      case OpKind::kThreadJoin:
        return threads[static_cast<std::size_t>(t.pending.value)].phase ==
               ThreadPhase::kFinished;
      default:
        return true;
    }
  }

  /// Consume or create one decision node; returns the chosen option id.
  std::size_t decide(ChoiceKind kind, std::vector<std::size_t> option_ids,
                     std::set<std::size_t> sleep_in) {
    if (depth < stack.size()) {
      Decision& d = stack[depth];
      ++depth;
      return d.options[d.chosen];
    }
    Decision d;
    d.kind = kind;
    d.options = std::move(option_ids);
    d.sleep = std::move(sleep_in);
    d.prev_thread = prev_thread;
    d.preemptions_used = preemptions;
    if (depth < opts.replay.size()) {
      const auto it =
          std::find(d.options.begin(), d.options.end(), opts.replay[depth]);
      if (it != d.options.end()) {
        d.chosen = static_cast<std::size_t>(it - d.options.begin());
      }
    }
    stack.push_back(std::move(d));
    ++depth;
    const Decision& back = stack.back();
    return back.options[back.chosen];
  }

  /// Sleep set for a new thread-decision node: survivors of the previous
  /// node's sleep ∪ explored whose pending ops commute with the op just
  /// executed from it (Godefroid). Empty for the first decision of a run
  /// and in preemption-bounded mode (sleep sets and bounding interact
  /// unsoundly, so the bounded fallback searches without them).
  std::set<std::size_t> next_sleep_set() {
    std::set<std::size_t> sleep;
    if (opts.max_preemptions >= 0) return sleep;
    if (last_thread_decision < 0) return sleep;
    const Decision& prev =
        stack[static_cast<std::size_t>(last_thread_decision)];
    auto consider = [&](std::size_t u) {
      if (u >= threads.size()) return;
      const ModelThread& t = threads[u];
      if (t.phase == ThreadPhase::kFinished || !t.has_pending) return;
      if (static_cast<int>(u) == prev_thread) return;
      if (!ops_dependent(t.pending, last_exec_op)) sleep.insert(u);
    };
    for (std::size_t u : prev.sleep) consider(u);
    for (std::size_t u : prev.explored) consider(u);
    return sleep;
  }

  /// One scheduling round: pick a thread, execute its transition. Returns
  /// false when the run is complete (every thread finished).
  bool step(std::unique_lock<std::mutex>& lk) {
    std::vector<std::size_t> enabled;
    bool any_live = false;
    for (std::size_t tid = 0; tid < threads.size(); ++tid) {
      if (threads[tid].phase == ThreadPhase::kFinished) continue;
      any_live = true;
      if (is_enabled(static_cast<int>(tid))) enabled.push_back(tid);
    }
    if (!any_live) return false;
    if (enabled.empty()) {
      std::ostringstream os;
      os << "deadlock: no runnable thread among";
      for (std::size_t tid = 0; tid < threads.size(); ++tid) {
        const ModelThread& t = threads[tid];
        if (t.phase == ThreadPhase::kFinished) continue;
        os << " T" << tid;
        if (t.waiting_cv != nullptr) {
          os << (t.cv_woken ? "(reacquiring after wakeup)" : "(in cv wait)");
        } else if (t.has_pending && t.pending.kind == OpKind::kMutexLock) {
          os << "(blocked on mutex " << t.pending.obj << ")";
        } else if (t.has_pending && t.pending.kind == OpKind::kThreadJoin) {
          os << "(joining T" << t.pending.value << ")";
        }
      }
      raise("MC004", os.str());
    }

    // Yield fairness: a thread that called yield() is deprioritized until
    // every other enabled thread is also post-yield; then all reset.
    std::vector<std::size_t> eligible;
    for (std::size_t tid : enabled) {
      if (!threads[tid].yielded) eligible.push_back(tid);
    }
    if (eligible.empty()) {
      for (std::size_t tid : enabled) threads[tid].yielded = false;
      eligible = enabled;
    }

    // Preemption bound: at the budget, a still-enabled previous thread must
    // keep running (switching away from it would be one more preemption).
    const bool prev_eligible =
        prev_thread >= 0 &&
        std::find(eligible.begin(), eligible.end(),
                  static_cast<std::size_t>(prev_thread)) != eligible.end();
    if (opts.max_preemptions >= 0 && prev_eligible &&
        preemptions >= opts.max_preemptions &&
        !threads[static_cast<std::size_t>(prev_thread)].yielded) {
      eligible.assign(1, static_cast<std::size_t>(prev_thread));
    }

    std::set<std::size_t> sleep = next_sleep_set();
    if (depth >= stack.size()) {
      // New node: threads in the sleep set are provably redundant here.
      std::vector<std::size_t> awake;
      for (std::size_t tid : eligible) {
        if (sleep.count(tid) == 0) awake.push_back(tid);
      }
      if (awake.empty()) throw RunEnd{false};  // branch fully covered before
      eligible = std::move(awake);
    }

    const std::size_t node_index = (depth < stack.size()) ? depth : stack.size();
    const std::size_t chosen =
        decide(ChoiceKind::kThread, std::move(eligible), std::move(sleep));
    last_thread_decision = static_cast<int>(node_index);

    if (prev_eligible && static_cast<int>(chosen) != prev_thread &&
        !threads[static_cast<std::size_t>(prev_thread)].yielded) {
      ++preemptions;
    }
    execute(lk, static_cast<int>(chosen));
    prev_thread = static_cast<int>(chosen);
    return true;
  }

  /// Executes thread `tid`'s pending transition while everyone is parked,
  /// then (for non-blocking ops) grants the thread until its next park.
  void execute(std::unique_lock<std::mutex>& lk, int tid) {
    ModelThread& t = threads[static_cast<std::size_t>(tid)];
    ++transitions;
    if (++steps > opts.max_steps) {
      raise("MC005", "per-execution step limit exceeded (livelock?)");
    }

    if (t.waiting_cv != nullptr) {
      // Woken waiter reacquiring its mutex: complete the cv wait.
      const void* mu_obj = t.cv_mutex;
      trace.push_back(describe_op(tid, Op{OpKind::kMutexLock, mu_obj}) +
                      " (cv wakeup)");
      apply_mutex_lock(tid, mu_obj);
      t.waiting_cv = nullptr;
      t.cv_mutex = nullptr;
      t.cv_woken = false;
      last_exec_op = Op{OpKind::kMutexLock, mu_obj};
      t.yielded = false;
      grant_and_wait(lk, tid);
      return;
    }

    const Op op = t.pending;
    last_exec_op = op;
    std::string line = describe_op(tid, op);
    pending_line = line;
    if (op.kind != OpKind::kYield) t.yielded = false;

    switch (op.kind) {
      case OpKind::kThreadStart:
      case OpKind::kThreadExit:
      case OpKind::kFence:
      case OpKind::kYield: {
        if (op.kind == OpKind::kThreadExit) t.phase = ThreadPhase::kFinished;
        if (op.kind == OpKind::kFence) apply_fence(tid, op.order);
        if (op.kind == OpKind::kYield) t.yielded = true;
        tick(tid);
        break;
      }
      case OpKind::kThreadJoin: {
        const auto target = static_cast<std::size_t>(op.value);
        t.clock.join(threads[target].clock);
        view_join(t.view, threads[target].view);
        tick(tid);
        break;
      }
      case OpKind::kAtomicLoad: {
        check_alive(op.obj, "atomic load");
        std::vector<std::size_t> readable =
            readable_stores(tid, op.obj, op.order);
        std::size_t idx = 0;
        if (readable.empty()) {
          // Never-stored location: read the facade's initial value. A
          // seq_cst load of it still participates in the global SC order
          // (the park/wake protocol's flag reads rely on that edge).
          if (op.order == std::memory_order_seq_cst) sc_sync(t);
          t.result = op.value;
          line += " -> (init)";
          tick(tid);
          break;
        }
        if (readable.size() > 1) {
          idx = decide(ChoiceKind::kValue, std::move(readable), {});
        } else {
          idx = readable[0];
        }
        const bool stale = (idx + 1 != atomics[op.obj].history.size());
        t.result = apply_load(tid, op.obj, op.order, idx);
        line += " -> " + std::to_string(t.result) + (stale ? " (stale)" : "");
        tick(tid);
        break;
      }
      case OpKind::kAtomicStore: {
        check_alive(op.obj, "atomic store");
        apply_store(tid, op.obj, op.value, op.order);
        break;
      }
      case OpKind::kAtomicRmw: {
        check_alive(op.obj, "atomic rmw");
        t.result = apply_rmw(tid, op);
        line += " -> " + std::to_string(t.result);
        break;
      }
      case OpKind::kMutexLock: {
        check_alive(op.obj, "mutex lock");
        apply_mutex_lock(tid, op.obj);
        break;
      }
      case OpKind::kMutexUnlock: {
        check_alive(op.obj, "mutex unlock");
        apply_mutex_unlock(tid, op.obj);
        break;
      }
      case OpKind::kCondWait: {
        check_alive(op.obj, "cv wait");
        check_alive(op.obj2, "cv wait (mutex)");
        auto it = mutexes.find(op.obj2);
        if (it == mutexes.end() || it->second.owner != tid) {
          raise("MC006", "cv wait without holding the mutex");
        }
        apply_mutex_unlock(tid, op.obj2);
        cvs[op.obj].waiters.push_back(tid);
        t.waiting_cv = op.obj;
        t.cv_mutex = op.obj2;
        t.cv_woken = false;
        t.has_pending = false;
        pending_line.clear();
        trace.push_back(std::move(line));
        return;  // blocked: no grant until notified and mutex reacquired
      }
      case OpKind::kCondNotify: {
        check_alive(op.obj, "cv notify");
        CvObj& cv_obj = cvs[op.obj];
        if (!cv_obj.waiters.empty()) {
          if (op.value != 0) {  // notify_all
            for (int w : cv_obj.waiters) {
              threads[static_cast<std::size_t>(w)].cv_woken = true;
            }
            cv_obj.waiters.clear();
          } else {
            std::size_t pick = 0;
            if (cv_obj.waiters.size() > 1) {
              std::vector<std::size_t> options(cv_obj.waiters.size());
              for (std::size_t i = 0; i < options.size(); ++i) options[i] = i;
              pick = decide(ChoiceKind::kWaiter, std::move(options), {});
            }
            const int w = cv_obj.waiters[pick];
            cv_obj.waiters.erase(cv_obj.waiters.begin() +
                                 static_cast<std::ptrdiff_t>(pick));
            threads[static_cast<std::size_t>(w)].cv_woken = true;
            line += " wakes T" + std::to_string(w);
          }
        } else {
          line += " (no waiters)";
        }
        tick(tid);
        break;
      }
      case OpKind::kRaceRead:
      case OpKind::kRaceWrite: {
        apply_race_access(tid, op.obj, op.kind == OpKind::kRaceWrite);
        break;
      }
      case OpKind::kDestroy: {
        if (destroyed.count(op.obj) != 0) {
          raise("MC003", "double destroy");
        }
        if (auto it = mutexes.find(op.obj);
            it != mutexes.end() && it->second.owner != -1) {
          raise("MC003", "mutex destroyed while locked");
        }
        if (auto it = cvs.find(op.obj);
            it != cvs.end() && !it->second.waiters.empty()) {
          raise("MC003", "condition variable destroyed with waiters parked");
        }
        destroyed.insert(op.obj);
        atomics.erase(op.obj);
        mutexes.erase(op.obj);
        cvs.erase(op.obj);
        tick(tid);
        break;
      }
      case OpKind::kAssertFail: {
        raise(t.fail_code != nullptr ? t.fail_code : "MC001",
              t.pending.what != nullptr ? t.pending.what : "assertion failed");
      }
    }
    pending_line.clear();
    trace.push_back(std::move(line));
    grant_and_wait(lk, tid);
  }

  // -------------------------------------------------------------------------
  // Run lifecycle.

  static thread_local Impl* tl_impl;
  static thread_local int tl_tid;
  static thread_local bool tl_unwinding;

  /// Executes one run: replays the stack prefix, then continues greedily
  /// (option 0 of every new decision) to a complete execution, a prune, or
  /// a bug.
  void run_once(const std::function<void()>& scenario) {
    threads.clear();
    atomics.clear();
    mutexes.clear();
    cvs.clear();
    races.clear();
    destroyed.clear();
    sc_view.clear();
    sc_clock = Clock{};
    steps = 0;
    trace.clear();
    pending_line.clear();
    depth = 0;
    prev_thread = -1;
    preemptions = 0;
    last_thread_decision = -1;
    last_exec_op = Op{};

    std::unique_lock<std::mutex> lk(mu);
    aborting = false;
    const int t0 = alloc_thread(scenario);
    launch(t0);
    ++live_bodies;
    cv.notify_all();
    cv.wait(lk, [&] { return threads[0].has_pending; });
    try {
      while (step(lk)) {
      }
      ++executions;  // complete interleaving
    } catch (RunEnd&) {
      abort_run(lk);
    }
  }

  /// Tears the current run down: wakes every parked model thread with the
  /// abort flag so it unwinds via AbortRun, then waits for all bodies to
  /// return their OS cells.
  void abort_run(std::unique_lock<std::mutex>& lk) {
    aborting = true;
    cv.notify_all();
    cv.wait(lk, [&] { return live_bodies == 0; });
    aborting = false;
  }

  /// Backtrack: advance the deepest decision with an unexplored option;
  /// returns false when the whole (in-bound) space is exhausted.
  bool advance_stack() {
    while (!stack.empty()) {
      Decision& d = stack.back();
      d.explored.insert(d.options[d.chosen]);
      if (d.chosen + 1 < d.options.size()) {
        ++d.chosen;
        return true;
      }
      stack.pop_back();
    }
    return false;
  }
};

thread_local Scheduler::Impl* Scheduler::Impl::tl_impl = nullptr;
thread_local int Scheduler::Impl::tl_tid = -1;
thread_local bool Scheduler::Impl::tl_unwinding = false;

void Scheduler::Impl::run_model_thread(int tid) {
  tl_impl = this;
  tl_tid = tid;
  tl_unwinding = false;
  std::function<void()> body;
  bool started = false;
  try {
    {
      std::unique_lock<std::mutex> lk(mu);
      // Initial park: publish kThreadStart WITHOUT yielding control (the
      // spawner, if any, is still the active thread).
      threads[static_cast<std::size_t>(tid)].pending = Op{OpKind::kThreadStart};
      threads[static_cast<std::size_t>(tid)].has_pending = true;
      body = threads[static_cast<std::size_t>(tid)].body;
      cv.notify_all();
      wait_for_grant(lk, tid);
      started = true;
    }
    body();
    Op exit_op;
    exit_op.kind = OpKind::kThreadExit;
    schedule_point(tid, exit_op);
  } catch (AbortRun&) {
    // mc::require() failed and the run is being torn down — fall through.
  } catch (...) {
    // MC007: an exception escaped the scenario / thread body.
    std::unique_lock<std::mutex> lk(mu);
    if (!aborting) {
      ModelThread& t = threads[static_cast<std::size_t>(tid)];
      t.fail_code = "MC007";
      t.pending = Op{};
      t.pending.kind = OpKind::kAssertFail;
      t.pending.what = "uncaught exception escaped a model thread";
      t.has_pending = true;
      if (started) {
        active = -1;
        cv.notify_all();
      }
      wait_for_grant(lk, tid);  // controller raises MC007, then aborts
    }
  }
  tl_impl = nullptr;
  tl_tid = -1;
  tl_unwinding = false;
  std::unique_lock<std::mutex> lk(mu);
  threads[static_cast<std::size_t>(tid)].body_returned = true;
  --live_bodies;
  // A normally-finishing thread still owns control here; return it.
  if (active == tid) active = -1;
  cv.notify_all();
}

// ---------------------------------------------------------------------------
// Scheduler facade statics: bridge from model threads into the active Impl.
// Outside a run (or while unwinding after an abort) every entry point is a
// benign no-op/fallback so object construction and destructor cleanup work.

bool Scheduler::in_model_thread() noexcept {
  return Impl::tl_impl != nullptr && Impl::tl_tid >= 0 && !Impl::tl_unwinding;
}

std::uint64_t Scheduler::atomic_load(const void* obj, std::memory_order order,
                                     std::uint64_t fallback_bits) {
  if (!in_model_thread()) return fallback_bits;
  Impl* im = Impl::tl_impl;
  Op op;
  op.kind = OpKind::kAtomicLoad;
  op.obj = obj;
  op.order = order;
  op.value = fallback_bits;  // read this when the location was never stored
  im->schedule_point(Impl::tl_tid, op);
  return im->threads[static_cast<std::size_t>(Impl::tl_tid)].result;
}

void Scheduler::atomic_store(const void* obj, std::uint64_t bits,
                             std::memory_order order) {
  if (!in_model_thread()) return;
  Op op;
  op.kind = OpKind::kAtomicStore;
  op.obj = obj;
  op.order = order;
  op.value = bits;
  Impl::tl_impl->schedule_point(Impl::tl_tid, op);
}

std::uint64_t Scheduler::atomic_rmw(const void* obj, RmwKind rmw,
                                    std::uint64_t operand,
                                    std::memory_order order,
                                    std::uint64_t fallback_bits) {
  if (!in_model_thread()) return fallback_bits;
  Impl* im = Impl::tl_impl;
  Op op;
  op.kind = OpKind::kAtomicRmw;
  op.obj = obj;
  op.order = order;
  op.value = operand;
  op.rmw = rmw;
  im->schedule_point(Impl::tl_tid, op);
  return im->threads[static_cast<std::size_t>(Impl::tl_tid)].result;
}

void Scheduler::fence(std::memory_order order) {
  if (!in_model_thread()) {
    std::atomic_thread_fence(order);
    return;
  }
  Op op;
  op.kind = OpKind::kFence;
  op.order = order;
  Impl::tl_impl->schedule_point(Impl::tl_tid, op);
}

void Scheduler::mutex_create(const void* obj) {
  if (!in_model_thread()) return;
  Impl* im = Impl::tl_impl;
  std::lock_guard<std::mutex> lk(im->mu);
  im->destroyed.erase(obj);
  im->mutexes[obj] = MutexObj{};
}

void Scheduler::mutex_lock(const void* obj) {
  if (!in_model_thread()) return;
  Op op;
  op.kind = OpKind::kMutexLock;
  op.obj = obj;
  Impl::tl_impl->schedule_point(Impl::tl_tid, op);
}

void Scheduler::mutex_unlock(const void* obj) {
  if (!in_model_thread()) return;
  Op op;
  op.kind = OpKind::kMutexUnlock;
  op.obj = obj;
  Impl::tl_impl->schedule_point(Impl::tl_tid, op);
}

void Scheduler::cv_create(const void* obj) {
  if (!in_model_thread()) return;
  Impl* im = Impl::tl_impl;
  std::lock_guard<std::mutex> lk(im->mu);
  im->destroyed.erase(obj);
  im->cvs[obj] = CvObj{};
}

void Scheduler::cv_wait(const void* cv, const void* mutex) {
  if (!in_model_thread()) return;
  Op op;
  op.kind = OpKind::kCondWait;
  op.obj = cv;
  op.obj2 = mutex;
  Impl::tl_impl->schedule_point(Impl::tl_tid, op);
}

void Scheduler::cv_notify(const void* cv, bool all) {
  if (!in_model_thread()) return;
  Op op;
  op.kind = OpKind::kCondNotify;
  op.obj = cv;
  op.value = all ? 1 : 0;
  Impl::tl_impl->schedule_point(Impl::tl_tid, op);
}

void Scheduler::race_read(const void* addr) {
  if (!in_model_thread()) return;
  Op op;
  op.kind = OpKind::kRaceRead;
  op.obj = addr;
  Impl::tl_impl->schedule_point(Impl::tl_tid, op);
}

void Scheduler::race_write(const void* addr) {
  if (!in_model_thread()) return;
  Op op;
  op.kind = OpKind::kRaceWrite;
  op.obj = addr;
  Impl::tl_impl->schedule_point(Impl::tl_tid, op);
}

void Scheduler::yield() {
  if (!in_model_thread()) {
    std::this_thread::yield();
    return;
  }
  Op op;
  op.kind = OpKind::kYield;
  Impl::tl_impl->schedule_point(Impl::tl_tid, op);
}

void Scheduler::object_destroy(const void* obj) {
  if (!in_model_thread()) return;
  Op op;
  op.kind = OpKind::kDestroy;
  op.obj = obj;
  Impl::tl_impl->schedule_point(Impl::tl_tid, op);
}

int Scheduler::spawn_thread(std::function<void()> fn) {
  if (Impl::tl_impl != nullptr && Impl::tl_unwinding) {
    // Free-run teardown: run the body inline (its facade ops are no-ops
    // anyway) so the spawner can continue to completion; -2 marks "already
    // done" for a later join.
    fn();
    return -2;
  }
  if (!in_model_thread()) {
    throw std::logic_error("mc::ModelSync::Thread spawned outside a scenario");
  }
  Impl* im = Impl::tl_impl;
  const int parent = Impl::tl_tid;
  std::unique_lock<std::mutex> lk(im->mu);
  const int tid = im->alloc_thread(std::move(fn));
  // Thread creation synchronizes-with the start of the new thread.
  im->threads[static_cast<std::size_t>(tid)].clock.join(
      im->threads[static_cast<std::size_t>(parent)].clock);
  im->threads[static_cast<std::size_t>(tid)].view =
      im->threads[static_cast<std::size_t>(parent)].view;
  im->tick(parent);
  im->launch(tid);
  ++im->live_bodies;
  im->cv.notify_all();
  // Exploration must be deterministic: block until the child has parked at
  // its kThreadStart schedule point. Otherwise the controller's next
  // decision sees the child as an option only when the OS happened to run
  // it first — a timing-dependent tree shape (and a spurious MC004 when the
  // not-yet-parked child was the only enabled thread).
  im->cv.wait(lk, [&] {
    return im->threads[static_cast<std::size_t>(tid)].has_pending ||
           im->aborting;
  });
  return tid;
}

void Scheduler::join_thread(int thread_id) {
  if (thread_id < 0) return;  // nothing spawned, or inline free-run body
  Impl* im = Impl::tl_impl;
  if (im != nullptr && Impl::tl_unwinding) {
    // Free-run teardown: a join must still be real — the joiner may destroy
    // memory (rings, worker records) the target's body is touching. Wait
    // for the target's OS-level body to return, without any scheduling.
    std::unique_lock<std::mutex> lk(im->mu);
    im->cv.wait(lk, [&] {
      return im->threads[static_cast<std::size_t>(thread_id)].body_returned;
    });
    return;
  }
  if (!in_model_thread()) return;
  Op op;
  op.kind = OpKind::kThreadJoin;
  op.value = static_cast<std::uint64_t>(thread_id);
  im->schedule_point(Impl::tl_tid, op);
}

void Scheduler::fail(const char* code, const char* message) {
  if (Impl::tl_impl != nullptr && Impl::tl_unwinding) {
    // Free-run assertions fire on garbage values by design; the AbortRun is
    // swallowed by the thread wrapper.
    throw AbortRun{};
  }
  if (!in_model_thread()) {
    throw std::runtime_error(std::string(code) + ": " + message);
  }
  Impl* im = Impl::tl_impl;
  const int tid = Impl::tl_tid;
  {
    std::unique_lock<std::mutex> lk(im->mu);
    if (!im->aborting) {
      ModelThread& t = im->threads[static_cast<std::size_t>(tid)];
      t.fail_code = code;
      t.pending = Op{};
      t.pending.kind = OpKind::kAssertFail;
      t.pending.what = message;
      t.has_pending = true;
      im->active = -1;
      im->cv.notify_all();
      im->wait_for_grant(lk, tid);  // never granted: controller raises, aborts
    }
  }
  // require() call sites are ordinary (non-noexcept) scenario code, so the
  // [[noreturn]] contract is kept by unwinding rather than free-running.
  Impl::tl_unwinding = true;
  throw AbortRun{};
}

// ---------------------------------------------------------------------------
// Explorer.

struct Explorer::State {
  Scheduler::Impl impl;
};

Explorer::Explorer(ExploreOptions options)
    : options_(std::move(options)), state_(std::make_unique<State>()) {}

Explorer::~Explorer() = default;

ExploreResult Explorer::explore(const std::function<void()>& scenario) {
  Scheduler::Impl& im = state_->impl;
  im.opts = options_;
  im.stack.clear();
  im.executions = 0;
  im.transitions = 0;
  im.bug.reset();

  ExploreResult res;
  std::uint64_t runs = 0;
  for (;;) {
    if (runs >= options_.max_executions) {
      res.hit_execution_bound = true;
      break;
    }
    im.run_once(scenario);
    ++runs;
    if (im.bug.has_value()) break;
    if (!im.advance_stack()) break;  // space exhausted
  }
  res.executions = im.executions;
  res.transitions = im.transitions;
  res.bug = im.bug;
  res.exhausted = !res.hit_execution_bound && !im.bug.has_value();
  return res;
}

ExploreResult Explorer::replay(const std::function<void()>& scenario,
                               const std::vector<std::size_t>& schedule) {
  const ExploreOptions saved = options_;
  options_.replay = schedule;
  options_.max_executions = 1;
  ExploreResult res = explore(scenario);
  options_ = saved;
  res.hit_execution_bound = false;  // a replay is one run by design
  return res;
}

}  // namespace dpisvc::mc
