// Central scheduler of the dpisvc_mc model checker (DESIGN.md §7).
//
// A loom/CDSChecker-style *stateless* explorer: a scenario (arbitrary code
// over the mc::ModelSync facade) is executed many times, each time under a
// different thread interleaving, until the schedule space — bounded by the
// options below — is exhausted or a bug is found. One OS thread is leased
// per model thread, but exactly one ever runs at a time: every facade
// operation is a *schedule point* where the running thread parks and the
// controller picks who moves next. Between two schedule points a model
// thread executes plain deterministic code, so replaying the recorded choice
// sequence reproduces an execution exactly — the failing schedule printed
// with a diagnostic is directly replayable (Explorer::replay).
//
// Exploration is an iterative DFS over the per-run choice sequence:
//
//   * thread choices  — which runnable thread performs its pending operation,
//     pruned by *sleep sets* (a thread whose pending op commutes with every
//     op explored from this state is not re-explored; Godefroid's algorithm,
//     with a conservative dependence relation) and optionally by a
//     *preemption bound* (CHESS-style: at most N context switches away from a
//     still-runnable thread), the fallback that keeps larger scenarios
//     tractable;
//   * value choices   — which store a non-seq_cst atomic load reads. Each
//     location keeps a bounded history of stores; a load may read any store
//     not yet known to the loading thread (per-location timestamp views,
//     propagated only by release→acquire pairs, mutexes, thread create/join
//     and seq_cst fences), so a wrong memory_order shows up as a stale read
//     or as a missing happens-before edge even though the scheduler itself
//     serializes the threads;
//   * waiter choices  — which waiter a notify_one wakes.
//
// Detectors, each with a stable diagnostic code:
//
//   MC001 scenario assertion failed (mc::require)
//   MC002 data race: conflicting non-atomic accesses (race_read/race_write)
//         not ordered by happens-before (vector clocks; acquire loads join
//         the release store's clock, relaxed accesses join nothing)
//   MC003 use-after-destroy: an operation on a Mutex/CondVar/Atomic whose
//         destructor already ran (the latch-destruction class of bug)
//   MC004 deadlock: live threads, none runnable (lost wakeups surface here —
//         modeled cv waits never time out, so a load-bearing timed backstop
//         is a deadlock by definition)
//   MC005 step limit exceeded (livelock guard)
//   MC006 lock misuse: non-owner unlock, recursive lock, wait without lock
//   MC007 uncaught exception escaping a model thread
//
// Determinism contract: scenario code between schedule points must be
// deterministic (no branching on wall-clock time or real randomness);
// recording timestamps is fine, branching on them is not.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace dpisvc::mc {

// ---------------------------------------------------------------------------
// Public result types

struct Diagnostic {
  std::string code;     ///< stable machine code, MC001..MC007
  std::string message;  ///< human description of the violation
  /// The failing interleaving, one line per executed transition.
  std::vector<std::string> schedule_text;
  /// Replayable choice sequence: pass to Explorer::replay to reproduce.
  std::vector<std::size_t> schedule;
};

struct ExploreOptions {
  /// <0: unlimited (exhaustive). >=0: CHESS-style bound on the number of
  /// context switches away from a thread that could have kept running.
  int max_preemptions = -1;
  /// Hard cap on executions; hitting it clears `exhausted`.
  std::uint64_t max_executions = 1u << 20;
  /// Per-execution transition cap (livelock guard, MC005).
  std::uint64_t max_steps = 50000;
  /// Per-thread budget of *stale* (non-latest) reads per execution; bounds
  /// the value-choice blowup of relaxed spin loops, like loom's spurious
  /// budget. The latest store is always readable.
  int stale_read_budget = 3;
  /// Bounded per-location store history (older stores age out of the
  /// readable set).
  std::size_t max_store_history = 6;
  /// Forced choice prefix (replay mode); exploration continues past it.
  std::vector<std::size_t> replay;
};

struct ExploreResult {
  std::uint64_t executions = 0;   ///< complete interleavings executed
  std::uint64_t transitions = 0;  ///< total schedule points executed
  bool exhausted = false;         ///< whole in-bound space explored
  bool hit_execution_bound = false;
  std::optional<Diagnostic> bug;

  bool ok() const { return !bug.has_value(); }
};

// ---------------------------------------------------------------------------
// Internal operation descriptors (filled in by the ModelSync facade)

enum class OpKind : std::uint8_t {
  kThreadStart,
  kThreadExit,
  kThreadJoin,
  kAtomicLoad,
  kAtomicStore,
  kAtomicRmw,
  kFence,
  kMutexLock,
  kMutexUnlock,
  kCondWait,    // atomically: unlock + enter waiter set
  kCondNotify,  // value = 1 for notify_all, 0 for notify_one
  kRaceRead,
  kRaceWrite,
  kYield,
  kDestroy,
  kAssertFail,
};

enum class RmwKind : std::uint8_t { kNone, kAdd, kSub, kExchange };

struct Op {
  OpKind kind = OpKind::kYield;
  const void* obj = nullptr;
  std::memory_order order = std::memory_order_seq_cst;
  std::uint64_t value = 0;  // store value / rmw operand / join target / notify_all flag
  RmwKind rmw = RmwKind::kNone;
  const void* obj2 = nullptr;   // cv wait: the mutex
  const char* what = nullptr;   // assert message
};

/// Thrown inside model threads to unwind them when a run aborts. Never
/// escapes the thread wrapper.
struct AbortRun {};

class Explorer;

// ---------------------------------------------------------------------------
// Scheduler: per-run state + the facade entry points. Created and driven by
// Explorer; facade types reach it through the active-run thread-local.

class Scheduler {
 public:
  // ---- facade entry points (called from model threads) ----
  static bool in_model_thread() noexcept;

  static std::uint64_t atomic_load(const void* obj, std::memory_order order,
                                   std::uint64_t fallback_bits);
  static void atomic_store(const void* obj, std::uint64_t bits,
                           std::memory_order order);
  static std::uint64_t atomic_rmw(const void* obj, RmwKind rmw,
                                  std::uint64_t operand,
                                  std::memory_order order,
                                  std::uint64_t fallback_bits);
  static void fence(std::memory_order order);
  static void mutex_create(const void* obj);
  static void mutex_lock(const void* obj);
  static void mutex_unlock(const void* obj);
  static void cv_create(const void* obj);
  static void cv_wait(const void* cv, const void* mutex);
  static void cv_notify(const void* cv, bool all);
  static void race_read(const void* addr);
  static void race_write(const void* addr);
  static void yield();
  static void object_destroy(const void* obj);
  static int spawn_thread(std::function<void()> fn);
  static void join_thread(int thread_id);
  [[noreturn]] static void fail(const char* code, const char* message);
  static void require(bool cond, const char* message) {
    if (!cond) fail("MC001", message);
  }

  /// Implementation detail shared with Explorer::State; not for user code.
  struct Impl;

 private:
  friend class Explorer;
  Scheduler() = default;
};

// ---------------------------------------------------------------------------
// Explorer: owns the OS-thread pool and the DFS stack, runs scenarios.

class Explorer {
 public:
  explicit Explorer(ExploreOptions options = {});
  ~Explorer();

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// Explores `scenario` (executed as model thread 0) until the in-bound
  /// schedule space is exhausted, a bug is found, or a cap is hit.
  ExploreResult explore(const std::function<void()>& scenario);

  /// Replays one specific choice sequence (e.g. Diagnostic::schedule) and
  /// returns after that single execution.
  ExploreResult replay(const std::function<void()>& scenario,
                       const std::vector<std::size_t>& schedule);

  const ExploreOptions& options() const noexcept { return options_; }

 private:
  ExploreOptions options_;
  struct State;
  std::unique_ptr<State> state_;
};

/// Scenario-side assertion: records MC001 with the failing schedule.
inline void require(bool cond, const char* message) {
  Scheduler::require(cond, message);
}

}  // namespace dpisvc::mc
