// Synchronization facade for the dpisvc_mc model checker (DESIGN.md §7).
//
// The lock-free data-path primitives (`common/spsc_ring`, the scan-pool
// park/wake protocol, the ingest batch pending/lease counters, the obs
// counters) are templated over a *sync policy* so that exactly one source of
// truth exists for each algorithm:
//
//   * `mc::RealSync` (this header, the default everywhere) aliases the std /
//     dpisvc primitives directly. Every member is a type alias or an empty
//     inline function, so a `SpscRing<T>` or `ScanPool` compiled against
//     RealSync is byte-for-byte the same code as before the facade existed —
//     production builds pay nothing and never link the checker.
//
//   * `mc::ModelSync` (mc/model_sync.hpp, only in -DDPISVC_MODEL_CHECK
//     targets) routes every atomic access, mutex operation, condition-variable
//     wait/notify, thread spawn/join, yield, and annotated non-atomic access
//     through the central mc::Scheduler, which explores thread interleavings
//     exhaustively (mc/scheduler.hpp). Because the production classes are
//     instantiated over ModelSync, the checker executes the *shipped*
//     algorithms — not hand-copied models that can drift.
//
// Policy surface a sync-templated class may use:
//
//   Sync::Atomic<T>    std::atomic<T>-shaped (load/store/fetch_add/fetch_sub/
//                      exchange with explicit std::memory_order arguments)
//   Sync::Mutex        dpisvc::Mutex-shaped, capability-annotated
//   Sync::MutexLock    scoped lock over Sync::Mutex
//   Sync::CondVar      dpisvc::CondVar-shaped (wait/wait_for/notify_*);
//                      under the model, wait_for never times out — a timed
//                      backstop that turns out to be load-bearing therefore
//                      shows up as a modeled deadlock, not silent slowness
//   Sync::Thread       std::thread-shaped (joinable/join, movable)
//   Sync::yield()      spin-loop politeness hint; the model scheduler uses it
//                      as its fairness signal, so spin loops must call it
//   Sync::fence(o)     std::atomic_thread_fence
//   Sync::race_read(p) / Sync::race_write(p)
//                      annotate a *non-atomic* access to shared location `p`
//                      (loom's UnsafeCell idea): no-ops here, happens-before
//                      race detection under the model
#pragma once

#include <atomic>
#include <thread>

#include "common/thread_safety.hpp"

namespace dpisvc::mc {

/// The production sync policy: plain std / dpisvc primitives, zero overhead.
struct RealSync {
  template <typename T>
  using Atomic = std::atomic<T>;
  using Mutex = dpisvc::Mutex;
  using MutexLock = dpisvc::MutexLock;
  using CondVar = dpisvc::CondVar;
  using Thread = std::thread;

  static void yield() { std::this_thread::yield(); }
  static void fence(std::memory_order order) {
    std::atomic_thread_fence(order);
  }
  static void race_read(const void* /*addr*/) {}
  static void race_write(const void* /*addr*/) {}
};

}  // namespace dpisvc::mc
