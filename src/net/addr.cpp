#include "net/addr.hpp"

#include <cstdio>
#include <stdexcept>

namespace dpisvc::net {

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value >> 24) & 0xFF,
                (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

Ipv4Addr Ipv4Addr::parse(std::string_view text) {
  std::uint32_t parts[4];
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      throw std::invalid_argument("Ipv4Addr::parse: expected digit");
    }
    std::uint32_t v = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      v = v * 10 + static_cast<std::uint32_t>(text[pos] - '0');
      if (v > 255) throw std::invalid_argument("Ipv4Addr::parse: octet > 255");
      ++pos;
    }
    parts[i] = v;
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') {
        throw std::invalid_argument("Ipv4Addr::parse: expected '.'");
      }
      ++pos;
    }
  }
  if (pos != text.size()) {
    throw std::invalid_argument("Ipv4Addr::parse: trailing characters");
  }
  return Ipv4Addr(static_cast<std::uint8_t>(parts[0]),
                  static_cast<std::uint8_t>(parts[1]),
                  static_cast<std::uint8_t>(parts[2]),
                  static_cast<std::uint8_t>(parts[3]));
}

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((value >> 40) & 0xFF),
                static_cast<unsigned>((value >> 32) & 0xFF),
                static_cast<unsigned>((value >> 24) & 0xFF),
                static_cast<unsigned>((value >> 16) & 0xFF),
                static_cast<unsigned>((value >> 8) & 0xFF),
                static_cast<unsigned>(value & 0xFF));
  return buf;
}

MacAddr MacAddr::parse(std::string_view text) {
  if (text.size() != 17) {
    throw std::invalid_argument("MacAddr::parse: bad length");
  }
  std::uint64_t value = 0;
  for (int i = 0; i < 6; ++i) {
    const std::size_t at = static_cast<std::size_t>(i) * 3;
    auto nibble = [&](char c) -> std::uint64_t {
      if (c >= '0' && c <= '9') return static_cast<std::uint64_t>(c - '0');
      if (c >= 'a' && c <= 'f') return static_cast<std::uint64_t>(c - 'a' + 10);
      if (c >= 'A' && c <= 'F') return static_cast<std::uint64_t>(c - 'A' + 10);
      throw std::invalid_argument("MacAddr::parse: bad hex digit");
    };
    value = (value << 8) | (nibble(text[at]) << 4) | nibble(text[at + 1]);
    if (i < 5 && text[at + 2] != ':') {
      throw std::invalid_argument("MacAddr::parse: expected ':'");
    }
  }
  return MacAddr(value);
}

}  // namespace dpisvc::net
