// Address types for the simulated network: IPv4 and MAC-48.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dpisvc::net {

/// IPv4 address stored in host order (value 0x0A000001 == "10.0.0.1").
struct Ipv4Addr {
  std::uint32_t value = 0;

  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t v) noexcept : value(v) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | d) {}

  auto operator<=>(const Ipv4Addr&) const = default;

  std::string to_string() const;

  /// Parses dotted-quad notation; throws std::invalid_argument on error.
  static Ipv4Addr parse(std::string_view text);
};

/// MAC-48, stored in the low 48 bits.
struct MacAddr {
  std::uint64_t value = 0;

  constexpr MacAddr() = default;
  constexpr explicit MacAddr(std::uint64_t v) noexcept
      : value(v & 0xFFFFFFFFFFFFULL) {}

  auto operator<=>(const MacAddr&) const = default;

  std::string to_string() const;

  /// Parses "aa:bb:cc:dd:ee:ff"; throws std::invalid_argument on error.
  static MacAddr parse(std::string_view text);
};

}  // namespace dpisvc::net
