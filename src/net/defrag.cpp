#include "net/defrag.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/invariant.hpp"

namespace dpisvc::net {

IpDefragmenter::IpDefragmenter(const DefragConfig& config) : config_(config) {}

IpDefragmenter::Key IpDefragmenter::key_of(const Packet& packet) noexcept {
  return Key{packet.tuple.src_ip.value, packet.tuple.dst_ip.value,
             static_cast<std::uint8_t>(packet.tuple.proto), packet.ip_id};
}

void IpDefragmenter::erase(LruList::iterator it) {
  datagrams_.erase(it->key);
  lru_.erase(it);
}

void IpDefragmenter::evict_idle() {
  // Oldest entries sit at the back; stop at the first fresh one.
  while (!lru_.empty() &&
         tick_ - lru_.back().last_feed > config_.idle_timeout_feeds) {
    ++stats_.evicted_incomplete;
    erase(std::prev(lru_.end()));
  }
}

IpDefragmenter::Datagram& IpDefragmenter::datagram_for(const Packet& packet) {
  const Key key = key_of(packet);
  auto it = datagrams_.find(key);
  if (it != datagrams_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh: move to front
    it->second->last_feed = tick_;
    return *it->second;
  }
  if (config_.max_datagrams > 0 && datagrams_.size() >= config_.max_datagrams) {
    ++stats_.evicted_incomplete;
    erase(std::prev(lru_.end()));
  }
  lru_.push_front(Datagram{});
  Datagram& dg = lru_.front();
  dg.key = key;
  dg.last_feed = tick_;
  datagrams_.emplace(key, lru_.begin());
  return dg;
}

void IpDefragmenter::tick() {
  ++tick_;
  evict_idle();
}

std::optional<Packet> IpDefragmenter::feed(const Packet& packet) {
  tick();
  if (!packet.is_fragment()) return packet;

  ++stats_.fragments;
  const std::size_t offset = static_cast<std::size_t>(packet.frag_offset) * 8;
  const std::size_t len = packet.payload.size();
  Datagram& dg = datagram_for(packet);

  // Bounds checks first: a fragment that lies about the datagram's shape
  // (teardrop, oversize, inconsistent totals) poisons the datagram whatever
  // the overlap policy says — these are not ambiguities, they are malformed.
  bool bad_bounds = false;
  if (offset + len > config_.max_datagram) bad_bounds = true;
  if (packet.more_fragments) {
    // Non-final fragments must end on an 8-byte boundary, or the next
    // fragment's offset cannot possibly abut this one.
    if (len == 0 || len % 8 != 0) bad_bounds = true;
    if (dg.have_last && offset + len > dg.total_len) bad_bounds = true;
  } else {
    if (dg.have_last && dg.total_len != offset + len) {
      bad_bounds = true;  // two last fragments disagreeing on total length
    }
    if (dg.data.size() > offset + len) {
      // A "last" fragment claiming the datagram ends before data we already
      // hold is the classic teardrop shape.
      bad_bounds = true;
    }
  }
  if (bad_bounds) {
    if (!dg.poisoned) ++stats_.rejected_bounds;
    dg.poisoned = true;
    return std::nullopt;
  }
  if (packet.more_fragments && len < config_.min_fragment) {
    if (!dg.poisoned) ++stats_.rejected_tiny;
    dg.poisoned = true;
    return std::nullopt;
  }
  if (dg.poisoned) return std::nullopt;  // absorb until idle eviction

  if (offset == 0 && !dg.have_header) {
    dg.header = packet;
    dg.have_header = true;
  }
  if (!packet.more_fragments) {
    dg.have_last = true;
    dg.total_len = offset + len;
  }

  if (offset + len > dg.data.size()) {
    dg.data.resize(offset + len, 0);
    dg.written.resize(offset + len, false);
  }
  std::uint64_t differing = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t at = offset + i;
    if (!dg.written[at]) {
      dg.data[at] = packet.payload[i];
      dg.written[at] = true;
      ++dg.written_bytes;
      continue;
    }
    if (dg.data[at] != packet.payload[i]) {
      ++differing;
      if (config_.overlap_policy == OverlapPolicy::kLastWins) {
        dg.data[at] = packet.payload[i];
      }
    }
  }
  if (differing > 0) {
    ++stats_.ambiguous_fragments;
    stats_.conflicting_bytes += differing;
    if (config_.overlap_policy == OverlapPolicy::kRejectAmbiguous) {
      dg.poisoned = true;
      return std::nullopt;
    }
  }

  if (!dg.have_last || dg.written_bytes != dg.total_len || !dg.have_header) {
    return std::nullopt;
  }
  DPISVC_ASSERT_INVARIANT(dg.data.size() == dg.total_len,
                          "assembled buffer must match the declared length");
  Packet full = std::move(dg.header);
  full.payload = std::move(dg.data);
  full.frag_offset = 0;
  full.more_fragments = false;
  ++stats_.datagrams_completed;
  erase(datagrams_.find(dg.key)->second);
  return full;
}

std::vector<Packet> fragment_packet(const Packet& packet,
                                    std::size_t mtu_payload) {
  if (mtu_payload < 8) {
    throw std::invalid_argument("fragment_packet: mtu_payload below 8");
  }
  if (packet.payload.size() <= mtu_payload) {
    Packet copy = packet;
    copy.frag_offset = 0;
    copy.more_fragments = false;
    return {std::move(copy)};
  }
  const std::size_t step = mtu_payload - mtu_payload % 8;
  if ((packet.payload.size() - 1) / 8 > 0x1FFF) {
    throw std::invalid_argument(
        "fragment_packet: payload exceeds 13-bit offset addressing");
  }
  std::vector<Packet> out;
  for (std::size_t at = 0; at < packet.payload.size(); at += step) {
    const std::size_t len = std::min(step, packet.payload.size() - at);
    Packet frag = packet;
    frag.payload.assign(
        packet.payload.begin() + static_cast<std::ptrdiff_t>(at),
        packet.payload.begin() + static_cast<std::ptrdiff_t>(at + len));
    frag.frag_offset = static_cast<std::uint16_t>(at / 8);
    frag.more_fragments = at + len < packet.payload.size();
    out.push_back(std::move(frag));
  }
  return out;
}

}  // namespace dpisvc::net
