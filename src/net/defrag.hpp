// IPv4 datagram defragmentation in front of the DPI data plane.
//
// Fragmentation is the oldest NIDS evasion: split the payload into IP
// fragments so the middlebox — if it scans fragments individually — never
// sees the pattern bytes contiguously, while the endpoint reassembles and
// does. IpDefragmenter closes that hole: fragments are buffered per
// datagram key (src, dst, proto, ip_id) and the DPI path scans only whole
// reassembled datagrams.
//
// The defragmenter is itself attackable, so every resource is bounded and
// every anomaly observable:
//  - per-datagram assembled size is capped (max_datagram): fragments whose
//    offset+length overflow it — the teardrop family — poison the datagram;
//  - non-final fragments below min_fragment bytes (tiny-fragment attacks,
//    designed to slip patterns between scan units) poison the datagram;
//  - concurrent partial datagrams are LRU-bounded (max_datagrams) and idle
//    entries are evicted after idle_timeout_feeds feed() calls without a
//    fragment, so a flood of never-completed datagrams cannot exhaust
//    memory;
//  - overlapping fragments are resolved by the same OverlapPolicy the TCP
//    reassembler uses, with conflicting bytes counted; under
//    kRejectAmbiguous a conflicting datagram never completes.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <tuple>

#include "common/bytes.hpp"
#include "net/packet.hpp"
#include "net/reassembly.hpp"

namespace dpisvc::net {

struct DefragConfig {
  /// Upper bound on one reassembled datagram's payload; fragments claiming
  /// bytes beyond it (teardrop/oversize) poison the datagram.
  std::size_t max_datagram = 64 * 1024;
  /// Concurrent partial datagrams; the least recently touched is evicted
  /// when a new one would exceed the bound.
  std::size_t max_datagrams = 4096;
  /// A partial datagram untouched for this many feed() calls is evicted
  /// (the simulation's logical clock: eviction needs no wall time).
  std::uint64_t idle_timeout_feeds = 4096;
  /// Non-final fragments smaller than this poison the datagram (tiny-
  /// fragment evasion; RFC 791 only requires 8 bytes, which is exactly what
  /// attacks exploit).
  std::size_t min_fragment = 16;
  /// Resolution for overlapping fragments with conflicting bytes.
  OverlapPolicy overlap_policy = OverlapPolicy::kFirstWins;
};

/// Monotonic defragmentation counters.
struct DefragStats {
  std::uint64_t fragments = 0;             ///< fragment packets fed
  std::uint64_t datagrams_completed = 0;
  std::uint64_t rejected_tiny = 0;         ///< tiny non-final fragments
  std::uint64_t rejected_bounds = 0;       ///< teardrop/oversize/length lies
  std::uint64_t ambiguous_fragments = 0;   ///< overlaps with differing bytes
  std::uint64_t conflicting_bytes = 0;
  std::uint64_t evicted_incomplete = 0;    ///< idle/capacity evictions
};

class IpDefragmenter {
 public:
  explicit IpDefragmenter(const DefragConfig& config = {});

  IpDefragmenter(const IpDefragmenter&) = delete;
  IpDefragmenter& operator=(const IpDefragmenter&) = delete;

  /// Feeds one packet. Non-fragments come straight back. A fragment is
  /// buffered; when it completes its datagram, the reassembled packet
  /// (header fields of the offset-0 fragment, concatenated payload, frag
  /// fields cleared) is returned. Incomplete, rejected, and poisoned
  /// fragments return std::nullopt.
  std::optional<Packet> feed(const Packet& packet);

  /// Advances the logical clock (and runs idle eviction) without feeding a
  /// packet — the ingest path calls this for non-fragment traffic so partial
  /// datagrams time out against real packet arrival, not just fragments.
  void tick();

  std::size_t pending_datagrams() const noexcept { return datagrams_.size(); }
  const DefragStats& stats() const noexcept { return stats_; }

 private:
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint8_t,
                         std::uint16_t>;  // src, dst, proto, ip_id

  struct Datagram {
    Key key;
    Packet header;  ///< offset-0 fragment's metadata (tuple, tags, seq, ...)
    bool have_header = false;
    Bytes data;
    std::vector<bool> written;
    std::size_t written_bytes = 0;
    std::size_t total_len = 0;  ///< known once the MF=0 fragment arrives
    bool have_last = false;
    /// Tiny/teardrop/conflicting (under kRejectAmbiguous) datagrams are
    /// poisoned: they absorb further fragments but never complete, until
    /// idle eviction reclaims them — fail closed, not fail open.
    bool poisoned = false;
    std::uint64_t last_feed = 0;
  };
  using LruList = std::list<Datagram>;

  static Key key_of(const Packet& packet) noexcept;
  Datagram& datagram_for(const Packet& packet);
  void evict_idle();
  void erase(LruList::iterator it);

  DefragConfig config_;
  LruList lru_;  ///< front = most recently touched
  std::map<Key, LruList::iterator> datagrams_;
  DefragStats stats_;
  std::uint64_t tick_ = 0;
};

/// Splits a packet into IPv4-style fragments whose payloads are at most
/// `mtu_payload` bytes (rounded down to a multiple of 8 for every fragment
/// but the last, as the offset field requires). A packet that already fits
/// comes back as a single unfragmented copy. Throws std::invalid_argument
/// when mtu_payload < 8 or the payload cannot be addressed by the 13-bit
/// offset field.
std::vector<Packet> fragment_packet(const Packet& packet,
                                    std::size_t mtu_payload);

}  // namespace dpisvc::net
