#include "net/flow.hpp"

#include <sstream>

#include "common/bytes.hpp"
#include "common/checksum.hpp"

namespace dpisvc::net {

FiveTuple FiveTuple::canonical() const noexcept {
  // Order endpoints so (src, dst) <= (dst, src) lexicographically.
  if (src_ip.value < dst_ip.value ||
      (src_ip.value == dst_ip.value && src_port <= dst_port)) {
    return *this;
  }
  FiveTuple flipped = *this;
  std::swap(flipped.src_ip, flipped.dst_ip);
  std::swap(flipped.src_port, flipped.dst_port);
  return flipped;
}

std::uint64_t FiveTuple::hash() const noexcept {
  std::uint8_t buf[13];
  std::uint32_t s = src_ip.value;
  std::uint32_t d = dst_ip.value;
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<std::uint8_t>(s >> (24 - 8 * i));
    buf[4 + i] = static_cast<std::uint8_t>(d >> (24 - 8 * i));
  }
  buf[8] = static_cast<std::uint8_t>(src_port >> 8);
  buf[9] = static_cast<std::uint8_t>(src_port & 0xFF);
  buf[10] = static_cast<std::uint8_t>(dst_port >> 8);
  buf[11] = static_cast<std::uint8_t>(dst_port & 0xFF);
  buf[12] = static_cast<std::uint8_t>(proto);
  return fnv1a(BytesView(buf, sizeof buf));
}

std::string FiveTuple::to_string() const {
  std::ostringstream os;
  os << src_ip.to_string() << ':' << src_port << "->" << dst_ip.to_string()
     << ':' << dst_port << '/' << static_cast<int>(proto);
  return os.str();
}

}  // namespace dpisvc::net
