// Flow identification: the 5-tuple key and hashing for flow tables.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/addr.hpp"

namespace dpisvc::net {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kTcp;

  auto operator<=>(const FiveTuple&) const = default;

  /// Direction-insensitive key: the same value for both directions of a
  /// connection, so request and response packets share one DPI flow state.
  FiveTuple canonical() const noexcept;

  std::uint64_t hash() const noexcept;

  std::string to_string() const;
};

}  // namespace dpisvc::net

template <>
struct std::hash<dpisvc::net::FiveTuple> {
  std::size_t operator()(const dpisvc::net::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(t.hash());
  }
};
