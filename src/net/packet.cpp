#include "net/packet.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/checksum.hpp"

namespace dpisvc::net {

namespace {

// Ethertype markers for the tag stack. VLAN/MPLS tag payloads are widened to
// a uniform 4-byte value field (a simulation simplification; real TCI is
// 2 bytes). 0x88B5 is the IEEE "local experimental" ethertype, used for the
// TSA's policy-chain tag.
constexpr std::uint16_t kEthVlan = 0x8100;
constexpr std::uint16_t kEthMpls = 0x8847;
constexpr std::uint16_t kEthPolicy = 0x88B5;
constexpr std::uint16_t kEthIpv4 = 0x0800;

// IP flags/fragment word: the reserved bit signals the presence of the
// NSH-like service header between L4 and payload; DF is set on unfragmented
// packets (matching the pre-fragmentation wire format byte for byte); MF and
// the 13-bit fragment offset carry IPv4 fragmentation.
constexpr std::uint16_t kIpFlagsDf = 0x4000;
constexpr std::uint16_t kIpFlagNsh = 0x8000;
constexpr std::uint16_t kIpFlagMf = 0x2000;
constexpr std::uint16_t kIpFragOffsetMask = 0x1FFF;

std::uint16_t tag_ethertype(TagKind kind) {
  switch (kind) {
    case TagKind::kVlan:
      return kEthVlan;
    case TagKind::kMpls:
      return kEthMpls;
    case TagKind::kPolicyChain:
      return kEthPolicy;
  }
  throw std::invalid_argument("unknown tag kind");
}

std::optional<TagKind> kind_of_ethertype(std::uint16_t ethertype) {
  switch (ethertype) {
    case kEthVlan:
      return TagKind::kVlan;
    case kEthMpls:
      return TagKind::kMpls;
    case kEthPolicy:
      return TagKind::kPolicyChain;
    default:
      return std::nullopt;
  }
}

}  // namespace

std::optional<std::uint32_t> Packet::find_tag(TagKind kind) const noexcept {
  for (const Tag& tag : tags) {
    if (tag.kind == kind) return tag.value;
  }
  return std::nullopt;
}

void Packet::push_tag(TagKind kind, std::uint32_t value) {
  tags.insert(tags.begin(), Tag{kind, value});
}

bool Packet::pop_tag(TagKind kind) noexcept {
  auto it = std::find_if(tags.begin(), tags.end(),
                         [kind](const Tag& t) { return t.kind == kind; });
  if (it == tags.end()) return false;
  tags.erase(it);
  return true;
}

std::size_t Packet::wire_size() const noexcept {
  std::size_t size = 14 + tags.size() * 6 + 20;
  size += tuple.proto == IpProto::kUdp ? 8 : 20;
  if (service_header) {
    size += 11 + service_header->metadata.size();
  }
  return size + payload.size();
}

Bytes Packet::to_wire() const {
  Bytes out;
  out.reserve(wire_size());

  // Ethernet.
  put_be(out, dst_mac.value, 6);
  put_be(out, src_mac.value, 6);
  for (const Tag& tag : tags) {
    put_be(out, tag_ethertype(tag.kind), 2);
    put_be(out, tag.value, 4);
  }
  put_be(out, kEthIpv4, 2);

  // IPv4 (20-byte header, no options).
  const std::size_t ip_start = out.size();
  const bool udp = tuple.proto == IpProto::kUdp;
  std::size_t l4_size = udp ? 8u : 20u;
  std::size_t nsh_size =
      service_header ? 11u + service_header->metadata.size() : 0u;
  const std::size_t total_len = 20 + l4_size + nsh_size + payload.size();
  if (total_len > 0xFFFF) {
    throw std::invalid_argument("Packet::to_wire: payload too large");
  }
  if (frag_offset > kIpFragOffsetMask) {
    throw std::invalid_argument("Packet::to_wire: fragment offset too large");
  }
  std::uint16_t frag_word = service_header ? kIpFlagNsh : 0;
  if (is_fragment()) {
    frag_word |= (more_fragments ? kIpFlagMf : 0) | frag_offset;
  } else {
    frag_word |= kIpFlagsDf;
  }
  out.push_back(0x45);
  out.push_back(static_cast<std::uint8_t>(ecn & 0x3));  // TOS: DSCP 0 + ECN
  put_be(out, total_len, 2);
  put_be(out, ip_id, 2);
  put_be(out, frag_word, 2);
  out.push_back(ttl);
  out.push_back(static_cast<std::uint8_t>(tuple.proto));
  const std::size_t checksum_at = out.size();
  put_be(out, 0, 2);  // checksum placeholder
  put_be(out, tuple.src_ip.value, 4);
  put_be(out, tuple.dst_ip.value, 4);
  const std::uint16_t checksum = static_cast<std::uint16_t>(
      ~internet_checksum(BytesView(out.data() + ip_start, 20)));
  out[checksum_at] = static_cast<std::uint8_t>(checksum >> 8);
  out[checksum_at + 1] = static_cast<std::uint8_t>(checksum & 0xFF);

  // L4.
  if (udp) {
    put_be(out, tuple.src_port, 2);
    put_be(out, tuple.dst_port, 2);
    put_be(out, 8 + nsh_size + payload.size(), 2);
    put_be(out, 0, 2);  // checksum unused in the simulation
  } else {
    put_be(out, tuple.src_port, 2);
    put_be(out, tuple.dst_port, 2);
    put_be(out, tcp_seq, 4);
    put_be(out, 0, 4);  // ack
    out.push_back(0x50);  // data offset 5 words
    out.push_back(tcp_flags);
    put_be(out, 0xFFFF, 2);  // window
    put_be(out, 0, 2);       // checksum unused in the simulation
    put_be(out, 0, 2);       // urgent
  }

  // NSH-like service header.
  if (service_header) {
    put_be(out, service_header->service_path_id, 4);
    out.push_back(service_header->service_index);
    if (service_header->metadata.size() > 0xFFFF) {
      throw std::invalid_argument("Packet::to_wire: metadata too large");
    }
    put_be(out, service_header->metadata.size(), 2);
    // 4-byte guard so corrupted offsets fail loudly in from_wire.
    put_be(out, 0x4E534800u, 4);
    out.insert(out.end(), service_header->metadata.begin(),
               service_header->metadata.end());
  }

  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Packet Packet::from_wire(BytesView frame) {
  Packet p;
  std::size_t at = 0;
  auto need = [&](std::size_t n) {
    if (at + n > frame.size()) {
      throw std::invalid_argument("Packet::from_wire: truncated frame");
    }
  };

  need(14);
  p.dst_mac = MacAddr(get_be(frame, at, 6));
  p.src_mac = MacAddr(get_be(frame, at + 6, 6));
  at += 12;
  std::uint16_t ethertype = static_cast<std::uint16_t>(get_be(frame, at, 2));
  at += 2;
  while (auto kind = kind_of_ethertype(ethertype)) {
    need(6);
    p.tags.push_back(
        Tag{*kind, static_cast<std::uint32_t>(get_be(frame, at, 4))});
    at += 4;
    ethertype = static_cast<std::uint16_t>(get_be(frame, at, 2));
    at += 2;
  }
  if (ethertype != kEthIpv4) {
    throw std::invalid_argument("Packet::from_wire: unknown ethertype");
  }

  need(20);
  const std::size_t ip_start = at;
  if (frame[at] != 0x45) {
    throw std::invalid_argument("Packet::from_wire: unsupported IP header");
  }
  p.ecn = frame[at + 1] & 0x3;
  const auto total_len = static_cast<std::size_t>(get_be(frame, at + 2, 2));
  p.ip_id = static_cast<std::uint16_t>(get_be(frame, at + 4, 2));
  const auto ip_flags = static_cast<std::uint16_t>(get_be(frame, at + 6, 2));
  p.frag_offset = static_cast<std::uint16_t>(ip_flags & kIpFragOffsetMask);
  p.more_fragments = (ip_flags & kIpFlagMf) != 0;
  if ((ip_flags & kIpFlagsDf) != 0 && p.is_fragment()) {
    throw std::invalid_argument("Packet::from_wire: DF set on a fragment");
  }
  p.ttl = frame[at + 8];
  const std::uint8_t proto = frame[at + 9];
  if (internet_checksum(BytesView(frame.data() + ip_start, 20)) != 0xFFFF) {
    throw std::invalid_argument("Packet::from_wire: IP checksum mismatch");
  }
  p.tuple.src_ip = Ipv4Addr(static_cast<std::uint32_t>(get_be(frame, at + 12, 4)));
  p.tuple.dst_ip = Ipv4Addr(static_cast<std::uint32_t>(get_be(frame, at + 16, 4)));
  at += 20;
  if (ip_start + total_len != frame.size()) {
    throw std::invalid_argument("Packet::from_wire: length mismatch");
  }

  switch (proto) {
    case static_cast<std::uint8_t>(IpProto::kTcp): {
      p.tuple.proto = IpProto::kTcp;
      need(20);
      p.tuple.src_port = static_cast<std::uint16_t>(get_be(frame, at, 2));
      p.tuple.dst_port = static_cast<std::uint16_t>(get_be(frame, at + 2, 2));
      p.tcp_seq = static_cast<std::uint32_t>(get_be(frame, at + 4, 4));
      p.tcp_flags = frame[at + 13];
      at += 20;
      break;
    }
    case static_cast<std::uint8_t>(IpProto::kUdp): {
      p.tuple.proto = IpProto::kUdp;
      need(8);
      p.tuple.src_port = static_cast<std::uint16_t>(get_be(frame, at, 2));
      p.tuple.dst_port = static_cast<std::uint16_t>(get_be(frame, at + 2, 2));
      at += 8;
      break;
    }
    default:
      throw std::invalid_argument("Packet::from_wire: unsupported protocol");
  }

  if (ip_flags & kIpFlagNsh) {
    need(11);
    ServiceHeader sh;
    sh.service_path_id = static_cast<std::uint32_t>(get_be(frame, at, 4));
    sh.service_index = frame[at + 4];
    const auto meta_len = static_cast<std::size_t>(get_be(frame, at + 5, 2));
    if (get_be(frame, at + 7, 4) != 0x4E534800u) {
      throw std::invalid_argument("Packet::from_wire: bad NSH guard");
    }
    at += 11;
    need(meta_len);
    sh.metadata.assign(frame.begin() + static_cast<std::ptrdiff_t>(at),
                       frame.begin() + static_cast<std::ptrdiff_t>(at + meta_len));
    at += meta_len;
    p.service_header = std::move(sh);
  }

  p.payload.assign(frame.begin() + static_cast<std::ptrdiff_t>(at),
                   frame.end());
  return p;
}

std::string Packet::summary() const {
  std::ostringstream os;
  os << tuple.to_string() << " len=" << payload.size();
  if (is_fragment()) {
    os << " frag(off=" << frag_offset * 8 << (more_fragments ? ",MF" : "")
       << ")";
  }
  if (auto chain = find_tag(TagKind::kPolicyChain)) {
    os << " chain=" << *chain;
  }
  if (has_match_mark()) os << " [match]";
  if (service_header) {
    os << " nsh(" << service_header->metadata.size() << "B)";
  }
  return os.str();
}

}  // namespace dpisvc::net
