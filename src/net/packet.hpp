// Packet model for the simulated SDN fabric.
//
// A packet is a structured object carrying:
//  - Ethernet addressing;
//  - a stack of steering tags (VLAN/MPLS-style). The Traffic Steering
//    Application pushes the policy-chain tag here (§4.1: "the TSA pushes
//    some VLAN or MPLS tag in front of the packet to easily steer it");
//  - IPv4/TCP|UDP headers (the 5-tuple plus TTL, ECN, sequence number);
//  - an optional NSH-like service header with opaque metadata — one of the
//    three result-passing mechanisms of §4.2;
//  - the L7 payload.
//
// The ECN field doubles as the paper's "has matches" mark (§6.1: "we use the
// IP ECN field for this purpose").
//
// to_wire()/from_wire() provide a byte-exact encoding: Ethernet | tags |
// IPv4 | TCP/UDP | [NSH] | payload, so tests can assert the representation
// round-trips and middleboxes can be fed serialized frames.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "net/addr.hpp"
#include "net/flow.hpp"

namespace dpisvc::net {

enum class TagKind : std::uint8_t {
  kVlan = 0,        ///< 12-bit VLAN id semantics.
  kMpls = 1,        ///< 20-bit MPLS label semantics.
  kPolicyChain = 2, ///< Policy-chain id pushed by the TSA (§4.1).
};

struct Tag {
  TagKind kind = TagKind::kVlan;
  std::uint32_t value = 0;

  auto operator<=>(const Tag&) const = default;
};

/// NSH-like service header (RFC 8300-inspired, simplified): a service path
/// identifier plus opaque metadata bytes. Used to carry match results in
/// front of the payload (§4.2, option 1).
struct ServiceHeader {
  std::uint32_t service_path_id = 0;
  std::uint8_t service_index = 0;
  Bytes metadata;

  bool operator==(const ServiceHeader&) const = default;
};

struct Packet {
  // L2
  MacAddr src_mac;
  MacAddr dst_mac;
  std::vector<Tag> tags;  ///< outermost tag first

  // L3/L4
  FiveTuple tuple;
  std::uint8_t ttl = 64;
  std::uint8_t ecn = 0;  ///< 2 bits; the DPI service sets bit0 on matches.
  std::uint16_t ip_id = 0;
  /// IPv4 fragmentation: payload offset in 8-byte units (13 bits) and the
  /// more-fragments flag. Fragments of one datagram share (src, dst, proto,
  /// ip_id) and are reassembled by net::IpDefragmenter before DPI sees the
  /// bytes. Simulation simplification: every fragment still carries the
  /// full L4 header (real offset>0 fragments would not), so the 5-tuple is
  /// always resolvable; the evasion surface modeled here is payload-level
  /// fragmentation, not header splitting.
  std::uint16_t frag_offset = 0;  ///< in 8-byte units, <= 0x1FFF
  bool more_fragments = false;
  std::uint32_t tcp_seq = 0;
  std::uint8_t tcp_flags = 0x18;  // PSH|ACK by default

  std::optional<ServiceHeader> service_header;

  Bytes payload;

  /// Returns the outermost tag of `kind`, if present.
  std::optional<std::uint32_t> find_tag(TagKind kind) const noexcept;

  /// Pushes a tag as the new outermost tag.
  void push_tag(TagKind kind, std::uint32_t value);

  /// Removes the outermost tag of `kind`; returns false if absent.
  bool pop_tag(TagKind kind) noexcept;

  bool is_fragment() const noexcept {
    return more_fragments || frag_offset != 0;
  }

  bool has_match_mark() const noexcept { return (ecn & 0x1) != 0; }
  void set_match_mark(bool on) noexcept {
    ecn = static_cast<std::uint8_t>(on ? (ecn | 0x1) : (ecn & ~0x1u));
  }

  std::size_t wire_size() const noexcept;

  /// Serializes to the wire format described in the header comment.
  Bytes to_wire() const;

  /// Parses a frame produced by to_wire(). Throws std::invalid_argument on
  /// malformed input (bad lengths, unknown ethertype, checksum mismatch).
  static Packet from_wire(BytesView frame);

  std::string summary() const;
};

}  // namespace dpisvc::net
