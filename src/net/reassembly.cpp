#include "net/reassembly.hpp"

#include "common/invariant.hpp"

namespace dpisvc::net {

#if defined(DPISVC_CHECK_INVARIANTS) && DPISVC_CHECK_INVARIANTS
namespace {
/// buffered_bytes_ must equal the sum of pending segment sizes at every
/// quiescent point, or the max_buffered memory bound is meaningless.
std::uint64_t pending_total(const std::map<std::uint32_t, Bytes>& pending) {
  std::uint64_t total = 0;
  for (const auto& [seq, bytes] : pending) total += bytes.size();
  return total;
}
}  // namespace
#endif

StreamReassembler::StreamReassembler(std::uint32_t initial_seq,
                                     const ReassemblyConfig& config)
    : config_(config), expected_(initial_seq) {}

std::size_t StreamReassembler::accept(std::uint32_t seq, BytesView data) {
  if (data.empty()) return 0;
  std::int64_t delta = seq_delta(seq, expected_);
  auto len = static_cast<std::int64_t>(data.size());

  if (delta + len <= 0) {
    // Entirely behind the contiguous frontier: retransmission.
    duplicate_bytes_ += data.size();
    return 0;
  }
  if (delta < 0) {
    // Partial overlap with already-released data: keep only the new tail
    // (first-copy-wins, as Snort's stream preprocessor does).
    duplicate_bytes_ += static_cast<std::uint64_t>(-delta);
    data = data.subspan(static_cast<std::size_t>(-delta));
    seq = expected_;
    delta = 0;
  }
  if (delta > static_cast<std::int64_t>(config_.max_gap)) {
    ++dropped_;  // Too far ahead: likely garbage or a desync attack.
    return 0;
  }

  if (delta == 0) {
    ready_.insert(ready_.end(), data.begin(), data.end());
    expected_ += static_cast<std::uint32_t>(data.size());
    drain_buffered();
    DPISVC_ASSERT_INVARIANT(buffered_bytes_ == pending_total(pending_),
                            "buffered-byte accounting must match the pending "
                            "segment map after a drain");
    return data.size();
  }

  // Out-of-order: buffer, respecting the memory bound.
  if (buffered_bytes_ + data.size() > config_.max_buffered) {
    ++dropped_;
    return 0;
  }
  auto [it, inserted] = pending_.emplace(seq, Bytes(data.begin(), data.end()));
  if (!inserted) {
    // Same starting sequence seen before: first copy wins.
    duplicate_bytes_ += data.size();
    return 0;
  }
  buffered_bytes_ += data.size();
  return data.size();
}

void StreamReassembler::drain_buffered() {
  bool progressed = true;
  while (progressed && !pending_.empty()) {
    progressed = false;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      const std::int64_t delta = seq_delta(it->first, expected_);
      const auto len = static_cast<std::int64_t>(it->second.size());
      if (delta > 0) continue;  // still a gap before this segment
      buffered_bytes_ -= it->second.size();
      if (delta + len <= 0) {
        // Fully covered by data already released meanwhile.
        duplicate_bytes_ += it->second.size();
      } else {
        const auto skip = static_cast<std::size_t>(-delta);
        duplicate_bytes_ += skip;
        ready_.insert(ready_.end(), it->second.begin() + static_cast<std::ptrdiff_t>(skip),
                      it->second.end());
        expected_ += static_cast<std::uint32_t>(it->second.size() - skip);
      }
      pending_.erase(it);
      progressed = true;
      break;  // map mutated and expected_ moved: restart the scan
    }
  }
}

Bytes StreamReassembler::pop_ready() {
  Bytes out = std::move(ready_);
  ready_.clear();
  return out;
}

FlowReassembler::FlowReassembler(const ReassemblyConfig& config)
    : config_(config) {}

std::optional<ReassembledChunk> FlowReassembler::feed(const Packet& packet) {
  if (packet.tuple.proto != IpProto::kTcp) {
    if (packet.payload.empty()) return std::nullopt;
    return ReassembledChunk{packet.tuple, packet.payload};
  }
  auto it = streams_.find(packet.tuple);
  if (it == streams_.end()) {
    it = streams_
             .emplace(packet.tuple,
                      StreamReassembler(packet.tcp_seq, config_))
             .first;
  }
  it->second.accept(packet.tcp_seq, packet.payload);
  Bytes ready = it->second.pop_ready();
  if (ready.empty()) return std::nullopt;
  return ReassembledChunk{packet.tuple, std::move(ready)};
}

bool FlowReassembler::erase(const FiveTuple& direction) {
  return streams_.erase(direction) > 0;
}

}  // namespace dpisvc::net
