#include "net/reassembly.hpp"

#include <algorithm>
#include <vector>

#include "common/invariant.hpp"

namespace dpisvc::net {

#if defined(DPISVC_CHECK_INVARIANTS) && DPISVC_CHECK_INVARIANTS
namespace {
/// buffered_bytes_ must equal the sum of pending segment sizes at every
/// quiescent point, or the max_buffered memory bound is meaningless.
std::uint64_t pending_total(const std::map<std::uint32_t, Bytes>& pending) {
  std::uint64_t total = 0;
  for (const auto& [seq, bytes] : pending) total += bytes.size();
  return total;
}
}  // namespace
#endif

const char* overlap_policy_name(OverlapPolicy policy) noexcept {
  switch (policy) {
    case OverlapPolicy::kFirstWins:
      return "first_wins";
    case OverlapPolicy::kLastWins:
      return "last_wins";
    case OverlapPolicy::kRejectAmbiguous:
      return "reject_ambiguous";
  }
  return "unknown";
}

StreamReassembler::StreamReassembler(std::uint32_t initial_seq,
                                     const ReassemblyConfig& config,
                                     ReassemblyStats* stats)
    : config_(config), expected_(initial_seq), stats_(stats) {}

void StreamReassembler::poison() {
  poisoned_ = true;
  pending_.clear();
  buffered_bytes_ = 0;
  history_.clear();
}

void StreamReassembler::note_conflict(std::uint64_t differing_bytes) {
  ++ambiguous_overlaps_;
  conflicting_bytes_ += differing_bytes;
  if (stats_ != nullptr) {
    ++stats_->ambiguous_overlaps;
    stats_->conflicting_overlap_bytes += differing_bytes;
  }
}

bool StreamReassembler::check_retransmission(std::size_t behind,
                                             BytesView data) {
  duplicate_bytes_ += data.size();
  if (stats_ != nullptr) stats_->duplicate_bytes += data.size();
  // The range covers [expected_ - behind, expected_ - behind + data.size());
  // only the part inside the history window is comparable. Byte i of `data`
  // sits `behind - i` bytes before the frontier and is in the window when
  // behind - i <= history size.
  const std::size_t hist = history_.size();
  std::uint64_t differing = 0;
  for (std::size_t i = behind > hist ? behind - hist : 0; i < data.size();
       ++i) {
    if (history_[hist - behind + i] != data[i]) ++differing;
  }
  if (differing > 0) {
    note_conflict(differing);
    if (config_.overlap_policy == OverlapPolicy::kRejectAmbiguous) {
      poison();
      return false;
    }
  }
  return true;
}

std::size_t StreamReassembler::accept(std::uint32_t seq, BytesView data) {
  if (data.empty()) return 0;
  if (poisoned_) {
    ++dropped_;
    if (stats_ != nullptr) ++stats_->dropped_segments;
    return 0;
  }
  std::int64_t delta = seq_delta(seq, expected_);
  auto len = static_cast<std::int64_t>(data.size());

  if (delta + len <= 0) {
    // Entirely behind the contiguous frontier: a retransmission of released
    // bytes. Immutable data — but still conflict-checked against the history
    // window so a fingerprinting probe is observable (and fatal under
    // kRejectAmbiguous).
    check_retransmission(static_cast<std::size_t>(-delta), data);
    return 0;
  }
  if (delta < 0) {
    // Head overlaps already-released data: conflict-check the overlapping
    // head, then keep only the new tail.
    const auto behind = static_cast<std::size_t>(-delta);
    if (!check_retransmission(behind, data.subspan(0, behind))) return 0;
    data = data.subspan(behind);
    len = static_cast<std::int64_t>(data.size());
    seq = expected_;
    delta = 0;
  }
  if (delta > static_cast<std::int64_t>(config_.max_gap)) {
    ++dropped_;  // Too far ahead: likely garbage or a desync attack.
    if (stats_ != nullptr) ++stats_->dropped_segments;
    return 0;
  }

  // Resolve overlaps with pending out-of-order segments. Pending segments
  // are pairwise non-overlapping and ahead of the frontier, so the new
  // range [delta, delta + len) decomposes into regions covered by pending
  // data (compare, count, and resolve per policy) and holes (store).
  struct Overlap {
    Bytes* segment;       ///< the pending segment overlapped
    std::int64_t seg_at;  ///< overlap start offset within the segment
    std::int64_t new_at;  ///< overlap start offset within `data`
    std::int64_t length;
  };
  std::vector<Overlap> overlaps;
  std::vector<std::pair<std::int64_t, std::int64_t>> covered;  // rel [lo, hi)
  std::uint64_t differing = 0;
  std::uint64_t overlap_bytes = 0;
  for (auto& [pseq, pbytes] : pending_) {
    const std::int64_t plo = seq_delta(pseq, expected_);
    const std::int64_t phi = plo + static_cast<std::int64_t>(pbytes.size());
    const std::int64_t lo = std::max(plo, delta);
    const std::int64_t hi = std::min(phi, delta + len);
    if (lo >= hi) continue;
    Overlap ov{&pbytes, lo - plo, lo - delta, hi - lo};
    overlap_bytes += static_cast<std::uint64_t>(ov.length);
    for (std::int64_t i = 0; i < ov.length; ++i) {
      if ((*ov.segment)[static_cast<std::size_t>(ov.seg_at + i)] !=
          data[static_cast<std::size_t>(ov.new_at + i)]) {
        ++differing;
      }
    }
    overlaps.push_back(ov);
    covered.emplace_back(lo, hi);
  }
  duplicate_bytes_ += overlap_bytes;
  if (stats_ != nullptr) stats_->duplicate_bytes += overlap_bytes;
  if (differing > 0) {
    note_conflict(differing);
    if (config_.overlap_policy == OverlapPolicy::kRejectAmbiguous) {
      poison();
      return 0;
    }
    if (config_.overlap_policy == OverlapPolicy::kLastWins) {
      // The newest copy wins: overwrite the overlapped parts of the pending
      // segments in place (sizes are unchanged, so accounting holds).
      for (const Overlap& ov : overlaps) {
        std::copy_n(data.begin() + ov.new_at, ov.length,
                    ov.segment->begin() + ov.seg_at);
      }
    }
  }

  // Store the uncovered holes of [delta, delta + len).
  std::sort(covered.begin(), covered.end());
  std::size_t stored = 0;
  bool over_budget = false;
  std::int64_t cursor = delta;
  if (delta == 0) {
    // The frontier-contiguous prefix — up to the first pending segment,
    // which is always strictly ahead of the frontier — releases immediately
    // and is never charged against the out-of-order budget. Budgeting it
    // would let an attacker fill pending_ to max_buffered and have the
    // gap-filling segment rejected: the frontier would never advance and
    // every later byte of the flow would pass unscanned. This is also the
    // hot path for fully in-order traffic (no pending, no map churn).
    const std::int64_t frontier_hi =
        covered.empty() ? len : std::min(covered.front().first, len);
    if (frontier_hi > 0) {
      release(data.subspan(0, static_cast<std::size_t>(frontier_hi)));
      stored += static_cast<std::size_t>(frontier_hi);
      cursor = frontier_hi;
    }
  }
  auto store_hole = [&](std::int64_t lo, std::int64_t hi) {
    if (lo >= hi) return;
    const auto hole_len = static_cast<std::size_t>(hi - lo);
    if (buffered_bytes_ + hole_len > config_.max_buffered) {
      over_budget = true;
      return;
    }
    const auto at = static_cast<std::size_t>(lo - delta);
    pending_.emplace(
        static_cast<std::uint32_t>(seq + static_cast<std::uint32_t>(lo - delta)),
        Bytes(data.begin() + static_cast<std::ptrdiff_t>(at),
              data.begin() + static_cast<std::ptrdiff_t>(at + hole_len)));
    buffered_bytes_ += hole_len;
    stored += hole_len;
  };
  for (const auto& [lo, hi] : covered) {
    store_hole(cursor, lo);
    cursor = std::max(cursor, hi);
  }
  store_hole(cursor, delta + len);
  if (over_budget) {
    ++dropped_;
    if (stats_ != nullptr) ++stats_->dropped_segments;
  }

  drain_buffered();
  DPISVC_ASSERT_INVARIANT(buffered_bytes_ == pending_total(pending_),
                          "buffered-byte accounting must match the pending "
                          "segment map after a drain");
  return stored;
}

void StreamReassembler::release(BytesView span) {
  expected_ += static_cast<std::uint32_t>(span.size());
  ready_.insert(ready_.end(), span.begin(), span.end());
  if (config_.overlap_history > 0) {
    history_.insert(history_.end(), span.begin(), span.end());
    if (history_.size() > config_.overlap_history) {
      history_.erase(history_.begin(),
                     history_.begin() +
                         static_cast<std::ptrdiff_t>(history_.size() -
                                                     config_.overlap_history));
    }
  }
}

void StreamReassembler::drain_buffered() {
  // Pending segments are non-overlapping and strictly ahead of the
  // frontier, so at most one segment sits exactly at the frontier per pass.
  // The map is keyed by raw sequence numbers whose order is meaningless
  // across a wrap; the linear seq_delta scan is the wrap-safe lookup.
  bool progressed = true;
  while (progressed && !pending_.empty()) {
    progressed = false;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (seq_delta(it->first, expected_) != 0) continue;
      buffered_bytes_ -= it->second.size();
      release(it->second);
      pending_.erase(it);
      progressed = true;
      break;  // map mutated and expected_ moved: restart the scan
    }
  }
}

Bytes StreamReassembler::pop_ready() {
  Bytes out = std::move(ready_);
  ready_.clear();
  return out;
}

bool StreamReassembler::set_fin(std::uint32_t seq_after_data) noexcept {
  if (seq_delta(seq_after_data, expected_) < 0) {
    // Stale/forged FIN behind the frontier: the endpoint ignores an
    // out-of-window FIN, so honoring it would tear the stream down early,
    // discard buffered bytes unscanned, and let the next segment re-anchor
    // a fresh stream — a desync evasion. Ignore it, but count the probe.
    if (stats_ != nullptr) ++stats_->ignored_fins;
    return false;
  }
  fin_seen_ = true;
  fin_seq_ = seq_after_data;
  return true;
}

bool StreamReassembler::finished() const noexcept {
  return fin_seen_ && seq_delta(expected_, fin_seq_) >= 0;
}

FlowReassembler::FlowReassembler(const ReassemblyConfig& config)
    : config_(config) {}

StreamReassembler& FlowReassembler::stream_for(const FiveTuple& flow,
                                               std::uint32_t seq) {
  auto it = streams_.find(flow);
  if (it != streams_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh: move to front
    return it->second->stream;
  }
  if (config_.max_streams > 0 && streams_.size() >= config_.max_streams) {
    // Capacity: drop the least recently used stream. Its buffered bytes are
    // lost (the victim's next segment re-anchors a fresh stream), so the
    // eviction is counted — non-zero means max_streams is too small for the
    // offered stream concurrency.
    ++stats_.stream_evictions;
    streams_.erase(lru_.back().flow);
    lru_.pop_back();
  }
  lru_.push_front(StreamEntry{flow, StreamReassembler(seq, config_, &stats_)});
  streams_.emplace(flow, lru_.begin());
  return lru_.front().stream;
}

std::optional<ReassembledChunk> FlowReassembler::feed(const Packet& packet) {
  constexpr std::uint8_t kTcpFin = 0x01;
  constexpr std::uint8_t kTcpRst = 0x04;

  if (packet.tuple.proto != IpProto::kTcp) {
    if (packet.payload.empty()) return std::nullopt;
    return ReassembledChunk{packet.tuple, packet.payload};
  }

  if ((packet.tcp_flags & kTcpRst) != 0) {
    // RST kills the connection immediately: flush whatever is already
    // in-order, then drop all stream state. The RST's own payload (if any)
    // is not data — it is never scanned. Endpoints only accept an in-window
    // RST (RFC 793/5961), so an out-of-window one must not tear down state
    // the endpoint keeps — the classic Snort-era RST desync evasion.
    // Ignore it, but count the probe.
    auto it = streams_.find(packet.tuple);
    if (it == streams_.end()) return std::nullopt;
    const std::int64_t rst_delta =
        seq_delta(packet.tcp_seq, it->second->stream.expected_seq());
    if (rst_delta < 0 ||
        rst_delta > static_cast<std::int64_t>(config_.max_gap)) {
      ++stats_.ignored_rsts;
      return std::nullopt;
    }
    Bytes ready = it->second->stream.pop_ready();
    lru_.erase(it->second);
    streams_.erase(it);
    ++stats_.streams_closed;
    if (ready.empty()) return std::nullopt;
    return ReassembledChunk{packet.tuple, std::move(ready)};
  }

  StreamReassembler& stream = stream_for(packet.tuple, packet.tcp_seq);
  stream.accept(packet.tcp_seq, packet.payload);
  if ((packet.tcp_flags & kTcpFin) != 0) {
    // The FIN occupies the sequence number right after this segment's data;
    // the stream is torn down once the frontier consumes it.
    stream.set_fin(packet.tcp_seq +
                   static_cast<std::uint32_t>(packet.payload.size()));
  }
  Bytes ready = stream.pop_ready();
  if (stream.finished()) {
    auto it = streams_.find(packet.tuple);
    lru_.erase(it->second);
    streams_.erase(it);
    ++stats_.streams_closed;
  }
  if (ready.empty()) return std::nullopt;
  return ReassembledChunk{packet.tuple, std::move(ready)};
}

bool FlowReassembler::erase(const FiveTuple& direction) {
  auto it = streams_.find(direction);
  if (it == streams_.end()) return false;
  lru_.erase(it->second);
  streams_.erase(it);
  return true;
}

}  // namespace dpisvc::net
