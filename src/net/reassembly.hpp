// TCP stream reassembly (the "session reconstruction" service of §7).
//
// Stateful DPI (§5.2) carries the automaton state across the packets of a
// flow — which is only sound if packets are presented in stream order. On
// real networks segments arrive out of order, retransmitted, and
// overlapping; NIDS evasion techniques exploit exactly that. This module
// provides the reassembly substrate the paper lists as the next candidate
// for service extraction ("we plan to investigate ... session
// reconstruction"):
//
//  - StreamReassembler: one direction of one TCP stream. Accepts segments
//    keyed by 32-bit sequence numbers (wraparound handled), buffers
//    out-of-order data, trims overlaps (first copy wins, the
//    Snort/BSD-style policy), and releases contiguous in-order bytes.
//  - FlowReassembler: a table of per-direction streams keyed by flow,
//    turning a stream of TCP packets into ordered payload chunks ready for
//    the stateful scan path.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "net/flow.hpp"
#include "net/packet.hpp"

namespace dpisvc::net {

struct ReassemblyConfig {
  /// Maximum bytes of out-of-order data buffered per stream; segments that
  /// would exceed it are dropped (and counted).
  std::size_t max_buffered = 256 * 1024;
  /// Maximum distance ahead of the expected sequence number a segment may
  /// start at; beyond it the segment is treated as garbage/attack.
  std::uint32_t max_gap = 1 << 20;
};

class StreamReassembler {
 public:
  explicit StreamReassembler(std::uint32_t initial_seq,
                             const ReassemblyConfig& config = {});

  /// Offers one segment. Returns the number of payload bytes accepted
  /// (after overlap trimming and window checks).
  std::size_t accept(std::uint32_t seq, BytesView data);

  /// Removes and returns all contiguous in-order bytes accumulated since
  /// the last call.
  Bytes pop_ready();

  /// Next sequence number expected at the contiguous frontier.
  std::uint32_t expected_seq() const noexcept { return expected_; }

  std::size_t ready_bytes() const noexcept { return ready_.size(); }
  std::size_t buffered_bytes() const noexcept { return buffered_bytes_; }
  std::uint64_t dropped_segments() const noexcept { return dropped_; }
  std::uint64_t duplicate_bytes() const noexcept { return duplicate_bytes_; }

 private:
  /// Signed distance a - b in sequence space (RFC 1982-style comparison).
  static std::int32_t seq_delta(std::uint32_t a, std::uint32_t b) noexcept {
    return static_cast<std::int32_t>(a - b);
  }

  void drain_buffered();

  ReassemblyConfig config_;
  std::uint32_t expected_;
  Bytes ready_;
  /// Out-of-order segments keyed by offset from `expected_` (offsets are
  /// rebased on every drain so the map stays comparable across wraps).
  std::map<std::uint32_t, Bytes> pending_;
  std::size_t buffered_bytes_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicate_bytes_ = 0;
};

/// One ordered chunk released by the flow-level reassembler.
struct ReassembledChunk {
  FiveTuple flow;  ///< direction-specific tuple (src -> dst of the sender)
  Bytes data;
};

class FlowReassembler {
 public:
  explicit FlowReassembler(const ReassemblyConfig& config = {});

  /// Feeds one TCP packet; returns the in-order payload chunk it unlocked
  /// (possibly spanning several earlier buffered segments), or std::nullopt
  /// if nothing became contiguous. Non-TCP packets pass through as
  /// immediate chunks (no sequencing).
  std::optional<ReassembledChunk> feed(const Packet& packet);

  std::size_t active_streams() const noexcept { return streams_.size(); }

  /// Drops a stream's state (connection close / timeout).
  bool erase(const FiveTuple& direction);

 private:
  ReassemblyConfig config_;
  std::unordered_map<FiveTuple, StreamReassembler> streams_;
};

}  // namespace dpisvc::net
