// TCP stream reassembly (the "session reconstruction" service of §7).
//
// Stateful DPI (§5.2) carries the automaton state across the packets of a
// flow — which is only sound if packets are presented in stream order. On
// real networks segments arrive out of order, retransmitted, and
// overlapping; NIDS evasion techniques exploit exactly that gap between the
// middlebox's TCP model and the endpoint's. This module makes the engine's
// view of the byte stream an explicit, configurable policy instead of an
// accident of implementation:
//
//  - OverlapPolicy: what happens when two segments claim the same sequence
//    range with different bytes. kFirstWins is the Snort/BSD trim, kLastWins
//    the Linux/overwrite interpretation, kRejectAmbiguous fails closed: the
//    stream stops releasing bytes at the first conflict, so conflicting data
//    can never reach the scan path. Every conflict is counted
//    (ambiguous_overlaps / conflicting_overlap_bytes) whichever policy is
//    active — a fingerprinting attempt is observable even when tolerated.
//  - StreamReassembler: one direction of one TCP stream. Accepts segments
//    keyed by 32-bit sequence numbers (wraparound handled), buffers
//    out-of-order data, applies the overlap policy uniformly to
//    pending-buffer overlaps and to retransmissions of already-released
//    bytes (compared against a bounded history window), and releases
//    contiguous in-order bytes.
//  - FlowReassembler: an LRU-bounded table of per-direction streams keyed by
//    flow, turning a stream of TCP packets into ordered payload chunks ready
//    for the stateful scan path. Streams are torn down on RST, after FIN's
//    sequence is consumed, and by idle-LRU eviction at capacity.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "net/flow.hpp"
#include "net/packet.hpp"

namespace dpisvc::net {

/// Resolution rule for two segments claiming one sequence range with
/// different bytes. Which rule a middlebox applies decides which endpoint
/// interpretation it shares — and is exactly what DPI fingerprinting probes
/// measure, so it must be an explicit, testable choice.
enum class OverlapPolicy : std::uint8_t {
  /// Bytes already held win; later conflicting copies are discarded
  /// (Snort/BSD stream trimming).
  kFirstWins = 0,
  /// The most recent copy wins for data not yet released to the scan path;
  /// released bytes are immutable (an inline engine cannot un-forward them).
  kLastWins = 1,
  /// Fail closed: the first conflicting byte poisons the stream. Bytes
  /// released before the conflict stand; nothing after it is ever released,
  /// so no verdict is produced over ambiguous data.
  kRejectAmbiguous = 2,
};

const char* overlap_policy_name(OverlapPolicy policy) noexcept;

/// Signed distance a - b in 32-bit TCP sequence space (RFC 1982-style serial
/// comparison; wrap-safe within +/- 2^31).
inline std::int32_t seq_delta(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b);
}

/// Aggregate reassembly counters, shared by every stream of one
/// FlowReassembler so totals survive stream teardown/eviction. All counters
/// are monotonic.
struct ReassemblyStats {
  std::uint64_t dropped_segments = 0;   ///< window/bound violations
  std::uint64_t duplicate_bytes = 0;    ///< bytes covering already-held data
  /// Segments that overlapped existing data with at least one differing
  /// byte — an ambiguity event whichever policy resolved it.
  std::uint64_t ambiguous_overlaps = 0;
  /// Total overlapping bytes whose values actually differed.
  std::uint64_t conflicting_overlap_bytes = 0;
  std::uint64_t stream_evictions = 0;   ///< LRU-evicted (capacity)
  std::uint64_t streams_closed = 0;     ///< torn down via RST / consumed FIN
  /// FINs behind the contiguous frontier, ignored: a real endpoint discards
  /// an out-of-window FIN, so honoring one would desync the engine from it.
  std::uint64_t ignored_fins = 0;
  /// RSTs whose sequence was outside [expected, expected + max_gap],
  /// ignored for the same reason (RFC 793/5961 in-window check).
  std::uint64_t ignored_rsts = 0;
};

struct ReassemblyConfig {
  /// Maximum bytes of out-of-order data buffered per stream; segments that
  /// would exceed it are dropped (and counted). Only bytes ahead of the
  /// contiguous frontier are charged: frontier-contiguous data is released
  /// immediately and is exempt, so a full pending buffer can never block
  /// the gap-filling segment that drains it.
  std::size_t max_buffered = 256 * 1024;
  /// Maximum distance ahead of the expected sequence number a segment may
  /// start at; beyond it the segment is treated as garbage/attack.
  std::uint32_t max_gap = 1 << 20;
  /// How overlapping segments with conflicting bytes are resolved.
  OverlapPolicy overlap_policy = OverlapPolicy::kFirstWins;
  /// Released-byte history kept per stream for comparing retransmissions
  /// against data already handed to the scan path. Retransmissions reaching
  /// further back than this window count as duplicates but cannot be
  /// conflict-checked (the bytes are gone).
  std::size_t overlap_history = 4096;
  /// FlowReassembler stream-table capacity; the least recently used stream
  /// is evicted (and counted) when a new stream would exceed it.
  std::size_t max_streams = 64 * 1024;
};

class StreamReassembler {
 public:
  /// `stats`, when non-null, receives every counter bump in addition to the
  /// per-stream counters (FlowReassembler passes its aggregate block so
  /// totals survive stream teardown). Must outlive the reassembler.
  explicit StreamReassembler(std::uint32_t initial_seq,
                             const ReassemblyConfig& config = {},
                             ReassemblyStats* stats = nullptr);

  /// Offers one segment. Returns the number of payload bytes newly stored
  /// (after overlap resolution and window checks).
  std::size_t accept(std::uint32_t seq, BytesView data);

  /// Removes and returns all contiguous in-order bytes accumulated since
  /// the last call.
  Bytes pop_ready();

  /// Records the FIN's position: `seq_after_data` is the sequence number of
  /// the FIN flag itself (segment seq + payload length). Once the contiguous
  /// frontier reaches it the stream is finished(). A stale FIN behind the
  /// frontier is ignored (returns false and counts the event): a real
  /// endpoint discards an out-of-window FIN, so honoring one would tear the
  /// stream down early and desync the engine from the endpoint.
  bool set_fin(std::uint32_t seq_after_data) noexcept;

  /// True when a FIN was recorded and all stream bytes before it have been
  /// released: the direction is cleanly closed and its state can be freed.
  bool finished() const noexcept;

  /// True when OverlapPolicy::kRejectAmbiguous observed a conflicting
  /// overlap: the stream is poisoned and releases nothing further.
  bool ambiguous() const noexcept { return poisoned_; }

  /// Next sequence number expected at the contiguous frontier.
  std::uint32_t expected_seq() const noexcept { return expected_; }

  std::size_t ready_bytes() const noexcept { return ready_.size(); }
  std::size_t buffered_bytes() const noexcept { return buffered_bytes_; }
  std::uint64_t dropped_segments() const noexcept { return dropped_; }
  std::uint64_t duplicate_bytes() const noexcept { return duplicate_bytes_; }
  std::uint64_t ambiguous_overlaps() const noexcept {
    return ambiguous_overlaps_;
  }
  std::uint64_t conflicting_overlap_bytes() const noexcept {
    return conflicting_bytes_;
  }

 private:
  /// Appends `span` to ready_ (and the retransmission history window),
  /// advancing the contiguous frontier past it.
  void release(BytesView span);
  void drain_buffered();
  void poison();
  /// Compares a retransmitted range against the released-history window,
  /// counting duplicates and conflicts. `behind` is how many bytes before
  /// the frontier the range starts. Returns false when the stream was
  /// poisoned by the comparison.
  bool check_retransmission(std::size_t behind, BytesView data);
  void note_conflict(std::uint64_t differing_bytes);

  ReassemblyConfig config_;
  std::uint32_t expected_;
  Bytes ready_;
  /// Bounded tail of released bytes ending at `expected_`, kept only to
  /// conflict-check retransmissions of data already handed onward.
  Bytes history_;
  /// Out-of-order segments keyed by absolute sequence number. Invariant:
  /// segments are pairwise non-overlapping and entirely ahead of the
  /// frontier (all trimming happens in accept()).
  std::map<std::uint32_t, Bytes> pending_;
  std::size_t buffered_bytes_ = 0;
  bool poisoned_ = false;
  bool fin_seen_ = false;
  std::uint32_t fin_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicate_bytes_ = 0;
  std::uint64_t ambiguous_overlaps_ = 0;
  std::uint64_t conflicting_bytes_ = 0;
  ReassemblyStats* stats_ = nullptr;
};

/// One ordered chunk released by the flow-level reassembler.
struct ReassembledChunk {
  FiveTuple flow;  ///< direction-specific tuple (src -> dst of the sender)
  Bytes data;
};

class FlowReassembler {
 public:
  explicit FlowReassembler(const ReassemblyConfig& config = {});

  /// Feeds one TCP packet; returns the in-order payload chunk it unlocked
  /// (possibly spanning several earlier buffered segments), or std::nullopt
  /// if nothing became contiguous. Non-TCP packets pass through as
  /// immediate chunks (no sequencing). An in-window RST (sequence within
  /// [expected, expected + max_gap]) tears the stream down after flushing
  /// any ready bytes; FIN tears it down once the frontier passes the FIN's
  /// sequence number. Out-of-window RSTs and stale FINs are ignored but
  /// counted (ignored_rsts / ignored_fins) — an endpoint would discard
  /// them, so honoring them would be a desync evasion.
  std::optional<ReassembledChunk> feed(const Packet& packet);

  std::size_t active_streams() const noexcept { return streams_.size(); }

  /// Drops a stream's state (connection close / timeout).
  bool erase(const FiveTuple& direction);

  /// Aggregate counters over all streams, including ones already torn down.
  const ReassemblyStats& stats() const noexcept { return stats_; }

 private:
  struct StreamEntry {
    FiveTuple flow;
    StreamReassembler stream;
  };
  using LruList = std::list<StreamEntry>;

  /// Finds the stream, refreshing its LRU position — or creates it (evicting
  /// the least recently used stream at capacity).
  StreamReassembler& stream_for(const FiveTuple& flow, std::uint32_t seq);

  ReassemblyConfig config_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<FiveTuple, LruList::iterator> streams_;
  ReassemblyStats stats_;
};

}  // namespace dpisvc::net
