#include "net/result.hpp"

#include <stdexcept>

namespace dpisvc::net {

namespace {

constexpr std::uint16_t kMagic = 0xD719;
constexpr std::uint8_t kVersion = 1;

void encode_entry_compact(Bytes& out, const MatchEntry& e) {
  if (e.pattern_id >= 0x8000) {
    throw std::invalid_argument("compact codec: pattern id needs 15 bits");
  }
  if (e.run_length == 1 && e.position < 0x10000) {
    // 4-byte form: bit15 of the id word clear.
    put_be(out, e.pattern_id, 2);
    put_be(out, e.position, 2);
  } else {
    // 6-byte range form: bit15 set; 24-bit position; 8-bit run - 1.
    if (e.position >= (1u << 24)) {
      throw std::invalid_argument("compact codec: position needs 24 bits");
    }
    if (e.run_length == 0 || e.run_length > 256) {
      throw std::invalid_argument("compact codec: run length out of range");
    }
    put_be(out, 0x8000u | e.pattern_id, 2);
    put_be(out, e.position, 3);
    put_be(out, e.run_length - 1, 1);
  }
}

void encode_entry_uniform(Bytes& out, const MatchEntry& e) {
  if (e.position >= (1u << 24)) {
    throw std::invalid_argument("uniform codec: position needs 24 bits");
  }
  if (e.run_length == 0 || e.run_length > 256) {
    throw std::invalid_argument("uniform codec: run length out of range");
  }
  put_be(out, e.pattern_id, 2);
  put_be(out, e.position, 3);
  put_be(out, e.run_length - 1, 1);
}

}  // namespace

Bytes encode_report(const MatchReport& report, ReportCodec codec) {
  Bytes out;
  put_be(out, kMagic, 2);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(codec));
  put_be(out, report.policy_chain_id, 2);
  put_be(out, report.packet_ref, 8);
  if (report.sections.size() > 0xFF) {
    throw std::invalid_argument("encode_report: too many sections");
  }
  out.push_back(static_cast<std::uint8_t>(report.sections.size()));
  for (const MiddleboxSection& section : report.sections) {
    put_be(out, section.middlebox_id, 2);
    if (section.entries.size() > 0xFFFF) {
      throw std::invalid_argument("encode_report: too many entries");
    }
    put_be(out, section.entries.size(), 2);
    for (const MatchEntry& e : section.entries) {
      if (codec == ReportCodec::kCompact) {
        encode_entry_compact(out, e);
      } else {
        encode_entry_uniform(out, e);
      }
    }
  }
  return out;
}

MatchReport decode_report(BytesView data) {
  std::size_t at = 0;
  auto u = [&](int width) {
    const std::uint64_t v = get_be(data, at, width);
    at += static_cast<std::size_t>(width);
    return v;
  };
  if (u(2) != kMagic) {
    throw std::invalid_argument("decode_report: bad magic");
  }
  if (u(1) != kVersion) {
    throw std::invalid_argument("decode_report: unsupported version");
  }
  const auto codec = static_cast<ReportCodec>(u(1));
  if (codec != ReportCodec::kCompact && codec != ReportCodec::kUniform6) {
    throw std::invalid_argument("decode_report: unknown codec");
  }
  MatchReport report;
  report.policy_chain_id = static_cast<std::uint16_t>(u(2));
  report.packet_ref = u(8);
  const auto section_count = static_cast<std::size_t>(u(1));
  report.sections.resize(section_count);
  for (MiddleboxSection& section : report.sections) {
    section.middlebox_id = static_cast<std::uint16_t>(u(2));
    const auto entry_count = static_cast<std::size_t>(u(2));
    section.entries.reserve(entry_count);
    for (std::size_t i = 0; i < entry_count; ++i) {
      MatchEntry e;
      if (codec == ReportCodec::kUniform6) {
        e.pattern_id = static_cast<std::uint16_t>(u(2));
        e.position = static_cast<std::uint32_t>(u(3));
        e.run_length = static_cast<std::uint32_t>(u(1)) + 1;
      } else {
        const auto id_word = static_cast<std::uint16_t>(u(2));
        e.pattern_id = id_word & 0x7FFF;
        if (id_word & 0x8000) {
          e.position = static_cast<std::uint32_t>(u(3));
          e.run_length = static_cast<std::uint32_t>(u(1)) + 1;
        } else {
          e.position = static_cast<std::uint32_t>(u(2));
          e.run_length = 1;
        }
      }
      section.entries.push_back(e);
    }
  }
  if (at != data.size()) {
    throw std::invalid_argument("decode_report: trailing bytes");
  }
  return report;
}

std::vector<MatchEntry> compress_runs(
    const std::vector<std::pair<std::uint16_t, std::uint32_t>>& matches) {
  std::vector<MatchEntry> out;
  for (const auto& [id, pos] : matches) {
    if (!out.empty() && out.back().pattern_id == id &&
        out.back().run_length < 256 &&
        pos == out.back().position + out.back().run_length) {
      ++out.back().run_length;
    } else {
      out.push_back(MatchEntry{id, pos, 1});
    }
  }
  return out;
}

}  // namespace dpisvc::net
