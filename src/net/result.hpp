// Match-report messages and their wire encodings (§4.2, §6.5).
//
// After scanning a packet, the DPI service instance produces one report per
// active middlebox: the middlebox-local pattern ids that matched and the
// byte position (the paper's `cnt`, or `cnt+offset` for stateful flows) at
// which each match ended. Reports travel either inside the packet's
// NSH-like service header or in a dedicated result packet (what the paper's
// prototype uses, since its OpenFlow 1.0 environment lacked NSH/MPLS).
//
// Two entry encodings are provided, mirroring §6.5:
//  - kCompact:  a single match costs 4 bytes (15-bit pattern id + 16-bit
//    position); a *range* of consecutive matches of the same pattern (which
//    arise when a self-repeating pattern recurs back-to-back) costs 6 bytes.
//  - kUniform6: every entry costs 6 bytes (16-bit id, 24-bit position,
//    8-bit run length) "to allow faster encoding and decoding of both
//    regular and range reports" — the encoding Figure 11 measures.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace dpisvc::net {

struct MatchEntry {
  std::uint16_t pattern_id = 0;
  /// End offset of the (first) match: bytes scanned when the accepting state
  /// fired. For stateful flows this is cnt + offset (§5.2).
  std::uint32_t position = 0;
  /// Number of matches at consecutive positions (>= 1).
  std::uint32_t run_length = 1;

  bool operator==(const MatchEntry&) const = default;
};

struct MiddleboxSection {
  std::uint16_t middlebox_id = 0;
  std::vector<MatchEntry> entries;

  bool operator==(const MiddleboxSection&) const = default;
};

struct MatchReport {
  std::uint16_t policy_chain_id = 0;
  /// Correlates a dedicated result packet with its data packet (the sender
  /// uses the data packet's ip_id; receivers buffer on this key, §6.1).
  std::uint64_t packet_ref = 0;
  std::vector<MiddleboxSection> sections;

  bool operator==(const MatchReport&) const = default;

  bool empty() const noexcept {
    for (const auto& s : sections) {
      if (!s.entries.empty()) return false;
    }
    return true;
  }

  std::size_t total_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& s : sections) n += s.entries.size();
    return n;
  }
};

enum class ReportCodec : std::uint8_t {
  kCompact = 0,
  kUniform6 = 1,
};

/// Serializes a report. Throws std::invalid_argument if a field exceeds the
/// codec's range (e.g. pattern id >= 2^15 in compact mode).
Bytes encode_report(const MatchReport& report, ReportCodec codec);

/// Parses an encoded report; throws std::invalid_argument on malformed
/// input.
MatchReport decode_report(BytesView data);

/// Collapses a position-sorted list of (pattern, position) pairs into
/// entries with run lengths: consecutive positions of the same pattern merge
/// into one range entry. Input pairs must be grouped by pattern and sorted
/// by position within each group.
std::vector<MatchEntry> compress_runs(
    const std::vector<std::pair<std::uint16_t, std::uint32_t>>& matches);

}  // namespace dpisvc::net
