#include "netsim/controller.hpp"

#include <stdexcept>

#include "common/logging.hpp"

namespace dpisvc::netsim {

Switch& SdnController::switch_at(const NodeId& name) {
  Node* node = fabric_.find(name);
  auto* sw = dynamic_cast<Switch*>(node);
  if (sw == nullptr) {
    throw std::invalid_argument("SdnController: " + name + " is not a switch");
  }
  return *sw;
}

void SdnController::install(const NodeId& switch_name, FlowRule rule) {
  switch_at(switch_name).install(std::move(rule));
}

void SdnController::clear(const NodeId& switch_name) {
  switch_at(switch_name).clear_rules();
}

TrafficSteeringApp::TrafficSteeringApp(SdnController& controller,
                                       NodeId switch_name)
    : controller_(controller), switch_name_(std::move(switch_name)) {}

void TrafficSteeringApp::install_chain(const PolicyChainSpec& spec) {
  if (spec.egress.empty() || spec.ingress.empty()) {
    throw std::invalid_argument("TSA: chain needs ingress and egress");
  }
  chains_[spec.id] = spec;
  reinstall_all();
  log(LogLevel::kInfo, "tsa",
      "installed chain ", spec.id, " with ", spec.sequence.size(), " hops");
}

bool TrafficSteeringApp::remove_chain(dpi::ChainId id) {
  if (chains_.erase(id) == 0) return false;
  reinstall_all();
  return true;
}

void TrafficSteeringApp::update_sequence(dpi::ChainId id,
                                         std::vector<NodeId> sequence) {
  auto it = chains_.find(id);
  if (it == chains_.end()) {
    throw std::invalid_argument("TSA: unknown chain");
  }
  it->second.sequence = std::move(sequence);
  reinstall_all();
  log(LogLevel::kInfo, "tsa", "updated chain ", id);
}

void TrafficSteeringApp::reinstall_all() {
  controller_.clear(switch_name_);
  for (const auto& [id, spec] : chains_) {
    // Classifier rule: traffic from the ingress neighbor matching the
    // classifier gets the chain tag pushed and goes to the first hop (or
    // straight to egress for an empty chain).
    {
      FlowRule rule;
      rule.priority = 10;
      rule.match = spec.classifier;
      rule.match.in_node = spec.ingress;
      const bool empty = spec.sequence.empty();
      rule.action.forward_to = empty ? spec.egress : spec.sequence.front();
      if (!empty) {
        rule.action.push_chain_tag = spec.id;
      }
      controller_.install(switch_name_, rule);
    }
    // Per-hop rules: (chain tag, previous hop) -> next hop.
    for (std::size_t i = 0; i < spec.sequence.size(); ++i) {
      FlowRule rule;
      rule.priority = 20;
      rule.match.chain_tag = spec.id;
      rule.match.in_node = spec.sequence[i];
      const bool last = (i + 1 == spec.sequence.size());
      rule.action.forward_to = last ? spec.egress : spec.sequence[i + 1];
      rule.action.pop_chain_tag = last;  // restore the original packet
      controller_.install(switch_name_, rule);
    }
  }
}

}  // namespace dpisvc::netsim
