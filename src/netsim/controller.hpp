// SDN controller and Traffic Steering Application (TSA) for the fabric.
//
// The TSA plays the role SIMPLE [41] plays in the paper: it owns the policy
// chains (ordered middlebox sequences per traffic class) and programs
// switches so packets traverse their chain. Steering uses the policy-chain
// tag: the ingress classifier rule pushes the tag, per-hop rules match
// (tag, previous hop) -> next hop, and the final rule pops the tag before
// egress delivery. This is the §4.1 mechanism ("the TSA pushes some VLAN or
// MPLS tag in front of the packet to easily steer it over the network";
// "DPI service instances can then read these tags to identify the set of
// patterns a packet should be matched against").
//
// The DPI controller (service layer) talks to the TSA to splice DPI service
// instances into chains (§4: "our solution will negotiate with the TSA, so
// that policy chains are changed to include DPI as a service").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dpi/types.hpp"
#include "netsim/switch.hpp"

namespace dpisvc::netsim {

/// Thin programming interface over the fabric's switches, standing in for
/// the OpenFlow control channel.
class SdnController {
 public:
  explicit SdnController(Fabric& fabric) : fabric_(fabric) {}

  /// Installs a rule on a switch. Throws std::invalid_argument if the node
  /// is not a Switch.
  void install(const NodeId& switch_name, FlowRule rule);

  void clear(const NodeId& switch_name);

  Fabric& fabric() noexcept { return fabric_; }

 private:
  Switch& switch_at(const NodeId& name);

  Fabric& fabric_;
};

/// One policy chain: a classifier selecting the traffic plus the ordered
/// node sequence it must traverse before reaching the egress host.
struct PolicyChainSpec {
  dpi::ChainId id = 0;
  Match classifier;                 ///< which traffic enters this chain
  NodeId ingress;                   ///< neighbor originating the traffic
  std::vector<NodeId> sequence;     ///< middlebox / DPI instance nodes
  NodeId egress;                    ///< final delivery node
};

class TrafficSteeringApp {
 public:
  TrafficSteeringApp(SdnController& controller, NodeId switch_name);

  /// Installs (or replaces) a chain's steering rules on the switch.
  void install_chain(const PolicyChainSpec& spec);

  /// Removes a chain and reinstalls the remaining ones.
  bool remove_chain(dpi::ChainId id);

  /// Rewrites a chain's node sequence (e.g. the DPI controller splicing a
  /// DPI service instance in front of the middleboxes, or migrating a chain
  /// to a different instance) and reinstalls the rules.
  void update_sequence(dpi::ChainId id, std::vector<NodeId> sequence);

  const std::map<dpi::ChainId, PolicyChainSpec>& chains() const noexcept {
    return chains_;
  }

 private:
  void reinstall_all();

  SdnController& controller_;
  NodeId switch_name_;
  std::map<dpi::ChainId, PolicyChainSpec> chains_;
};

}  // namespace dpisvc::netsim
