#include "netsim/fabric.hpp"

#include <algorithm>
#include <stdexcept>

namespace dpisvc::netsim {

Node::Node(Fabric& fabric, NodeId name)
    : fabric_(fabric), name_(std::move(name)) {}

void Node::emit(const NodeId& to, net::Packet packet) {
  fabric_.send(name_, to, std::move(packet));
}

void Fabric::require_new_name(const NodeId& name) const {
  for (const auto& node : nodes_) {
    if (node->name() == name) {
      throw std::invalid_argument("Fabric: duplicate node name " + name);
    }
  }
}

void Fabric::require_link(const NodeId& a, const NodeId& b) const {
  if (!linked(a, b)) {
    throw std::invalid_argument("Fabric: no link " + a + " <-> " + b);
  }
}

void Fabric::connect(const NodeId& a, const NodeId& b) {
  if (find(a) == nullptr || find(b) == nullptr) {
    throw std::invalid_argument("Fabric::connect: unknown node");
  }
  if (a == b) {
    throw std::invalid_argument("Fabric::connect: self-link");
  }
  links_.insert(link_key(a, b));
}

bool Fabric::linked(const NodeId& a, const NodeId& b) const noexcept {
  return links_.count(a < b ? std::make_pair(a, b) : std::make_pair(b, a)) > 0;
}

Node* Fabric::find(const NodeId& name) noexcept {
  for (const auto& node : nodes_) {
    if (node->name() == name) return node.get();
  }
  return nullptr;
}

// --- fault configuration -----------------------------------------------------

void Fabric::set_link_faults(const NodeId& a, const NodeId& b,
                             LinkFaults faults) {
  require_link(a, b);
  const LinkKey key = link_key(a, b);
  for (auto& [existing, policy] : link_faults_) {
    if (existing == key) {
      policy = faults;
      return;
    }
  }
  link_faults_.emplace_back(key, faults);
}

void Fabric::clear_link_faults(const NodeId& a, const NodeId& b) {
  const LinkKey key = link_key(a, b);
  std::erase_if(link_faults_,
                [&](const auto& entry) { return entry.first == key; });
}

void Fabric::fail_link(const NodeId& a, const NodeId& b) {
  require_link(a, b);
  down_links_.insert(link_key(a, b));
}

void Fabric::heal_link(const NodeId& a, const NodeId& b) {
  require_link(a, b);
  down_links_.erase(link_key(a, b));
}

bool Fabric::link_up(const NodeId& a, const NodeId& b) const noexcept {
  return linked(a, b) && down_links_.count(link_key(a, b)) == 0;
}

void Fabric::crash_node(const NodeId& name) {
  if (find(name) == nullptr) {
    throw std::invalid_argument("Fabric::crash_node: unknown node " + name);
  }
  crashed_nodes_.insert(name);
}

void Fabric::restore_node(const NodeId& name) {
  if (find(name) == nullptr) {
    throw std::invalid_argument("Fabric::restore_node: unknown node " + name);
  }
  crashed_nodes_.erase(name);
}

bool Fabric::crashed(const NodeId& name) const noexcept {
  return crashed_nodes_.count(name) > 0;
}

// --- data path ---------------------------------------------------------------

void Fabric::send(const NodeId& from, const NodeId& to, net::Packet packet) {
  if (!linked(from, to)) {
    throw std::logic_error("Fabric::send: no link " + from + " <-> " + to);
  }
  const LinkKey key = link_key(from, to);
  if (down_links_.count(key)) {
    ++fault_stats_.partition_drops;
    return;
  }
  const LinkFaults* faults = nullptr;
  for (const auto& [existing, policy] : link_faults_) {
    if (existing == key) {
      faults = &policy;
      break;
    }
  }
  if (faults == nullptr) {
    queue_.push_back(Event{from, to, std::move(packet)});
    return;
  }
  if (faults->drop > 0 && fault_rng_.bernoulli(faults->drop)) {
    ++fault_stats_.dropped;
    return;
  }
  if (faults->duplicate > 0 && fault_rng_.bernoulli(faults->duplicate)) {
    ++fault_stats_.duplicated;
    queue_.push_back(Event{from, to, net::Packet(packet)});
  }
  if (faults->delay > 0 && fault_rng_.bernoulli(faults->delay)) {
    ++fault_stats_.delayed;
    const std::size_t hold = static_cast<std::size_t>(
        fault_rng_.uniform(1, std::max<std::size_t>(faults->max_delay_events, 1)));
    delayed_.push_back(DelayedEvent{Event{from, to, std::move(packet)}, hold});
    return;
  }
  if (faults->reorder > 0 && !queue_.empty() &&
      fault_rng_.bernoulli(faults->reorder)) {
    ++fault_stats_.reordered;
    const std::size_t at = fault_rng_.index(queue_.size());
    queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(at),
                  Event{from, to, std::move(packet)});
    return;
  }
  queue_.push_back(Event{from, to, std::move(packet)});
}

void Fabric::inject(const NodeId& at, net::Packet packet) {
  if (find(at) == nullptr) {
    throw std::invalid_argument("Fabric::inject: unknown node " + at);
  }
  queue_.push_back(Event{"", at, std::move(packet)});
}

void Fabric::age_delayed() {
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (it->remaining <= 1) {
      queue_.push_back(std::move(it->event));
      it = delayed_.erase(it);
    } else {
      --it->remaining;
      ++it;
    }
  }
}

std::size_t Fabric::run(std::size_t max_events) {
  std::size_t processed = 0;
  for (;;) {
    while (!queue_.empty() || !delayed_.empty()) {
      if (queue_.empty()) {
        // Quiescent except for held packets: release the soonest one so the
        // drain always terminates.
        auto soonest = std::min_element(
            delayed_.begin(), delayed_.end(),
            [](const DelayedEvent& a, const DelayedEvent& b) {
              return a.remaining < b.remaining;
            });
        queue_.push_back(std::move(soonest->event));
        delayed_.erase(soonest);
      }
      if (processed >= max_events) {
        throw std::runtime_error("Fabric::run: event budget exceeded "
                                 "(forwarding loop?)");
      }
      Event event = std::move(queue_.front());
      queue_.pop_front();
      ++processed;
      ++deliveries_;
      if (!delayed_.empty()) age_delayed();
      if (crashed_nodes_.count(event.to)) {
        ++fault_stats_.crash_discards;
        continue;
      }
      Node* node = find(event.to);
      if (node == nullptr) {
        throw std::logic_error("Fabric::run: destination vanished");
      }
      node->receive(std::move(event.packet), event.from);
    }
    // Fully quiescent: give every live node its flush point. Batched-ingest
    // nodes submit partial batches and emit their outputs here; if any node
    // enqueued new packets, keep draining.
    for (const auto& node : nodes_) {
      if (crashed_nodes_.count(node->name())) continue;
      node->on_idle();
    }
    if (queue_.empty() && delayed_.empty()) return processed;
  }
}

}  // namespace dpisvc::netsim
