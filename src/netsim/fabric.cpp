#include "netsim/fabric.hpp"

#include <stdexcept>

namespace dpisvc::netsim {

Node::Node(Fabric& fabric, NodeId name)
    : fabric_(fabric), name_(std::move(name)) {}

void Node::emit(const NodeId& to, net::Packet packet) {
  fabric_.send(name_, to, std::move(packet));
}

void Fabric::require_new_name(const NodeId& name) const {
  for (const auto& node : nodes_) {
    if (node->name() == name) {
      throw std::invalid_argument("Fabric: duplicate node name " + name);
    }
  }
}

void Fabric::connect(const NodeId& a, const NodeId& b) {
  if (find(a) == nullptr || find(b) == nullptr) {
    throw std::invalid_argument("Fabric::connect: unknown node");
  }
  if (a == b) {
    throw std::invalid_argument("Fabric::connect: self-link");
  }
  links_.insert(a < b ? std::make_pair(a, b) : std::make_pair(b, a));
}

bool Fabric::linked(const NodeId& a, const NodeId& b) const noexcept {
  return links_.count(a < b ? std::make_pair(a, b) : std::make_pair(b, a)) > 0;
}

Node* Fabric::find(const NodeId& name) noexcept {
  for (const auto& node : nodes_) {
    if (node->name() == name) return node.get();
  }
  return nullptr;
}

void Fabric::send(const NodeId& from, const NodeId& to, net::Packet packet) {
  if (!linked(from, to)) {
    throw std::logic_error("Fabric::send: no link " + from + " <-> " + to);
  }
  queue_.push_back(Event{from, to, std::move(packet)});
}

void Fabric::inject(const NodeId& at, net::Packet packet) {
  if (find(at) == nullptr) {
    throw std::invalid_argument("Fabric::inject: unknown node " + at);
  }
  queue_.push_back(Event{"", at, std::move(packet)});
}

std::size_t Fabric::run(std::size_t max_events) {
  std::size_t processed = 0;
  while (!queue_.empty()) {
    if (processed >= max_events) {
      throw std::runtime_error("Fabric::run: event budget exceeded "
                               "(forwarding loop?)");
    }
    Event event = std::move(queue_.front());
    queue_.pop_front();
    Node* node = find(event.to);
    if (node == nullptr) {
      throw std::logic_error("Fabric::run: destination vanished");
    }
    node->receive(std::move(event.packet), event.from);
    ++processed;
    ++deliveries_;
  }
  return processed;
}

}  // namespace dpisvc::netsim
