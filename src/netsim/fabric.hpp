// Simulated SDN fabric.
//
// The paper's prototype ran in Mininet over OpenFlow 1.0 with a POX-based
// Traffic Steering Application. This module is the in-process equivalent:
// named nodes (hosts, switches, middleboxes, DPI instances) connected by
// links, exchanging net::Packet objects through a store-and-forward event
// queue. Forwarding is deterministic: events are processed FIFO, so tests
// can assert exact traversal orders.
//
// The fabric checks link existence on every send — a node can only emit to
// a directly connected neighbor, as in a real topology.
//
// Fault injection (§4.3 / §7 failure scenarios): every link can carry a
// seeded fault policy (drop / duplicate / reorder / delay probabilities),
// links can be taken down (partition), and nodes can be crashed (the node
// stops receiving; packets addressed to it are discarded). All randomness
// flows from one Rng seeded via set_fault_seed(), so every failure scenario
// replays identically run-to-run. With no policies configured the fabric
// behaves exactly as the fault-free original.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/packet.hpp"

namespace dpisvc::netsim {

using NodeId = std::string;

class Fabric;

/// Base class for everything attached to the fabric.
class Node {
 public:
  Node(Fabric& fabric, NodeId name);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Called by the fabric when a packet arrives over the link from `from`.
  virtual void receive(net::Packet packet, const NodeId& from) = 0;

  /// Called by Fabric::run() whenever the event queue drains to empty —
  /// the run-to-completion flush point. Nodes that accumulate work across
  /// receive() calls (batched-ingest DPI instances) submit and emit their
  /// partial batches here; anything emitted re-enters the drain loop. The
  /// default does nothing.
  virtual void on_idle() {}

  const NodeId& name() const noexcept { return name_; }

 protected:
  /// Sends a packet over the link to a directly connected neighbor.
  void emit(const NodeId& to, net::Packet packet);

  Fabric& fabric() noexcept { return fabric_; }

 private:
  Fabric& fabric_;
  NodeId name_;
};

/// Per-link fault policy; probabilities are evaluated independently per
/// packet traversal of the link.
struct LinkFaults {
  double drop = 0.0;       ///< packet lost on the link
  double duplicate = 0.0;  ///< packet delivered twice
  double reorder = 0.0;    ///< packet inserted at a random queue position
  double delay = 0.0;      ///< packet held back for 1..max_delay_events
  std::size_t max_delay_events = 8;
};

/// Counters for everything the fault fabric did; tests assert conservation
/// (delivered + dropped + crash_discards accounts for every send).
struct FaultStats {
  std::uint64_t dropped = 0;         ///< lost to link drop faults
  std::uint64_t partition_drops = 0; ///< sent over a down link
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;
  std::uint64_t crash_discards = 0;  ///< arrived at a crashed node
};

class Fabric {
 public:
  /// Constructs a node of type T with (fabric, name, args...) and registers
  /// it. Throws std::invalid_argument on duplicate names.
  template <typename T, typename... Args>
  T& add_node(NodeId name, Args&&... args) {
    require_new_name(name);
    auto node = std::make_unique<T>(*this, std::move(name),
                                    std::forward<Args>(args)...);
    T& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Creates a bidirectional link. Both nodes must exist.
  void connect(const NodeId& a, const NodeId& b);

  bool linked(const NodeId& a, const NodeId& b) const noexcept;

  Node* find(const NodeId& name) noexcept;

  /// Enqueues a packet for delivery from `from` to `to`. Throws
  /// std::logic_error if the nodes are not linked. Subject to the link's
  /// fault policy and state.
  void send(const NodeId& from, const NodeId& to, net::Packet packet);

  /// Delivers a packet directly into a node (traffic origination). Not
  /// subject to link faults.
  void inject(const NodeId& at, net::Packet packet);

  /// Drains the event queue (including delayed packets); returns the number
  /// of deliveries. Throws std::runtime_error if `max_events` is exceeded
  /// (forwarding loop guard).
  std::size_t run(std::size_t max_events = 1'000'000);

  std::uint64_t total_deliveries() const noexcept { return deliveries_; }

  // --- fault injection ------------------------------------------------------

  /// Reseeds the fault Rng; call before configuring policies to make a
  /// scenario reproducible.
  void set_fault_seed(std::uint64_t seed) { fault_rng_ = Rng(seed); }

  /// Installs (or replaces) the fault policy on an existing link. Throws
  /// std::invalid_argument if the nodes are not linked.
  void set_link_faults(const NodeId& a, const NodeId& b, LinkFaults faults);

  void clear_link_faults(const NodeId& a, const NodeId& b);

  /// Partition: takes a link down (sends over it are silently discarded and
  /// counted) or back up. Throws std::invalid_argument on unknown links.
  void fail_link(const NodeId& a, const NodeId& b);
  void heal_link(const NodeId& a, const NodeId& b);
  bool link_up(const NodeId& a, const NodeId& b) const noexcept;

  /// Crash: the node stops receiving; packets addressed to it (including
  /// ones already in flight) are discarded and counted. Throws
  /// std::invalid_argument on unknown nodes.
  void crash_node(const NodeId& name);
  void restore_node(const NodeId& name);
  bool crashed(const NodeId& name) const noexcept;

  const FaultStats& fault_stats() const noexcept { return fault_stats_; }

 private:
  struct Event {
    NodeId from;
    NodeId to;
    net::Packet packet;
  };

  struct DelayedEvent {
    Event event;
    std::size_t remaining;  ///< deliveries until release
  };

  using LinkKey = std::pair<NodeId, NodeId>;
  static LinkKey link_key(const NodeId& a, const NodeId& b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  void require_new_name(const NodeId& name) const;
  void require_link(const NodeId& a, const NodeId& b) const;
  void age_delayed();

  std::vector<std::unique_ptr<Node>> nodes_;
  std::set<LinkKey> links_;  // normalized (min, max)
  std::deque<Event> queue_;
  std::vector<DelayedEvent> delayed_;
  std::uint64_t deliveries_ = 0;

  std::vector<std::pair<LinkKey, LinkFaults>> link_faults_;
  std::set<LinkKey> down_links_;
  std::set<NodeId> crashed_nodes_;
  Rng fault_rng_{0x5EEDF00Dull};
  FaultStats fault_stats_;
};

}  // namespace dpisvc::netsim
