// Simulated SDN fabric.
//
// The paper's prototype ran in Mininet over OpenFlow 1.0 with a POX-based
// Traffic Steering Application. This module is the in-process equivalent:
// named nodes (hosts, switches, middleboxes, DPI instances) connected by
// links, exchanging net::Packet objects through a store-and-forward event
// queue. Forwarding is deterministic: events are processed FIFO, so tests
// can assert exact traversal orders.
//
// The fabric checks link existence on every send — a node can only emit to
// a directly connected neighbor, as in a real topology.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace dpisvc::netsim {

using NodeId = std::string;

class Fabric;

/// Base class for everything attached to the fabric.
class Node {
 public:
  Node(Fabric& fabric, NodeId name);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Called by the fabric when a packet arrives over the link from `from`.
  virtual void receive(net::Packet packet, const NodeId& from) = 0;

  const NodeId& name() const noexcept { return name_; }

 protected:
  /// Sends a packet over the link to a directly connected neighbor.
  void emit(const NodeId& to, net::Packet packet);

  Fabric& fabric() noexcept { return fabric_; }

 private:
  Fabric& fabric_;
  NodeId name_;
};

class Fabric {
 public:
  /// Constructs a node of type T with (fabric, name, args...) and registers
  /// it. Throws std::invalid_argument on duplicate names.
  template <typename T, typename... Args>
  T& add_node(NodeId name, Args&&... args) {
    require_new_name(name);
    auto node = std::make_unique<T>(*this, std::move(name),
                                    std::forward<Args>(args)...);
    T& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Creates a bidirectional link. Both nodes must exist.
  void connect(const NodeId& a, const NodeId& b);

  bool linked(const NodeId& a, const NodeId& b) const noexcept;

  Node* find(const NodeId& name) noexcept;

  /// Enqueues a packet for delivery from `from` to `to`. Throws
  /// std::logic_error if the nodes are not linked.
  void send(const NodeId& from, const NodeId& to, net::Packet packet);

  /// Delivers a packet directly into a node (traffic origination).
  void inject(const NodeId& at, net::Packet packet);

  /// Drains the event queue; returns the number of deliveries. Throws
  /// std::runtime_error if `max_events` is exceeded (forwarding loop guard).
  std::size_t run(std::size_t max_events = 1'000'000);

  std::uint64_t total_deliveries() const noexcept { return deliveries_; }

 private:
  struct Event {
    NodeId from;
    NodeId to;
    net::Packet packet;
  };

  void require_new_name(const NodeId& name) const;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::set<std::pair<NodeId, NodeId>> links_;  // normalized (min, max)
  std::deque<Event> queue_;
  std::uint64_t deliveries_ = 0;
};

}  // namespace dpisvc::netsim
