#include "netsim/host.hpp"

#include <stdexcept>

namespace dpisvc::netsim {

Host::Host(Fabric& fabric, NodeId name) : Node(fabric, std::move(name)) {}

void Host::send(net::Packet packet) {
  if (gateway_.empty()) {
    throw std::logic_error("Host::send: no gateway configured for " + name());
  }
  emit(gateway_, std::move(packet));
}

void Host::receive(net::Packet packet, const NodeId& from) {
  (void)from;
  if (callback_) {
    callback_(packet);
  }
  received_.push_back(std::move(packet));
}

}  // namespace dpisvc::netsim
