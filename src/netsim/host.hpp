// End hosts for the simulated fabric: traffic sources and sinks.
#pragma once

#include <functional>
#include <vector>

#include "netsim/fabric.hpp"

namespace dpisvc::netsim {

class Host : public Node {
 public:
  Host(Fabric& fabric, NodeId name);

  /// Neighbor every outbound packet is emitted to (usually the switch).
  void set_gateway(NodeId gateway) { gateway_ = std::move(gateway); }

  /// Emits a packet toward the gateway.
  void send(net::Packet packet);

  void receive(net::Packet packet, const NodeId& from) override;

  const std::vector<net::Packet>& received() const noexcept {
    return received_;
  }
  void clear_received() noexcept { received_.clear(); }

  /// Optional callback invoked on every received packet (before storing).
  void on_receive(std::function<void(const net::Packet&)> callback) {
    callback_ = std::move(callback);
  }

 private:
  NodeId gateway_;
  std::vector<net::Packet> received_;
  std::function<void(const net::Packet&)> callback_;
};

}  // namespace dpisvc::netsim
