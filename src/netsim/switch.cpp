#include "netsim/switch.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace dpisvc::netsim {

bool Match::matches(const net::Packet& packet,
                    const NodeId& from) const noexcept {
  if (in_node && *in_node != from) return false;
  if (chain_tag) {
    const auto tag = packet.find_tag(net::TagKind::kPolicyChain);
    if (!tag || *tag != *chain_tag) return false;
  }
  if (src_ip && packet.tuple.src_ip != *src_ip) return false;
  if (dst_ip && packet.tuple.dst_ip != *dst_ip) return false;
  if (dst_port && packet.tuple.dst_port != *dst_port) return false;
  if (proto && packet.tuple.proto != *proto) return false;
  return true;
}

Switch::Switch(Fabric& fabric, NodeId name) : Node(fabric, std::move(name)) {}

void Switch::install(FlowRule rule) {
  // Stable insertion keeps first-installed precedence within a priority.
  auto at = std::find_if(rules_.begin(), rules_.end(),
                         [&](const FlowRule& existing) {
                           return existing.priority < rule.priority;
                         });
  rules_.insert(at, std::move(rule));
}

void Switch::clear_rules() noexcept { rules_.clear(); }

const FlowRule* Switch::lookup(const net::Packet& packet,
                               const NodeId& from) const noexcept {
  for (const FlowRule& rule : rules_) {
    if (rule.match.matches(packet, from)) return &rule;
  }
  return nullptr;
}

void Switch::receive(net::Packet packet, const NodeId& from) {
  const FlowRule* rule = lookup(packet, from);
  if (rule == nullptr) {
    ++dropped_;
    log(LogLevel::kDebug, name(), "table miss, dropping ", packet.summary());
    return;
  }
  if (rule->action.pop_chain_tag) {
    packet.pop_tag(net::TagKind::kPolicyChain);
  }
  if (rule->action.push_chain_tag) {
    packet.push_tag(net::TagKind::kPolicyChain, *rule->action.push_chain_tag);
  }
  ++forwarded_;
  emit(rule->action.forward_to, std::move(packet));
}

}  // namespace dpisvc::netsim
