// OpenFlow-style match-action switch for the simulated fabric.
//
// Rules are (priority, match, action) triples; the highest-priority matching
// rule wins, ties broken by installation order (first installed wins). The
// match covers the fields the Traffic Steering Application needs: ingress
// neighbor, the policy-chain tag, and L3/L4 header fields. Actions forward
// to a neighbor and can push or pop the policy-chain tag — the OpenFlow
// tag push/pull mechanism of §4.2.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netsim/fabric.hpp"

namespace dpisvc::netsim {

struct Match {
  std::optional<NodeId> in_node;            ///< neighbor the packet came from
  std::optional<std::uint32_t> chain_tag;   ///< outermost policy-chain tag
  std::optional<net::Ipv4Addr> src_ip;
  std::optional<net::Ipv4Addr> dst_ip;
  std::optional<std::uint16_t> dst_port;
  std::optional<net::IpProto> proto;

  bool matches(const net::Packet& packet, const NodeId& from) const noexcept;
};

struct Action {
  NodeId forward_to;
  /// Tag manipulation, applied before forwarding (pop first, then push).
  bool pop_chain_tag = false;
  std::optional<std::uint32_t> push_chain_tag;
};

struct FlowRule {
  int priority = 0;
  Match match;
  Action action;
};

class Switch : public Node {
 public:
  Switch(Fabric& fabric, NodeId name);

  void receive(net::Packet packet, const NodeId& from) override;

  /// Installs a rule (normally called via the SDN controller).
  void install(FlowRule rule);
  void clear_rules() noexcept;
  std::size_t num_rules() const noexcept { return rules_.size(); }

  std::uint64_t forwarded() const noexcept { return forwarded_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  const FlowRule* lookup(const net::Packet& packet,
                         const NodeId& from) const noexcept;

  std::vector<FlowRule> rules_;  ///< kept sorted by priority descending
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace dpisvc::netsim
