#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dpisvc::obs {

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("histogram needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("histogram bounds must be strictly increasing");
    }
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> Histogram::exponential_bounds(std::uint64_t first,
                                                         double factor,
                                                         std::size_t count) {
  if (first == 0 || factor <= 1.0 || count == 0) {
    throw std::invalid_argument("exponential_bounds: need first>0, factor>1, count>0");
  }
  std::vector<std::uint64_t> bounds;
  bounds.reserve(count);
  double b = static_cast<double>(first);
  for (std::size_t i = 0; i < count; ++i) {
    auto v = static_cast<std::uint64_t>(std::llround(b));
    // Guard against rounding collapsing two adjacent bounds at small values.
    if (!bounds.empty() && v <= bounds.back()) v = bounds.back() + 1;
    bounds.push_back(v);
    b *= factor;
  }
  return bounds;
}

std::vector<std::uint64_t> Histogram::linear_bounds(std::uint64_t step,
                                                    std::size_t count) {
  if (step == 0 || count == 0) {
    throw std::invalid_argument("linear_bounds: need step>0, count>0");
  }
  std::vector<std::uint64_t> bounds;
  bounds.reserve(count);
  for (std::size_t i = 1; i <= count; ++i) {
    bounds.push_back(step * i);
  }
  return bounds;
}

std::vector<std::uint64_t> Histogram::latency_bounds_ns() {
  // 1us, 2us, 4us ... 2^26 us (~67s): 27 finite buckets + overflow.
  return exponential_bounds(1000, 2.0, 27);
}

void Histogram::record(std::uint64_t value) noexcept {
  if constexpr (!kMetricsCompiledIn) {
    (void)value;
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const auto n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::percentile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const auto total = count();
  if (total == 0) return 0.0;
  // Rank of the q-quantile among `total` samples (1-based, ceil).
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < num_buckets(); ++i) {
    const auto c = bucket_count(i);
    if (c == 0) continue;
    if (seen + c >= rank) {
      if (i == bounds_.size()) return static_cast<double>(bounds_.back());
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds_[i - 1]);
      const double upper = static_cast<double>(bounds_[i]);
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(c);
      return lower + (upper - lower) * frac;
    }
    seen += c;
  }
  return static_cast<double>(bounds_.back());
}

json::Value Histogram::to_json() const {
  json::Object obj;
  obj["count"] = json::Value(count());
  obj["sum"] = json::Value(sum());
  obj["p50"] = json::Value(percentile(0.50));
  obj["p90"] = json::Value(percentile(0.90));
  obj["p99"] = json::Value(percentile(0.99));
  json::Array bounds_arr;
  for (auto b : bounds_) bounds_arr.emplace_back(b);
  obj["bounds"] = json::Value(std::move(bounds_arr));
  json::Array counts_arr;
  for (std::size_t i = 0; i < num_buckets(); ++i) {
    counts_arr.emplace_back(bucket_count(i));
  }
  obj["counts"] = json::Value(std::move(counts_arr));
  return json::Value(std::move(obj));
}

void Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge_from: bounds differ");
  }
  for (std::size_t i = 0; i < num_buckets(); ++i) {
    counts_[i].fetch_add(other.bucket_count(i), std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i < num_buckets(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

template <typename Entries>
auto* find_entry(Entries& entries, const std::string& name) {
  for (auto& [key, ptr] : entries) {
    if (key == name) return ptr.get();
  }
  return static_cast<typename Entries::value_type::second_type::pointer>(nullptr);
}

/// Name-sorted (name, raw pointer) view so snapshots are byte-stable
/// regardless of registration order.
template <typename Entries>
auto sorted_view(const Entries& entries) {
  using Instrument =
      typename Entries::value_type::second_type::element_type;
  std::vector<std::pair<std::string, const Instrument*>> view;
  view.reserve(entries.size());
  for (const auto& [key, ptr] : entries) view.emplace_back(key, ptr.get());
  std::sort(view.begin(), view.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return view;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  const MutexLock lock(mu_);
  if (auto* existing = find_entry(counters_, name)) return *existing;
  counters_.emplace_back(name, std::make_unique<Counter>());
  return *counters_.back().second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const MutexLock lock(mu_);
  if (auto* existing = find_entry(gauges_, name)) return *existing;
  gauges_.emplace_back(name, std::make_unique<Gauge>());
  return *gauges_.back().second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> upper_bounds) {
  const MutexLock lock(mu_);
  if (auto* existing = find_entry(histograms_, name)) return *existing;
  histograms_.emplace_back(name,
                           std::make_unique<Histogram>(std::move(upper_bounds)));
  return *histograms_.back().second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const MutexLock lock(mu_);
  for (const auto& [key, ptr] : histograms_) {
    if (key == name) return ptr.get();
  }
  return nullptr;
}

json::Value MetricsRegistry::snapshot() const {
  const MutexLock lock(mu_);
  json::Object root;
  {
    json::Object counters;
    for (const auto& [name, c] : sorted_view(counters_)) {
      counters[name] = json::Value(c->value());
    }
    root["counters"] = json::Value(std::move(counters));
  }
  {
    json::Object gauges;
    for (const auto& [name, g] : sorted_view(gauges_)) {
      gauges[name] = json::Value(g->value());
    }
    root["gauges"] = json::Value(std::move(gauges));
  }
  {
    json::Object histograms;
    for (const auto& [name, h] : sorted_view(histograms_)) {
      histograms[name] = h->to_json();
    }
    root["histograms"] = json::Value(std::move(histograms));
  }
  return json::Value(std::move(root));
}

void MetricsRegistry::reset() {
  const MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace dpisvc::obs
