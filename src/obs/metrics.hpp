// Observability instruments for the DPI service (§4.3.1 stress telemetry).
//
// The control plane steers load balancing, MCA² mitigation, and failover off
// signals exported by DPI service instances. Raw counters alone hide the
// distribution tail — a stressed instance shows up in its p99 scan latency
// long before its mean moves — so this module provides the three instrument
// kinds the service layers record into:
//
//   * Counter   — monotonically increasing event count (packets, bytes,
//                 anchor hits, regex evaluations);
//   * Gauge     — last-written level (flow-table occupancy, queue depth);
//   * Histogram — fixed-bucket latency/size distribution with p50/p90/p99
//                 extraction, recorded on the scan hot path.
//
// Hot-path cost model: every instrument write is a handful of relaxed
// atomic adds — no locks, no allocation. The MetricsRegistry mutex guards
// registration and snapshotting only; callers resolve their instruments once
// (at construction) and keep the returned references, which stay valid for
// the registry's lifetime. Snapshots taken while writers run are internally
// consistent per instrument but not across instruments (standard relaxed-
// counter semantics; the telemetry consumers tolerate a packet counted in
// one window and its bytes in the next).
//
// Compile-out: building with -DDPISVC_NO_METRICS (CMake option of the same
// name) turns every write into a no-op with zero code in the hot path, so
// the overhead of the observability layer itself can be measured
// (bench/bench_obs.cpp emits the on-vs-off comparison as BENCH_obs.json).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_safety.hpp"
#include "json/json.hpp"
#include "mc/sync.hpp"

namespace dpisvc::obs {

#if defined(DPISVC_NO_METRICS)
inline constexpr bool kMetricsCompiledIn = false;
#else
inline constexpr bool kMetricsCompiledIn = true;
#endif

/// Counter and Gauge are templated over the dpisvc_mc synchronization
/// facade (mc/sync.hpp) so the model checker can exhaustively explore the
/// snapshot-and-reset protocol — concurrent add() vs take() must never lose
/// or double-count an event — on the shipped code. Production uses the
/// RealSync default (plain std::atomic, identical codegen to the
/// pre-facade types).
template <typename Sync = mc::RealSync>
class BasicCounter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if constexpr (kMetricsCompiledIn) {
      value_.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Snapshot-and-reset in one atomic exchange: the telemetry window reader
  /// takes the accumulated count and zeroes the counter without a gap a
  /// concurrent add() could fall into. A load-then-store reset here would
  /// silently drop any add() that lands between the two — the exact lost-
  /// update the dpisvc_mc obs scenario proves cannot happen with take().
  std::uint64_t take() noexcept {
    return value_.exchange(0, std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  typename Sync::template Atomic<std::uint64_t> value_{0};
};

using Counter = BasicCounter<>;

template <typename Sync = mc::RealSync>
class BasicGauge {
 public:
  void set(std::int64_t v) noexcept {
    if constexpr (kMetricsCompiledIn) {
      value_.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  void add(std::int64_t d) noexcept {
    if constexpr (kMetricsCompiledIn) {
      value_.fetch_add(d, std::memory_order_relaxed);
    } else {
      (void)d;
    }
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  typename Sync::template Atomic<std::int64_t> value_{0};
};

using Gauge = BasicGauge<>;

/// Fixed-bucket histogram. Bucket i counts recorded values v with
/// bounds[i-1] < v <= bounds[i] (bucket 0: v <= bounds[0]); one implicit
/// overflow bucket counts v > bounds.back(). Bounds are fixed at
/// construction so record() is a binary search plus three relaxed adds.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing; throws
  /// std::invalid_argument otherwise.
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  /// Geometric bucket ladder: first, first*factor, ... (`count` bounds).
  static std::vector<std::uint64_t> exponential_bounds(std::uint64_t first,
                                                       double factor,
                                                       std::size_t count);
  /// Evenly spaced ladder: step, 2*step, ... (`count` bounds) — full
  /// resolution for small bounded quantities like ring fill levels and
  /// ingest batch sizes, where a geometric ladder would merge most of the
  /// interesting range into one bucket.
  static std::vector<std::uint64_t> linear_bounds(std::uint64_t step,
                                                  std::size_t count);
  /// The default ladder for nanosecond latencies: 1us .. ~67s, x2 steps.
  static std::vector<std::uint64_t> latency_bounds_ns();

  void record(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  double mean() const noexcept;

  /// Quantile estimate from the bucket counts, q in [0, 1]. Linear
  /// interpolation within the bucket that holds the rank; values in the
  /// overflow bucket report the last finite bound (a floor, not a guess).
  /// Returns 0 when the histogram is empty.
  double percentile(double q) const;

  const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }
  std::size_t num_buckets() const noexcept { return bounds_.size() + 1; }
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// Adds another histogram's bucket counts into this one (used to merge
  /// per-shard histograms into an instance-wide distribution). Throws
  /// std::invalid_argument when the bucket bounds differ.
  void merge_from(const Histogram& other);

  /// {"count":N,"sum":S,"p50":..,"p90":..,"p99":..,
  ///  "bounds":[...],"counts":[...]} — the wire shape TELEMETRY_REPORT
  /// embeds.
  json::Value to_json() const;

  void reset() noexcept;

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Named instrument directory. Registration and snapshot take the registry
/// mutex; the returned references are stable for the registry's lifetime,
/// so hot paths resolve once and record lock-free thereafter.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. A histogram name re-requested with different bounds
  /// returns the existing instrument (first registration wins).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> upper_bounds);

  /// Lookup without creation; nullptr when the name was never registered.
  const Histogram* find_histogram(const std::string& name) const;

  /// {"counters":{name:value},"gauges":{...},"histograms":{name:{...}}}.
  /// Names are emitted sorted so snapshots are byte-stable.
  json::Value snapshot() const;

  /// Resets every instrument to zero (counts only; bounds are kept).
  void reset();

 private:
  template <typename T>
  using Entries = std::vector<std::pair<std::string, std::unique_ptr<T>>>;

  mutable Mutex mu_;
  Entries<Counter> counters_ DPISVC_GUARDED_BY(mu_);
  Entries<Gauge> gauges_ DPISVC_GUARDED_BY(mu_);
  Entries<Histogram> histograms_ DPISVC_GUARDED_BY(mu_);
};

}  // namespace dpisvc::obs
