#include "obs/trace.hpp"

#include <algorithm>

namespace dpisvc::obs {

const char* trace_event_name(TraceEvent event) noexcept {
  switch (event) {
    case TraceEvent::kPacketIn:
      return "packet_in";
    case TraceEvent::kShardDispatch:
      return "shard_dispatch";
    case TraceEvent::kDfaScan:
      return "dfa_scan";
    case TraceEvent::kRegexEval:
      return "regex_eval";
    case TraceEvent::kVerdict:
      return "verdict";
  }
  return "unknown";
}

ScanTrace::ScanTrace(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ != 0) ring_.resize(capacity_);
}

void ScanTrace::record(TraceEvent event, std::uint64_t flow,
                       std::uint64_t offset, std::uint64_t value,
                       std::uint32_t shard, std::uint32_t chain) noexcept {
  if (!enabled()) return;
  const MutexLock lock(mu_);
  TraceRecord& slot = ring_[next_seq_ % capacity_];
  slot.seq = ++next_seq_;
  slot.flow = flow;
  slot.offset = offset;
  slot.value = value;
  slot.shard = shard;
  slot.chain = chain;
  slot.event = event;
}

std::vector<TraceRecord> ScanTrace::snapshot() const {
  std::vector<TraceRecord> out;
  if (!enabled()) return out;
  const MutexLock lock(mu_);
  const std::uint64_t held = std::min<std::uint64_t>(next_seq_, capacity_);
  out.reserve(held);
  for (std::uint64_t i = next_seq_ - held; i < next_seq_; ++i) {
    out.push_back(ring_[i % capacity_]);
  }
  return out;
}

std::uint64_t ScanTrace::total_recorded() const {
  const MutexLock lock(mu_);
  return next_seq_;
}

std::uint64_t ScanTrace::dropped() const {
  const MutexLock lock(mu_);
  return next_seq_ > capacity_ ? next_seq_ - capacity_ : 0;
}

json::Value ScanTrace::to_json() const {
  const auto records = snapshot();
  json::Object root;
  root["capacity"] = json::Value(static_cast<std::uint64_t>(capacity_));
  root["total"] = json::Value(total_recorded());
  root["dropped"] = json::Value(dropped());
  json::Array events;
  for (const auto& r : records) {
    json::Object e;
    e["seq"] = json::Value(r.seq);
    e["event"] = json::Value(trace_event_name(r.event));
    e["flow"] = json::Value(r.flow);
    e["offset"] = json::Value(r.offset);
    e["value"] = json::Value(r.value);
    e["shard"] = json::Value(static_cast<std::uint64_t>(r.shard));
    e["chain"] = json::Value(static_cast<std::uint64_t>(r.chain));
    events.emplace_back(std::move(e));
  }
  root["events"] = json::Value(std::move(events));
  return json::Value(std::move(root));
}

void ScanTrace::clear() {
  const MutexLock lock(mu_);
  next_seq_ = 0;
}

}  // namespace dpisvc::obs
