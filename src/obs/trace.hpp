// Structured scan tracing: a fixed-capacity ring of the most recent
// data-plane events. Where the metrics registry answers "how much / how
// slow", the trace answers "what exactly happened to this flow" — each
// record carries the event kind, flow id, shard, chain, byte offset, and a
// free-form value (bytes scanned, match count, queue-wait ns, ...), in the
// order the packet moved through the pipeline:
//
//   kPacketIn → kShardDispatch → kDfaScan → kRegexEval → kVerdict
//
// Capacity 0 disables tracing entirely (the default for production
// instances); `enabled()` is the hot-path guard so a disabled trace costs
// one branch. When the ring wraps, the oldest records are dropped and
// counted — snapshot() reports both totals so a consumer can tell how much
// history it is missing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_safety.hpp"
#include "json/json.hpp"

namespace dpisvc::obs {

enum class TraceEvent : std::uint8_t {
  kPacketIn = 0,
  kShardDispatch = 1,
  kDfaScan = 2,
  kRegexEval = 3,
  kVerdict = 4,
};

const char* trace_event_name(TraceEvent event) noexcept;

struct TraceRecord {
  std::uint64_t seq = 0;     ///< Monotonic sequence number (1-based).
  std::uint64_t flow = 0;    ///< Canonical five-tuple hash (0 = n/a).
  std::uint64_t offset = 0;  ///< Flow byte offset at the event.
  std::uint64_t value = 0;   ///< Event-specific payload (bytes, matches, ns).
  std::uint32_t shard = 0;
  std::uint32_t chain = 0;
  TraceEvent event = TraceEvent::kPacketIn;
};

class ScanTrace {
 public:
  /// capacity == 0 disables the trace (record() is a no-op).
  explicit ScanTrace(std::size_t capacity = 0);

  bool enabled() const noexcept { return capacity_ != 0; }
  std::size_t capacity() const noexcept { return capacity_; }

  void record(TraceEvent event, std::uint64_t flow, std::uint64_t offset,
              std::uint64_t value, std::uint32_t shard,
              std::uint32_t chain) noexcept;

  /// Records oldest → newest. Total/dropped counts via the out-params of
  /// to_json() or the accessors below.
  std::vector<TraceRecord> snapshot() const;

  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;

  /// {"capacity":C,"total":N,"dropped":D,"events":[{...}...]}.
  json::Value to_json() const;

  void clear();

 private:
  std::size_t capacity_;
  mutable Mutex mu_;
  // ring_[next_seq % capacity]; next_seq_ == total recorded
  std::vector<TraceRecord> ring_ DPISVC_GUARDED_BY(mu_);
  std::uint64_t next_seq_ DPISVC_GUARDED_BY(mu_) = 0;
};

}  // namespace dpisvc::obs
