#include "regex/anchors.hpp"

#include <algorithm>

namespace dpisvc::regex {

namespace {

class Extractor {
 public:
  explicit Extractor(const AnchorOptions& options) : options_(options) {}

  std::vector<std::string> run(const Node& root) {
    visit(root);
    flush();
    return std::move(anchors_);
  }

 private:
  void visit(const Node& node) {
    switch (node.kind) {
      case NodeKind::kEmpty:
        break;  // Matches "" — does not break an adjacent literal run.
      case NodeKind::kClass: {
        const int single = node.cls.single();
        if (single >= 0) {
          run_.push_back(static_cast<char>(single));
        } else {
          flush();  // Multi-byte class: content not a fixed literal.
        }
        break;
      }
      case NodeKind::kConcat:
        for (const NodePtr& child : node.children) {
          visit(*child);
        }
        break;
      case NodeKind::kAlternate:
        // A literal inside one branch is not mandatory for the whole
        // expression; terminate the current run and do not descend.
        flush();
        break;
      case NodeKind::kRepeat: {
        if (node.min == 0) {
          flush();  // Entirely optional.
          break;
        }
        const int copies = std::min(node.min, options_.max_repeat_unroll);
        for (int i = 0; i < copies; ++i) {
          visit(*node.child);
        }
        if (node.max != node.min || node.min > copies) {
          // Further (optional or un-unrolled) copies may extend the text
          // between the mandatory part and what follows.
          flush();
        }
        break;
      }
      case NodeKind::kLineStart:
      case NodeKind::kLineEnd:
        // Zero-width; consumes no bytes and cannot split a literal, but it
        // also cannot extend one.
        break;
    }
  }

  void flush() {
    if (run_.size() >= options_.min_length &&
        std::find(anchors_.begin(), anchors_.end(), run_) == anchors_.end()) {
      anchors_.push_back(run_);
    }
    run_.clear();
  }

  AnchorOptions options_;
  std::string run_;
  std::vector<std::string> anchors_;
};

}  // namespace

std::vector<std::string> extract_anchors(const Node& root,
                                         const AnchorOptions& options) {
  return Extractor(options).run(root);
}

std::vector<std::string> extract_anchors(std::string_view pattern,
                                         const ParseOptions& parse_options,
                                         const AnchorOptions& options) {
  NodePtr root = parse(pattern, parse_options);
  return extract_anchors(*root, options);
}

}  // namespace dpisvc::regex
