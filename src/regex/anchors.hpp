// Anchor extraction (§5.3).
//
// An *anchor* is a literal string that must appear in every match of a
// regular expression. The DPI service adds each middlebox's anchors to the
// shared Aho-Corasick pattern set and invokes the full regex engine only for
// expressions whose anchors were all found in the packet — the same
// pre-filter strategy Snort uses.
//
// The extractor walks the mandatory concatenation spine of the AST:
//  - single-byte character classes extend the current literal run;
//  - multi-byte classes, alternations, and optional parts (min == 0 repeats)
//    terminate the run (their content is not mandatory);
//  - repeats with min >= 1 contribute their child's mandatory literals
//    min times (capped to keep extraction linear).
// Runs of at least `min_length` bytes (default 4, as in the paper) become
// anchors. The guarantee is one-sided by construction: every anchor occurs
// in every string the regex matches, so the pre-filter can never suppress a
// true match.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "regex/ast.hpp"
#include "regex/parser.hpp"

namespace dpisvc::regex {

struct AnchorOptions {
  std::size_t min_length = 4;  ///< Paper: strings < 4 chars are not extracted.
  int max_repeat_unroll = 64;  ///< Cap on min-count unrolling inside repeats.
};

/// Returns the mandatory literal anchors of the expression, in left-to-right
/// order of their first mandatory occurrence. Duplicates are removed.
std::vector<std::string> extract_anchors(const Node& root,
                                         const AnchorOptions& options = {});

/// Parses `pattern` and extracts its anchors.
std::vector<std::string> extract_anchors(std::string_view pattern,
                                         const ParseOptions& parse_options = {},
                                         const AnchorOptions& options = {});

}  // namespace dpisvc::regex
