#include "regex/ast.hpp"

namespace dpisvc::regex {

NodePtr make_empty() {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kEmpty;
  return n;
}

NodePtr make_class(CharSet cls) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kClass;
  n->cls = cls;
  return n;
}

NodePtr make_literal(std::uint8_t byte) {
  CharSet cls;
  cls.add(byte);
  return make_class(cls);
}

NodePtr make_concat(std::vector<NodePtr> children) {
  if (children.empty()) return make_empty();
  if (children.size() == 1) return std::move(children.front());
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kConcat;
  n->children = std::move(children);
  return n;
}

NodePtr make_alternate(std::vector<NodePtr> children) {
  if (children.size() == 1) return std::move(children.front());
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kAlternate;
  n->children = std::move(children);
  return n;
}

NodePtr make_repeat(NodePtr child, int min, int max) {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kRepeat;
  n->child = std::move(child);
  n->min = min;
  n->max = max;
  return n;
}

NodePtr make_line_start() {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kLineStart;
  return n;
}

NodePtr make_line_end() {
  auto n = std::make_unique<Node>();
  n->kind = NodeKind::kLineEnd;
  return n;
}

}  // namespace dpisvc::regex
