// Regex abstract syntax tree.
//
// The DPI service uses regexes the way Snort does (§5.3): literal "anchor"
// strings are extracted and matched by the shared Aho-Corasick DFA, and the
// full expression is evaluated only when every anchor was seen. The AST is
// therefore shared by two consumers: the NFA compiler (regex/program.hpp)
// and the anchor extractor (regex/anchors.hpp).
//
// Supported syntax (byte-oriented, enough for published DPI rule sets):
//   literals, '.', escapes \n \r \t \f \v \0 \xHH \\ \. etc.,
//   classes [abc], [a-z], [^...], class escapes \d \D \w \W \s \S,
//   grouping (...) and (?:...), alternation |, repetition * + ? {m} {m,} {m,n}
//   (with non-greedy '?' suffix accepted and ignored: match *existence* is
//   greediness-independent), anchors ^ and $ (payload start/end).
#pragma once

#include <bitset>
#include <cstdint>
#include <memory>
#include <vector>

namespace dpisvc::regex {

/// A set of byte values; the single transition-label type in the engine.
struct CharSet {
  std::bitset<256> bits;

  bool contains(std::uint8_t b) const noexcept { return bits[b]; }
  void add(std::uint8_t b) noexcept { bits.set(b); }
  void add_range(std::uint8_t lo, std::uint8_t hi) noexcept {
    for (unsigned b = lo; b <= hi; ++b) bits.set(b);
  }
  void negate() noexcept { bits.flip(); }

  /// If the set holds exactly one byte, returns it; otherwise -1.
  int single() const noexcept {
    return bits.count() == 1 ? static_cast<int>(find_first()) : -1;
  }

  std::size_t find_first() const noexcept {
    for (std::size_t i = 0; i < 256; ++i) {
      if (bits[i]) return i;
    }
    return 256;
  }
};

enum class NodeKind {
  kEmpty,      ///< Matches the empty string.
  kClass,      ///< Matches one byte from `cls`.
  kConcat,     ///< children in sequence.
  kAlternate,  ///< one of children.
  kRepeat,     ///< child repeated [min, max] times; max < 0 means unbounded.
  kLineStart,  ///< '^' — start of payload.
  kLineEnd,    ///< '$' — end of payload.
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  NodeKind kind = NodeKind::kEmpty;
  CharSet cls;                    // kClass
  std::vector<NodePtr> children;  // kConcat / kAlternate
  NodePtr child;                  // kRepeat
  int min = 0;                    // kRepeat
  int max = -1;                   // kRepeat; -1 = unbounded
};

NodePtr make_empty();
NodePtr make_class(CharSet cls);
NodePtr make_literal(std::uint8_t byte);
NodePtr make_concat(std::vector<NodePtr> children);
NodePtr make_alternate(std::vector<NodePtr> children);
NodePtr make_repeat(NodePtr child, int min, int max);
NodePtr make_line_start();
NodePtr make_line_end();

}  // namespace dpisvc::regex
