#include "regex/matcher.hpp"

namespace dpisvc::regex {

Matcher::Matcher(Program program) : program_(std::move(program)) {}

bool Matcher::add_thread(ThreadList& list, std::uint32_t pc, std::size_t pos,
                         std::size_t len) const {
  // Iterative epsilon-closure with an explicit stack; the dedup marks in
  // `list` bound the work to O(program size) per input position.
  std::vector<std::uint32_t> stack{pc};
  bool matched = false;
  while (!stack.empty()) {
    const std::uint32_t at = stack.back();
    stack.pop_back();
    if (!list.add(at)) continue;
    const Inst& inst = program_.code()[at];
    switch (inst.op) {
      case Op::kJmp:
        stack.push_back(inst.x);
        break;
      case Op::kSplit:
        stack.push_back(inst.x);
        stack.push_back(inst.y);
        break;
      case Op::kLineStart:
        if (pos == 0) stack.push_back(at + 1);
        break;
      case Op::kLineEnd:
        if (pos == len) stack.push_back(at + 1);
        break;
      case Op::kMatch:
        matched = true;
        break;
      case Op::kByte:
        break;  // Stays in the list; consumed by the step loop.
    }
  }
  return matched;
}

std::optional<std::size_t> Matcher::search_end(BytesView input) const {
  return search_end(input, 0);
}

std::optional<std::size_t> Matcher::search_end(BytesView input,
                                               std::size_t min_end) const {
  ThreadList current;
  ThreadList next;
  current.mark.assign(program_.size(), 0);
  next.mark.assign(program_.size(), 0);

  current.begin_step();
  // Unanchored search: seed a thread at program start for position 0 and for
  // every later position (below). Completions at or before min_end are
  // suppressed, not returned; the per-position seeds keep later matches
  // reachable.
  if (add_thread(current, 0, 0, input.size()) && min_end == 0) return 0;

  for (std::size_t pos = 0; pos < input.size(); ++pos) {
    const std::uint8_t byte = input[pos];
    next.begin_step();
    bool matched = false;
    for (std::uint32_t pc : current.pcs) {
      const Inst& inst = program_.code()[pc];
      if (inst.op == Op::kByte && inst.cls.contains(byte)) {
        matched |= add_thread(next, pc + 1, pos + 1, input.size());
      }
    }
    // New thread starting at pos + 1 (unanchored).
    matched |= add_thread(next, 0, pos + 1, input.size());
    if (matched && pos + 1 > min_end) return pos + 1;
    std::swap(current, next);
  }
  return std::nullopt;
}

bool Matcher::search(BytesView input) const {
  return search_end(input).has_value();
}

bool Matcher::search(std::string_view input) const {
  return search(BytesView(reinterpret_cast<const std::uint8_t*>(input.data()),
                          input.size()));
}

bool regex_search(std::string_view pattern, std::string_view input,
                  const ParseOptions& options) {
  Matcher matcher(Program::compile(pattern, options));
  return matcher.search(input);
}

}  // namespace dpisvc::regex
