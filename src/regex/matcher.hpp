// Pike-VM execution of compiled regex programs.
//
// The DPI engine only needs *existence* semantics ("does this expression
// occur anywhere in the payload?"), which is what the paper's post-anchor
// PCRE invocation decides, so the VM implements unanchored search with O(n*m)
// worst-case time and no backtracking blowup (m = program size). This is the
// property that makes the engine safe to expose as a shared service: the
// complexity attacks discussed in §4.3.1 target backtracking engines and
// full-table DFA caches, not a thread-list NFA simulation.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "regex/program.hpp"

namespace dpisvc::regex {

class Matcher {
 public:
  explicit Matcher(Program program);

  /// True if the pattern matches anywhere in `input` (unanchored search;
  /// '^'/'$' in the pattern still pin to the payload boundaries).
  bool search(BytesView input) const;
  bool search(std::string_view input) const;

  /// Like search(), but returns the smallest end offset at which some match
  /// completes (the DPI engine reports this as the regex match position), or
  /// std::nullopt when there is no match.
  std::optional<std::size_t> search_end(BytesView input) const;

  /// Earliest match end strictly greater than `min_end`. The DPI engine's
  /// cross-packet evaluation scans a retained flow tail + the current packet
  /// and must ignore matches that complete inside the already-reported tail
  /// (a stale earliest match would otherwise shadow a fresh one); the VM
  /// keeps stepping past suppressed completions, so later matches are still
  /// found. search_end(input) == search_end(input, 0).
  std::optional<std::size_t> search_end(BytesView input,
                                        std::size_t min_end) const;

  const Program& program() const noexcept { return program_; }

 private:
  struct ThreadList {
    std::vector<std::uint32_t> pcs;
    std::vector<std::uint32_t> mark;  ///< generation tag per instruction
    std::uint32_t generation = 0;

    void begin_step() noexcept {
      pcs.clear();
      ++generation;
    }
    bool add(std::uint32_t pc) {
      if (mark[pc] == generation) return false;
      mark[pc] = generation;
      pcs.push_back(pc);
      return true;
    }
  };

  /// Adds pc and transitively follows non-consuming instructions.
  /// Returns true if a kMatch instruction was reached.
  bool add_thread(ThreadList& list, std::uint32_t pc, std::size_t pos,
                  std::size_t len) const;

  Program program_;
};

/// One-shot convenience: compile and search.
bool regex_search(std::string_view pattern, std::string_view input,
                  const ParseOptions& options = {});

}  // namespace dpisvc::regex
