#include "regex/parser.hpp"

#include <cctype>

namespace dpisvc::regex {

namespace {

CharSet digit_set() {
  CharSet s;
  s.add_range('0', '9');
  return s;
}

CharSet word_set() {
  CharSet s;
  s.add_range('a', 'z');
  s.add_range('A', 'Z');
  s.add_range('0', '9');
  s.add('_');
  return s;
}

CharSet space_set() {
  CharSet s;
  for (char c : {' ', '\t', '\n', '\r', '\f', '\v'}) {
    s.add(static_cast<std::uint8_t>(c));
  }
  return s;
}

CharSet dot_set() {
  // PCRE '.' without DOTALL excludes '\n'; DPI payloads are binary, and the
  // rule sets we model are written with DOTALL semantics, so '.' = any byte.
  CharSet s;
  s.negate();
  return s;
}

class Parser {
 public:
  Parser(std::string_view pattern, const ParseOptions& options)
      : pattern_(pattern), options_(options) {}

  NodePtr run() {
    NodePtr node = parse_alternation();
    if (pos_ != pattern_.size()) {
      fail("unbalanced ')'");
    }
    return node;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw SyntaxError(what, pos_);
  }

  bool at_end() const noexcept { return pos_ >= pattern_.size(); }

  char peek() const {
    if (at_end()) fail("unexpected end of pattern");
    return pattern_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  bool try_take(char c) {
    if (!at_end() && pattern_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  NodePtr parse_alternation() {
    std::vector<NodePtr> branches;
    branches.push_back(parse_concat());
    while (try_take('|')) {
      branches.push_back(parse_concat());
    }
    return make_alternate(std::move(branches));
  }

  NodePtr parse_concat() {
    std::vector<NodePtr> parts;
    while (!at_end() && peek() != '|' && peek() != ')') {
      parts.push_back(parse_repeat());
    }
    return make_concat(std::move(parts));
  }

  NodePtr parse_repeat() {
    NodePtr atom = parse_atom();
    while (!at_end()) {
      int min = 0;
      int max = -1;
      if (try_take('*')) {
        min = 0;
        max = -1;
      } else if (try_take('+')) {
        min = 1;
        max = -1;
      } else if (try_take('?')) {
        min = 0;
        max = 1;
      } else if (!at_end() && peek() == '{') {
        const std::size_t mark = pos_;
        if (!parse_counted(min, max)) {
          pos_ = mark;  // Literal '{' with no valid count spec.
          break;
        }
      } else {
        break;
      }
      try_take('?');  // Non-greedy suffix: existence matching ignores it.
      if (atom->kind == NodeKind::kLineStart ||
          atom->kind == NodeKind::kLineEnd) {
        fail("cannot repeat an anchor");
      }
      atom = make_repeat(std::move(atom), min, max);
    }
    return atom;
  }

  /// Parses "{m}", "{m,}", or "{m,n}". Returns false (without consuming) if
  /// the braces do not form a valid count spec.
  bool parse_counted(int& min, int& max) {
    take();  // '{'
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    min = parse_int();
    if (try_take('}')) {
      max = min;
    } else if (try_take(',')) {
      if (try_take('}')) {
        max = -1;
      } else {
        if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
          return false;
        }
        max = parse_int();
        if (!try_take('}')) return false;
        if (max < min) fail("repeat range {m,n} with n < m");
      }
    } else {
      return false;
    }
    const int bound = max < 0 ? min : max;
    if (bound > options_.max_counted_repeat) {
      fail("counted repetition exceeds limit");
    }
    return true;
  }

  int parse_int() {
    int value = 0;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      value = value * 10 + (take() - '0');
      if (value > 1000000) fail("repetition count too large");
    }
    return value;
  }

  NodePtr parse_atom() {
    char c = take();
    switch (c) {
      case '(': {
        // Accept non-capturing (?:...) and inline flags-free groups; we do
        // not implement capture groups (the DPI engine only needs existence).
        if (++group_depth_ > options_.max_group_depth) {
          fail("group nesting too deep");
        }
        if (try_take('?')) {
          if (!try_take(':')) fail("unsupported (?...) construct");
        }
        NodePtr inner = parse_alternation();
        if (!try_take(')')) fail("missing ')'");
        --group_depth_;
        return inner;
      }
      case '[':
        return make_class(parse_class());
      case '.':
        return make_class(dot_set());
      case '^':
        return make_line_start();
      case '$':
        return make_line_end();
      case '\\':
        return parse_escape();
      case '*':
      case '+':
      case '?':
        fail("repetition operator with nothing to repeat");
      default:
        return literal_node(static_cast<std::uint8_t>(c));
    }
  }

  NodePtr literal_node(std::uint8_t byte) {
    CharSet cls;
    cls.add(byte);
    if (options_.case_insensitive) {
      if (std::isupper(byte)) cls.add(static_cast<std::uint8_t>(std::tolower(byte)));
      if (std::islower(byte)) cls.add(static_cast<std::uint8_t>(std::toupper(byte)));
    }
    return make_class(cls);
  }

  NodePtr parse_escape() {
    CharSet cls;
    if (parse_class_escape(cls, /*in_class=*/false)) {
      return make_class(cls);
    }
    return literal_node(parse_literal_escape());
  }

  /// Handles \d \D \w \W \s \S. Returns false if the escape is not a class
  /// escape (caller then treats it as a literal escape).
  bool parse_class_escape(CharSet& out, bool in_class) {
    (void)in_class;
    if (at_end()) fail("trailing backslash");
    switch (peek()) {
      case 'd':
        out = digit_set();
        break;
      case 'D':
        out = digit_set();
        out.negate();
        break;
      case 'w':
        out = word_set();
        break;
      case 'W':
        out = word_set();
        out.negate();
        break;
      case 's':
        out = space_set();
        break;
      case 'S':
        out = space_set();
        out.negate();
        break;
      default:
        return false;
    }
    ++pos_;
    return true;
  }

  std::uint8_t parse_literal_escape() {
    char c = take();
    switch (c) {
      case 'n':
        return '\n';
      case 'r':
        return '\r';
      case 't':
        return '\t';
      case 'f':
        return '\f';
      case 'v':
        return '\v';
      case 'a':
        return '\a';
      case '0':
        return '\0';
      case 'x': {
        int value = 0;
        for (int i = 0; i < 2; ++i) {
          char h = take();
          value <<= 4;
          if (h >= '0' && h <= '9') {
            value |= h - '0';
          } else if (h >= 'a' && h <= 'f') {
            value |= h - 'a' + 10;
          } else if (h >= 'A' && h <= 'F') {
            value |= h - 'A' + 10;
          } else {
            --pos_;
            fail("invalid \\x escape");
          }
        }
        return static_cast<std::uint8_t>(value);
      }
      default:
        if (std::isalnum(static_cast<unsigned char>(c))) {
          --pos_;
          fail("unsupported escape");
        }
        return static_cast<std::uint8_t>(c);  // Escaped metacharacter.
    }
  }

  CharSet parse_class() {
    CharSet cls;
    const bool negated = try_take('^');
    bool first = true;
    while (true) {
      if (at_end()) fail("missing ']'");
      if (peek() == ']' && !first) {
        ++pos_;
        break;
      }
      first = false;
      std::uint8_t lo;
      if (peek() == '\\') {
        ++pos_;
        CharSet sub;
        if (parse_class_escape(sub, /*in_class=*/true)) {
          cls.bits |= sub.bits;
          continue;
        }
        lo = parse_literal_escape();
      } else {
        lo = static_cast<std::uint8_t>(take());
      }
      // Range "a-z"? A '-' immediately before ']' is a literal dash.
      if (!at_end() && peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        ++pos_;  // '-'
        std::uint8_t hi;
        if (peek() == '\\') {
          ++pos_;
          hi = parse_literal_escape();
        } else {
          hi = static_cast<std::uint8_t>(take());
        }
        if (hi < lo) fail("invalid class range");
        cls.add_range(lo, hi);
        if (options_.case_insensitive) {
          add_case_folded_range(cls, lo, hi);
        }
      } else {
        cls.add(lo);
        if (options_.case_insensitive) {
          if (std::isupper(lo)) cls.add(static_cast<std::uint8_t>(std::tolower(lo)));
          if (std::islower(lo)) cls.add(static_cast<std::uint8_t>(std::toupper(lo)));
        }
      }
    }
    if (negated) cls.negate();
    return cls;
  }

  static void add_case_folded_range(CharSet& cls, std::uint8_t lo,
                                    std::uint8_t hi) {
    for (int b = lo; b <= hi; ++b) {
      if (std::isupper(b)) cls.add(static_cast<std::uint8_t>(std::tolower(b)));
      if (std::islower(b)) cls.add(static_cast<std::uint8_t>(std::toupper(b)));
    }
  }

  std::string_view pattern_;
  ParseOptions options_;
  std::size_t pos_ = 0;
  int group_depth_ = 0;
};

}  // namespace

NodePtr parse(std::string_view pattern, const ParseOptions& options) {
  return Parser(pattern, options).run();
}

}  // namespace dpisvc::regex
