// Recursive-descent regex parser producing the AST in regex/ast.hpp.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "regex/ast.hpp"

namespace dpisvc::regex {

class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

struct ParseOptions {
  /// Case-insensitive matching (PCRE 'i' flag): literals and class entries
  /// are expanded to both cases at parse time.
  bool case_insensitive = false;
  /// Upper bound on counted-repetition expansion ({m,n}) to keep compiled
  /// programs bounded; exceeding it is a SyntaxError.
  int max_counted_repeat = 1000;
  /// Maximum group-nesting depth. Each '(' is one recursive-descent frame,
  /// so an adversarial "((((..." pattern converts directly into stack
  /// consumption; deeper patterns are rejected with SyntaxError. Real rule
  /// sets nest a handful of levels.
  int max_group_depth = 200;
};

/// Parses `pattern` into an AST. Throws SyntaxError on malformed input.
NodePtr parse(std::string_view pattern, const ParseOptions& options = {});

}  // namespace dpisvc::regex
