#include "regex/program.hpp"

#include <stdexcept>

namespace dpisvc::regex {

std::uint32_t Program::emit(Inst inst) {
  code_.push_back(std::move(inst));
  return static_cast<std::uint32_t>(code_.size() - 1);
}

// Emits code for `node` such that on success execution falls through to the
// instruction emitted right after the node's code. Returns the index of the
// node's first instruction (== code_.size() before the call).
std::uint32_t Program::compile_node(const Node& node) {
  const auto start = static_cast<std::uint32_t>(code_.size());
  switch (node.kind) {
    case NodeKind::kEmpty:
      break;
    case NodeKind::kClass: {
      Inst inst;
      inst.op = Op::kByte;
      inst.cls = node.cls;
      emit(inst);
      break;
    }
    case NodeKind::kConcat:
      for (const NodePtr& child : node.children) {
        compile_node(*child);
      }
      break;
    case NodeKind::kAlternate: {
      // split b1, (split b2, (... bn)); each branch ends with jmp END.
      std::vector<std::uint32_t> jumps_to_end;
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        const bool last = (i + 1 == node.children.size());
        std::uint32_t split_at = 0;
        if (!last) {
          Inst split;
          split.op = Op::kSplit;
          split_at = emit(split);
        }
        if (!last) code_[split_at].x = static_cast<std::uint32_t>(code_.size());
        compile_node(*node.children[i]);
        if (!last) {
          Inst jmp;
          jmp.op = Op::kJmp;
          jumps_to_end.push_back(emit(jmp));
          code_[split_at].y = static_cast<std::uint32_t>(code_.size());
        }
      }
      const auto end = static_cast<std::uint32_t>(code_.size());
      for (std::uint32_t j : jumps_to_end) {
        code_[j].x = end;
      }
      break;
    }
    case NodeKind::kRepeat: {
      for (int i = 0; i < node.min; ++i) {
        compile_node(*node.child);
      }
      if (node.max < 0) {
        // Kleene star of the remaining copies: L: split BODY, END.
        Inst split;
        split.op = Op::kSplit;
        const std::uint32_t loop = emit(split);
        code_[loop].x = static_cast<std::uint32_t>(code_.size());
        compile_node(*node.child);
        Inst jmp;
        jmp.op = Op::kJmp;
        jmp.x = loop;
        emit(jmp);
        code_[loop].y = static_cast<std::uint32_t>(code_.size());
      } else {
        // (max - min) optional copies; every split's bail-out edge goes to
        // the common END.
        std::vector<std::uint32_t> bails;
        for (int i = node.min; i < node.max; ++i) {
          Inst split;
          split.op = Op::kSplit;
          const std::uint32_t at = emit(split);
          code_[at].x = static_cast<std::uint32_t>(code_.size());
          bails.push_back(at);
          compile_node(*node.child);
        }
        const auto end = static_cast<std::uint32_t>(code_.size());
        for (std::uint32_t at : bails) {
          code_[at].y = end;
        }
      }
      break;
    }
    case NodeKind::kLineStart: {
      Inst inst;
      inst.op = Op::kLineStart;
      emit(inst);
      break;
    }
    case NodeKind::kLineEnd: {
      Inst inst;
      inst.op = Op::kLineEnd;
      emit(inst);
      break;
    }
  }
  return start;
}

Program Program::compile(const Node& root) {
  Program p;
  p.compile_node(root);
  Inst match;
  match.op = Op::kMatch;
  p.emit(match);
  return p;
}

Program Program::compile(std::string_view pattern,
                         const ParseOptions& options) {
  NodePtr root = parse(pattern, options);
  return compile(*root);
}

}  // namespace dpisvc::regex
