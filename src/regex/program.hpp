// Compiled regex program (Thompson NFA as bytecode) and its compiler.
//
// The instruction set follows the classic Pike-VM design: kByte consumes one
// input byte matched against a CharSet; kSplit forks execution; kJmp is an
// unconditional branch; kLineStart/kLineEnd are zero-width assertions; kMatch
// accepts. Counted repetitions {m,n} are expanded at compile time (bounded by
// ParseOptions::max_counted_repeat).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "regex/ast.hpp"
#include "regex/parser.hpp"

namespace dpisvc::regex {

enum class Op : std::uint8_t {
  kByte,       ///< if cls.contains(input) advance to next instruction
  kSplit,      ///< fork to `x` and `y`
  kJmp,        ///< jump to `x`
  kLineStart,  ///< zero-width: position == 0
  kLineEnd,    ///< zero-width: position == input size
  kMatch,      ///< accept
};

struct Inst {
  Op op = Op::kMatch;
  CharSet cls;   // kByte
  std::uint32_t x = 0;  // kSplit / kJmp target
  std::uint32_t y = 0;  // kSplit second target
};

class Program {
 public:
  const std::vector<Inst>& code() const noexcept { return code_; }
  std::size_t size() const noexcept { return code_.size(); }

  /// Compiles an AST into a program.
  static Program compile(const Node& root);

  /// Parses and compiles in one step.
  static Program compile(std::string_view pattern,
                         const ParseOptions& options = {});

 private:
  std::uint32_t emit(Inst inst);
  std::uint32_t compile_node(const Node& node);

  std::vector<Inst> code_;
};

}  // namespace dpisvc::regex
