// Concurrency primitives of the batched ingest pipeline (DESIGN.md §4h).
//
// These two counters ARE the ingest pipeline's inter-thread protocol; the
// rest of IngestPipeline is single-threaded producer code. They live in
// their own header, templated over the dpisvc_mc synchronization facade
// (mc/sync.hpp), so the model checker can instantiate the exact shipped
// algorithms over mc::ModelSync and exhaustively explore their
// interleavings, while production code (ingest.cpp) uses the RealSync
// default and compiles to the same plain std::atomic code as before.
//
// BatchPending — "are this batch's shard jobs done?":
//   the producer arms the counter with the job count BEFORE submitting any
//   job (arm() is relaxed: the ScanPool submit path provides the
//   happens-before edge to the workers); each worker job publishes its
//   results with a release decrement; the producer's acquire load of zero
//   therefore observes every result write before delivering the batch.
//
// LeaseCounter — "may this batch's arena be recycled?":
//   every BatchHandle copy holds one lease. A consumer thread that keeps a
//   handle keeps reading payload bytes out of the batch arena, so the
//   producer may reset the arena only after observing idle(). The release
//   decrement in drop() pairs with the acquire load in idle(): the
//   consumer's last payload read happens-before the producer's reset.
#pragma once

#include <atomic>
#include <cstdint>

#include "mc/sync.hpp"

namespace dpisvc::service {

/// Outstanding-shard-job counter for one ingest batch.
template <typename Sync = mc::RealSync>
class BatchPending {
 public:
  /// Producer, before any job of the new batch is submitted. Relaxed: the
  /// pool's job hand-off orders this store before the workers' decrements.
  void arm(std::uint32_t jobs) noexcept {
    pending_.store(jobs, std::memory_order_relaxed);
  }

  /// Worker, after writing its shard's results. The release pairs with
  /// all_done()'s acquire, publishing the result writes.
  void complete_one() noexcept {
    pending_.fetch_sub(1, std::memory_order_release);
  }

  /// Producer. True once every job completed; an acquire load so a true
  /// return licenses reading the results the workers wrote.
  bool all_done() const noexcept {
    return pending_.load(std::memory_order_acquire) == 0;
  }

 private:
  typename Sync::template Atomic<std::uint32_t> pending_{0};
};

/// Consumer-lease counter for one ingest batch's arena.
template <typename Sync = mc::RealSync>
class LeaseCounter {
 public:
  /// Taking a lease only keeps an already-reachable batch alive, so the
  /// increment carries no ordering obligation of its own.
  void take() noexcept { count_.fetch_add(1, std::memory_order_relaxed); }

  /// Dropping the last lease licenses the producer to reset the arena; the
  /// release pairs with idle()'s acquire so the consumer's payload reads
  /// happen-before the reset.
  void drop() noexcept { count_.fetch_sub(1, std::memory_order_release); }

  /// Producer-side recycle gate.
  bool idle() const noexcept {
    return count_.load(std::memory_order_acquire) == 0;
  }

 private:
  typename Sync::template Atomic<std::uint32_t> count_{0};
};

}  // namespace dpisvc::service
