#include "service/controller.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/invariant.hpp"
#include "common/logging.hpp"

namespace dpisvc::service {

DpiController::DpiController(StressConfig stress_config,
                             FailoverConfig failover_config)
    : monitor_(stress_config),
      failover_config_(failover_config),
      admission_accepted_(metrics_.counter("admission.accepted")),
      rej_decode_(metrics_.counter("admission.rejected.decode_error")),
      rej_duplicate_(metrics_.counter("admission.rejected.duplicate_rule")),
      rej_oversize_(metrics_.counter("admission.rejected.oversize_pattern")),
      rej_unknown_mbox_(
          metrics_.counter("admission.rejected.unknown_middlebox")),
      rej_unknown_rule_(metrics_.counter("admission.rejected.unknown_rule")),
      rej_invalid_regex_(metrics_.counter("admission.rejected.invalid_regex")),
      rej_over_budget_(metrics_.counter("admission.rejected.over_budget")),
      rej_other_(metrics_.counter("admission.rejected.other")),
      analysis_runs_(metrics_.counter("analysis.runs")),
      predicted_states_(metrics_.gauge("analysis.predicted_states")),
      predicted_memory_(metrics_.gauge("analysis.predicted_memory_bytes")) {}

void DpiController::set_admission_config(AdmissionConfig config) {
  const MutexLock lock(mu_);
  admission_ = std::move(config);
}

AdmissionConfig DpiController::admission_config() const {
  const MutexLock lock(mu_);
  return admission_;
}

// --- JSON channel ------------------------------------------------------------

json::Value DpiController::handle_message(const json::Value& request) {
  const MutexLock lock(mu_);
  std::string type;
  try {
    type = message_type(request);
  } catch (const std::exception& e) {
    rej_decode_.add();
    return error_response(e.what(), "decode-error");
  }
  try {
    // Telemetry messages are pure observability traffic: they never touch
    // the PatternDb, so they answer directly without an engine re-sync.
    if (type == "telemetry_report") {
      const TelemetryReport report = decode_telemetry_report(request);
      telemetry_reports_[report.instance] = report;
      InstanceTelemetry t;
      t.packets = report.packets;
      t.bytes = report.bytes;
      t.raw_hits = report.raw_hits;
      t.match_packets = report.match_packets;
      t.flow_evictions = report.flow_evictions;
      t.busy_seconds = report.busy_seconds;
      monitor_.report(report.instance, t);
      // A pushed report is proof of life for the failure detector.
      heartbeat_locked(report.instance);
      return ok_response();
    }
    if (type == "telemetry_query") {
      const TelemetryQuery query = decode_telemetry_query(request);
      return telemetry_json_locked(query.instance);
    }
    if (type == "register") {
      const RegisterRequest req = decode_register(request);
      if (db_.is_registered(req.profile.id)) {
        rej_duplicate_.add();
        return error_response(
            "middlebox " + std::to_string(req.profile.id) +
                " already registered",
            "duplicate-registration");
      }
      if (req.inherit_from && !db_.is_registered(*req.inherit_from)) {
        rej_unknown_mbox_.add();
        return error_response(
            "inherit_from names unregistered middlebox " +
                std::to_string(*req.inherit_from),
            "unknown-middlebox");
      }
      db_.register_middlebox(req.profile);
      if (req.inherit_from) {
        // §4.1 inheritance copies references to already-admitted distinct
        // patterns: no new distinct strings enter the combined engine, so
        // the inherited set is not re-analyzed or re-charged against the
        // admission budget.
        db_.inherit_patterns(req.profile.id, *req.inherit_from);
      }
      admission_accepted_.add();
      log(LogLevel::kInfo, "dpi-ctrl", "registered middlebox ",
          req.profile.id, " (", req.profile.name, ")");
    } else if (type == "add_patterns") {
      const AddPatternsRequest req = decode_add_patterns(request);
      json::Value rejection;
      if (!admit_patterns_locked(req, rejection)) {
        return rejection;
      }
      admission_accepted_.add();
    } else if (type == "remove_patterns") {
      const RemovePatternsRequest req = decode_remove_patterns(request);
      // Validate-then-apply: a request naming one unknown rule removes
      // nothing (the old mid-loop reject left earlier removals applied).
      for (dpi::PatternId rule : req.rules) {
        if (!db_.has_rule(req.middlebox, rule)) {
          rej_unknown_rule_.add();
          return error_response("unknown rule " + std::to_string(rule),
                                "unknown-rule");
        }
      }
      for (dpi::PatternId rule : req.rules) {
        if (!db_.remove_exact(req.middlebox, rule)) {
          db_.remove_regex(req.middlebox, rule);
        }
      }
    } else if (type == "unregister") {
      const UnregisterRequest req = decode_unregister(request);
      if (!db_.unregister_middlebox(req.middlebox)) {
        rej_unknown_mbox_.add();
        return error_response("middlebox not registered", "unknown-middlebox");
      }
      // Mirror the PatternDb's chain scrub in the controller's registry so
      // a later register_policy_chain cannot alias a stale sequence.
      for (auto& [chain, members] : chains_) {
        std::erase(members, req.middlebox);
      }
    } else {
      rej_decode_.add();
      return error_response("unknown message type: " + type,
                            "unknown-message-type");
    }
    sync_instances_locked();
    return ok_response();
  } catch (const dpi::PatternDbError& e) {
    // Typed PatternDb rejections reach here only on paths admission does
    // not pre-validate (defense in depth; the counters stay accurate).
    switch (e.code()) {
      case dpi::PatternDbError::Code::kDuplicateRule:
        rej_duplicate_.add();
        return error_response(e.what(), "duplicate-rule");
      case dpi::PatternDbError::Code::kPatternTooLong:
        rej_oversize_.add();
        return error_response(e.what(), "pattern-too-long");
    }
    rej_other_.add();
    return error_response(e.what());
  } catch (const json::TypeError& e) {
    rej_decode_.add();
    return error_response(e.what(), "decode-error");
  } catch (const std::invalid_argument& e) {
    // Remaining invalid_argument sources on this path are the request
    // decoders (malformed field values); PatternDbError was caught above.
    rej_decode_.add();
    return error_response(e.what(), "decode-error");
  } catch (const std::exception& e) {
    rej_other_.add();
    return error_response(e.what());
  }
}

obs::Counter& DpiController::counter_for_violation(const std::string& code) {
  if (code == "regex-syntax-error") return rej_invalid_regex_;
  if (code == "pattern-too-long") return rej_oversize_;
  if (code == "pattern-unknown-middlebox" ||
      code == "regex-unknown-middlebox" ||
      code == "chain-unknown-middlebox") {
    return rej_unknown_mbox_;
  }
  // Everything the budget (or a structural capacity limit) rejects that a
  // plain compile would have accepted — or blown up on.
  if (code == "states-over-budget" || code == "memory-over-budget" ||
      code == "regex-nfa-over-budget" || code == "regex-dfa-blowup" ||
      code == "regex-program-too-large" ||
      code == "middlebox-quota-exceeded" || code == "anchor-bits-exceeded" ||
      code == "regex-anchorless" || code == "regex-unbounded-repeat" ||
      code == "regex-large-class-repeat") {
    return rej_over_budget_;
  }
  return rej_other_;
}

bool DpiController::admit_patterns_locked(const AddPatternsRequest& req,
                                          json::Value& rejection) {
  if (!db_.is_registered(req.middlebox)) {
    rej_unknown_mbox_.add();
    rejection = error_response(
        "middlebox " + std::to_string(req.middlebox) + " not registered",
        "unknown-middlebox");
    return false;
  }
  // Structural pre-validation. Two jobs: give precise typed rejections for
  // the common failure classes, and guarantee the apply loop below cannot
  // throw (all-or-nothing semantics — the old code applied a prefix of the
  // request before the first PatternDb throw).
  std::set<dpi::PatternId> in_request;
  const auto structural = [&](dpi::PatternId rule, const std::string& bytes,
                              const char* what) -> bool {
    if (bytes.empty()) {
      rej_other_.add();
      rejection = error_response(
          std::string("empty ") + what + ": rule " + std::to_string(rule),
          "pattern-empty");
      return false;
    }
    if (bytes.size() > dpi::kMaxPatternBytes) {
      rej_oversize_.add();
      rejection = error_response(
          std::string(what) + " too long: rule " + std::to_string(rule),
          "pattern-too-long");
      return false;
    }
    if (db_.has_rule(req.middlebox, rule) || !in_request.insert(rule).second) {
      rej_duplicate_.add();
      rejection = error_response("duplicate rule " + std::to_string(rule),
                                 "duplicate-rule");
      return false;
    }
    return true;
  };
  for (const auto& p : req.exact) {
    if (!structural(p.rule, p.bytes, "pattern")) return false;
  }
  for (const auto& p : req.regex) {
    if (!structural(p.rule, p.expression, "regex")) return false;
  }
  if (admission_.enabled) {
    // Analyze the post-request world: current snapshot plus the candidate
    // patterns, against the same EngineConfig engine_for compiles with.
    dpi::EngineSpec candidate = db_.snapshot();
    for (const auto& p : req.exact) {
      dpi::ExactPatternSpec spec;
      spec.bytes = p.bytes;
      spec.middlebox = req.middlebox;
      spec.pattern_id = p.rule;
      candidate.exact_patterns.push_back(std::move(spec));
    }
    for (const auto& p : req.regex) {
      dpi::RegexPatternSpec spec;
      spec.expression = p.expression;
      spec.middlebox = req.middlebox;
      spec.pattern_id = p.rule;
      spec.case_insensitive = p.case_insensitive;
      candidate.regex_patterns.push_back(std::move(spec));
    }
    analysis::AnalysisOptions options;
    options.budget = admission_.budget;
    options.dfa_state_cap = admission_.dfa_state_cap;
    options.max_program_size = admission_.max_program_size;
    const analysis::PatternSetReport report =
        analysis::analyze(candidate, options);
    analysis_runs_.add();
    predicted_states_.set(
        static_cast<std::int64_t>(report.predicted_states));
    predicted_memory_.set(
        static_cast<std::int64_t>(report.predicted_memory_full));
    if (!report.admissible()) {
      const verify::Diagnostic& first = report.violations.front();
      counter_for_violation(first.code).add();
      json::Array diagnostics;
      diagnostics.reserve(report.violations.size());
      for (const auto& d : report.violations) {
        diagnostics.push_back(json::Value(
            json::obj({{"code", d.code}, {"message", d.message}})));
      }
      json::Object body = json::obj(
          {{"ok", false}, {"error", first.message}, {"code", first.code}});
      body["diagnostics"] = json::Value(std::move(diagnostics));
      rejection = json::Value(std::move(body));
      log(LogLevel::kWarn, "dpi-ctrl", "rejected add_patterns for middlebox ",
          req.middlebox, ": ", first.code);
      return false;
    }
  }
  // Apply. Pre-validation covered every PatternDb throw condition, so the
  // whole request lands or none of it does.
  for (const auto& p : req.exact) {
    db_.add_exact(req.middlebox, p.rule, p.bytes);
  }
  for (const auto& p : req.regex) {
    db_.add_regex(req.middlebox, p.rule, p.expression, p.case_insensitive);
  }
  return true;
}

// --- policy chains -------------------------------------------------------------

dpi::ChainId DpiController::register_policy_chain(
    const std::vector<dpi::MiddleboxId>& mboxes) {
  const MutexLock lock(mu_);
  for (const auto& [id, members] : chains_) {
    if (members == mboxes) return id;  // identical sequences share an id
  }
  for (dpi::MiddleboxId id : mboxes) {
    if (!db_.is_registered(id)) {
      throw std::invalid_argument(
          "register_policy_chain: middlebox not registered");
    }
  }
  const dpi::ChainId chain = next_chain_id_++;
  chains_[chain] = mboxes;
  db_.set_chain(chain, mboxes);
  sync_instances_locked();
  log(LogLevel::kInfo, "dpi-ctrl", "policy chain ", chain, " registered (",
      mboxes.size(), " middleboxes)");
  return chain;
}

std::map<dpi::ChainId, std::vector<dpi::MiddleboxId>>
DpiController::policy_chains() const {
  const MutexLock lock(mu_);
  return chains_;
}

// --- instances --------------------------------------------------------------------

std::shared_ptr<DpiInstance> DpiController::create_instance(
    const std::string& name, InstanceConfig config) {
  const MutexLock lock(mu_);
  if (instances_.count(name)) {
    throw std::invalid_argument("create_instance: duplicate name " + name);
  }
  if (!config.group.empty() && !groups_.count(config.group)) {
    throw std::invalid_argument("create_instance: undefined group " +
                                config.group);
  }
  auto inst = std::make_shared<DpiInstance>(name, config);
  instances_[name] = inst;
  last_heartbeat_[name] = epoch_ + 1;  // vouches for the upcoming window
  sync_instances_locked();
  // sync_instances only pushes on version change; force the initial load.
  if (!inst->has_engine() && compiled_version_ > 0) {
    inst->load_engine(engine_for(config.group, config.dedicated),
                      compiled_version_);
  }
  log(LogLevel::kInfo, "dpi-ctrl", "instance ", name, " created",
      config.dedicated ? " (dedicated)" : "");
  return inst;
}

bool DpiController::remove_instance(const std::string& name) {
  const MutexLock lock(mu_);
  if (instances_.erase(name) == 0) return false;
  monitor_.forget(name);
  last_heartbeat_.erase(name);
  failed_.erase(name);
  for (auto it = assignments_.begin(); it != assignments_.end();) {
    it = it->second == name ? assignments_.erase(it) : std::next(it);
  }
  return true;
}

std::shared_ptr<DpiInstance> DpiController::instance_locked(
    const std::string& name) const {
  auto it = instances_.find(name);
  return it == instances_.end() ? nullptr : it->second;
}

std::shared_ptr<DpiInstance> DpiController::instance(
    const std::string& name) const {
  const MutexLock lock(mu_);
  return instance_locked(name);
}

std::vector<std::string> DpiController::instance_names() const {
  const MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(instances_.size());
  for (const auto& [name, inst] : instances_) {
    out.push_back(name);
  }
  return out;
}

dpi::EngineSpec DpiController::group_spec(const dpi::EngineSpec& full,
                                          const std::string& group) const {
  if (group.empty()) return full;
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    throw std::invalid_argument("DpiController: undefined group " + group);
  }
  // Restrict to the group's chains, the middleboxes appearing on them, and
  // those middleboxes' patterns (§4.3).
  dpi::EngineSpec out;
  dpi::MiddleboxBitmap kept = 0;
  for (dpi::ChainId chain : it->second) {
    auto members = full.chains.find(chain);
    if (members == full.chains.end()) continue;  // chain since removed
    out.chains[chain] = members->second;
    for (dpi::MiddleboxId id : members->second) {
      kept |= dpi::bitmap_of(id);
    }
  }
  for (const auto& profile : full.middleboxes) {
    if (kept & dpi::bitmap_of(profile.id)) {
      out.middleboxes.push_back(profile);
    }
  }
  for (const auto& pattern : full.exact_patterns) {
    if (kept & dpi::bitmap_of(pattern.middlebox)) {
      out.exact_patterns.push_back(pattern);
    }
  }
  for (const auto& pattern : full.regex_patterns) {
    if (kept & dpi::bitmap_of(pattern.middlebox)) {
      out.regex_patterns.push_back(pattern);
    }
  }
  return out;
}

std::shared_ptr<const dpi::Engine> DpiController::engine_for(
    const std::string& group, bool compressed) {
  const auto key = std::make_pair(group, compressed);
  auto it = engine_cache_.find(key);
  if (it != engine_cache_.end()) return it->second;
  dpi::EngineConfig config;
  config.use_compressed_automaton = compressed;
  auto engine = dpi::Engine::compile(group_spec(cached_spec_, group), config);
  engine_cache_.emplace(key, engine);
  return engine;
}

void DpiController::compile_and_push() {
  cached_spec_ = db_.snapshot();
  engine_cache_.clear();
  compiled_version_ = db_.version();
  for (auto& [name, inst] : instances_) {
    if (failed_.count(name)) continue;  // unreachable; re-synced on recovery
    inst->load_engine(
        engine_for(inst->config().group, inst->config().dedicated),
        compiled_version_);
  }
}

void DpiController::sync_instances_locked() {
  if (compiled_version_ == db_.version() && compiled_version_ != 0) {
    // Engines current; push only to instances that missed the last compile.
    for (auto& [name, inst] : instances_) {
      if (failed_.count(name)) continue;
      if (inst->engine_version() != compiled_version_) {
        inst->load_engine(
            engine_for(inst->config().group, inst->config().dedicated),
            compiled_version_);
      }
    }
    return;
  }
  if (db_.version() == 0) return;  // nothing registered yet
  compile_and_push();
}

void DpiController::sync_instances() {
  const MutexLock lock(mu_);
  sync_instances_locked();
}

void DpiController::define_group(const std::string& name,
                                 std::vector<dpi::ChainId> chains) {
  const MutexLock lock(mu_);
  if (name.empty()) {
    throw std::invalid_argument("define_group: empty group name");
  }
  for (dpi::ChainId chain : chains) {
    if (!chains_.count(chain)) {
      throw std::invalid_argument("define_group: unknown chain");
    }
  }
  groups_[name] = std::move(chains);
  // Group membership changed: group engines must be rebuilt and re-pushed.
  if (compiled_version_ != 0) {
    compile_and_push();
  }
  log(LogLevel::kInfo, "dpi-ctrl", "group ", name, " defined");
}

std::map<std::string, std::vector<dpi::ChainId>> DpiController::groups()
    const {
  const MutexLock lock(mu_);
  return groups_;
}

// --- placement -----------------------------------------------------------------------

void DpiController::assign_chain(dpi::ChainId chain,
                                 const std::string& instance_name) {
  const MutexLock lock(mu_);
  if (!chains_.count(chain)) {
    throw std::invalid_argument("assign_chain: unknown chain");
  }
  if (!instances_.count(instance_name)) {
    throw std::invalid_argument("assign_chain: unknown instance");
  }
  assignments_[chain] = instance_name;
}

std::size_t DpiController::chains_assigned_to(const std::string& name) const {
  std::size_t n = 0;
  for (const auto& [chain, inst] : assignments_) {
    if (inst == name) ++n;
  }
  return n;
}

std::shared_ptr<DpiInstance> DpiController::least_loaded(
    bool dedicated) const {
  std::shared_ptr<DpiInstance> best;
  std::size_t best_load = 0;
  for (const auto& [name, inst] : instances_) {
    if (inst->config().dedicated != dedicated) continue;
    if (failed_.count(name)) continue;  // dead instances take no traffic
    const std::size_t load = chains_assigned_to(name);
    if (!best || load < best_load) {
      best = inst;
      best_load = load;
    }
  }
  return best;
}

std::shared_ptr<DpiInstance> DpiController::least_loaded_live(
    const std::map<std::string, std::size_t>& planned_load) const {
  // Prefer regular instances; fall back to dedicated ones rather than
  // leaving a chain unserved. `planned_load` adds reassignments already in
  // the plan being built so orphaned chains spread across targets.
  std::shared_ptr<DpiInstance> best;
  std::size_t best_load = 0;
  bool best_dedicated = true;
  for (const auto& [name, inst] : instances_) {
    if (failed_.count(name)) continue;
    const auto planned = planned_load.find(name);
    const std::size_t load =
        chains_assigned_to(name) +
        (planned == planned_load.end() ? 0 : planned->second);
    const bool dedicated = inst->config().dedicated;
    const bool better = !best || (best_dedicated && !dedicated) ||
                        (best_dedicated == dedicated && load < best_load);
    if (better) {
      best = inst;
      best_load = load;
      best_dedicated = dedicated;
    }
  }
  return best;
}

std::string DpiController::auto_assign_chain(dpi::ChainId chain) {
  const MutexLock lock(mu_);
  auto inst = least_loaded(/*dedicated=*/false);
  if (!inst) {
    throw std::logic_error("auto_assign_chain: no regular instance available");
  }
  if (!chains_.count(chain)) {
    throw std::invalid_argument("assign_chain: unknown chain");
  }
  assignments_[chain] = inst->instance_name();
  return inst->instance_name();
}

std::optional<std::string> DpiController::instance_for_chain_locked(
    dpi::ChainId chain) const {
  auto it = assignments_.find(chain);
  if (it == assignments_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> DpiController::instance_for_chain(
    dpi::ChainId chain) const {
  const MutexLock lock(mu_);
  return instance_for_chain_locked(chain);
}

std::map<dpi::ChainId, std::string> DpiController::assignments() const {
  const MutexLock lock(mu_);
  return assignments_;
}

std::map<std::string, TelemetryReport> DpiController::telemetry_reports()
    const {
  const MutexLock lock(mu_);
  return telemetry_reports_;
}

json::Value DpiController::telemetry_json_locked(
    const std::string& filter) const {
  json::Object instances;
  // Reports pushed over the JSON channel (possibly from instances this
  // controller does not host) ...
  for (const auto& [name, report] : telemetry_reports_) {
    if (!filter.empty() && name != filter) continue;
    instances[name] = encode(report);
  }
  // ... overlaid by fresh state for in-process instances, which is always
  // current.
  for (const auto& [name, inst] : instances_) {
    if (!filter.empty() && name != filter) continue;
    instances[name] = encode(make_telemetry_report(*inst));
  }
  json::Object root;
  root["ok"] = json::Value(true);
  root["instances"] = json::Value(std::move(instances));
  // Control-plane self-telemetry: admission/rejection counters and the
  // latest analysis predictions, in the standard obs snapshot shape.
  root["controller"] = metrics_.snapshot();
  return json::Value(std::move(root));
}

json::Value DpiController::telemetry_json(const std::string& filter) const {
  const MutexLock lock(mu_);
  return telemetry_json_locked(filter);
}

// --- MCA² ------------------------------------------------------------------------------

void DpiController::collect_telemetry() {
  const MutexLock lock(mu_);
  ++epoch_;
  for (auto& [name, inst] : instances_) {
    if (failed_.count(name)) continue;  // no fresh telemetry from the dead
    monitor_.report(name, inst->telemetry());
    const auto beat = last_heartbeat_.find(name);
    const std::uint64_t last = beat == last_heartbeat_.end() ? 0 : beat->second;
    if (epoch_ - last >= failover_config_.miss_windows) {
      failed_.insert(name);
      log(LogLevel::kWarn, "dpi-ctrl", "instance ", name, " declared failed (",
          epoch_ - last, " windows without heartbeat)");
    }
  }
}

MitigationPlan DpiController::evaluate_mitigation() {
  const MutexLock lock(mu_);
  MitigationPlan plan;
  plan.stressed_instances = monitor_.stressed_instances();
  if (plan.stressed_instances.empty()) return plan;
  auto dedicated = least_loaded(/*dedicated=*/true);
  if (!dedicated) {
    log(LogLevel::kWarn, "dpi-ctrl",
        "stress detected but no dedicated instance is deployed");
    return plan;
  }
  for (const std::string& name : plan.stressed_instances) {
    auto inst = instance_locked(name);
    if (!inst || inst->config().dedicated) continue;
    // Divert the chains whose traffic carries the heavy signal (§4.3.1:
    // "migrates the heavy flows, which are suspected to be malicious").
    for (const auto& [chain, chain_stats] : inst->chain_telemetry()) {
      const auto assigned = instance_for_chain_locked(chain);
      if (!assigned || *assigned != name) continue;
      if (chain_stats.hits_per_byte() >
          monitor_.config().hits_per_byte_threshold) {
        plan.migrations.push_back(
            Migration{chain, name, dedicated->instance_name()});
      }
    }
  }
  return plan;
}

std::size_t DpiController::apply_mitigation(const MitigationPlan& plan) {
  std::size_t moved = 0;
  // Routing notifications collected under the lock, fired after release so
  // a TSA listener can re-enter the controller without deadlocking.
  std::vector<std::pair<dpi::ChainId, std::string>> rerouted;
  std::function<void(dpi::ChainId, const std::string&)> listener;
  {
    const MutexLock lock(mu_);
    listener = routing_listener_;
    for (const Migration& m : plan.migrations) {
      auto it = assignments_.find(m.chain);
      if (it == assignments_.end() || it->second != m.from_instance) continue;
      DPISVC_ASSERT_INVARIANT(instances_.count(m.to_instance) != 0,
                              "mitigation must divert to a known instance");
      it->second = m.to_instance;
      ++moved;
      rerouted.emplace_back(m.chain, m.to_instance);
      log(LogLevel::kInfo, "dpi-ctrl", "migrated chain ", m.chain, " from ",
          m.from_instance, " to ", m.to_instance);
    }
  }
  if (listener) {
    for (const auto& [chain, to] : rerouted) listener(chain, to);
  }
  return moved;
}

bool DpiController::migrate_flow(const net::FiveTuple& flow,
                                 const std::string& from,
                                 const std::string& to) {
  if (from == to) return false;  // nothing to move; refuse the no-op
  std::shared_ptr<DpiInstance> src;
  std::shared_ptr<DpiInstance> dst;
  {
    const MutexLock lock(mu_);
    src = instance_locked(from);
    dst = instance_locked(to);
  }
  if (!src || !dst) return false;
  if (src->engine_version() != dst->engine_version()) {
    // DFA state ids are engine-relative; a mismatch would corrupt the scan.
    log(LogLevel::kWarn, "dpi-ctrl",
        "flow migration refused: engine version mismatch");
    return false;
  }
  const dpi::FlowCursor cursor = src->export_flow(flow);
  if (!cursor.valid) return false;
  dst->import_flow(flow, cursor);
  return true;
}

// --- failure detection + failover -------------------------------------------

void DpiController::heartbeat_locked(const std::string& name) {
  if (!instances_.count(name)) return;
  // A heartbeat vouches for the *upcoming* telemetry window: collection
  // increments the epoch before checking, so storing epoch_ + 1 makes a
  // fresh heartbeat read as zero missed windows.
  last_heartbeat_[name] = epoch_ + 1;
}

void DpiController::heartbeat(const std::string& name) {
  const MutexLock lock(mu_);
  heartbeat_locked(name);
}

FailoverPlan DpiController::evaluate_failover() {
  const MutexLock lock(mu_);
  FailoverPlan plan;
  for (const std::string& dead : failed_) {
    std::vector<dpi::ChainId> orphaned;
    for (const auto& [chain, owner] : assignments_) {
      if (owner == dead) orphaned.push_back(chain);
    }
    if (orphaned.empty()) continue;
    plan.failed_instances.push_back(dead);
    // Count chains per target so flow state follows the majority of the
    // dead instance's traffic.
    std::map<std::string, std::size_t> target_chains;
    for (dpi::ChainId chain : orphaned) {
      auto target = least_loaded_live(target_chains);
      if (!target) {
        log(LogLevel::kWarn, "dpi-ctrl", "no live instance to take chain ",
            chain, " from failed ", dead);
        continue;
      }
      DPISVC_ASSERT_INVARIANT(failed_.count(target->instance_name()) == 0,
                              "failover must never target a failed instance");
      plan.reassignments.push_back(
          Migration{chain, dead, target->instance_name()});
      ++target_chains[target->instance_name()];
    }
    std::string flow_target;
    std::size_t best = 0;
    for (const auto& [name, count] : target_chains) {
      if (count > best) {
        best = count;
        flow_target = name;
      }
    }
    plan.flow_targets[dead] = flow_target;
  }
  return plan;
}

FailoverResult DpiController::apply_failover(const FailoverPlan& plan) {
  FailoverResult result;
  std::vector<std::pair<dpi::ChainId, std::string>> rerouted;
  std::function<void(dpi::ChainId, const std::string&)> listener;
  {
    const MutexLock lock(mu_);
    listener = routing_listener_;
    for (const Migration& m : plan.reassignments) {
      auto it = assignments_.find(m.chain);
      if (it == assignments_.end() || it->second != m.from_instance) continue;
      DPISVC_ASSERT_INVARIANT(
          failed_.count(m.to_instance) == 0,
          "failover must reassign chains to live instances");
      it->second = m.to_instance;
      ++result.chains_reassigned;
      rerouted.emplace_back(m.chain, m.to_instance);
      log(LogLevel::kInfo, "dpi-ctrl", "failover: chain ", m.chain, " moved ",
          m.from_instance, " -> ", m.to_instance);
    }
    for (const auto& [dead, target] : plan.flow_targets) {
      auto src = instance_locked(dead);
      if (!src) continue;
      if (target.empty() || target == dead) {
        result.flows_lost += src->active_flows();
        continue;
      }
      auto dst = instance_locked(target);
      if (!dst) {
        result.flows_lost += src->active_flows();
        continue;
      }
      if (src->engine_version() != dst->engine_version()) {
        // DFA state ids are engine-relative; a mismatch would corrupt the
        // scan.
        log(LogLevel::kWarn, "dpi-ctrl",
            "failover flow migration refused: engine version mismatch");
        result.flows_lost += src->active_flows();
        continue;
      }
      // Bulk hand-off: drain the dead instance shard by shard and install
      // the cursors on the target's own shards in one pass, instead of a
      // per-flow export/import round trip.
      auto flows = src->export_all_flows();
      std::vector<std::pair<net::FiveTuple, dpi::FlowCursor>> live;
      live.reserve(flows.size());
      for (auto& entry : flows) {
        if (entry.second.valid) {
          live.push_back(std::move(entry));
        } else {
          ++result.flows_lost;
        }
      }
      dst->import_flows(live);
      result.flows_migrated += live.size();
    }
  }
  if (listener) {
    for (const auto& [chain, to] : rerouted) listener(chain, to);
  }
  return result;
}

bool DpiController::recover_instance(const std::string& name) {
  const MutexLock lock(mu_);
  auto inst = instance_locked(name);
  if (!inst) return false;
  // Engine first: the instance must scan with the current pattern-set
  // version before any chain can route to it again.
  sync_instances_locked();
  if (compiled_version_ != 0 && inst->engine_version() != compiled_version_) {
    inst->load_engine(
        engine_for(inst->config().group, inst->config().dedicated),
        compiled_version_);
  }
  failed_.erase(name);
  last_heartbeat_[name] = epoch_ + 1;
  log(LogLevel::kInfo, "dpi-ctrl", "instance ", name, " recovered at epoch ",
      epoch_);
  return true;
}

}  // namespace dpisvc::service
