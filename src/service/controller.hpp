// The DPI controller (§4.1, §4.3) — the logically-centralized brain of the
// service.
//
// Responsibilities, mapped to the paper:
//  - middlebox registration and pattern-set management over JSON messages,
//    backed by the ref-counted global PatternDb (§4.1);
//  - policy-chain registry: the TSA hands over middlebox-type sequences and
//    gets back the chain identifier the steering tag carries (§4.1: "It
//    assigns each policy chain a unique identifier that is used later by
//    the DPI service instances to indicate which pattern matching should be
//    performed");
//  - instance lifecycle: creating instances, compiling the combined engine
//    from the current PatternDb snapshot and pushing it to stale instances
//    (§4.1 "initializing DPI service instances", §5.1);
//  - chain-to-instance placement with least-loaded assignment (§4.3);
//  - MCA² orchestration: collecting instance telemetry into the stress
//    monitor, and producing/applying mitigation plans that divert heavy
//    chains to dedicated instances (§4.3.1, Figure 6).
//
// Data-plane routing changes implied by placement decisions are exposed as
// plain data (chain -> instance name) so any TSA implementation — our
// netsim one or a test harness — can realize them.
//
// Concurrency: one control-plane mutex (mu_) serializes every registry the
// controller owns (chains, instances, assignments, groups, engine cache,
// failure-detection state). Public entry points take the lock; private
// *_locked helpers carry a REQUIRES(mu_) contract that Clang's thread-safety
// analysis enforces under DPISVC_THREAD_SAFETY. Lock order: mu_ may be held
// while calling into a DpiInstance (instance control_mu_, then a shard
// mutex), never the reverse — see common/thread_safety.hpp. The routing
// listener is invoked with no controller lock held (notifications are
// collected under the lock and fired after release), so a TSA callback may
// re-enter the controller without deadlocking.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "common/thread_safety.hpp"
#include "dpi/pattern_db.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "service/instance.hpp"
#include "service/mca2.hpp"
#include "service/messages.hpp"

namespace dpisvc::service {

/// One chain reassignment produced by MCA² mitigation.
struct Migration {
  dpi::ChainId chain = 0;
  std::string from_instance;
  std::string to_instance;
};

struct MitigationPlan {
  std::vector<std::string> stressed_instances;
  std::vector<Migration> migrations;

  bool empty() const noexcept { return migrations.empty(); }
};

/// Static-analysis admission control for the JSON registration channel.
/// Every add_patterns request is analyzed (src/analysis) against the budget
/// before the PatternDb is touched; over-budget or invalid requests are
/// rejected fail-closed with a stable diagnostic code while already-admitted
/// tenants keep scanning on the current engine.
struct AdmissionConfig {
  /// Disabling skips the predictive analysis only; structural validation
  /// (oversize patterns, duplicate rules, unknown middleboxes) always runs.
  bool enabled = true;
  analysis::AnalysisBudget budget;
  /// Per-expression exploration caps forwarded to the analyzer.
  std::size_t dfa_state_cap = 2048;
  std::size_t max_program_size = 1u << 20;
};

/// Failure-detection knobs (§4.3: instance pools / failover).
struct FailoverConfig {
  /// Consecutive telemetry windows without a heartbeat before an instance
  /// is declared failed.
  std::size_t miss_windows = 3;
};

/// Recovery plan for failed instances: their chains are reassigned to live
/// instances (least-loaded, preferring regular over dedicated), and each
/// failed instance's surviving flow state is migrated to the target that
/// received most of its chains.
struct FailoverPlan {
  std::vector<std::string> failed_instances;   ///< newly handled failures
  std::vector<Migration> reassignments;        ///< chain -> new instance
  /// Per failed instance, where its flow state should migrate ("" = lost).
  std::map<std::string, std::string> flow_targets;

  bool empty() const noexcept {
    return failed_instances.empty() && reassignments.empty();
  }
};

/// Outcome of apply_failover, for operators and tests.
struct FailoverResult {
  std::size_t chains_reassigned = 0;
  std::size_t flows_migrated = 0;
  std::size_t flows_lost = 0;  ///< state that could not be migrated
};

class DpiController {
 public:
  explicit DpiController(StressConfig stress_config = {},
                         FailoverConfig failover_config = {});

  // --- middlebox-facing JSON channel (§4.1) --------------------------------

  /// Handles one protocol message; never throws — errors come back as
  /// {"ok":false,"error":...} responses. Registration-path rejections carry
  /// a stable "code" field and, for admission-analysis rejections, a
  /// "diagnostics" array of {code,message} findings.
  json::Value handle_message(const json::Value& request);

  /// Admission-control configuration. The budget applies to the *next*
  /// registration message; already-admitted patterns are never re-judged.
  void set_admission_config(AdmissionConfig config);
  AdmissionConfig admission_config() const;

  /// Control-plane metrics: admission.accepted, admission.rejected.* typed
  /// rejection counters, analysis.runs, analysis.predicted_* gauges. Same
  /// external-synchronization contract as db() — the registry's own
  /// instruments are thread-safe.
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Direct PatternDb access for setup-time configuration and test
  /// introspection. The reference bypasses mu_, so concurrent use against a
  /// running controller requires external synchronization; the controller's
  /// own mutations (handle_message, register_policy_chain) happen under its
  /// lock.
  dpi::PatternDb& db() noexcept { return db_; }
  const dpi::PatternDb& db() const noexcept { return db_; }

  // --- policy chains (TSA-facing) -------------------------------------------

  /// Registers a policy chain (sequence of middlebox type ids that use the
  /// DPI service) and returns its identifier. Identical sequences share an
  /// id.
  dpi::ChainId register_policy_chain(const std::vector<dpi::MiddleboxId>& mboxes);

  /// Snapshot of the chain registry (a copy: the live map is guarded by the
  /// controller lock and may change under a reference).
  std::map<dpi::ChainId, std::vector<dpi::MiddleboxId>> policy_chains() const;

  // --- instances --------------------------------------------------------------

  /// Creates (and tracks) an instance; it receives the current engine
  /// immediately. Dedicated instances get the compressed-automaton engine.
  std::shared_ptr<DpiInstance> create_instance(const std::string& name,
                                               InstanceConfig config = {});

  bool remove_instance(const std::string& name);

  std::shared_ptr<DpiInstance> instance(const std::string& name) const;
  std::vector<std::string> instance_names() const;

  /// Recompiles engines if the PatternDb changed and pushes them to stale
  /// instances. Called automatically by handle_message and create_instance;
  /// public for direct-API users.
  void sync_instances();

  // --- placement (§4.3) ---------------------------------------------------------

  /// Pins a chain to an instance.
  void assign_chain(dpi::ChainId chain, const std::string& instance_name);

  /// Least-loaded automatic placement over non-dedicated instances (load =
  /// number of chains currently assigned).
  std::string auto_assign_chain(dpi::ChainId chain);

  // --- deployment groups (§4.3) ---------------------------------------------
  // "A common deployment choice is to group together similar policy chains
  //  and to deploy instances that support only one group and not all the
  //  policy chains in the system."

  /// Defines (or redefines) a deployment group over existing chains.
  /// Instances created with InstanceConfig::group == `name` receive an
  /// engine restricted to these chains' middleboxes and patterns.
  void define_group(const std::string& name,
                    std::vector<dpi::ChainId> chains);

  /// Snapshot of the group registry (copy; see policy_chains()).
  std::map<std::string, std::vector<dpi::ChainId>> groups() const;

  std::optional<std::string> instance_for_chain(dpi::ChainId chain) const;

  /// Snapshot of chain -> instance placement (copy; see policy_chains()).
  std::map<dpi::ChainId, std::string> assignments() const;

  // --- MCA² (§4.3.1) ---------------------------------------------------------------

  /// Snapshots every live instance's telemetry into the stress monitor
  /// (one monitoring window). Also closes a failure-detection epoch: any
  /// instance that has not heartbeated for FailoverConfig::miss_windows
  /// consecutive windows is declared failed.
  void collect_telemetry();

  /// Aggregated telemetry as the TELEMETRY_QUERY response body:
  /// {"ok":true,"instances":{name:{...telemetry_report...}}}. Pushed
  /// reports (telemetry_report messages) are overlaid by fresh state from
  /// in-process instances. `instance` filters to one name; empty = all.
  json::Value telemetry_json(const std::string& instance = "") const;

  /// Raw pushed reports, keyed by instance name (tests / introspection;
  /// copy, see policy_chains()).
  std::map<std::string, TelemetryReport> telemetry_reports() const;

  /// Direct monitor access for setup-time tuning and test introspection;
  /// same external-synchronization contract as db().
  StressMonitor& stress_monitor() noexcept { return monitor_; }

  /// Builds a plan diverting heavy chains on stressed instances to the
  /// least-loaded dedicated instance. Empty if nothing is stressed or no
  /// dedicated instance exists.
  MitigationPlan evaluate_mitigation();

  /// Applies a plan: reassigns the chains. Returns the number of chains
  /// moved. (The caller propagates the change to its TSA so the data plane
  /// follows; see netsim examples.)
  std::size_t apply_mitigation(const MitigationPlan& plan);

  /// Moves one flow's scan state between instances (§4.3 flow migration).
  /// Fails cleanly (returns false, moves nothing) when: `from` or `to` does
  /// not name a known instance, `from == to`, the two instances run
  /// different engine versions (DFA state ids are engine-relative), or the
  /// flow has no state in the source's flow table. Never throws.
  bool migrate_flow(const net::FiveTuple& flow, const std::string& from,
                    const std::string& to);

  // --- failure detection + failover (§4.3, §7) ------------------------------

  /// Records that `name` was alive this window (the liveness channel; in
  /// netsim the harness heartbeats every non-crashed instance node each
  /// window). Unknown names are ignored.
  void heartbeat(const std::string& name);

  /// Telemetry windows observed so far (the failure-detection clock).
  std::uint64_t epoch() const {
    const MutexLock lock(mu_);
    return epoch_;
  }

  bool is_failed(const std::string& name) const {
    const MutexLock lock(mu_);
    return failed_.count(name) > 0;
  }
  std::vector<std::string> failed_instances() const {
    const MutexLock lock(mu_);
    return {failed_.begin(), failed_.end()};
  }

  /// Builds a plan reassigning every failed instance's chains to live
  /// instances via least-loaded placement (regular instances preferred,
  /// dedicated as a last resort). Chains with no live instance available
  /// stay put and are retried on the next evaluation.
  FailoverPlan evaluate_failover();

  /// Applies a plan: reassigns the chains, migrates each failed instance's
  /// surviving flow state to its flow target, and pushes one routing update
  /// per reassigned chain to the routing listener so the data plane follows.
  FailoverResult apply_failover(const FailoverPlan& plan);

  /// Brings a restarted instance back: clears its failed state, re-syncs
  /// its engine to the current version *before* it may take traffic again,
  /// and heartbeats it. Returns false for unknown instances.
  bool recover_instance(const std::string& name);

  /// Invoked with (chain, new_instance) whenever apply_mitigation or
  /// apply_failover moves a chain — the hook a TSA uses to reroute the
  /// data plane. The listener runs with no controller lock held, so it may
  /// call back into the controller.
  void set_routing_listener(
      std::function<void(dpi::ChainId, const std::string&)> listener) {
    const MutexLock lock(mu_);
    routing_listener_ = std::move(listener);
  }

  const FailoverConfig& failover_config() const noexcept {
    return failover_config_;
  }

 private:
  // Private helpers run under the controller lock taken by their public
  // entry point; the REQUIRES(mu_) contracts make that assumption
  // compiler-checked under DPISVC_THREAD_SAFETY.
  void sync_instances_locked() DPISVC_REQUIRES(mu_);
  void compile_and_push() DPISVC_REQUIRES(mu_);
  std::shared_ptr<const dpi::Engine> engine_for(const std::string& group,
                                                bool compressed)
      DPISVC_REQUIRES(mu_);
  dpi::EngineSpec group_spec(const dpi::EngineSpec& full,
                             const std::string& group) const
      DPISVC_REQUIRES(mu_);
  std::shared_ptr<DpiInstance> least_loaded(bool dedicated) const
      DPISVC_REQUIRES(mu_);
  std::shared_ptr<DpiInstance> least_loaded_live(
      const std::map<std::string, std::size_t>& planned_load) const
      DPISVC_REQUIRES(mu_);
  std::size_t chains_assigned_to(const std::string& name) const
      DPISVC_REQUIRES(mu_);
  std::shared_ptr<DpiInstance> instance_locked(const std::string& name) const
      DPISVC_REQUIRES(mu_);
  std::optional<std::string> instance_for_chain_locked(dpi::ChainId chain) const
      DPISVC_REQUIRES(mu_);
  json::Value telemetry_json_locked(const std::string& filter) const
      DPISVC_REQUIRES(mu_);
  void heartbeat_locked(const std::string& name) DPISVC_REQUIRES(mu_);
  /// Validates then applies one add_patterns request. On rejection returns
  /// false with `rejection` set to the typed error response and the matching
  /// admission.rejected.* counter bumped; on success the PatternDb holds
  /// every pattern of the request (all-or-nothing).
  bool admit_patterns_locked(const AddPatternsRequest& req,
                             json::Value& rejection) DPISVC_REQUIRES(mu_);
  /// Maps an analyzer violation code to the typed rejection counter it
  /// increments (budget-class codes -> over_budget, syntax -> invalid_regex,
  /// unknown-middlebox codes -> unknown_middlebox, everything else -> other).
  obs::Counter& counter_for_violation(const std::string& code);

  /// Serializes all controller registries below. Held across calls into
  /// DpiInstance (the hierarchy permits mu_ -> control_mu_ -> shard mu);
  /// released before the routing listener fires.
  mutable Mutex mu_;

  /// db_ and monitor_ are deliberately unannotated: db() and
  /// stress_monitor() hand out references for setup-time use, which the
  /// capability model cannot express without blanketing callers in escape
  /// hatches. The controller's own accesses all happen under mu_.
  dpi::PatternDb db_;
  StressMonitor monitor_;
  /// Immutable after construction.
  FailoverConfig failover_config_;

  /// Control-plane metrics. Like db_, deliberately unannotated: metrics()
  /// hands out a reference and the instruments are internally thread-safe.
  /// The Counter/Gauge references below resolve once at construction and
  /// stay valid for the registry's lifetime.
  obs::MetricsRegistry metrics_;
  obs::Counter& admission_accepted_;
  obs::Counter& rej_decode_;
  obs::Counter& rej_duplicate_;
  obs::Counter& rej_oversize_;
  obs::Counter& rej_unknown_mbox_;
  obs::Counter& rej_unknown_rule_;
  obs::Counter& rej_invalid_regex_;
  obs::Counter& rej_over_budget_;
  obs::Counter& rej_other_;
  obs::Counter& analysis_runs_;
  obs::Gauge& predicted_states_;
  obs::Gauge& predicted_memory_;

  AdmissionConfig admission_ DPISVC_GUARDED_BY(mu_);

  std::uint64_t compiled_version_ DPISVC_GUARDED_BY(mu_) = 0;
  /// Compiled engines keyed by (group, compressed); "" = all chains.
  std::map<std::pair<std::string, bool>, std::shared_ptr<const dpi::Engine>>
      engine_cache_ DPISVC_GUARDED_BY(mu_);
  dpi::EngineSpec cached_spec_ DPISVC_GUARDED_BY(mu_);
  std::map<std::string, std::vector<dpi::ChainId>> groups_
      DPISVC_GUARDED_BY(mu_);

  std::map<dpi::ChainId, std::vector<dpi::MiddleboxId>> chains_
      DPISVC_GUARDED_BY(mu_);
  dpi::ChainId next_chain_id_ DPISVC_GUARDED_BY(mu_) = 1;

  std::map<std::string, std::shared_ptr<DpiInstance>> instances_
      DPISVC_GUARDED_BY(mu_);
  std::map<dpi::ChainId, std::string> assignments_ DPISVC_GUARDED_BY(mu_);
  /// Latest telemetry_report per instance name, as pushed over the JSON
  /// channel.
  std::map<std::string, TelemetryReport> telemetry_reports_
      DPISVC_GUARDED_BY(mu_);

  std::uint64_t epoch_ DPISVC_GUARDED_BY(mu_) = 0;
  std::map<std::string, std::uint64_t> last_heartbeat_ DPISVC_GUARDED_BY(mu_);
  std::set<std::string> failed_ DPISVC_GUARDED_BY(mu_);
  std::function<void(dpi::ChainId, const std::string&)> routing_listener_
      DPISVC_GUARDED_BY(mu_);
};

}  // namespace dpisvc::service
