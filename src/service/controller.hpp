// The DPI controller (§4.1, §4.3) — the logically-centralized brain of the
// service.
//
// Responsibilities, mapped to the paper:
//  - middlebox registration and pattern-set management over JSON messages,
//    backed by the ref-counted global PatternDb (§4.1);
//  - policy-chain registry: the TSA hands over middlebox-type sequences and
//    gets back the chain identifier the steering tag carries (§4.1: "It
//    assigns each policy chain a unique identifier that is used later by
//    the DPI service instances to indicate which pattern matching should be
//    performed");
//  - instance lifecycle: creating instances, compiling the combined engine
//    from the current PatternDb snapshot and pushing it to stale instances
//    (§4.1 "initializing DPI service instances", §5.1);
//  - chain-to-instance placement with least-loaded assignment (§4.3);
//  - MCA² orchestration: collecting instance telemetry into the stress
//    monitor, and producing/applying mitigation plans that divert heavy
//    chains to dedicated instances (§4.3.1, Figure 6).
//
// Data-plane routing changes implied by placement decisions are exposed as
// plain data (chain -> instance name) so any TSA implementation — our
// netsim one or a test harness — can realize them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dpi/pattern_db.hpp"
#include "json/json.hpp"
#include "service/instance.hpp"
#include "service/mca2.hpp"
#include "service/messages.hpp"

namespace dpisvc::service {

/// One chain reassignment produced by MCA² mitigation.
struct Migration {
  dpi::ChainId chain = 0;
  std::string from_instance;
  std::string to_instance;
};

struct MitigationPlan {
  std::vector<std::string> stressed_instances;
  std::vector<Migration> migrations;

  bool empty() const noexcept { return migrations.empty(); }
};

class DpiController {
 public:
  explicit DpiController(StressConfig stress_config = {});

  // --- middlebox-facing JSON channel (§4.1) --------------------------------

  /// Handles one protocol message; never throws — errors come back as
  /// {"ok":false,"error":...} responses.
  json::Value handle_message(const json::Value& request);

  dpi::PatternDb& db() noexcept { return db_; }
  const dpi::PatternDb& db() const noexcept { return db_; }

  // --- policy chains (TSA-facing) -------------------------------------------

  /// Registers a policy chain (sequence of middlebox type ids that use the
  /// DPI service) and returns its identifier. Identical sequences share an
  /// id.
  dpi::ChainId register_policy_chain(const std::vector<dpi::MiddleboxId>& mboxes);

  const std::map<dpi::ChainId, std::vector<dpi::MiddleboxId>>& policy_chains()
      const noexcept {
    return chains_;
  }

  // --- instances --------------------------------------------------------------

  /// Creates (and tracks) an instance; it receives the current engine
  /// immediately. Dedicated instances get the compressed-automaton engine.
  std::shared_ptr<DpiInstance> create_instance(const std::string& name,
                                               InstanceConfig config = {});

  bool remove_instance(const std::string& name);

  std::shared_ptr<DpiInstance> instance(const std::string& name) const;
  std::vector<std::string> instance_names() const;

  /// Recompiles engines if the PatternDb changed and pushes them to stale
  /// instances. Called automatically by handle_message and create_instance;
  /// public for direct-API users.
  void sync_instances();

  // --- placement (§4.3) ---------------------------------------------------------

  /// Pins a chain to an instance.
  void assign_chain(dpi::ChainId chain, const std::string& instance_name);

  /// Least-loaded automatic placement over non-dedicated instances (load =
  /// number of chains currently assigned).
  std::string auto_assign_chain(dpi::ChainId chain);

  // --- deployment groups (§4.3) ---------------------------------------------
  // "A common deployment choice is to group together similar policy chains
  //  and to deploy instances that support only one group and not all the
  //  policy chains in the system."

  /// Defines (or redefines) a deployment group over existing chains.
  /// Instances created with InstanceConfig::group == `name` receive an
  /// engine restricted to these chains' middleboxes and patterns.
  void define_group(const std::string& name,
                    std::vector<dpi::ChainId> chains);

  const std::map<std::string, std::vector<dpi::ChainId>>& groups()
      const noexcept {
    return groups_;
  }

  std::optional<std::string> instance_for_chain(dpi::ChainId chain) const;

  const std::map<dpi::ChainId, std::string>& assignments() const noexcept {
    return assignments_;
  }

  // --- MCA² (§4.3.1) ---------------------------------------------------------------

  /// Snapshots every instance's telemetry into the stress monitor and
  /// resets the instance counters (one monitoring window).
  void collect_telemetry();

  StressMonitor& stress_monitor() noexcept { return monitor_; }

  /// Builds a plan diverting heavy chains on stressed instances to the
  /// least-loaded dedicated instance. Empty if nothing is stressed or no
  /// dedicated instance exists.
  MitigationPlan evaluate_mitigation();

  /// Applies a plan: reassigns the chains. Returns the number of chains
  /// moved. (The caller propagates the change to its TSA so the data plane
  /// follows; see netsim examples.)
  std::size_t apply_mitigation(const MitigationPlan& plan);

  /// Moves one flow's scan state between instances (§4.3 flow migration).
  bool migrate_flow(const net::FiveTuple& flow, const std::string& from,
                    const std::string& to);

 private:
  void compile_and_push();
  std::shared_ptr<const dpi::Engine> engine_for(const std::string& group,
                                                bool compressed);
  dpi::EngineSpec group_spec(const dpi::EngineSpec& full,
                             const std::string& group) const;
  std::shared_ptr<DpiInstance> least_loaded(bool dedicated) const;
  std::size_t chains_assigned_to(const std::string& name) const;

  dpi::PatternDb db_;
  std::uint64_t compiled_version_ = 0;
  /// Compiled engines keyed by (group, compressed); "" = all chains.
  std::map<std::pair<std::string, bool>, std::shared_ptr<const dpi::Engine>>
      engine_cache_;
  dpi::EngineSpec cached_spec_;
  std::map<std::string, std::vector<dpi::ChainId>> groups_;

  std::map<dpi::ChainId, std::vector<dpi::MiddleboxId>> chains_;
  dpi::ChainId next_chain_id_ = 1;

  std::map<std::string, std::shared_ptr<DpiInstance>> instances_;
  std::map<dpi::ChainId, std::string> assignments_;

  StressMonitor monitor_;
};

}  // namespace dpisvc::service
