#include "service/ingest.hpp"

#include <algorithm>
#include <thread>

#include "common/arena.hpp"
#include "service/batch_sync.hpp"

namespace dpisvc::service {

/// One batch: the arena holding every payload, the staged items, and the
/// partition/result buffers. All vectors keep their capacity across
/// recycles, so a steady-state batch performs no allocation at all — the
/// arena reuses its chunks and the vectors their storage.
struct IngestBatch {
  explicit IngestBatch(std::size_t arena_chunk_bytes)
      : arena(arena_chunk_bytes) {}

  PacketArena arena;
  std::vector<ScanItem> items;
  std::vector<std::uint64_t> refs;
  std::vector<dpi::ScanResult> results;
  // Counting-sort partition: order[offsets[s] .. offsets[s+1]) lists shard
  // s's item indices in submission order.
  std::vector<std::uint32_t> shard_of;
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> cursor;
  /// Outstanding shard jobs; the producer observes completion via
  /// all_done()'s acquire load of 0, pairing with each job's release
  /// decrement, which makes every result write visible before delivery.
  BatchPending<> pending;
  /// Arena recycle gate: one lease per live BatchHandle. The producer
  /// resets the arena only after idle() — see service/batch_sync.hpp for
  /// the ordering argument; dpisvc_mc explores both counters (DESIGN.md §7).
  LeaseCounter<> leases;
  DpiInstance* instance = nullptr;

  void reset_for_fill() {
    arena.reset();
    items.clear();
    refs.clear();
  }
};

namespace {

/// ScanPool::JobFn for one (batch, shard) pair: scan the shard's bucket,
/// then publish completion.
void batch_scan_job(void* ctx, std::size_t shard) {
  auto* batch = static_cast<IngestBatch*>(ctx);
  const std::uint32_t begin = batch->offsets[shard];
  const std::uint32_t end = batch->offsets[shard + 1];
  batch->instance->scan_bucket(shard, batch->items,
                               batch->order.data() + begin, end - begin,
                               batch->results);
  batch->pending.complete_one();
}

}  // namespace

BatchHandle::BatchHandle(std::shared_ptr<IngestBatch> batch) noexcept
    : batch_(std::move(batch)) {
  if (batch_ != nullptr) batch_->leases.take();
}

BatchHandle::BatchHandle(const BatchHandle& other) noexcept
    : batch_(other.batch_) {
  if (batch_ != nullptr) batch_->leases.take();
}

BatchHandle::BatchHandle(BatchHandle&& other) noexcept
    : batch_(std::move(other.batch_)) {
  other.batch_ = nullptr;  // the lease moves with the pointer
}

BatchHandle& BatchHandle::operator=(const BatchHandle& other) noexcept {
  if (this == &other) return *this;
  if (other.batch_ != nullptr) other.batch_->leases.take();
  release();
  batch_ = other.batch_;
  return *this;
}

BatchHandle& BatchHandle::operator=(BatchHandle&& other) noexcept {
  if (this == &other) return *this;
  release();
  batch_ = std::move(other.batch_);
  other.batch_ = nullptr;
  return *this;
}

BatchHandle::~BatchHandle() { release(); }

void BatchHandle::release() noexcept {
  if (batch_ != nullptr) {
    batch_->leases.drop();
    batch_ = nullptr;
  }
}

std::size_t BatchHandle::size() const noexcept { return batch_->items.size(); }

const std::vector<ScanItem>& BatchHandle::items() const noexcept {
  return batch_->items;
}

const std::vector<std::uint64_t>& BatchHandle::packet_refs() const noexcept {
  return batch_->refs;
}

const std::vector<dpi::ScanResult>& BatchHandle::results() const noexcept {
  return batch_->results;
}

IngestPipeline::IngestPipeline(DpiInstance& instance, Sink sink,
                               IngestConfig config)
    : instance_(instance), sink_(std::move(sink)), config_(config) {
  if (config_.batch_packets == 0) config_.batch_packets = 1;
  if (config_.max_batches == 0) config_.max_batches = 1;
}

IngestPipeline::~IngestPipeline() {
  try {
    drain();
  } catch (...) {
    // A throwing sink during teardown: results are lost, but the shard
    // workers have finished with every batch, so destruction stays safe.
  }
}

std::uint64_t IngestPipeline::packets_pushed() const noexcept {
  const RoleGuard role(producer_role_);
  return pushed_;
}

std::uint64_t IngestPipeline::packets_shed() const noexcept {
  const RoleGuard role(producer_role_);
  return shed_;
}

std::uint64_t IngestPipeline::batches_flushed() const noexcept {
  const RoleGuard role(producer_role_);
  return flushed_;
}

std::size_t IngestPipeline::batches_allocated() const noexcept {
  const RoleGuard role(producer_role_);
  return total_batches_;
}

std::shared_ptr<IngestBatch> IngestPipeline::make_batch() {
  auto batch = std::make_shared<IngestBatch>(config_.arena_chunk_bytes);
  batch->instance = &instance_;
  ++total_batches_;
  return batch;
}

bool IngestPipeline::acquire_batch() {
  for (;;) {
    deliver_ready();
    // Reuse an idle batch no consumer holds a lease on (the lease-gated
    // recycle: resetting the arena under a live lease would invalidate the
    // payload views the leaseholder is still reading).
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if ((*it)->leases.idle()) {
        current_ = *it;
        free_.erase(it);
        current_->reset_for_fill();
        return true;
      }
    }
    if (total_batches_ < config_.max_batches) {
      current_ = make_batch();
      return true;
    }
    if (inflight_.empty()) {
      // Every slot is leased out by the consumer; the in-flight bound
      // applies to pipeline-owned batches, so grow rather than deadlock.
      // recycle() trims back below the cap once leases are released.
      current_ = make_batch();
      return true;
    }
    if (instance_.config().overload == OverloadPolicy::kShed) return false;
    // kBlock: backpressure. Wait for the oldest batch's shard workers; its
    // delivery at the top of the loop frees a slot. Counted once per stall
    // episode through the same counter the pool's ring-full waits use.
    const IngestInstruments& obs = instance_.ingest_instruments();
    if (obs.blocked != nullptr) obs.blocked->add(1);
    while (!inflight_.front()->pending.all_done()) {
      std::this_thread::yield();
    }
  }
}

bool IngestPipeline::push(dpi::ChainId chain, const net::FiveTuple& flow,
                          BytesView payload, std::uint64_t packet_ref) {
  const RoleGuard role(producer_role_);
  return push_impl(chain, flow, payload, packet_ref);
}

bool IngestPipeline::push_impl(dpi::ChainId chain, const net::FiveTuple& flow,
                               BytesView payload, std::uint64_t packet_ref) {
  deliver_ready();  // opportunistic: keep sink latency low, slots free
  if (current_ == nullptr && !acquire_batch()) {
    ++shed_;
    const IngestInstruments& obs = instance_.ingest_instruments();
    if (obs.shed != nullptr) obs.shed->add(1);
    return false;
  }
  ScanItem item;
  item.chain = chain;
  item.flow = flow;
  item.payload = current_->arena.append(payload);  // the ingest path's copy
  current_->items.push_back(item);
  current_->refs.push_back(packet_ref);
  ++pushed_;
  if (current_->items.size() >= config_.batch_packets) flush_impl();
  return true;
}

void IngestPipeline::flush() {
  const RoleGuard role(producer_role_);
  flush_impl();
}

void IngestPipeline::flush_impl() {
  if (current_ == nullptr || current_->items.empty()) return;
  std::shared_ptr<IngestBatch> batch = std::move(current_);

  // Stable counting sort by shard — identical to the synchronous
  // scan_batch() partition, so per-flow submission order survives.
  const std::size_t n = batch->items.size();
  const std::size_t num_shards = instance_.num_shards();
  batch->shard_of.resize(n);
  batch->offsets.assign(num_shards + 1, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto s =
        static_cast<std::uint32_t>(instance_.shard_of_flow(batch->items[i].flow));
    batch->shard_of[i] = s;
    ++batch->offsets[s + 1];
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    batch->offsets[s + 1] += batch->offsets[s];
  }
  batch->cursor.assign(batch->offsets.begin(), batch->offsets.end() - 1);
  batch->order.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    batch->order[batch->cursor[batch->shard_of[i]]++] = i;
  }

  batch->results.clear();
  batch->results.resize(n);
  std::uint32_t jobs = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (batch->offsets[s + 1] > batch->offsets[s]) ++jobs;
  }
  // Armed before any submit; the pool's hand-off orders it for the workers.
  batch->pending.arm(jobs);

  const IngestInstruments& obs = instance_.ingest_instruments();
  if (obs.batch_packets != nullptr) {
    obs.batch_packets->record(n);
    obs.batch_bytes->record(batch->arena.bytes_used());
  }

  inflight_.push_back(batch);
  ++flushed_;
  if (obs.batches_in_flight != nullptr) {
    obs.batches_in_flight->set(static_cast<std::int64_t>(inflight_.size()));
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (batch->offsets[s + 1] == batch->offsets[s]) continue;
    // Blocking on a full ring here is deliberate: shedding happens at batch
    // admission only, so every submitted batch runs to completion.
    instance_.scan_pool().submit_blocking(s, &batch_scan_job, batch.get(), s);
  }
}

std::size_t IngestPipeline::deliver_ready() {
  std::size_t delivered = 0;
  while (!inflight_.empty() && inflight_.front()->pending.all_done()) {
    std::shared_ptr<IngestBatch> batch = std::move(inflight_.front());
    inflight_.pop_front();
    delivered += batch->items.size();
    if (sink_) sink_(BatchHandle(batch));
    recycle(std::move(batch));
  }
  if (delivered != 0) {
    const IngestInstruments& obs = instance_.ingest_instruments();
    if (obs.batches_in_flight != nullptr) {
      obs.batches_in_flight->set(static_cast<std::int64_t>(inflight_.size()));
    }
  }
  return delivered;
}

void IngestPipeline::recycle(std::shared_ptr<IngestBatch> batch) {
  free_.push_back(std::move(batch));
  // Trim surplus batches allocated while consumer leases held the cap.
  while (total_batches_ > config_.max_batches) {
    auto it = std::find_if(free_.begin(), free_.end(),
                           [](const auto& b) { return b->leases.idle(); });
    if (it == free_.end()) break;
    free_.erase(it);
    --total_batches_;
  }
}

std::size_t IngestPipeline::poll() {
  const RoleGuard role(producer_role_);
  return deliver_ready();
}

std::size_t IngestPipeline::drain() {
  const RoleGuard role(producer_role_);
  return drain_impl();
}

std::size_t IngestPipeline::drain_impl() {
  flush_impl();
  std::size_t delivered = 0;
  while (!inflight_.empty()) {
    while (!inflight_.front()->pending.all_done()) {
      std::this_thread::yield();
    }
    delivered += deliver_ready();
  }
  return delivered;
}

}  // namespace dpisvc::service
