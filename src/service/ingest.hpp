// Zero-copy batched ingest pipeline: the fabric→shard handoff (§6).
//
// The per-packet path costs one shard-lock round trip and one pool job per
// packet, and — worse — every hop through the old handoff copied the
// payload. This pipeline is the run-to-completion alternative: payload
// bytes are written exactly once, into the current batch's arena, at
// push(); everything downstream — the per-shard scan jobs and the
// middlebox verdict delivered through the sink — works on BytesViews into
// that arena. No payload byte is copied again after ingress.
//
// Flow of a packet:
//
//   push(chain, flow, payload)           one arena append (the only copy)
//     └─ batch fills to batch_packets → flush()
//          └─ stable partition by shard, one ScanPool job per non-empty
//             shard bucket (FIFO per worker ⇒ per-flow order holds across
//             batches), pending = #jobs
//   push()/flush()/drain() deliver completed batches to the sink strictly
//   in submission order; the arena is recycled once the sink returns and
//   every BatchHandle lease is gone.
//
// Backpressure (the bounded-queue fix): at most max_batches batches exist
// at once — in-flight, free, or being filled — so ingest memory is bounded
// by max_batches × (arena + item vectors) regardless of how far a stalled
// shard falls behind. When no batch slot is free, the instance's
// OverloadPolicy decides: kBlock waits for the oldest in-flight batch
// (backpressure propagates to the fabric; the pool's
// ingest.backpressure.blocked counter fires), kShed drops the pushed packet
// and counts it in ingest.backpressure.shed. Shedding happens only at
// batch admission — whole packets, never per-shard jobs — so every
// accepted packet's result is delivered and, for the accepted subset,
// results are byte-identical to the sequential scan path.
//
// Threading contract: push()/flush()/poll()/drain() must be called from one
// thread (the fabric event loop). That contract is encoded for the Clang
// thread-safety analysis as the `producer_role_` capability below: every
// pipeline field is GUARDED_BY the role, each public entry point claims it
// once, and the internal helpers declare DPISVC_REQUIRES — so a new code
// path that touches pipeline state without going through a public entry
// point fails to compile under -Werror=thread-safety. The cross-thread
// protocol (batch pending counters, arena lease gating) lives in
// service/batch_sync.hpp and is exhaustively explored by the dpisvc_mc
// model checker (DESIGN.md §7). The per-shard scans run on the instance's
// pool workers; the sink runs on the calling thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/thread_safety.hpp"
#include "service/instance.hpp"

namespace dpisvc::service {

struct IngestBatch;  // defined in ingest.cpp

struct IngestConfig {
  /// Packets per batch: push() flushes automatically at this size.
  std::size_t batch_packets = 64;
  /// Bound on simultaneously existing batches (in flight + free + the one
  /// being filled). This is the ingest memory bound; 0 is clamped to 1.
  std::size_t max_batches = 8;
  /// Arena chunk size; batches whose payload exceeds it chain more chunks.
  std::size_t arena_chunk_bytes = 128 * 1024;
};

/// Refcounted view of a completed batch: the items, their packet refs, the
/// scan results, and (transitively) the arena every payload view points
/// into. Copying a handle takes a lease on the batch's LeaseCounter
/// (service/batch_sync.hpp) — the pipeline recycles a batch's arena only
/// after the sink returned AND every lease was dropped, so a consumer may
/// keep a handle past the sink call (including on another thread) and the
/// payload bytes stay valid until it drops the handle.
class BatchHandle {
 public:
  BatchHandle() = default;
  BatchHandle(const BatchHandle& other) noexcept;
  BatchHandle(BatchHandle&& other) noexcept;
  BatchHandle& operator=(const BatchHandle& other) noexcept;
  BatchHandle& operator=(BatchHandle&& other) noexcept;
  ~BatchHandle();

  bool valid() const noexcept { return batch_ != nullptr; }
  std::size_t size() const noexcept;
  /// Items in submission order; payload views point into the batch arena.
  const std::vector<ScanItem>& items() const noexcept;
  /// Caller-supplied packet refs, parallel to items().
  const std::vector<std::uint64_t>& packet_refs() const noexcept;
  /// Scan results, parallel to items().
  const std::vector<dpi::ScanResult>& results() const noexcept;

 private:
  friend class IngestPipeline;
  explicit BatchHandle(std::shared_ptr<IngestBatch> batch) noexcept;
  void release() noexcept;

  std::shared_ptr<IngestBatch> batch_;
};

class IngestPipeline {
 public:
  /// Invoked once per completed batch, in submission order, on the
  /// producer thread (from push/flush/drain).
  using Sink = std::function<void(const BatchHandle&)>;

  IngestPipeline(DpiInstance& instance, Sink sink, IngestConfig config = {});

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Drains: every accepted packet is scanned and delivered before
  /// destruction completes.
  ~IngestPipeline();

  /// Stages one packet: copies `payload` into the batch arena (the ingest
  /// path's single copy) and records (chain, flow, packet_ref). Returns
  /// false iff the packet was shed (kShed policy with every batch slot
  /// busy); a false return means this packet will never produce a result.
  /// May deliver earlier completed batches to the sink before returning.
  bool push(dpi::ChainId chain, const net::FiveTuple& flow, BytesView payload,
            std::uint64_t packet_ref = 0);

  /// Submits the partially filled current batch to the shard workers (no-op
  /// when empty). Call at end-of-burst so stragglers don't wait for the
  /// batch to fill.
  void flush();

  /// Delivers every batch whose workers already finished (in order, up to
  /// the first still-running batch). Returns packets delivered.
  std::size_t poll();

  /// flush() + wait for all in-flight batches + deliver everything.
  /// Returns packets delivered during the drain.
  std::size_t drain();

  const IngestConfig& config() const noexcept { return config_; }
  std::uint64_t packets_pushed() const noexcept;
  std::uint64_t packets_shed() const noexcept;
  std::uint64_t batches_flushed() const noexcept;
  /// Batches currently owned by the pipeline (the memory-bound witness:
  /// never exceeds max_batches unless the consumer holds leases).
  std::size_t batches_allocated() const noexcept;

 private:
  std::shared_ptr<IngestBatch> make_batch() DPISVC_REQUIRES(producer_role_);
  /// Hands `current_` a batch to fill; false = shed (kShed, all busy).
  bool acquire_batch() DPISVC_REQUIRES(producer_role_);
  bool push_impl(dpi::ChainId chain, const net::FiveTuple& flow,
                 BytesView payload, std::uint64_t packet_ref)
      DPISVC_REQUIRES(producer_role_);
  void flush_impl() DPISVC_REQUIRES(producer_role_);
  std::size_t drain_impl() DPISVC_REQUIRES(producer_role_);
  std::size_t deliver_ready() DPISVC_REQUIRES(producer_role_);
  void recycle(std::shared_ptr<IngestBatch> batch)
      DPISVC_REQUIRES(producer_role_);

  DpiInstance& instance_;
  Sink sink_;
  IngestConfig config_;
  /// The single-producer-thread contract, checkable by Clang's
  /// thread-safety analysis (see header comment). Mutable so const
  /// accessors can claim it too — the role has no runtime state.
  mutable ThreadRole producer_role_;
  std::shared_ptr<IngestBatch> current_ DPISVC_GUARDED_BY(producer_role_);
  /// Submission-order FIFO of batches whose shard jobs are outstanding (or
  /// done but undelivered). Delivery always pops from the front, which is
  /// what makes batch delivery — and thus per-flow result order — match
  /// submission order.
  std::deque<std::shared_ptr<IngestBatch>> inflight_
      DPISVC_GUARDED_BY(producer_role_);
  std::vector<std::shared_ptr<IngestBatch>> free_
      DPISVC_GUARDED_BY(producer_role_);
  std::size_t total_batches_ DPISVC_GUARDED_BY(producer_role_) = 0;
  std::uint64_t pushed_ DPISVC_GUARDED_BY(producer_role_) = 0;
  std::uint64_t shed_ DPISVC_GUARDED_BY(producer_role_) = 0;
  std::uint64_t flushed_ DPISVC_GUARDED_BY(producer_role_) = 0;
};

}  // namespace dpisvc::service
