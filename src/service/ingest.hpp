// Zero-copy batched ingest pipeline: the fabric→shard handoff (§6).
//
// The per-packet path costs one shard-lock round trip and one pool job per
// packet, and — worse — every hop through the old handoff copied the
// payload. This pipeline is the run-to-completion alternative: payload
// bytes are written exactly once, into the current batch's arena, at
// push(); everything downstream — the per-shard scan jobs and the
// middlebox verdict delivered through the sink — works on BytesViews into
// that arena. No payload byte is copied again after ingress.
//
// Flow of a packet:
//
//   push(chain, flow, payload)           one arena append (the only copy)
//     └─ batch fills to batch_packets → flush()
//          └─ stable partition by shard, one ScanPool job per non-empty
//             shard bucket (FIFO per worker ⇒ per-flow order holds across
//             batches), pending = #jobs
//   push()/flush()/drain() deliver completed batches to the sink strictly
//   in submission order; the arena is recycled once the sink returns and
//   every BatchHandle copy is gone.
//
// Backpressure (the bounded-queue fix): at most max_batches batches exist
// at once — in-flight, free, or being filled — so ingest memory is bounded
// by max_batches × (arena + item vectors) regardless of how far a stalled
// shard falls behind. When no batch slot is free, the instance's
// OverloadPolicy decides: kBlock waits for the oldest in-flight batch
// (backpressure propagates to the fabric; the pool's
// ingest.backpressure.blocked counter fires), kShed drops the pushed packet
// and counts it in ingest.backpressure.shed. Shedding happens only at
// batch admission — whole packets, never per-shard jobs — so every
// accepted packet's result is delivered and, for the accepted subset,
// results are byte-identical to the sequential scan path.
//
// Threading contract: push()/flush()/drain() must be called from one
// thread (the fabric event loop). The per-shard scans run on the
// instance's pool workers; the sink runs on the calling thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "service/instance.hpp"

namespace dpisvc::service {

struct IngestBatch;  // defined in ingest.cpp

struct IngestConfig {
  /// Packets per batch: push() flushes automatically at this size.
  std::size_t batch_packets = 64;
  /// Bound on simultaneously existing batches (in flight + free + the one
  /// being filled). This is the ingest memory bound; 0 is clamped to 1.
  std::size_t max_batches = 8;
  /// Arena chunk size; batches whose payload exceeds it chain more chunks.
  std::size_t arena_chunk_bytes = 128 * 1024;
};

/// Refcounted view of a completed batch: the items, their packet refs, the
/// scan results, and (transitively) the arena every payload view points
/// into. Copying a handle takes a lease — the pipeline recycles a batch's
/// arena only after the sink returned AND every handle copy is gone, so a
/// consumer may keep one past the sink call and the payload bytes stay
/// valid until it drops the handle.
class BatchHandle {
 public:
  BatchHandle() = default;

  bool valid() const noexcept { return batch_ != nullptr; }
  std::size_t size() const noexcept;
  /// Items in submission order; payload views point into the batch arena.
  const std::vector<ScanItem>& items() const noexcept;
  /// Caller-supplied packet refs, parallel to items().
  const std::vector<std::uint64_t>& packet_refs() const noexcept;
  /// Scan results, parallel to items().
  const std::vector<dpi::ScanResult>& results() const noexcept;

 private:
  friend class IngestPipeline;
  explicit BatchHandle(std::shared_ptr<IngestBatch> batch)
      : batch_(std::move(batch)) {}

  std::shared_ptr<IngestBatch> batch_;
};

class IngestPipeline {
 public:
  /// Invoked once per completed batch, in submission order, on the
  /// producer thread (from push/flush/drain).
  using Sink = std::function<void(const BatchHandle&)>;

  IngestPipeline(DpiInstance& instance, Sink sink, IngestConfig config = {});

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Drains: every accepted packet is scanned and delivered before
  /// destruction completes.
  ~IngestPipeline();

  /// Stages one packet: copies `payload` into the batch arena (the ingest
  /// path's single copy) and records (chain, flow, packet_ref). Returns
  /// false iff the packet was shed (kShed policy with every batch slot
  /// busy); a false return means this packet will never produce a result.
  /// May deliver earlier completed batches to the sink before returning.
  bool push(dpi::ChainId chain, const net::FiveTuple& flow, BytesView payload,
            std::uint64_t packet_ref = 0);

  /// Submits the partially filled current batch to the shard workers (no-op
  /// when empty). Call at end-of-burst so stragglers don't wait for the
  /// batch to fill.
  void flush();

  /// Delivers every batch whose workers already finished (in order, up to
  /// the first still-running batch). Returns packets delivered.
  std::size_t poll();

  /// flush() + wait for all in-flight batches + deliver everything.
  /// Returns packets delivered during the drain.
  std::size_t drain();

  const IngestConfig& config() const noexcept { return config_; }
  std::uint64_t packets_pushed() const noexcept { return pushed_; }
  std::uint64_t packets_shed() const noexcept { return shed_; }
  std::uint64_t batches_flushed() const noexcept { return flushed_; }
  /// Batches currently owned by the pipeline (the memory-bound witness:
  /// never exceeds max_batches unless the consumer holds leases).
  std::size_t batches_allocated() const noexcept { return total_batches_; }

 private:
  std::shared_ptr<IngestBatch> make_batch();
  /// Hands `current_` a batch to fill; false = shed (kShed, all busy).
  bool acquire_batch();
  std::size_t deliver_ready();
  void recycle(std::shared_ptr<IngestBatch> batch);

  DpiInstance& instance_;
  Sink sink_;
  IngestConfig config_;
  std::shared_ptr<IngestBatch> current_;
  /// Submission-order FIFO of batches whose shard jobs are outstanding (or
  /// done but undelivered). Delivery always pops from the front, which is
  /// what makes batch delivery — and thus per-flow result order — match
  /// submission order.
  std::deque<std::shared_ptr<IngestBatch>> inflight_;
  std::vector<std::shared_ptr<IngestBatch>> free_;
  std::size_t total_batches_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t flushed_ = 0;
};

}  // namespace dpisvc::service
