#include "service/instance.hpp"

#include "common/invariant.hpp"
#include "common/logging.hpp"
#include "compress/inflate.hpp"

namespace dpisvc::service {

DpiInstance::DpiInstance(std::string name, InstanceConfig config)
    : name_(std::move(name)),
      config_(config),
      flows_(config.max_flows) {}

void DpiInstance::load_engine(std::shared_ptr<const dpi::Engine> engine,
                              std::uint64_t version) {
  std::size_t num_states = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    engine_ = std::move(engine);
    engine_version_ = version;
    // DFA state identifiers are meaningful only within one compiled engine;
    // carrying cursors across a recompile would resume at arbitrary states.
    flows_.clear();
    DPISVC_ASSERT_INVARIANT(flows_.size() == 0,
                            "flow table must be empty after an engine swap");
    if (engine_ != nullptr) num_states = engine_->num_automaton_states();
  }
  log(LogLevel::kInfo, name_, "loaded engine v", version, " (", num_states,
      " states)");
}

std::uint64_t DpiInstance::engine_version() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return engine_version_;
}

bool DpiInstance::has_engine() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return engine_ != nullptr;
}

std::shared_ptr<const dpi::Engine> DpiInstance::engine_snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return engine_;
}

InstanceTelemetry DpiInstance::telemetry() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return telemetry_;
}

std::map<dpi::ChainId, ChainTelemetry> DpiInstance::chain_telemetry() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return chain_telemetry_;
}

void DpiInstance::reset_telemetry() {
  const std::lock_guard<std::mutex> lock(mu_);
  telemetry_ = InstanceTelemetry{};
  chain_telemetry_.clear();
}

std::size_t DpiInstance::active_flows() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return flows_.size();
}

std::vector<net::FiveTuple> DpiInstance::active_flow_keys() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return flows_.keys();
}

dpi::ScanResult DpiInstance::scan(dpi::ChainId chain,
                                  const net::FiveTuple& flow,
                                  BytesView payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  return scan_locked(chain, flow, payload);
}

dpi::ScanResult DpiInstance::scan_locked(dpi::ChainId chain,
                                         const net::FiveTuple& flow,
                                         BytesView payload) {
  if (engine_ == nullptr) {
    throw std::logic_error("DpiInstance::scan: no engine loaded");
  }
  Stopwatch watch;
  dpi::FlowCursor cursor;
  const bool stateful = engine_->chain_stateful(chain);
  if (stateful) {
    cursor = flows_.lookup(flow);
  }
  dpi::ScanResult result = engine_->scan_packet(chain, payload, cursor);
  if (stateful) {
    DPISVC_ASSERT_INVARIANT(
        result.cursor.valid &&
            result.cursor.dfa_state < engine_->num_automaton_states(),
        "stateful scan must leave the cursor on a state of this engine");
    flows_.update(flow, result.cursor);
  }
  telemetry_.busy_seconds += watch.elapsed_seconds();
  ++telemetry_.packets;
  telemetry_.bytes += payload.size();
  telemetry_.raw_hits += result.raw_hits;
  ChainTelemetry& per_chain = chain_telemetry_[chain];
  ++per_chain.packets;
  per_chain.bytes += payload.size();
  per_chain.raw_hits += result.raw_hits;
  if (result.has_matches()) {
    ++telemetry_.match_packets;
  }
  return result;
}

net::MatchReport DpiInstance::build_report(dpi::ChainId chain,
                                           std::uint64_t packet_ref,
                                           const dpi::ScanResult& scan) const {
  net::MatchReport report;
  report.policy_chain_id = chain;
  report.packet_ref = packet_ref;
  for (const dpi::MiddleboxMatches& m : scan.matches) {
    if (m.entries.empty()) continue;
    net::MiddleboxSection section;
    section.middlebox_id = m.middlebox;
    section.entries = m.entries;
    report.sections.push_back(std::move(section));
  }
  return report;
}

/// Decompress-once preprocessing (§1): returns the inflated payload when
/// the packet carries a gzip or zlib body and decompression is enabled;
/// otherwise std::nullopt (scan the raw bytes).
std::optional<Bytes> DpiInstance::maybe_decompress(BytesView payload) {
  if (!config_.decompress_payloads) return std::nullopt;
  compress::InflateLimits limits;
  limits.max_output = config_.max_decompressed;
  try {
    if (compress::looks_like_gzip(payload)) {
      return compress::gzip_decompress(payload, limits);
    }
    if (compress::looks_like_zlib(payload)) {
      return compress::zlib_decompress(payload, limits);
    }
  } catch (const compress::InflateError&) {
    // Not actually compressed (or corrupt / a bomb): scan the raw bytes.
  }
  return std::nullopt;
}

ProcessOutput DpiInstance::process(net::Packet packet) {
  const std::lock_guard<std::mutex> lock(mu_);
  ProcessOutput out;
  const auto tag = packet.find_tag(net::TagKind::kPolicyChain);
  if (!tag || engine_ == nullptr ||
      !engine_->chain_known(static_cast<dpi::ChainId>(*tag))) {
    // Not ours to inspect: forward unchanged.
    ++telemetry_.pass_through;
    out.data = std::move(packet);
    return out;
  }
  const auto chain = static_cast<dpi::ChainId>(*tag);

  // Stream reassembly (§7): scan in-order stream chunks, not raw segments.
  std::optional<Bytes> chunk_storage;
  if (config_.reassemble_tcp && packet.tuple.proto == net::IpProto::kTcp) {
    auto chunk = reassembler_.feed(packet);
    if (!chunk) {
      // Out-of-order segment: nothing contiguous yet. Forward the packet
      // (middleboxes see it; results for its bytes come with the packet
      // that completes the gap).
      ++telemetry_.reassembly_held;
      out.data = std::move(packet);
      return out;
    }
    chunk_storage = std::move(chunk->data);
  }
  const BytesView stream_bytes =
      chunk_storage ? BytesView(*chunk_storage) : BytesView(packet.payload);

  // Decompress once for all middleboxes on the chain (§1).
  BytesView scan_bytes = stream_bytes;
  std::optional<Bytes> inflated = maybe_decompress(stream_bytes);
  if (inflated) {
    ++telemetry_.decompressed_packets;
    telemetry_.decompressed_bytes += inflated->size();
    scan_bytes = *inflated;
  }
  const dpi::ScanResult scanned = scan_locked(chain, packet.tuple, scan_bytes);

  const bool result_only = config_.result_mode == ResultMode::kResultOnly &&
                           engine_->chain_read_only(chain);
  if (result_only) {
    // §4.2 option 3: the data packet bypasses the (read-only) middleboxes;
    // pop the steering tag so the switch sends it straight to the egress.
    packet.pop_tag(net::TagKind::kPolicyChain);
  }

  if (!scanned.has_matches()) {
    // §4.2: "a packet with no matches is always forwarded as is".
    out.data = std::move(packet);
    return out;
  }

  out.had_matches = true;
  const std::uint64_t packet_ref =
      packet.tuple.hash() ^ (static_cast<std::uint64_t>(packet.ip_id) << 48);
  // Keep in sync with service::packet_ref_of (instance_node.hpp).
  const net::MatchReport report = build_report(chain, packet_ref, scanned);
  const Bytes encoded = net::encode_report(report, config_.codec);
  telemetry_.result_bytes += encoded.size();

  packet.set_match_mark(true);  // §6.1: ECN marks "has matches"
  if (config_.result_mode == ResultMode::kServiceHeader && !result_only) {
    net::ServiceHeader sh;
    sh.service_path_id = chain;
    sh.service_index = 0;
    sh.metadata = encoded;
    packet.service_header = std::move(sh);
    out.data = std::move(packet);
    return out;
  }

  // Dedicated result packet follows the data packet through the chain (or,
  // in result-only mode, travels the chain alone): it copies the flow tuple
  // and steering tags and is marked by the reserved service-path id.
  net::Packet result;
  result.src_mac = packet.src_mac;
  result.dst_mac = packet.dst_mac;
  result.tags = packet.tags;
  if (result_only) {
    result.push_tag(net::TagKind::kPolicyChain, chain);  // data's tag popped
  }
  result.tuple = packet.tuple;
  result.ip_id = packet.ip_id;
  net::ServiceHeader sh;
  sh.service_path_id = kResultServicePathId;
  sh.service_index = 0;
  sh.metadata = encoded;
  result.service_header = std::move(sh);

  out.data = std::move(packet);
  out.result = std::move(result);
  return out;
}

dpi::FlowCursor DpiInstance::export_flow(const net::FiveTuple& flow) {
  const std::lock_guard<std::mutex> lock(mu_);
  return flows_.extract(flow);
}

void DpiInstance::import_flow(const net::FiveTuple& flow,
                              const dpi::FlowCursor& cursor) {
  const std::lock_guard<std::mutex> lock(mu_);
  flows_.update(flow, cursor);
}

}  // namespace dpisvc::service
