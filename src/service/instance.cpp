#include "service/instance.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "common/invariant.hpp"
#include "common/logging.hpp"
#include "compress/inflate.hpp"

namespace dpisvc::service {

ScanPool::Instruments DpiInstance::make_pool_instruments(
    obs::MetricsRegistry& metrics, const InstanceConfig& config) {
  if (!config.metrics) return ScanPool::Instruments();
  ScanPool::Instruments ins;
  ins.queue_wait_ns = &metrics.histogram("pool.queue_wait_ns",
                                         obs::Histogram::latency_bounds_ns());
  ins.blocked = &metrics.counter("ingest.backpressure.blocked");
  ins.blocked_ns = &metrics.histogram("ingest.backpressure.blocked_ns",
                                      obs::Histogram::latency_bounds_ns());
  // 16 evenly spaced fill buckets spanning the configured ring capacity.
  const std::size_t cap = std::max<std::size_t>(config.queue_capacity, 1);
  ins.fill = &metrics.histogram(
      "ingest.queue_fill",
      obs::Histogram::linear_bounds(
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(cap) / 16),
          16));
  const std::size_t workers = std::max<std::size_t>(config.num_workers, 1);
  if (workers > 1) {
    ins.depth.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      ins.depth.push_back(
          &metrics.gauge("shard" + std::to_string(i) + ".queue_depth"));
    }
  }
  return ins;
}

DpiInstance::DpiInstance(std::string name, InstanceConfig config)
    : name_(std::move(name)),
      config_(config),
      trace_(config.trace_capacity),
      pool_(std::max<std::size_t>(config.num_workers, 1),
            config.queue_capacity, config.overload,
            make_pool_instruments(metrics_, config)) {
  if (config.metrics) {
    ingest_obs_.shed = &metrics_.counter("ingest.backpressure.shed");
    // Same counter the pool's blocked instrument points at (the registry
    // returns the existing entry): kept here so stats_json can read it.
    ingest_obs_.blocked = &metrics_.counter("ingest.backpressure.blocked");
    ingest_obs_.batch_packets = &metrics_.histogram(
        "ingest.batch_packets", obs::Histogram::linear_bounds(8, 32));
    ingest_obs_.batch_bytes = &metrics_.histogram(
        "ingest.batch_bytes",
        obs::Histogram::exponential_bounds(1024, 2.0, 16));
    ingest_obs_.batches_in_flight = &metrics_.gauge("ingest.batches_in_flight");
  }
  const std::size_t num_shards = std::max<std::size_t>(config.num_workers, 1);
  const std::size_t per_shard =
      std::max<std::size_t>(config.max_flows / num_shards, 1);
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard =
        std::make_unique<Shard>(per_shard, config.reassembly, config.defrag);
    shard->index = static_cast<std::uint32_t>(i);
    if (config.metrics) {
      // Resolve instruments once; the scan path records through these
      // pointers without ever touching the registry mutex.
      const std::string p = "shard" + std::to_string(i) + ".";
      ShardInstruments& o = shard->obs;
      o.scan_ns =
          &metrics_.histogram(p + "scan_ns", obs::Histogram::latency_bounds_ns());
      o.packets = &metrics_.counter(p + "packets");
      o.bytes = &metrics_.counter(p + "bytes");
      o.raw_hits = &metrics_.counter(p + "raw_hits");
      o.anchor_hits = &metrics_.counter(p + "anchor_hits");
      o.regex_evals = &metrics_.counter(p + "regex_evals");
      o.regex_matches = &metrics_.counter(p + "regex_matches");
      o.flow_evictions = &metrics_.counter(p + "flow_evictions");
      o.flow_occupancy = &metrics_.gauge(p + "flow_occupancy");
      o.reassembly_dropped = &metrics_.counter(p + "reassembly.dropped_segments");
      o.reassembly_duplicate_bytes =
          &metrics_.counter(p + "reassembly.duplicate_bytes");
      o.reassembly_ambiguous =
          &metrics_.counter(p + "reassembly.ambiguous_overlaps");
      o.reassembly_conflicting_bytes =
          &metrics_.counter(p + "reassembly.conflicting_overlap_bytes");
      o.reassembly_stream_evictions =
          &metrics_.counter(p + "reassembly.stream_evictions");
      o.reassembly_streams_closed =
          &metrics_.counter(p + "reassembly.streams_closed");
      o.reassembly_ignored_fins =
          &metrics_.counter(p + "reassembly.ignored_fins");
      o.reassembly_ignored_rsts =
          &metrics_.counter(p + "reassembly.ignored_rsts");
      o.defrag_fragments = &metrics_.counter(p + "defrag.fragments");
      o.defrag_completed = &metrics_.counter(p + "defrag.datagrams_completed");
      o.defrag_rejected = &metrics_.counter(p + "defrag.rejected");
      o.defrag_ambiguous = &metrics_.counter(p + "defrag.ambiguous_fragments");
      o.defrag_evicted = &metrics_.counter(p + "defrag.evicted_incomplete");
    }
    shards_.push_back(std::move(shard));
  }
}

void DpiInstance::load_engine(std::shared_ptr<const dpi::Engine> engine,
                              std::uint64_t version) {
  std::size_t num_states = 0;
  {
    const MutexLock control(control_mu_);
    engine_ = engine;
    engine_version_ = version;
    if (engine_ != nullptr) num_states = engine_->num_automaton_states();
    // Swap shard by shard: scanning continues on shards not yet swapped,
    // and each shard always holds a consistent (engine, flow table) pair.
    // DFA state identifiers are meaningful only within one compiled engine;
    // carrying cursors across a recompile would resume at arbitrary states.
    for (auto& shard : shards_) {
      const MutexLock lock(shard->mu);
      shard->engine = engine;
      shard->flows.clear();
      DPISVC_ASSERT_INVARIANT(shard->flows.size() == 0,
                              "flow table must be empty after an engine swap");
    }
  }
  log(LogLevel::kInfo, name_, "loaded engine v", version, " (", num_states,
      " states)");
}

std::uint64_t DpiInstance::engine_version() const {
  const MutexLock lock(control_mu_);
  return engine_version_;
}

bool DpiInstance::has_engine() const {
  const MutexLock lock(control_mu_);
  return engine_ != nullptr;
}

std::shared_ptr<const dpi::Engine> DpiInstance::engine_snapshot() const {
  const MutexLock lock(control_mu_);
  return engine_;
}

namespace {

void accumulate(InstanceTelemetry& into, const InstanceTelemetry& from) {
  into.packets += from.packets;
  into.bytes += from.bytes;
  into.raw_hits += from.raw_hits;
  into.match_packets += from.match_packets;
  into.result_bytes += from.result_bytes;
  into.pass_through += from.pass_through;
  into.decompressed_packets += from.decompressed_packets;
  into.decompressed_bytes += from.decompressed_bytes;
  into.reassembly_held += from.reassembly_held;
  into.defrag_held += from.defrag_held;
  into.flow_evictions += from.flow_evictions;
  into.busy_seconds += from.busy_seconds;
}

}  // namespace

net::ReassemblyStats DpiInstance::reassembly_stats() const {
  net::ReassemblyStats total;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    const net::ReassemblyStats& s = shard->reassembler.stats();
    total.dropped_segments += s.dropped_segments;
    total.duplicate_bytes += s.duplicate_bytes;
    total.ambiguous_overlaps += s.ambiguous_overlaps;
    total.conflicting_overlap_bytes += s.conflicting_overlap_bytes;
    total.stream_evictions += s.stream_evictions;
    total.streams_closed += s.streams_closed;
    total.ignored_fins += s.ignored_fins;
    total.ignored_rsts += s.ignored_rsts;
  }
  return total;
}

net::DefragStats DpiInstance::defrag_stats() const {
  net::DefragStats total;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    const net::DefragStats& s = shard->defrag.stats();
    total.fragments += s.fragments;
    total.datagrams_completed += s.datagrams_completed;
    total.rejected_tiny += s.rejected_tiny;
    total.rejected_bounds += s.rejected_bounds;
    total.ambiguous_fragments += s.ambiguous_fragments;
    total.conflicting_bytes += s.conflicting_bytes;
    total.evicted_incomplete += s.evicted_incomplete;
  }
  return total;
}

InstanceTelemetry DpiInstance::telemetry() const {
  InstanceTelemetry total;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    accumulate(total, shard->telemetry);
  }
  return total;
}

std::map<dpi::ChainId, ChainTelemetry> DpiInstance::chain_telemetry() const {
  std::map<dpi::ChainId, ChainTelemetry> total;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    for (const auto& [chain, counters] : shard->chain_telemetry) {
      ChainTelemetry& into = total[chain];
      into.packets += counters.packets;
      into.bytes += counters.bytes;
      into.raw_hits += counters.raw_hits;
    }
  }
  return total;
}

InstanceTelemetry DpiInstance::reset_telemetry() {
  // Snapshot-and-reset shard by shard, each under its own mutex: a packet
  // being scanned concurrently lands either in the returned snapshot or in
  // the counters after the reset — never in both, never in neither. The
  // previous wipe-only variant silently discarded the residual counts, so a
  // windowed consumer racing the scanners could not account for them.
  InstanceTelemetry total;
  for (auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    accumulate(total, shard->telemetry);
    shard->telemetry = InstanceTelemetry{};
    shard->chain_telemetry.clear();
  }
  return total;
}

json::Value DpiInstance::stats_json() const {
  json::Object root;
  root["instance"] = json::Value(name_);
  root["engine_version"] = json::Value(engine_version());
  root["num_shards"] = json::Value(static_cast<std::uint64_t>(shards_.size()));
  root["active_flows"] = json::Value(static_cast<std::uint64_t>(active_flows()));

  const InstanceTelemetry t = telemetry();
  json::Object counters;
  counters["packets"] = json::Value(t.packets);
  counters["bytes"] = json::Value(t.bytes);
  counters["raw_hits"] = json::Value(t.raw_hits);
  counters["match_packets"] = json::Value(t.match_packets);
  counters["result_bytes"] = json::Value(t.result_bytes);
  counters["pass_through"] = json::Value(t.pass_through);
  counters["decompressed_packets"] = json::Value(t.decompressed_packets);
  counters["decompressed_bytes"] = json::Value(t.decompressed_bytes);
  counters["reassembly_held"] = json::Value(t.reassembly_held);
  counters["defrag_held"] = json::Value(t.defrag_held);
  counters["flow_evictions"] = json::Value(t.flow_evictions);
  counters["busy_seconds"] = json::Value(t.busy_seconds);
  counters["hits_per_byte"] = json::Value(t.hits_per_byte());
  root["telemetry"] = json::Value(std::move(counters));

  const net::ReassemblyStats rs = reassembly_stats();
  json::Object reassembly;
  reassembly["policy"] =
      json::Value(std::string(
          net::overlap_policy_name(config_.reassembly.overlap_policy)));
  reassembly["dropped_segments"] = json::Value(rs.dropped_segments);
  reassembly["duplicate_bytes"] = json::Value(rs.duplicate_bytes);
  reassembly["ambiguous_overlaps"] = json::Value(rs.ambiguous_overlaps);
  reassembly["conflicting_overlap_bytes"] =
      json::Value(rs.conflicting_overlap_bytes);
  reassembly["stream_evictions"] = json::Value(rs.stream_evictions);
  reassembly["streams_closed"] = json::Value(rs.streams_closed);
  reassembly["ignored_fins"] = json::Value(rs.ignored_fins);
  reassembly["ignored_rsts"] = json::Value(rs.ignored_rsts);
  root["reassembly"] = json::Value(std::move(reassembly));

  const net::DefragStats ds = defrag_stats();
  json::Object defrag;
  defrag["fragments"] = json::Value(ds.fragments);
  defrag["datagrams_completed"] = json::Value(ds.datagrams_completed);
  defrag["rejected_tiny"] = json::Value(ds.rejected_tiny);
  defrag["rejected_bounds"] = json::Value(ds.rejected_bounds);
  defrag["ambiguous_fragments"] = json::Value(ds.ambiguous_fragments);
  defrag["conflicting_bytes"] = json::Value(ds.conflicting_bytes);
  defrag["evicted_incomplete"] = json::Value(ds.evicted_incomplete);
  root["defrag"] = json::Value(std::move(defrag));

  json::Object ingest;
  ingest["overload_policy"] =
      json::Value(std::string(overload_policy_name(config_.overload)));
  ingest["queue_capacity"] =
      json::Value(static_cast<std::uint64_t>(config_.queue_capacity));
  if (ingest_obs_.shed != nullptr) {
    ingest["backpressure_blocked"] = json::Value(ingest_obs_.blocked->value());
    ingest["backpressure_shed"] = json::Value(ingest_obs_.shed->value());
    ingest["batches_in_flight"] =
        json::Value(ingest_obs_.batches_in_flight->value());
  }
  root["ingest"] = json::Value(std::move(ingest));

  json::Object chains;
  for (const auto& [chain, ct] : chain_telemetry()) {
    json::Object c;
    c["packets"] = json::Value(ct.packets);
    c["bytes"] = json::Value(ct.bytes);
    c["raw_hits"] = json::Value(ct.raw_hits);
    chains[std::to_string(chain)] = json::Value(std::move(c));
  }
  root["chains"] = json::Value(std::move(chains));

  root["metrics"] = metrics_.snapshot();
  if (trace_.enabled()) {
    root["trace"] = trace_.to_json();
  }
  return json::Value(std::move(root));
}

std::size_t DpiInstance::active_flows() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    total += shard->flows.size();
  }
  return total;
}

std::vector<net::FiveTuple> DpiInstance::active_flow_keys() const {
  std::vector<net::FiveTuple> out;
  for (const auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    const auto keys = shard->flows.keys();
    out.insert(out.end(), keys.begin(), keys.end());
  }
  return out;
}

dpi::ScanResult DpiInstance::scan(dpi::ChainId chain,
                                  const net::FiveTuple& flow,
                                  BytesView payload) {
  Shard& shard = shard_of(flow);
  if (trace_.enabled()) {
    trace_.record(obs::TraceEvent::kShardDispatch, flow.canonical().hash(), 0,
                  payload.size(), shard.index, chain);
  }
  const MutexLock lock(shard.mu);
  return scan_on_shard(shard, chain, flow, payload);
}

namespace {

/// Context threaded through ScanPool::JobFn for one batched dispatch: the
/// job for shard s covers index range order[offsets[s] .. offsets[s+1]).
/// A plain struct on the dispatcher's stack — the old path heap-allocated a
/// std::function closure per shard per batch.
struct BatchScanCtx {
  DpiInstance* self;
  const std::vector<ScanItem>* items;
  std::vector<dpi::ScanResult>* out;
  const std::uint32_t* order;
  const std::uint32_t* offsets;
};

struct BatchProcessCtx {
  DpiInstance* self;
  std::vector<net::Packet>* packets;
  std::vector<ProcessOutput>* out;
  const std::uint32_t* order;
  const std::uint32_t* offsets;
};

/// Reusable counting-sort scratch. thread_local so concurrent batch callers
/// never share buffers; the vectors keep their capacity across batches, so
/// steady-state partitioning allocates nothing.
struct PartitionScratch {
  std::vector<std::uint32_t> shard_of;
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> cursor;
};

PartitionScratch& partition_scratch() {
  thread_local PartitionScratch scratch;
  return scratch;
}

/// Stable counting sort of [0, n) by shard: after the call,
/// scratch.order[scratch.offsets[s] .. scratch.offsets[s+1]) lists shard
/// s's item indices in submission order. Stability is what preserves
/// per-flow packet order through the partition.
template <typename ShardOf>
void partition_by_shard(std::size_t n, std::size_t num_shards,
                        ShardOf&& shard_of_fn, PartitionScratch& scratch) {
  scratch.shard_of.resize(n);
  scratch.offsets.assign(num_shards + 1, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto s = static_cast<std::uint32_t>(shard_of_fn(i));
    scratch.shard_of[i] = s;
    ++scratch.offsets[s + 1];
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    scratch.offsets[s + 1] += scratch.offsets[s];
  }
  scratch.cursor.assign(scratch.offsets.begin(), scratch.offsets.end() - 1);
  scratch.order.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    scratch.order[scratch.cursor[scratch.shard_of[i]]++] = i;
  }
}

}  // namespace

std::vector<dpi::ScanResult> DpiInstance::scan_batch(
    const std::vector<ScanItem>& items) {
  std::vector<dpi::ScanResult> out;
  scan_batch_into(items, out);
  return out;
}

void DpiInstance::scan_batch_into(const std::vector<ScanItem>& items,
                                  std::vector<dpi::ScanResult>& out) {
  out.clear();
  out.resize(items.size());
  if (items.empty()) return;
  PartitionScratch& scratch = partition_scratch();
  partition_by_shard(
      items.size(), shards_.size(),
      [&](std::size_t i) { return shard_index(items[i].flow); }, scratch);
  BatchScanCtx ctx{this, &items, &out, scratch.order.data(),
                   scratch.offsets.data()};
  pool_.dispatch(&DpiInstance::scan_batch_job, &ctx, shards_.size());
}

void DpiInstance::scan_batch_job(void* ctx, std::size_t shard) {
  auto* c = static_cast<BatchScanCtx*>(ctx);
  const std::uint32_t begin = c->offsets[shard];
  const std::uint32_t end = c->offsets[shard + 1];
  if (begin == end) return;
  c->self->scan_bucket(shard, *c->items, c->order + begin, end - begin,
                       *c->out);
}

void DpiInstance::scan_bucket(std::size_t shard_idx,
                              const std::vector<ScanItem>& items,
                              const std::uint32_t* indices, std::size_t count,
                              std::vector<dpi::ScanResult>& out) {
  Shard& shard = *shards_[shard_idx];
  const MutexLock lock(shard.mu);
  const bool batched = shard.engine != nullptr && shard.engine->kernel_active();
  std::size_t pos = 0;
  while (pos < count) {
    if (trace_.enabled()) {
      const std::size_t i = indices[pos];
      trace_.record(obs::TraceEvent::kShardDispatch,
                    items[i].flow.canonical().hash(), 0,
                    items[i].payload.size(), shard.index, items[i].chain);
    }
    if (!batched) {
      const std::size_t i = indices[pos];
      // Distinct indices per bucket: writes to `out` never alias.
      out[i] = scan_on_shard(shard, items[i].chain, items[i].flow,
                             items[i].payload);
      ++pos;
      continue;
    }
    // Form a same-chain run for the interleaved kernel. A stateful run
    // additionally (a) breaks before a flow it already contains — each
    // run cursor must see the previous packet's update — and (b) only
    // forms while no LRU eviction is possible (run cursors are looked
    // up before any update; with every run flow distinct and room for
    // all inserts, the flow table ends in the same state as the
    // sequential order, so results stay identical).
    const dpi::ChainId chain = items[indices[pos]].chain;
    const bool stateful = shard.engine->chain_stateful(chain);
    constexpr std::size_t kMaxRun = 32;
    std::size_t end = pos + 1;
    if (!stateful || shard.flows.size() + kMaxRun <= shard.flows.capacity()) {
      while (end < count && end - pos < kMaxRun &&
             items[indices[end]].chain == chain) {
        if (stateful) {
          bool repeat = false;
          for (std::size_t k = pos; k < end && !repeat; ++k) {
            repeat = items[indices[k]].flow.canonical() ==
                     items[indices[end]].flow.canonical();
          }
          if (repeat) break;
        }
        if (trace_.enabled()) {
          const std::size_t i = indices[end];
          trace_.record(obs::TraceEvent::kShardDispatch,
                        items[i].flow.canonical().hash(), 0,
                        items[i].payload.size(), shard.index, items[i].chain);
        }
        ++end;
      }
    }
    if (end - pos == 1) {
      const std::size_t i = indices[pos];
      out[i] = scan_on_shard(shard, items[i].chain, items[i].flow,
                             items[i].payload);
    } else {
      scan_run_on_shard(shard, chain, items, indices + pos, end - pos, out);
    }
    pos = end;
  }
}

std::vector<ProcessOutput> DpiInstance::process_batch(
    std::vector<net::Packet> packets) {
  std::vector<ProcessOutput> out(packets.size());
  if (packets.empty()) return out;
  PartitionScratch& scratch = partition_scratch();
  partition_by_shard(
      packets.size(), shards_.size(),
      [&](std::size_t i) { return shard_index(packets[i].tuple); }, scratch);
  BatchProcessCtx ctx{this, &packets, &out, scratch.order.data(),
                      scratch.offsets.data()};
  pool_.dispatch(&DpiInstance::process_batch_job, &ctx, shards_.size());
  return out;
}

void DpiInstance::process_batch_job(void* ctx, std::size_t shard) {
  auto* c = static_cast<BatchProcessCtx*>(ctx);
  const std::uint32_t begin = c->offsets[shard];
  const std::uint32_t end = c->offsets[shard + 1];
  if (begin == end) return;
  Shard& sh = *c->self->shards_[shard];
  const MutexLock lock(sh.mu);
  for (std::uint32_t k = begin; k < end; ++k) {
    const std::uint32_t i = c->order[k];
    // A flow's packets share a bucket and keep submission order, so the
    // outputs match the per-packet process() path exactly.
    (*c->out)[i] = c->self->process_on_shard(sh, std::move((*c->packets)[i]));
  }
}

dpi::ScanResult DpiInstance::scan_on_shard(Shard& shard, dpi::ChainId chain,
                                           const net::FiveTuple& flow,
                                           BytesView payload) {
  if (shard.engine == nullptr) {
    throw std::logic_error("DpiInstance::scan: no engine loaded");
  }
  Stopwatch watch;
  dpi::FlowCursor cursor;
  const bool stateful = shard.engine->chain_stateful(chain);
  if (stateful) {
    cursor = shard.flows.lookup(flow);
  }
  dpi::ScanResult result = shard.engine->scan_packet(chain, payload, cursor);
  if (stateful) {
    DPISVC_ASSERT_INVARIANT(
        result.cursor.valid &&
            result.cursor.dfa_state < shard.engine->num_automaton_states(),
        "stateful scan must leave the cursor on a state of this engine");
    if (shard.flows.update(flow, result.cursor)) {
      // A live cursor was LRU-evicted: the victim flow resumes from the DFA
      // root, so a pattern straddling this point is missed. Count it so the
      // capacity shortfall is observable (§4.3.1 telemetry).
      ++shard.telemetry.flow_evictions;
      if (shard.obs.flow_evictions != nullptr) {
        shard.obs.flow_evictions->add(1);
      }
      log(LogLevel::kDebug, name_,
          "flow table full: evicted live stateful cursor (evictions=",
          shard.telemetry.flow_evictions, ")");
    }
  }
  // One clock read serves both the busy-seconds counter and the latency
  // histogram — the obs layer adds no clock overhead to the scan path.
  const std::uint64_t scan_ns = watch.elapsed_ns();
  shard.telemetry.busy_seconds += static_cast<double>(scan_ns) * 1e-9;
  ++shard.telemetry.packets;
  shard.telemetry.bytes += payload.size();
  shard.telemetry.raw_hits += result.raw_hits;
  ChainTelemetry& per_chain = shard.chain_telemetry[chain];
  ++per_chain.packets;
  per_chain.bytes += payload.size();
  per_chain.raw_hits += result.raw_hits;
  if (result.has_matches()) {
    ++shard.telemetry.match_packets;
  }
  const ShardInstruments& ins = shard.obs;
  if (ins.packets != nullptr) {
    ins.scan_ns->record(scan_ns);
    ins.packets->add(1);
    ins.bytes->add(payload.size());
    ins.raw_hits->add(result.raw_hits);
    ins.anchor_hits->add(result.anchor_hits_seen);
    ins.regex_evals->add(result.regexes_evaluated);
    ins.regex_matches->add(result.regex_matches);
    if (stateful) {
      ins.flow_occupancy->set(static_cast<std::int64_t>(shard.flows.size()));
    }
  }
  if (trace_.enabled()) {
    const std::uint64_t fh = flow.canonical().hash();
    const std::uint64_t flow_offset =
        result.cursor.valid ? result.cursor.offset : result.bytes_scanned;
    trace_.record(obs::TraceEvent::kDfaScan, fh, flow_offset,
                  result.bytes_scanned, shard.index, chain);
    if (result.regexes_evaluated > 0) {
      trace_.record(obs::TraceEvent::kRegexEval, fh, flow_offset,
                    result.regexes_evaluated, shard.index, chain);
    }
    std::uint64_t entries = 0;
    for (const auto& m : result.matches) entries += m.entries.size();
    trace_.record(obs::TraceEvent::kVerdict, fh, flow_offset, entries,
                  shard.index, chain);
  }
  return result;
}

void DpiInstance::scan_run_on_shard(Shard& shard, dpi::ChainId chain,
                                    const std::vector<ScanItem>& items,
                                    const std::uint32_t* indices,
                                    std::size_t count,
                                    std::vector<dpi::ScanResult>& out) {
  if (shard.engine == nullptr) {
    throw std::logic_error("DpiInstance::scan: no engine loaded");
  }
  Stopwatch watch;
  const bool stateful = shard.engine->chain_stateful(chain);
  // The caller guarantees distinct flows per stateful run, so the cursors
  // never alias and each lookup precedes its flow's sole update.
  std::vector<BytesView> payloads;
  payloads.reserve(count);
  std::vector<dpi::FlowCursor> cursors;
  if (stateful) cursors.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const ScanItem& item = items[indices[k]];
    payloads.push_back(item.payload);
    if (stateful) cursors.push_back(shard.flows.lookup(item.flow));
  }

  std::vector<dpi::ScanResult> results =
      shard.engine->scan_batch(chain, payloads, stateful ? &cursors : nullptr);

  // One clock read for the whole run; each packet is attributed its share —
  // the interleave makes per-packet walk time unmeasurable in isolation.
  const std::uint64_t run_ns = watch.elapsed_ns();
  const std::uint64_t per_packet_ns = run_ns / count;
  shard.telemetry.busy_seconds += static_cast<double>(run_ns) * 1e-9;
  ChainTelemetry& per_chain = shard.chain_telemetry[chain];
  const ShardInstruments& ins = shard.obs;

  for (std::size_t k = 0; k < count; ++k) {
    const ScanItem& item = items[indices[k]];
    dpi::ScanResult& result = results[k];
    if (stateful) {
      DPISVC_ASSERT_INVARIANT(
          result.cursor.valid &&
              result.cursor.dfa_state < shard.engine->num_automaton_states(),
          "stateful scan must leave the cursor on a state of this engine");
      if (shard.flows.update(item.flow, result.cursor)) {
        ++shard.telemetry.flow_evictions;
        if (shard.obs.flow_evictions != nullptr) {
          shard.obs.flow_evictions->add(1);
        }
        log(LogLevel::kDebug, name_,
            "flow table full: evicted live stateful cursor (evictions=",
            shard.telemetry.flow_evictions, ")");
      }
    }
    ++shard.telemetry.packets;
    shard.telemetry.bytes += item.payload.size();
    shard.telemetry.raw_hits += result.raw_hits;
    ++per_chain.packets;
    per_chain.bytes += item.payload.size();
    per_chain.raw_hits += result.raw_hits;
    if (result.has_matches()) {
      ++shard.telemetry.match_packets;
    }
    if (ins.packets != nullptr) {
      ins.scan_ns->record(per_packet_ns);
      ins.packets->add(1);
      ins.bytes->add(item.payload.size());
      ins.raw_hits->add(result.raw_hits);
      ins.anchor_hits->add(result.anchor_hits_seen);
      ins.regex_evals->add(result.regexes_evaluated);
      ins.regex_matches->add(result.regex_matches);
    }
    if (trace_.enabled()) {
      const std::uint64_t fh = item.flow.canonical().hash();
      const std::uint64_t flow_offset =
          result.cursor.valid ? result.cursor.offset : result.bytes_scanned;
      trace_.record(obs::TraceEvent::kDfaScan, fh, flow_offset,
                    result.bytes_scanned, shard.index, chain);
      if (result.regexes_evaluated > 0) {
        trace_.record(obs::TraceEvent::kRegexEval, fh, flow_offset,
                      result.regexes_evaluated, shard.index, chain);
      }
      std::uint64_t entries = 0;
      for (const auto& m : result.matches) entries += m.entries.size();
      trace_.record(obs::TraceEvent::kVerdict, fh, flow_offset, entries,
                    shard.index, chain);
    }
    out[indices[k]] = std::move(result);
  }
  if (stateful && ins.packets != nullptr) {
    ins.flow_occupancy->set(static_cast<std::int64_t>(shard.flows.size()));
  }
}

void DpiInstance::publish_evasion_metrics(Shard& shard) {
  const ShardInstruments& ins = shard.obs;
  if (ins.reassembly_dropped == nullptr) return;  // metrics disabled
  // The stat blocks are monotonic; publish the delta since the last call so
  // the obs counters mirror them exactly.
  const net::ReassemblyStats& r = shard.reassembler.stats();
  net::ReassemblyStats& rp = shard.obs_reassembly;
  ins.reassembly_dropped->add(r.dropped_segments - rp.dropped_segments);
  ins.reassembly_duplicate_bytes->add(r.duplicate_bytes - rp.duplicate_bytes);
  ins.reassembly_ambiguous->add(r.ambiguous_overlaps - rp.ambiguous_overlaps);
  ins.reassembly_conflicting_bytes->add(r.conflicting_overlap_bytes -
                                        rp.conflicting_overlap_bytes);
  ins.reassembly_stream_evictions->add(r.stream_evictions -
                                       rp.stream_evictions);
  ins.reassembly_streams_closed->add(r.streams_closed - rp.streams_closed);
  ins.reassembly_ignored_fins->add(r.ignored_fins - rp.ignored_fins);
  ins.reassembly_ignored_rsts->add(r.ignored_rsts - rp.ignored_rsts);
  rp = r;
  const net::DefragStats& d = shard.defrag.stats();
  net::DefragStats& dp = shard.obs_defrag;
  ins.defrag_fragments->add(d.fragments - dp.fragments);
  ins.defrag_completed->add(d.datagrams_completed - dp.datagrams_completed);
  ins.defrag_rejected->add((d.rejected_tiny + d.rejected_bounds) -
                           (dp.rejected_tiny + dp.rejected_bounds));
  ins.defrag_ambiguous->add(d.ambiguous_fragments - dp.ambiguous_fragments);
  ins.defrag_evicted->add(d.evicted_incomplete - dp.evicted_incomplete);
  dp = d;
}

net::MatchReport DpiInstance::build_report(dpi::ChainId chain,
                                           std::uint64_t packet_ref,
                                           const dpi::ScanResult& scan) const {
  net::MatchReport report;
  report.policy_chain_id = chain;
  report.packet_ref = packet_ref;
  for (const dpi::MiddleboxMatches& m : scan.matches) {
    if (m.entries.empty()) continue;
    net::MiddleboxSection section;
    section.middlebox_id = m.middlebox;
    section.entries = m.entries;
    report.sections.push_back(std::move(section));
  }
  return report;
}

/// Decompress-once preprocessing (§1): returns the inflated payload when
/// the packet carries a gzip or zlib body and decompression is enabled;
/// otherwise std::nullopt (scan the raw bytes).
std::optional<Bytes> DpiInstance::maybe_decompress(BytesView payload) {
  if (!config_.decompress_payloads) return std::nullopt;
  compress::InflateLimits limits;
  limits.max_output = config_.max_decompressed;
  try {
    if (compress::looks_like_gzip(payload)) {
      return compress::gzip_decompress(payload, limits);
    }
    if (compress::looks_like_zlib(payload)) {
      return compress::zlib_decompress(payload, limits);
    }
  } catch (const compress::InflateError&) {
    // Not actually compressed (or corrupt / a bomb): scan the raw bytes.
  }
  return std::nullopt;
}

ProcessOutput DpiInstance::process(net::Packet packet) {
  Shard& shard = shard_of(packet.tuple);
  const MutexLock lock(shard.mu);
  return process_on_shard(shard, std::move(packet));
}

ProcessOutput DpiInstance::process_on_shard(Shard& shard, net::Packet packet) {
  ProcessOutput out;
  const auto tag = packet.find_tag(net::TagKind::kPolicyChain);
  if (trace_.enabled()) {
    trace_.record(obs::TraceEvent::kPacketIn, packet.tuple.canonical().hash(),
                  0, packet.payload.size(), shard.index,
                  tag ? static_cast<std::uint32_t>(*tag) : 0u);
  }
  if (!tag || shard.engine == nullptr ||
      !shard.engine->chain_known(static_cast<dpi::ChainId>(*tag))) {
    // Not ours to inspect: forward unchanged.
    ++shard.telemetry.pass_through;
    out.data = std::move(packet);
    return out;
  }
  const auto chain = static_cast<dpi::ChainId>(*tag);

  // IPv4 defragmentation: scan whole datagrams, not fragments. An
  // incomplete fragment is forwarded unchanged (middleboxes see it; the
  // scan runs on the packet that completes the datagram, which then carries
  // the reassembled payload).
  if (config_.defragment_ip) {
    if (packet.is_fragment()) {
      auto full = shard.defrag.feed(packet);
      publish_evasion_metrics(shard);
      if (!full) {
        ++shard.telemetry.defrag_held;
        out.data = std::move(packet);
        return out;
      }
      packet = std::move(*full);
    } else {
      // Non-fragments still advance the defragmenter's logical clock so
      // partial datagrams time out against real traffic.
      shard.defrag.tick();
    }
  }

  // Stream reassembly (§7): scan in-order stream chunks, not raw segments.
  std::optional<Bytes> chunk_storage;
  if (config_.reassemble_tcp && packet.tuple.proto == net::IpProto::kTcp) {
    auto chunk = shard.reassembler.feed(packet);
    publish_evasion_metrics(shard);
    if (!chunk) {
      // Out-of-order segment: nothing contiguous yet. Forward the packet
      // (middleboxes see it; results for its bytes come with the packet
      // that completes the gap).
      ++shard.telemetry.reassembly_held;
      out.data = std::move(packet);
      return out;
    }
    chunk_storage = std::move(chunk->data);
  }
  const BytesView stream_bytes =
      chunk_storage ? BytesView(*chunk_storage) : BytesView(packet.payload);

  // Decompress once for all middleboxes on the chain (§1).
  BytesView scan_bytes = stream_bytes;
  std::optional<Bytes> inflated = maybe_decompress(stream_bytes);
  if (inflated) {
    ++shard.telemetry.decompressed_packets;
    shard.telemetry.decompressed_bytes += inflated->size();
    scan_bytes = *inflated;
  }
  const dpi::ScanResult scanned =
      scan_on_shard(shard, chain, packet.tuple, scan_bytes);

  const bool result_only = config_.result_mode == ResultMode::kResultOnly &&
                           shard.engine->chain_read_only(chain);
  if (result_only) {
    // §4.2 option 3: the data packet bypasses the (read-only) middleboxes;
    // pop the steering tag so the switch sends it straight to the egress.
    packet.pop_tag(net::TagKind::kPolicyChain);
  }

  if (!scanned.has_matches()) {
    // §4.2: "a packet with no matches is always forwarded as is".
    out.data = std::move(packet);
    return out;
  }

  out.had_matches = true;
  const std::uint64_t packet_ref =
      packet.tuple.hash() ^ (static_cast<std::uint64_t>(packet.ip_id) << 48);
  // Keep in sync with service::packet_ref_of (instance_node.hpp).
  const net::MatchReport report = build_report(chain, packet_ref, scanned);
  const Bytes encoded = net::encode_report(report, config_.codec);
  shard.telemetry.result_bytes += encoded.size();

  packet.set_match_mark(true);  // §6.1: ECN marks "has matches"
  if (config_.result_mode == ResultMode::kServiceHeader && !result_only) {
    net::ServiceHeader sh;
    sh.service_path_id = chain;
    sh.service_index = 0;
    sh.metadata = encoded;
    packet.service_header = std::move(sh);
    out.data = std::move(packet);
    return out;
  }

  // Dedicated result packet follows the data packet through the chain (or,
  // in result-only mode, travels the chain alone): it copies the flow tuple
  // and steering tags and is marked by the reserved service-path id.
  net::Packet result;
  result.src_mac = packet.src_mac;
  result.dst_mac = packet.dst_mac;
  result.tags = packet.tags;
  if (result_only) {
    result.push_tag(net::TagKind::kPolicyChain, chain);  // data's tag popped
  }
  result.tuple = packet.tuple;
  result.ip_id = packet.ip_id;
  net::ServiceHeader sh;
  sh.service_path_id = kResultServicePathId;
  sh.service_index = 0;
  sh.metadata = encoded;
  result.service_header = std::move(sh);

  out.data = std::move(packet);
  out.result = std::move(result);
  return out;
}

dpi::FlowCursor DpiInstance::export_flow(const net::FiveTuple& flow) {
  Shard& shard = shard_of(flow);
  const MutexLock lock(shard.mu);
  return shard.flows.extract(flow);
}

namespace {

/// A stored cursor must index a state of the shard's *current* engine; a
/// cursor exported before a hot swap landed would resume the DFA from an
/// arbitrary (possibly out-of-range) state. The controller prevents this by
/// matching engine versions, but the instance still refuses rather than
/// trusting its caller.
bool cursor_fits_engine(const dpi::FlowCursor& cursor,
                        const dpi::Engine* engine) {
  if (!cursor.valid) return false;  // nothing worth storing
  return engine != nullptr && cursor.dfa_state < engine->num_automaton_states();
}

}  // namespace

void DpiInstance::import_flow(const net::FiveTuple& flow,
                              const dpi::FlowCursor& cursor) {
  Shard& shard = shard_of(flow);
  const MutexLock lock(shard.mu);
  if (!cursor_fits_engine(cursor, shard.engine.get())) return;
  shard.flows.update(flow, cursor);
}

std::vector<std::pair<net::FiveTuple, dpi::FlowCursor>>
DpiInstance::export_all_flows() {
  std::vector<std::pair<net::FiveTuple, dpi::FlowCursor>> out;
  // Shard at a time: the rest of the data plane keeps scanning while one
  // shard is drained.
  for (auto& shard : shards_) {
    const MutexLock lock(shard->mu);
    auto drained = shard->flows.drain();
    out.insert(out.end(), std::make_move_iterator(drained.begin()),
               std::make_move_iterator(drained.end()));
  }
  return out;
}

void DpiInstance::import_flows(
    const std::vector<std::pair<net::FiveTuple, dpi::FlowCursor>>& flows) {
  for (const auto& [flow, cursor] : flows) {
    Shard& shard = shard_of(flow);
    const MutexLock lock(shard.mu);
    if (!cursor_fits_engine(cursor, shard.engine.get())) continue;
    shard.flows.update(flow, cursor);
  }
}

}  // namespace dpisvc::service
