// DPI service instance (§5, §6.1).
//
// An instance holds a compiled dpi::Engine (swapped atomically when the
// controller pushes a new pattern-set version), a flow table for stateful
// chains, and the result-emission logic of §4.2:
//
//  - ResultMode::kServiceHeader — match results are attached to the data
//    packet as an NSH-like layer in front of the payload (§4.2, option 1);
//  - ResultMode::kDedicatedPacket — results travel in a separate packet
//    emitted right after the data packet, which is what the paper's
//    prototype does ("we decided to send match information ... as a
//    separate packet since POX only implements OpenFlow 1.0");
//  - in both modes the data packet's ECN bit marks "has matches" (§6.1),
//    and "a packet with no matches is always forwarded as is without any
//    modification" (§4.2).
//
// The instance also exports the telemetry MCA² needs (§4.3.1) and supports
// per-flow state export/import for flow migration (§4.3).
//
// Data-plane concurrency (§6 scaling): the instance is sharded. Each shard
// owns a mutex, an engine snapshot (std::shared_ptr<const dpi::Engine>), a
// FlowTable, a TCP reassembler, and telemetry counters. A packet's shard is
// FiveTuple::canonical() hash % num_workers, so both directions of a flow —
// and therefore its stateful cursor — belong to exactly one shard and no
// cross-shard FlowTable locking ever happens. scan_batch() / process_batch()
// partition a packet vector by shard and dispatch one job per shard to the
// ScanPool (worker i ↔ shard i), which preserves per-flow packet order for
// any worker count. The pool's per-worker job rings are fixed-capacity
// (InstanceConfig::queue_capacity), so a stalled shard surfaces as
// backpressure — counted through the ingest.backpressure.* instruments —
// instead of unbounded queue growth. Control-plane operations (engine push,
// migration, telemetry sampling) take shards one at a time — they drain the
// affected shard, not the whole data plane. Lock order: control_mu_ before
// any shard mutex; never two shard mutexes at once.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_safety.hpp"
#include "common/timer.hpp"
#include "dpi/engine.hpp"
#include "dpi/flow_table.hpp"
#include "json/json.hpp"
#include "net/defrag.hpp"
#include "net/packet.hpp"
#include "net/reassembly.hpp"
#include "net/result.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/scan_pool.hpp"

namespace dpisvc::service {

/// service_path_id value marking a dedicated result packet; middleboxes use
/// it to distinguish results from data.
inline constexpr std::uint32_t kResultServicePathId = 0xD715ECFE;

enum class ResultMode {
  kServiceHeader,
  kDedicatedPacket,
  /// §4.2 option 3 ("Big Tap"-style): for chains whose middleboxes are all
  /// read-only, the data packet skips the middlebox path entirely (its
  /// steering tag is popped so it heads straight to the egress) and only
  /// the result packet — produced only when there are matches — follows
  /// the chain to the middleboxes. "As most packets do not contain matches
  /// at all, this option may dramatically reduce traffic load over the
  /// middlebox service chain." Chains with non-read-only members fall back
  /// to dedicated result packets.
  kResultOnly,
};

struct InstanceConfig {
  ResultMode result_mode = ResultMode::kDedicatedPacket;
  net::ReportCodec codec = net::ReportCodec::kUniform6;
  /// Dedicated MCA² instance: tuned for heavy/adversarial traffic (the
  /// controller compiles its engine with the compressed automaton).
  bool dedicated = false;
  /// Decompress-once (§1): gzip/zlib payloads are inflated before the scan
  /// so the heavy decompression runs a single time for all middleboxes on
  /// the chain, instead of once per middlebox. Packets that fail to
  /// decompress are scanned in their raw form.
  bool decompress_payloads = false;
  /// Bound on per-packet decompressed size (bomb protection).
  std::size_t max_decompressed = 1 << 20;
  /// TCP stream reassembly before scanning (§7's "session reconstruction"):
  /// out-of-order segments are buffered and the scan consumes in-order
  /// stream chunks, closing the segmentation-evasion hole. Only affects TCP
  /// packets on known chains.
  bool reassemble_tcp = false;
  /// Reassembly policy knobs (overlap policy, history window, buffering and
  /// stream-table bounds) applied to every shard's FlowReassembler.
  net::ReassemblyConfig reassembly;
  /// IPv4 defragmentation in front of reassembly: fragments are buffered and
  /// the scan path sees whole datagrams, closing the fragmentation-evasion
  /// hole. Only affects fragments of known chains.
  bool defragment_ip = false;
  /// Defragmenter bounds and overlap policy, applied per shard.
  net::DefragConfig defrag;
  /// Deployment group this instance serves (§4.3: "deploy instances that
  /// support only one group and not all the policy chains in the system");
  /// empty = all chains. The controller compiles group-restricted engines.
  std::string group;
  /// Aggregate flow-table capacity, split evenly across shards.
  std::size_t max_flows = 1 << 20;
  /// Data-plane shards / scan-pool workers. 1 (the default) spawns no
  /// threads: scans run inline on the caller, preserving the pre-sharding
  /// single-threaded behavior exactly.
  std::size_t num_workers = 1;
  /// Per-worker job-ring capacity (slots). Bounds the fabric→shard handoff:
  /// a stalled shard holds at most this many queued jobs (the old pool's
  /// deque grew without limit), after which producers block or shed per
  /// `overload`.
  std::size_t queue_capacity = 1024;
  /// Producer behavior on a full shard ring (asynchronous submissions only;
  /// the synchronous scan_batch()/process_batch() dispatches always block —
  /// their callers wait for completion regardless).
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// Record per-shard obs metrics (scan-latency histogram, packet/byte/hit
  /// counters, flow-occupancy gauge, pool queue-wait histogram). The writes
  /// are relaxed atomics on the scan path; disable to shave the last few
  /// nanoseconds per packet (bench_obs quantifies the difference).
  bool metrics = true;
  /// ScanTrace ring capacity (structured per-packet event records for
  /// debugging); 0 — the default — disables tracing entirely.
  std::size_t trace_capacity = 0;
};

/// Counters exported to the DPI controller as stress telemetry (§4.3.1).
struct InstanceTelemetry {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t raw_hits = 0;        ///< accepting-state hits during scans
  std::uint64_t match_packets = 0;   ///< packets with at least one match
  std::uint64_t result_bytes = 0;    ///< encoded report bytes emitted
  std::uint64_t pass_through = 0;    ///< packets with no/unknown chain tag
  std::uint64_t decompressed_packets = 0;  ///< payloads inflated before scan
  std::uint64_t decompressed_bytes = 0;    ///< bytes produced by inflation
  std::uint64_t reassembly_held = 0;       ///< packets that released no chunk
  std::uint64_t defrag_held = 0;           ///< fragments awaiting completion
  /// Live stateful cursors lost to FlowTable LRU eviction: the evicted
  /// flow's next packet resumes from the DFA root, so patterns straddling
  /// the eviction point are missed. Non-zero means max_flows is too small
  /// for the offered flow concurrency.
  std::uint64_t flow_evictions = 0;
  double busy_seconds = 0;

  /// The MCA² heavy-traffic signal: accepting-state hits per scanned byte.
  double hits_per_byte() const noexcept {
    return bytes == 0 ? 0.0
                      : static_cast<double>(raw_hits) /
                            static_cast<double>(bytes);
  }
};

/// Per-policy-chain counters; the controller uses these to decide *which*
/// traffic to migrate to dedicated instances under attack (§4.3.1).
struct ChainTelemetry {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t raw_hits = 0;

  double hits_per_byte() const noexcept {
    return bytes == 0 ? 0.0
                      : static_cast<double>(raw_hits) /
                            static_cast<double>(bytes);
  }
};

struct ProcessOutput {
  net::Packet data;
  /// Dedicated result packet (kDedicatedPacket mode, only when matched).
  std::optional<net::Packet> result;
  bool had_matches = false;
};

/// One packet of a scan_batch() submission. The payload view must stay
/// valid until the batch call returns (the ingest pipeline points it into a
/// batch arena, so the bytes are written once at ingress and only ever
/// referenced afterwards).
struct ScanItem {
  dpi::ChainId chain = 0;
  net::FiveTuple flow;
  BytesView payload;
};

/// Batch-granular ingest instruments registered on the instance's metrics
/// registry (all-null when metrics are disabled). The IngestPipeline
/// records into these; they live here so dpisvc_stats finds every
/// backpressure signal in one snapshot.
struct IngestInstruments {
  obs::Counter* shed = nullptr;            ///< packets dropped under kShed
  obs::Counter* blocked = nullptr;         ///< ring-full producer stalls
  obs::Histogram* batch_packets = nullptr; ///< packets per flushed batch
  obs::Histogram* batch_bytes = nullptr;   ///< payload bytes per batch
  obs::Gauge* batches_in_flight = nullptr; ///< batches not yet delivered
};

class DpiInstance {
 public:
  explicit DpiInstance(std::string name, InstanceConfig config = {});

  const std::string& instance_name() const noexcept { return name_; }
  const InstanceConfig& config() const noexcept { return config_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }

  /// Installs a compiled engine (controller push). Flow tables are cleared:
  /// DFA state ids are only meaningful within one compiled engine, so
  /// stored cursors cannot survive a recompile; affected stateful flows
  /// restart scanning from the root at their next packet. The swap proceeds
  /// shard by shard — scanning continues on shards not yet swapped, and a
  /// shard only ever sees a consistent (engine, flow table) pair.
  void load_engine(std::shared_ptr<const dpi::Engine> engine,
                   std::uint64_t version);

  std::uint64_t engine_version() const;
  bool has_engine() const;
  /// Pins the current engine so callers can inspect it without racing a
  /// concurrent load_engine() dropping the last reference.
  std::shared_ptr<const dpi::Engine> engine_snapshot() const;
  const dpi::Engine* engine() const { return engine_snapshot().get(); }

  /// Full data-plane processing of one packet: resolves the policy-chain
  /// tag, scans, annotates/marks, and produces result output per the
  /// configured mode. Packets without a known chain tag pass through
  /// untouched. Thread-safe; packets of distinct shards process in
  /// parallel.
  ProcessOutput process(net::Packet packet);

  /// Batched counterpart of process(): partitions the packets by shard and
  /// runs the full per-packet path bucket-at-a-time on the pool workers —
  /// one shard-lock acquisition and one pool job per shard, not per packet.
  /// Outputs come back in submission order, and per-flow processing order
  /// is preserved, so the outputs are identical to calling process() on
  /// each packet in turn.
  std::vector<ProcessOutput> process_batch(std::vector<net::Packet> packets);

  /// Scan-only fast path used by throughput benches: no packet object
  /// overhead, still updates telemetry and flow state. Thread-safe.
  dpi::ScanResult scan(dpi::ChainId chain, const net::FiveTuple& flow,
                       BytesView payload);

  /// Batched ingest: partitions the items by shard and scans each shard's
  /// share on its pool worker (inline when num_workers == 1). Results are
  /// returned in submission order. Packets of one flow always land on the
  /// same shard and are scanned in submission order, so the match sets are
  /// identical for every worker count.
  std::vector<dpi::ScanResult> scan_batch(const std::vector<ScanItem>& items);

  /// In-place variant of scan_batch() writing into `out` (resized to
  /// items.size()); the ingest pipeline reuses a per-batch results vector
  /// so steady-state batches allocate nothing.
  void scan_batch_into(const std::vector<ScanItem>& items,
                       std::vector<dpi::ScanResult>& out);

  /// Scans `count` items selected by `indices` — all of which must belong
  /// to shard `shard` — under that shard's lock, writing each result to
  /// out[indices[k]]. The asynchronous ingest path calls this from
  /// per-shard pool jobs; scan_batch_into() is the synchronous wrapper.
  void scan_bucket(std::size_t shard, const std::vector<ScanItem>& items,
                   const std::uint32_t* indices, std::size_t count,
                   std::vector<dpi::ScanResult>& out);

  /// Shard owning `flow` (canonical-hash placement). Public so the ingest
  /// pipeline can partition batches and tests can target — or deliberately
  /// stall — a specific shard's worker.
  std::size_t shard_of_flow(const net::FiveTuple& flow) const noexcept {
    return shard_index(flow);
  }

  /// The data-plane worker pool. The ingest pipeline submits its per-shard
  /// batch jobs here; job order per worker is FIFO, which extends the
  /// per-flow ordering guarantee across batches.
  ScanPool& scan_pool() noexcept { return pool_; }

  /// Batch-granular ingest instruments (all-null when metrics disabled).
  const IngestInstruments& ingest_instruments() const noexcept {
    return ingest_obs_;
  }

  /// Telemetry accessors aggregate per-shard counters sampled under the
  /// shard locks, so the controller's monitor thread can read while
  /// scanners are running.
  InstanceTelemetry telemetry() const;
  std::map<dpi::ChainId, ChainTelemetry> chain_telemetry() const;

  /// Snapshot-and-reset: atomically (per shard, under the shard mutex)
  /// captures and zeroes each shard's counters and returns their sum, so a
  /// windowed consumer never loses counts to a concurrent scan — every
  /// packet lands either in the returned snapshot or in the next window.
  /// The obs registry is monotonic and is NOT reset (rates are derived by
  /// differencing snapshots).
  InstanceTelemetry reset_telemetry();

  /// Obs layer: per-shard instruments (shard<i>.* counters, scan-latency
  /// and pool queue-wait histograms) and the optional scan trace ring.
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  const obs::ScanTrace& trace() const noexcept { return trace_; }

  /// Aggregate reassembly counters summed over every shard's
  /// FlowReassembler (ambiguity, eviction, and teardown counts included).
  net::ReassemblyStats reassembly_stats() const;

  /// Aggregate defragmentation counters summed over every shard.
  net::DefragStats defrag_stats() const;

  /// Full machine-readable state: instance identity, engine version,
  /// aggregated telemetry counters, metrics snapshot, and — when tracing is
  /// enabled — the trace ring. This is the payload TELEMETRY_REPORT carries
  /// to the controller and dpisvc_stats renders.
  json::Value stats_json() const;

  std::size_t active_flows() const;

  /// All flows with live scan state, most recently used first within each
  /// shard; the controller walks this during failover to migrate a dead
  /// instance's surviving state (§4.3).
  std::vector<net::FiveTuple> active_flow_keys() const;

  // --- flow migration (§4.3) ----------------------------------------------

  /// Removes and returns the flow's scan state for hand-off to another
  /// instance. Invalid cursor if the flow is unknown. Only the owning shard
  /// is touched; the rest of the data plane keeps scanning.
  dpi::FlowCursor export_flow(const net::FiveTuple& flow);

  /// Installs migrated flow state (engine versions must match between the
  /// source and target instance for the DFA state to be meaningful; the
  /// controller guarantees this by syncing instances first).
  void import_flow(const net::FiveTuple& flow, const dpi::FlowCursor& cursor);

  /// Bulk migration: drains every shard's flow table (shard at a time) and
  /// returns all (flow, cursor) pairs. Failover uses this instead of
  /// per-flow export round trips.
  std::vector<std::pair<net::FiveTuple, dpi::FlowCursor>> export_all_flows();

  /// Bulk counterpart of import_flow(); entries are re-homed onto this
  /// instance's own shards.
  void import_flows(
      const std::vector<std::pair<net::FiveTuple, dpi::FlowCursor>>& flows);

 private:
  /// Per-shard obs instruments, resolved once at construction so the scan
  /// path records through stable pointers without touching the registry.
  /// All-null when InstanceConfig::metrics is false.
  struct ShardInstruments {
    obs::Histogram* scan_ns = nullptr;
    obs::Counter* packets = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* raw_hits = nullptr;
    obs::Counter* anchor_hits = nullptr;
    obs::Counter* regex_evals = nullptr;
    obs::Counter* regex_matches = nullptr;
    obs::Counter* flow_evictions = nullptr;
    obs::Gauge* flow_occupancy = nullptr;
    // Reassembly ambiguity/eviction counters (shard<i>.reassembly.*).
    obs::Counter* reassembly_dropped = nullptr;
    obs::Counter* reassembly_duplicate_bytes = nullptr;
    obs::Counter* reassembly_ambiguous = nullptr;
    obs::Counter* reassembly_conflicting_bytes = nullptr;
    obs::Counter* reassembly_stream_evictions = nullptr;
    obs::Counter* reassembly_streams_closed = nullptr;
    obs::Counter* reassembly_ignored_fins = nullptr;
    obs::Counter* reassembly_ignored_rsts = nullptr;
    // Defragmentation counters (shard<i>.defrag.*).
    obs::Counter* defrag_fragments = nullptr;
    obs::Counter* defrag_completed = nullptr;
    obs::Counter* defrag_rejected = nullptr;
    obs::Counter* defrag_ambiguous = nullptr;
    obs::Counter* defrag_evicted = nullptr;
  };

  /// Everything a data-plane worker touches, under one mutex. Flows are
  /// owned by exactly one shard (canonical-hash placement), so shard
  /// mutexes never nest. `obs` and `index` are written once at construction
  /// (before any worker exists) and read-only afterwards, so they stay
  /// unguarded; everything the scan path mutates is GUARDED_BY(mu).
  struct Shard {
    mutable Mutex mu;
    std::shared_ptr<const dpi::Engine> engine DPISVC_GUARDED_BY(mu);
    dpi::FlowTable flows DPISVC_GUARDED_BY(mu);
    net::FlowReassembler reassembler DPISVC_GUARDED_BY(mu);
    net::IpDefragmenter defrag DPISVC_GUARDED_BY(mu);
    InstanceTelemetry telemetry DPISVC_GUARDED_BY(mu);
    std::map<dpi::ChainId, ChainTelemetry> chain_telemetry
        DPISVC_GUARDED_BY(mu);
    /// Last values published to the obs counters; the process() path adds
    /// the delta against the reassembler/defragmenter totals after each
    /// feed, so the monotonic obs counters track the monotonic stats blocks
    /// without double counting.
    net::ReassemblyStats obs_reassembly DPISVC_GUARDED_BY(mu);
    net::DefragStats obs_defrag DPISVC_GUARDED_BY(mu);
    ShardInstruments obs;
    std::uint32_t index = 0;

    Shard(std::size_t max_flows, const net::ReassemblyConfig& reassembly,
          const net::DefragConfig& defrag_config)
        : flows(max_flows), reassembler(reassembly), defrag(defrag_config) {}
  };

  Shard& shard_of(const net::FiveTuple& flow) noexcept {
    return *shards_[shard_index(flow)];
  }
  std::size_t shard_index(const net::FiveTuple& flow) const noexcept {
    return static_cast<std::size_t>(flow.canonical().hash()) % shards_.size();
  }

  net::MatchReport build_report(dpi::ChainId chain, std::uint64_t packet_ref,
                                const dpi::ScanResult& scan) const;
  std::optional<Bytes> maybe_decompress(BytesView payload);
  /// Scan body shared by scan(), process() and scan_batch(); the caller
  /// must hold shard.mu (compiler-enforced under DPISVC_THREAD_SAFETY).
  dpi::ScanResult scan_on_shard(Shard& shard, dpi::ChainId chain,
                                const net::FiveTuple& flow, BytesView payload)
      DPISVC_REQUIRES(shard.mu);
  /// Scans a same-chain run of a shard's bucket through the engine's
  /// interleaved batch path (several flows' DFA walks advance per pass).
  /// indices[0..count) select items; results land in out[indices[k]].
  /// Match results are byte-identical to scanning the run sequentially —
  /// scan_batch() callers see no difference besides throughput.
  void scan_run_on_shard(Shard& shard, dpi::ChainId chain,
                         const std::vector<ScanItem>& items,
                         const std::uint32_t* indices, std::size_t count,
                         std::vector<dpi::ScanResult>& out)
      DPISVC_REQUIRES(shard.mu);
  /// Full per-packet path under the shard lock (the body of process();
  /// process_batch() runs it bucket-at-a-time from pool jobs).
  ProcessOutput process_on_shard(Shard& shard, net::Packet packet)
      DPISVC_REQUIRES(shard.mu);
  /// ScanPool::JobFn trampolines for the batched entry points: plain
  /// function pointer + context struct, so a steady-state batch dispatch
  /// allocates nothing (the old path heap-allocated a std::function per
  /// shard per batch).
  static void scan_batch_job(void* ctx, std::size_t shard);
  static void process_batch_job(void* ctx, std::size_t shard);
  static ScanPool::Instruments make_pool_instruments(
      obs::MetricsRegistry& metrics, const InstanceConfig& config);
  /// Adds the delta between the shard's reassembler/defragmenter stat
  /// blocks and the last published values to the obs counters.
  void publish_evasion_metrics(Shard& shard) DPISVC_REQUIRES(shard.mu);

  std::string name_;
  InstanceConfig config_;
  /// Declared before shards_/pool_: shard instruments and the pool's
  /// queue-wait histogram point into the registry.
  obs::MetricsRegistry metrics_;
  obs::ScanTrace trace_;
  /// Control-plane lock: engine pushes and the canonical engine/version
  /// snapshot. Acquired before any shard mutex, never after one.
  mutable Mutex control_mu_;
  std::shared_ptr<const dpi::Engine> engine_ DPISVC_GUARDED_BY(control_mu_);
  std::uint64_t engine_version_ DPISVC_GUARDED_BY(control_mu_) = 0;
  IngestInstruments ingest_obs_;
  /// Declared before pool_ so workers never outlive the shards they touch.
  std::vector<std::unique_ptr<Shard>> shards_;
  ScanPool pool_;
};

}  // namespace dpisvc::service
