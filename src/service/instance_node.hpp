// Fabric adapter: exposes a DpiInstance as a node in the simulated SDN
// network. The switch steers tagged packets to the instance; the instance
// scans and sends the (possibly annotated) data packet — and, in dedicated-
// result-packet mode, the result packet right behind it — back to the
// switch, which forwards both down the rest of the policy chain.
#pragma once

#include <memory>

#include "netsim/fabric.hpp"
#include "service/instance.hpp"

namespace dpisvc::service {

/// Correlation key tying a dedicated result packet to its data packet.
inline std::uint64_t packet_ref_of(const net::Packet& packet) noexcept {
  return packet.tuple.hash() ^
         (static_cast<std::uint64_t>(packet.ip_id) << 48);
}

class InstanceNode : public netsim::Node {
 public:
  InstanceNode(netsim::Fabric& fabric, netsim::NodeId name,
               std::shared_ptr<DpiInstance> instance)
      : Node(fabric, std::move(name)), instance_(std::move(instance)) {}

  void receive(net::Packet packet, const netsim::NodeId& from) override {
    ProcessOutput out = instance_->process(std::move(packet));
    emit(from, std::move(out.data));
    if (out.result) {
      emit(from, std::move(*out.result));
    }
  }

  DpiInstance& instance() noexcept { return *instance_; }

 private:
  std::shared_ptr<DpiInstance> instance_;
};

}  // namespace dpisvc::service
