// Fabric adapter: exposes a DpiInstance as a node in the simulated SDN
// network. The switch steers tagged packets to the instance; the instance
// scans and sends the (possibly annotated) data packet — and, in dedicated-
// result-packet mode, the result packet right behind it — back to the
// switch, which forwards both down the rest of the policy chain.
#pragma once

#include <memory>

#include "netsim/fabric.hpp"
#include "service/instance.hpp"

namespace dpisvc::service {

/// Correlation key tying a dedicated result packet to its data packet.
inline std::uint64_t packet_ref_of(const net::Packet& packet) noexcept {
  return packet.tuple.hash() ^
         (static_cast<std::uint64_t>(packet.ip_id) << 48);
}

class InstanceNode : public netsim::Node {
 public:
  /// `batch_packets` == 0 (the default) processes each packet inside
  /// receive(), exactly as before. A non-zero value enables batched ingest:
  /// arriving packets accumulate and are handed to process_batch() — one
  /// shard-lock acquisition and pool job per shard instead of per packet —
  /// when the batch fills or the fabric goes idle (Node::on_idle is the
  /// flush point, so no packet is ever stranded). Outputs are emitted in
  /// arrival order, so downstream nodes see the exact same packet sequence
  /// as the per-packet mode.
  InstanceNode(netsim::Fabric& fabric, netsim::NodeId name,
               std::shared_ptr<DpiInstance> instance,
               std::size_t batch_packets = 0)
      : Node(fabric, std::move(name)),
        instance_(std::move(instance)),
        batch_packets_(batch_packets) {}

  void receive(net::Packet packet, const netsim::NodeId& from) override {
    if (batch_packets_ == 0) {
      ProcessOutput out = instance_->process(std::move(packet));
      emit(from, std::move(out.data));
      if (out.result) {
        emit(from, std::move(*out.result));
      }
      return;
    }
    pending_.push_back(std::move(packet));
    pending_from_.push_back(from);
    if (pending_.size() >= batch_packets_) flush_batch();
  }

  void on_idle() override { flush_batch(); }

  DpiInstance& instance() noexcept { return *instance_; }
  std::size_t pending_packets() const noexcept { return pending_.size(); }

 private:
  void flush_batch() {
    if (pending_.empty()) return;
    std::vector<netsim::NodeId> froms;
    froms.swap(pending_from_);
    std::vector<net::Packet> packets;
    packets.swap(pending_);
    std::vector<ProcessOutput> outs =
        instance_->process_batch(std::move(packets));
    for (std::size_t i = 0; i < outs.size(); ++i) {
      emit(froms[i], std::move(outs[i].data));
      if (outs[i].result) {
        emit(froms[i], std::move(*outs[i].result));
      }
    }
  }

  std::shared_ptr<DpiInstance> instance_;
  std::size_t batch_packets_ = 0;
  std::vector<net::Packet> pending_;
  std::vector<netsim::NodeId> pending_from_;
};

}  // namespace dpisvc::service
