#include "service/mca2.hpp"

namespace dpisvc::service {

StressMonitor::StressMonitor(StressConfig config) : config_(config) {}

void StressMonitor::report(const std::string& instance,
                           const InstanceTelemetry& window) {
  auto& history = history_[instance];
  history.push_back(Window{window.bytes, window.raw_hits});
  while (history.size() > config_.smoothing_windows) {
    history.pop_front();
  }
}

double StressMonitor::smoothed_signal(const std::string& instance) const {
  auto it = history_.find(instance);
  if (it == history_.end()) return 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t hits = 0;
  for (const Window& w : it->second) {
    bytes += w.bytes;
    hits += w.hits;
  }
  if (bytes < config_.min_window_bytes) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(bytes);
}

bool StressMonitor::is_stressed(const std::string& instance) const {
  return smoothed_signal(instance) > config_.hits_per_byte_threshold;
}

std::vector<std::string> StressMonitor::stressed_instances() const {
  std::vector<std::string> out;
  for (const auto& [name, history] : history_) {
    if (is_stressed(name)) out.push_back(name);
  }
  return out;
}

void StressMonitor::forget(const std::string& instance) {
  history_.erase(instance);
}

}  // namespace dpisvc::service
