// MCA²-style stress monitoring (§4.3.1).
//
// Each DPI service instance performs ongoing monitoring and exports
// telemetry that may indicate complexity-attack attempts; the DPI controller
// takes over the role of MCA²'s central stress monitor. The heavy-traffic
// signal is the accepting-state hit density (hits per scanned byte):
// adversarial payloads stitched from pattern fragments keep the automaton in
// deep/accepting states far more often than benign traffic, which the paper
// reports as > 90% matchless packets.
//
// When an instance's smoothed signal crosses the threshold, the monitor
// flags it as stressed; the controller then designates dedicated instances
// (running the compressed-automaton engine) and migrates heavy flows to
// them (Figure 6).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "service/instance.hpp"

namespace dpisvc::service {

struct StressConfig {
  /// Accepting-state hits per byte above which traffic counts as heavy.
  /// Benign text traffic against realistic sets measures well below 0.01;
  /// stitched attack traffic measures 0.05 and up.
  double hits_per_byte_threshold = 0.02;
  /// Minimum bytes in a window before it can trigger (ignore cold starts).
  std::uint64_t min_window_bytes = 4096;
  /// Number of most recent windows smoothed (simple moving average).
  std::size_t smoothing_windows = 4;
};

class StressMonitor {
 public:
  explicit StressMonitor(StressConfig config = {});

  /// Feeds one telemetry window for an instance. Callers typically snapshot
  /// InstanceTelemetry, report it, and reset the instance counters.
  void report(const std::string& instance, const InstanceTelemetry& window);

  /// True if the instance's smoothed hit density crosses the threshold.
  bool is_stressed(const std::string& instance) const;

  /// All currently stressed instances.
  std::vector<std::string> stressed_instances() const;

  /// Smoothed hits-per-byte for an instance (0 when unknown).
  double smoothed_signal(const std::string& instance) const;

  void forget(const std::string& instance);

  const StressConfig& config() const noexcept { return config_; }

 private:
  struct Window {
    std::uint64_t bytes = 0;
    std::uint64_t hits = 0;
  };

  StressConfig config_;
  std::map<std::string, std::deque<Window>> history_;
};

}  // namespace dpisvc::service
