#include "service/messages.hpp"

#include <stdexcept>

#include "common/bytes.hpp"
#include "obs/metrics.hpp"
#include "service/instance.hpp"

namespace dpisvc::service {

namespace {

json::Value stop_offset_field(std::uint32_t stop) {
  if (stop == dpi::kNoStopCondition) return json::Value(nullptr);
  return json::Value(static_cast<std::int64_t>(stop));
}

std::uint32_t parse_stop_offset(const json::Value& field) {
  if (field.is_null()) return dpi::kNoStopCondition;
  const std::int64_t v = field.as_int();
  if (v < 0 || v > static_cast<std::int64_t>(UINT32_MAX)) {
    throw std::invalid_argument("stop_offset out of range");
  }
  return static_cast<std::uint32_t>(v);
}

dpi::MiddleboxId parse_middlebox_id(const json::Value& field) {
  const std::int64_t v = field.as_int();
  if (v < 1 || v > static_cast<std::int64_t>(dpi::kMaxMiddleboxes)) {
    throw std::invalid_argument("middlebox_id out of range");
  }
  return static_cast<dpi::MiddleboxId>(v);
}

dpi::PatternId parse_rule_id(const json::Value& field) {
  const std::int64_t v = field.as_int();
  if (v < 0 || v > 0xFFFF) {
    throw std::invalid_argument("rule id out of range");
  }
  return static_cast<dpi::PatternId>(v);
}

}  // namespace

json::Value encode(const RegisterRequest& request) {
  json::Object msg = json::obj({
      {"type", "register"},
      {"middlebox_id", static_cast<std::int64_t>(request.profile.id)},
      {"name", request.profile.name},
      {"stateful", request.profile.stateful},
      {"read_only", request.profile.read_only},
      {"stop_offset", stop_offset_field(request.profile.stop_offset)},
  });
  if (request.inherit_from) {
    msg["inherit_from"] = static_cast<std::int64_t>(*request.inherit_from);
  }
  return json::Value(std::move(msg));
}

json::Value encode(const AddPatternsRequest& request) {
  json::Array exact;
  for (const auto& p : request.exact) {
    exact.push_back(json::Value(json::obj({
        {"rule", static_cast<std::int64_t>(p.rule)},
        {"hex", to_hex(to_bytes(p.bytes))},
    })));
  }
  json::Array regex;
  for (const auto& p : request.regex) {
    regex.push_back(json::Value(json::obj({
        {"rule", static_cast<std::int64_t>(p.rule)},
        {"expr", p.expression},
        {"ci", p.case_insensitive},
    })));
  }
  return json::Value(json::obj({
      {"type", "add_patterns"},
      {"middlebox_id", static_cast<std::int64_t>(request.middlebox)},
      {"exact", std::move(exact)},
      {"regex", std::move(regex)},
  }));
}

json::Value encode(const RemovePatternsRequest& request) {
  json::Array rules;
  for (dpi::PatternId rule : request.rules) {
    rules.push_back(json::Value(static_cast<std::int64_t>(rule)));
  }
  return json::Value(json::obj({
      {"type", "remove_patterns"},
      {"middlebox_id", static_cast<std::int64_t>(request.middlebox)},
      {"rules", std::move(rules)},
  }));
}

json::Value encode(const UnregisterRequest& request) {
  return json::Value(json::obj({
      {"type", "unregister"},
      {"middlebox_id", static_cast<std::int64_t>(request.middlebox)},
  }));
}

json::Value encode(const TelemetryReport& report) {
  json::Object counters = json::obj({
      {"packets", report.packets},
      {"bytes", report.bytes},
      {"raw_hits", report.raw_hits},
      {"match_packets", report.match_packets},
      {"flow_evictions", report.flow_evictions},
      {"active_flows", report.active_flows},
      {"ambiguous_overlaps", report.ambiguous_overlaps},
      {"conflicting_overlap_bytes", report.conflicting_overlap_bytes},
      {"stream_evictions", report.stream_evictions},
      {"busy_seconds", report.busy_seconds},
  });
  json::Object msg = json::obj({
      {"type", "telemetry_report"},
      {"instance", report.instance},
      {"engine_version", report.engine_version},
      {"counters", json::Value(std::move(counters))},
      {"latency_ns", json::Value(json::obj({
                         {"p50", report.scan_p50_ns},
                         {"p90", report.scan_p90_ns},
                         {"p99", report.scan_p99_ns},
                     }))},
  });
  if (!report.metrics.is_null()) {
    msg["metrics"] = report.metrics;
  }
  return json::Value(std::move(msg));
}

json::Value encode(const TelemetryQuery& query) {
  json::Object msg = json::obj({{"type", "telemetry_query"}});
  if (!query.instance.empty()) {
    msg["instance"] = json::Value(query.instance);
  }
  return json::Value(std::move(msg));
}

json::Value ok_response() {
  return json::Value(json::obj({{"ok", true}}));
}

json::Value error_response(const std::string& message) {
  return json::Value(json::obj({{"ok", false}, {"error", message}}));
}

json::Value error_response(const std::string& message,
                           const std::string& code) {
  return json::Value(
      json::obj({{"ok", false}, {"error", message}, {"code", code}}));
}

std::string message_type(const json::Value& message) {
  return message.at("type").as_string();
}

RegisterRequest decode_register(const json::Value& message) {
  if (message_type(message) != "register") {
    throw std::invalid_argument("not a register message");
  }
  RegisterRequest out;
  out.profile.id = parse_middlebox_id(message.at("middlebox_id"));
  out.profile.name = message.at("name").as_string();
  out.profile.stateful =
      message.get_or("stateful", json::Value(false)).as_bool();
  out.profile.read_only =
      message.get_or("read_only", json::Value(false)).as_bool();
  out.profile.stop_offset =
      parse_stop_offset(message.get_or("stop_offset", json::Value(nullptr)));
  // Copy, not reference: get_or returns the fallback temporary when the key
  // is absent, and a reference to it would dangle past this statement.
  const json::Value inherit =
      message.get_or("inherit_from", json::Value(nullptr));
  if (!inherit.is_null()) {
    out.inherit_from = parse_middlebox_id(inherit);
  }
  return out;
}

AddPatternsRequest decode_add_patterns(const json::Value& message) {
  if (message_type(message) != "add_patterns") {
    throw std::invalid_argument("not an add_patterns message");
  }
  AddPatternsRequest out;
  out.middlebox = parse_middlebox_id(message.at("middlebox_id"));
  // Copies, not references: in C++20 a range-for does not extend the life
  // of the get_or fallback temporary the array reference points into.
  const json::Value exact = message.get_or("exact", json::Value(json::Array{}));
  for (const json::Value& entry : exact.as_array()) {
    ExactPatternMsg p;
    p.rule = parse_rule_id(entry.at("rule"));
    const Bytes raw = from_hex(entry.at("hex").as_string());
    p.bytes.assign(raw.begin(), raw.end());
    out.exact.push_back(std::move(p));
  }
  const json::Value regex = message.get_or("regex", json::Value(json::Array{}));
  for (const json::Value& entry : regex.as_array()) {
    RegexPatternMsg p;
    p.rule = parse_rule_id(entry.at("rule"));
    p.expression = entry.at("expr").as_string();
    p.case_insensitive = entry.get_or("ci", json::Value(false)).as_bool();
    out.regex.push_back(std::move(p));
  }
  return out;
}

RemovePatternsRequest decode_remove_patterns(const json::Value& message) {
  if (message_type(message) != "remove_patterns") {
    throw std::invalid_argument("not a remove_patterns message");
  }
  RemovePatternsRequest out;
  out.middlebox = parse_middlebox_id(message.at("middlebox_id"));
  for (const json::Value& rule : message.at("rules").as_array()) {
    out.rules.push_back(parse_rule_id(rule));
  }
  return out;
}

UnregisterRequest decode_unregister(const json::Value& message) {
  if (message_type(message) != "unregister") {
    throw std::invalid_argument("not an unregister message");
  }
  UnregisterRequest out;
  out.middlebox = parse_middlebox_id(message.at("middlebox_id"));
  return out;
}

namespace {

std::uint64_t parse_count(const json::Value& field, const char* what) {
  if (!field.is_number()) {
    throw std::invalid_argument(std::string(what) + " must be a number");
  }
  const double v = field.as_number();
  if (v < 0) {
    throw std::invalid_argument(std::string(what) + " must be non-negative");
  }
  return static_cast<std::uint64_t>(v);
}

double parse_nonneg(const json::Value& field, const char* what) {
  if (!field.is_number()) {
    throw std::invalid_argument(std::string(what) + " must be a number");
  }
  const double v = field.as_number();
  if (v < 0) {
    throw std::invalid_argument(std::string(what) + " must be non-negative");
  }
  return v;
}

}  // namespace

TelemetryReport decode_telemetry_report(const json::Value& message) {
  if (message_type(message) != "telemetry_report") {
    throw std::invalid_argument("not a telemetry_report message");
  }
  TelemetryReport out;
  out.instance = message.at("instance").as_string();
  if (out.instance.empty()) {
    throw std::invalid_argument("telemetry_report: empty instance name");
  }
  out.engine_version =
      parse_count(message.get_or("engine_version", json::Value(0)),
                  "engine_version");
  const json::Value counters = message.at("counters");
  if (!counters.is_object()) {
    throw std::invalid_argument("telemetry_report: counters must be an object");
  }
  const json::Value zero(0);
  out.packets = parse_count(counters.get_or("packets", zero), "packets");
  out.bytes = parse_count(counters.get_or("bytes", zero), "bytes");
  out.raw_hits = parse_count(counters.get_or("raw_hits", zero), "raw_hits");
  out.match_packets =
      parse_count(counters.get_or("match_packets", zero), "match_packets");
  out.flow_evictions =
      parse_count(counters.get_or("flow_evictions", zero), "flow_evictions");
  out.active_flows =
      parse_count(counters.get_or("active_flows", zero), "active_flows");
  out.ambiguous_overlaps = parse_count(
      counters.get_or("ambiguous_overlaps", zero), "ambiguous_overlaps");
  out.conflicting_overlap_bytes =
      parse_count(counters.get_or("conflicting_overlap_bytes", zero),
                  "conflicting_overlap_bytes");
  out.stream_evictions = parse_count(
      counters.get_or("stream_evictions", zero), "stream_evictions");
  out.busy_seconds =
      parse_nonneg(counters.get_or("busy_seconds", zero), "busy_seconds");
  if (out.match_packets > out.packets) {
    throw std::invalid_argument(
        "telemetry_report: match_packets exceeds packets");
  }
  const json::Value latency = message.get_or("latency_ns", json::Value(nullptr));
  if (!latency.is_null()) {
    if (!latency.is_object()) {
      throw std::invalid_argument(
          "telemetry_report: latency_ns must be an object");
    }
    out.scan_p50_ns = parse_nonneg(latency.get_or("p50", zero), "p50");
    out.scan_p90_ns = parse_nonneg(latency.get_or("p90", zero), "p90");
    out.scan_p99_ns = parse_nonneg(latency.get_or("p99", zero), "p99");
  }
  const json::Value metrics = message.get_or("metrics", json::Value(nullptr));
  if (!metrics.is_null()) {
    if (!metrics.is_object()) {
      throw std::invalid_argument(
          "telemetry_report: metrics must be an object");
    }
    out.metrics = metrics;
  }
  return out;
}

TelemetryQuery decode_telemetry_query(const json::Value& message) {
  if (message_type(message) != "telemetry_query") {
    throw std::invalid_argument("not a telemetry_query message");
  }
  TelemetryQuery out;
  const json::Value instance =
      message.get_or("instance", json::Value(nullptr));
  if (!instance.is_null()) {
    out.instance = instance.as_string();
  }
  return out;
}

TelemetryReport make_telemetry_report(const DpiInstance& instance) {
  TelemetryReport report;
  report.instance = instance.instance_name();
  report.engine_version = instance.engine_version();
  const InstanceTelemetry t = instance.telemetry();
  report.packets = t.packets;
  report.bytes = t.bytes;
  report.raw_hits = t.raw_hits;
  report.match_packets = t.match_packets;
  report.flow_evictions = t.flow_evictions;
  report.active_flows = instance.active_flows();
  const net::ReassemblyStats rs = instance.reassembly_stats();
  report.ambiguous_overlaps = rs.ambiguous_overlaps;
  report.conflicting_overlap_bytes = rs.conflicting_overlap_bytes;
  report.stream_evictions = rs.stream_evictions;
  report.busy_seconds = t.busy_seconds;
  // Instance-wide scan latency: merge the per-shard histograms (identical
  // bucket ladders) before extracting percentiles — percentiles do not
  // average across shards.
  obs::Histogram merged(obs::Histogram::latency_bounds_ns());
  bool any = false;
  for (std::size_t i = 0; i < instance.num_shards(); ++i) {
    const obs::Histogram* h = instance.metrics().find_histogram(
        "shard" + std::to_string(i) + ".scan_ns");
    if (h != nullptr) {
      merged.merge_from(*h);
      any = true;
    }
  }
  if (any) {
    report.scan_p50_ns = merged.percentile(0.50);
    report.scan_p90_ns = merged.percentile(0.90);
    report.scan_p99_ns = merged.percentile(0.99);
  }
  report.metrics = instance.metrics().snapshot();
  return report;
}

bool response_ok(const json::Value& response) {
  return response.at("ok").as_bool();
}

}  // namespace dpisvc::service
