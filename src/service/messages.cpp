#include "service/messages.hpp"

#include <stdexcept>

#include "common/bytes.hpp"

namespace dpisvc::service {

namespace {

json::Value stop_offset_field(std::uint32_t stop) {
  if (stop == dpi::kNoStopCondition) return json::Value(nullptr);
  return json::Value(static_cast<std::int64_t>(stop));
}

std::uint32_t parse_stop_offset(const json::Value& field) {
  if (field.is_null()) return dpi::kNoStopCondition;
  const std::int64_t v = field.as_int();
  if (v < 0 || v > static_cast<std::int64_t>(UINT32_MAX)) {
    throw std::invalid_argument("stop_offset out of range");
  }
  return static_cast<std::uint32_t>(v);
}

dpi::MiddleboxId parse_middlebox_id(const json::Value& field) {
  const std::int64_t v = field.as_int();
  if (v < 1 || v > static_cast<std::int64_t>(dpi::kMaxMiddleboxes)) {
    throw std::invalid_argument("middlebox_id out of range");
  }
  return static_cast<dpi::MiddleboxId>(v);
}

dpi::PatternId parse_rule_id(const json::Value& field) {
  const std::int64_t v = field.as_int();
  if (v < 0 || v > 0xFFFF) {
    throw std::invalid_argument("rule id out of range");
  }
  return static_cast<dpi::PatternId>(v);
}

}  // namespace

json::Value encode(const RegisterRequest& request) {
  json::Object msg = json::obj({
      {"type", "register"},
      {"middlebox_id", static_cast<std::int64_t>(request.profile.id)},
      {"name", request.profile.name},
      {"stateful", request.profile.stateful},
      {"read_only", request.profile.read_only},
      {"stop_offset", stop_offset_field(request.profile.stop_offset)},
  });
  if (request.inherit_from) {
    msg["inherit_from"] = static_cast<std::int64_t>(*request.inherit_from);
  }
  return json::Value(std::move(msg));
}

json::Value encode(const AddPatternsRequest& request) {
  json::Array exact;
  for (const auto& p : request.exact) {
    exact.push_back(json::Value(json::obj({
        {"rule", static_cast<std::int64_t>(p.rule)},
        {"hex", to_hex(to_bytes(p.bytes))},
    })));
  }
  json::Array regex;
  for (const auto& p : request.regex) {
    regex.push_back(json::Value(json::obj({
        {"rule", static_cast<std::int64_t>(p.rule)},
        {"expr", p.expression},
        {"ci", p.case_insensitive},
    })));
  }
  return json::Value(json::obj({
      {"type", "add_patterns"},
      {"middlebox_id", static_cast<std::int64_t>(request.middlebox)},
      {"exact", std::move(exact)},
      {"regex", std::move(regex)},
  }));
}

json::Value encode(const RemovePatternsRequest& request) {
  json::Array rules;
  for (dpi::PatternId rule : request.rules) {
    rules.push_back(json::Value(static_cast<std::int64_t>(rule)));
  }
  return json::Value(json::obj({
      {"type", "remove_patterns"},
      {"middlebox_id", static_cast<std::int64_t>(request.middlebox)},
      {"rules", std::move(rules)},
  }));
}

json::Value encode(const UnregisterRequest& request) {
  return json::Value(json::obj({
      {"type", "unregister"},
      {"middlebox_id", static_cast<std::int64_t>(request.middlebox)},
  }));
}

json::Value ok_response() {
  return json::Value(json::obj({{"ok", true}}));
}

json::Value error_response(const std::string& message) {
  return json::Value(json::obj({{"ok", false}, {"error", message}}));
}

std::string message_type(const json::Value& message) {
  return message.at("type").as_string();
}

RegisterRequest decode_register(const json::Value& message) {
  if (message_type(message) != "register") {
    throw std::invalid_argument("not a register message");
  }
  RegisterRequest out;
  out.profile.id = parse_middlebox_id(message.at("middlebox_id"));
  out.profile.name = message.at("name").as_string();
  out.profile.stateful =
      message.get_or("stateful", json::Value(false)).as_bool();
  out.profile.read_only =
      message.get_or("read_only", json::Value(false)).as_bool();
  out.profile.stop_offset =
      parse_stop_offset(message.get_or("stop_offset", json::Value(nullptr)));
  // Copy, not reference: get_or returns the fallback temporary when the key
  // is absent, and a reference to it would dangle past this statement.
  const json::Value inherit =
      message.get_or("inherit_from", json::Value(nullptr));
  if (!inherit.is_null()) {
    out.inherit_from = parse_middlebox_id(inherit);
  }
  return out;
}

AddPatternsRequest decode_add_patterns(const json::Value& message) {
  if (message_type(message) != "add_patterns") {
    throw std::invalid_argument("not an add_patterns message");
  }
  AddPatternsRequest out;
  out.middlebox = parse_middlebox_id(message.at("middlebox_id"));
  // Copies, not references: in C++20 a range-for does not extend the life
  // of the get_or fallback temporary the array reference points into.
  const json::Value exact = message.get_or("exact", json::Value(json::Array{}));
  for (const json::Value& entry : exact.as_array()) {
    ExactPatternMsg p;
    p.rule = parse_rule_id(entry.at("rule"));
    const Bytes raw = from_hex(entry.at("hex").as_string());
    p.bytes.assign(raw.begin(), raw.end());
    out.exact.push_back(std::move(p));
  }
  const json::Value regex = message.get_or("regex", json::Value(json::Array{}));
  for (const json::Value& entry : regex.as_array()) {
    RegexPatternMsg p;
    p.rule = parse_rule_id(entry.at("rule"));
    p.expression = entry.at("expr").as_string();
    p.case_insensitive = entry.get_or("ci", json::Value(false)).as_bool();
    out.regex.push_back(std::move(p));
  }
  return out;
}

RemovePatternsRequest decode_remove_patterns(const json::Value& message) {
  if (message_type(message) != "remove_patterns") {
    throw std::invalid_argument("not a remove_patterns message");
  }
  RemovePatternsRequest out;
  out.middlebox = parse_middlebox_id(message.at("middlebox_id"));
  for (const json::Value& rule : message.at("rules").as_array()) {
    out.rules.push_back(parse_rule_id(rule));
  }
  return out;
}

UnregisterRequest decode_unregister(const json::Value& message) {
  if (message_type(message) != "unregister") {
    throw std::invalid_argument("not an unregister message");
  }
  UnregisterRequest out;
  out.middlebox = parse_middlebox_id(message.at("middlebox_id"));
  return out;
}

bool response_ok(const json::Value& response) {
  return response.at("ok").as_bool();
}

}  // namespace dpisvc::service
