// JSON control-plane protocol between middleboxes and the DPI controller.
//
// §4.1: "Communication between the DPI Controller and middleboxes is
// performed using JSON messages sent over a direct (possibly secure)
// communication channel." This header defines the message vocabulary:
//
//   request: {"type":"register","middlebox_id":3,"name":"ids",
//             "stateful":true,"read_only":true,"stop_offset":null,
//             "inherit_from":null}
//   request: {"type":"add_patterns","middlebox_id":3,
//             "exact":[{"rule":1,"hex":"6576696c"}],
//             "regex":[{"rule":2,"expr":"evil\\d+","ci":false}]}
//   request: {"type":"remove_patterns","middlebox_id":3,"rules":[1,2]}
//   request: {"type":"unregister","middlebox_id":3}
//   response: {"ok":true} or {"ok":false,"error":"..."}
//
// Exact pattern bytes travel hex-encoded so arbitrary binary signatures
// survive JSON transport.
//
// Telemetry (§4.3.1): instances push their stress signal to the controller
// and operators pull the aggregate back out over the same JSON channel:
//
//   request: {"type":"telemetry_report","instance":"dpi-0",
//             "engine_version":3,
//             "counters":{"packets":N,"bytes":N,"raw_hits":N,
//                         "match_packets":N,"flow_evictions":N,
//                         "active_flows":N,"busy_seconds":S},
//             "latency_ns":{"p50":..,"p90":..,"p99":..},   // optional
//             "metrics":{...}}                              // optional, free-form
//   request: {"type":"telemetry_query","instance":"dpi-0"}  // or no instance: all
//   response: {"ok":true,"instances":{"dpi-0":{...report body...}}}
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dpi/types.hpp"
#include "json/json.hpp"

namespace dpisvc::service {

struct RegisterRequest {
  dpi::MiddleboxProfile profile;
  /// §4.1: "A middlebox may inherit the pattern set of an already
  /// registered middlebox."
  std::optional<dpi::MiddleboxId> inherit_from;
};

struct ExactPatternMsg {
  dpi::PatternId rule = 0;
  std::string bytes;  // raw bytes (hex on the wire)
};

struct RegexPatternMsg {
  dpi::PatternId rule = 0;
  std::string expression;
  bool case_insensitive = false;
};

struct AddPatternsRequest {
  dpi::MiddleboxId middlebox = 0;
  std::vector<ExactPatternMsg> exact;
  std::vector<RegexPatternMsg> regex;
};

struct RemovePatternsRequest {
  dpi::MiddleboxId middlebox = 0;
  std::vector<dpi::PatternId> rules;
};

struct UnregisterRequest {
  dpi::MiddleboxId middlebox = 0;
};

/// One instance's stress telemetry pushed to the controller (§4.3.1). The
/// counters mirror InstanceTelemetry's MCA²-relevant subset; the latency
/// percentiles come from the instance's scan-ns histogram; `metrics` is the
/// free-form obs registry snapshot (a JSON object) and may be null.
struct TelemetryReport {
  std::string instance;  ///< reporting instance name; must be non-empty
  std::uint64_t engine_version = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t raw_hits = 0;
  std::uint64_t match_packets = 0;
  std::uint64_t flow_evictions = 0;
  std::uint64_t active_flows = 0;
  /// Evasion/ambiguity telemetry: reassembly overlaps whose bytes differed,
  /// how many of those bytes conflicted, and streams lost to LRU capacity.
  /// The controller reads these as an active-evasion signal (§4.3.1 —
  /// ambiguous traffic is a reason to migrate a tenant to a dedicated
  /// instance just like hits_per_byte is).
  std::uint64_t ambiguous_overlaps = 0;
  std::uint64_t conflicting_overlap_bytes = 0;
  std::uint64_t stream_evictions = 0;
  double busy_seconds = 0;
  /// Scan latency percentiles in nanoseconds; all zero when the instance
  /// runs with metrics disabled.
  double scan_p50_ns = 0;
  double scan_p90_ns = 0;
  double scan_p99_ns = 0;
  json::Value metrics;  ///< obs registry snapshot or null

  double hits_per_byte() const noexcept {
    return bytes == 0 ? 0.0
                      : static_cast<double>(raw_hits) /
                            static_cast<double>(bytes);
  }
};

/// Pulls aggregated reports back out of the controller. Empty instance name
/// = all instances.
struct TelemetryQuery {
  std::string instance;
};

// --- encoding ---------------------------------------------------------------

json::Value encode(const RegisterRequest& request);
json::Value encode(const AddPatternsRequest& request);
json::Value encode(const RemovePatternsRequest& request);
json::Value encode(const UnregisterRequest& request);
json::Value encode(const TelemetryReport& report);
json::Value encode(const TelemetryQuery& query);

json::Value ok_response();
json::Value error_response(const std::string& message);
/// Typed rejection: {"ok":false,"error":message,"code":code}. The code is a
/// stable machine-readable identifier (same scheme as dpisvc_check /
/// analysis::PatternSetReport diagnostics) so middleboxes can branch on the
/// rejection class without parsing prose.
json::Value error_response(const std::string& message,
                           const std::string& code);

// --- decoding ---------------------------------------------------------------

/// Message type dispatch; throws json::TypeError / std::invalid_argument on
/// malformed messages.
std::string message_type(const json::Value& message);

RegisterRequest decode_register(const json::Value& message);
AddPatternsRequest decode_add_patterns(const json::Value& message);
RemovePatternsRequest decode_remove_patterns(const json::Value& message);
UnregisterRequest decode_unregister(const json::Value& message);
TelemetryReport decode_telemetry_report(const json::Value& message);
TelemetryQuery decode_telemetry_query(const json::Value& message);

bool response_ok(const json::Value& response);

class DpiInstance;

/// Builds a report from an instance's live state: aggregated telemetry,
/// active-flow count, scan-latency percentiles summed across shards via the
/// obs registry, and the full metrics snapshot.
TelemetryReport make_telemetry_report(const DpiInstance& instance);

}  // namespace dpisvc::service
