// JSON control-plane protocol between middleboxes and the DPI controller.
//
// §4.1: "Communication between the DPI Controller and middleboxes is
// performed using JSON messages sent over a direct (possibly secure)
// communication channel." This header defines the message vocabulary:
//
//   request: {"type":"register","middlebox_id":3,"name":"ids",
//             "stateful":true,"read_only":true,"stop_offset":null,
//             "inherit_from":null}
//   request: {"type":"add_patterns","middlebox_id":3,
//             "exact":[{"rule":1,"hex":"6576696c"}],
//             "regex":[{"rule":2,"expr":"evil\\d+","ci":false}]}
//   request: {"type":"remove_patterns","middlebox_id":3,"rules":[1,2]}
//   request: {"type":"unregister","middlebox_id":3}
//   response: {"ok":true} or {"ok":false,"error":"..."}
//
// Exact pattern bytes travel hex-encoded so arbitrary binary signatures
// survive JSON transport.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dpi/types.hpp"
#include "json/json.hpp"

namespace dpisvc::service {

struct RegisterRequest {
  dpi::MiddleboxProfile profile;
  /// §4.1: "A middlebox may inherit the pattern set of an already
  /// registered middlebox."
  std::optional<dpi::MiddleboxId> inherit_from;
};

struct ExactPatternMsg {
  dpi::PatternId rule = 0;
  std::string bytes;  // raw bytes (hex on the wire)
};

struct RegexPatternMsg {
  dpi::PatternId rule = 0;
  std::string expression;
  bool case_insensitive = false;
};

struct AddPatternsRequest {
  dpi::MiddleboxId middlebox = 0;
  std::vector<ExactPatternMsg> exact;
  std::vector<RegexPatternMsg> regex;
};

struct RemovePatternsRequest {
  dpi::MiddleboxId middlebox = 0;
  std::vector<dpi::PatternId> rules;
};

struct UnregisterRequest {
  dpi::MiddleboxId middlebox = 0;
};

// --- encoding ---------------------------------------------------------------

json::Value encode(const RegisterRequest& request);
json::Value encode(const AddPatternsRequest& request);
json::Value encode(const RemovePatternsRequest& request);
json::Value encode(const UnregisterRequest& request);

json::Value ok_response();
json::Value error_response(const std::string& message);

// --- decoding ---------------------------------------------------------------

/// Message type dispatch; throws json::TypeError / std::invalid_argument on
/// malformed messages.
std::string message_type(const json::Value& message);

RegisterRequest decode_register(const json::Value& message);
AddPatternsRequest decode_add_patterns(const json::Value& message);
RemovePatternsRequest decode_remove_patterns(const json::Value& message);
UnregisterRequest decode_unregister(const json::Value& message);

bool response_ok(const json::Value& response);

}  // namespace dpisvc::service
