#include "service/scan_pool.hpp"

namespace dpisvc::service {

const char* overload_policy_name(OverloadPolicy policy) noexcept {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShed:
      return "shed";
  }
  return "unknown";
}

// The production instantiation every other TU links against (the header
// declares it extern). Model-checker builds instantiate the same template
// over mc::ModelSync in their own TUs.
template class BasicScanPool<mc::RealSync>;

}  // namespace dpisvc::service
