#include "service/scan_pool.hpp"

#include "common/timer.hpp"

namespace dpisvc::service {

ScanPool::ScanPool(std::size_t num_workers, obs::Histogram* queue_wait_ns)
    : queue_wait_ns_(queue_wait_ns) {
  if (num_workers <= 1) return;  // inline mode: no threads
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->thread = std::thread(&ScanPool::worker_loop, std::ref(*worker));
    workers_.push_back(std::move(worker));
  }
}

ScanPool::~ScanPool() {
  for (auto& worker : workers_) {
    {
      const MutexLock lock(worker->mu);
      worker->stop = true;
    }
    worker->cv.notify_one();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ScanPool::worker_loop(Worker& worker) {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(worker.mu);
      while (!worker.stop && worker.queue.empty()) worker.cv.wait(lock);
      if (worker.queue.empty()) return;  // stop requested, queue drained
      job = std::move(worker.queue.front());
      worker.queue.pop_front();
    }
    job();
  }
}

void ScanPool::dispatch(std::vector<std::function<void()>> jobs) {
  if (workers_.empty()) {
    for (auto& job : jobs) {
      if (job) job();
    }
    return;
  }

  // Completion latch shared by this dispatch's jobs.
  struct Completion {
    Mutex mu;
    CondVar cv;
    std::size_t remaining DPISVC_GUARDED_BY(mu) = 0;
  };
  auto done = std::make_shared<Completion>();
  std::size_t submitted = 0;
  for (const auto& job : jobs) {
    if (job) ++submitted;
  }
  if (submitted == 0) return;
  {
    const MutexLock lock(done->mu);
    done->remaining = submitted;
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!jobs[i]) continue;
    Worker& worker = *workers_[i % workers_.size()];
    {
      const MutexLock lock(worker.mu);
      worker.queue.push_back([job = std::move(jobs[i]), done,
                              wait_hist = queue_wait_ns_,
                              enqueued = Stopwatch()] {
        if (wait_hist != nullptr) wait_hist->record(enqueued.elapsed_ns());
        job();
        {
          const MutexLock lock(done->mu);
          --done->remaining;
        }
        done->cv.notify_one();
      });
    }
    worker.cv.notify_one();
  }

  MutexLock lock(done->mu);
  while (done->remaining != 0) done->cv.wait(lock);
}

}  // namespace dpisvc::service
