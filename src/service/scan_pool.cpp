#include "service/scan_pool.hpp"

#include <chrono>

namespace dpisvc::service {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::size_t kDefaultQueueCapacity = 1024;

}  // namespace

const char* overload_policy_name(OverloadPolicy policy) noexcept {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShed:
      return "shed";
  }
  return "unknown";
}

ScanPool::ScanPool(std::size_t num_workers, std::size_t queue_capacity,
                   OverloadPolicy policy, Instruments instruments)
    : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity),
      policy_(policy),
      instruments_(std::move(instruments)) {
  if (num_workers <= 1) return;  // inline mode: no threads, no rings
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>(queue_capacity_);
    if (i < instruments_.depth.size()) worker->depth = instruments_.depth[i];
    workers_.push_back(std::move(worker));
  }
  // Threads start only after the vector is fully built so the worker
  // pointers handed to the lambdas are final.
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  }
}

ScanPool::ScanPool(std::size_t num_workers, obs::Histogram* queue_wait_ns)
    : ScanPool(num_workers, kDefaultQueueCapacity, OverloadPolicy::kBlock,
               Instruments{queue_wait_ns, nullptr, nullptr, nullptr, {}}) {}

ScanPool::~ScanPool() {
  for (auto& worker : workers_) {
    worker->stop.store(true, std::memory_order_release);
    wake(*worker);
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ScanPool::run_job(Job& job) {
  if (instruments_.queue_wait_ns != nullptr && job.enqueue_ns != 0) {
    const auto start = now_ns();
    instruments_.queue_wait_ns->record(
        start > job.enqueue_ns ? start - job.enqueue_ns : 0);
  }
  job.fn(job.ctx, job.arg);
  if (job.done != nullptr) job.done->finish_one();
}

void ScanPool::wake(Worker& worker) {
  // Pairs with the seq_cst parked-publish in worker_loop: after our push (or
  // stop store) the fence orders it before the parked load, so either the
  // consumer's final re-check sees the job or we see parked==true and
  // notify. Taking park_mu (empty critical section) closes the window
  // between the worker's last check and its wait.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (worker.parked.load(std::memory_order_seq_cst)) {
    { const MutexLock lock(worker.park_mu); }
    worker.park_cv.notify_one();
  }
}

bool ScanPool::push_job(Worker& worker, Job job, bool force_block) {
  const MutexLock lock(worker.submit_mu);
  if (!worker.ring.try_push(Job(job))) {
    if (!force_block && policy_ == OverloadPolicy::kShed) return false;
    if (instruments_.blocked != nullptr) instruments_.blocked->add();
    const auto blocked_start = now_ns();
    // The consumer frees a slot every time it pops; yielding (rather than a
    // condvar) keeps the producer-side hot path mutex-free against the
    // consumer and the wait short under normal drain rates.
    do {
      std::this_thread::yield();
    } while (!worker.ring.try_push(Job(job)));
    if (instruments_.blocked_ns != nullptr) {
      instruments_.blocked_ns->record(now_ns() - blocked_start);
    }
  }
  const auto size = worker.ring.size();
  if (instruments_.fill != nullptr) {
    instruments_.fill->record(static_cast<std::uint64_t>(size));
  }
  if (worker.depth != nullptr) {
    worker.depth->set(static_cast<std::int64_t>(size));
  }
  return true;
}

void ScanPool::dispatch(JobFn fn, void* ctx, std::size_t count) {
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(ctx, i);
    return;
  }
  Completion done;
  done.expect(count);
  const auto enqueue = now_ns();
  for (std::size_t i = 0; i < count; ++i) {
    Worker& worker = *workers_[i % workers_.size()];
    push_job(worker, Job{fn, ctx, i, &done, enqueue}, /*force_block=*/true);
    wake(worker);
  }
  done.wait_zero();
}

bool ScanPool::submit(std::size_t worker_index, JobFn fn, void* ctx,
                      std::size_t arg, Completion* done) {
  if (workers_.empty()) {
    fn(ctx, arg);
    if (done != nullptr) done->finish_one();
    return true;
  }
  Worker& worker = *workers_[worker_index % workers_.size()];
  if (!push_job(worker, Job{fn, ctx, arg, done, now_ns()},
                /*force_block=*/false)) {
    return false;
  }
  wake(worker);
  return true;
}

void ScanPool::submit_blocking(std::size_t worker_index, JobFn fn, void* ctx,
                               std::size_t arg, Completion* done) {
  if (workers_.empty()) {
    fn(ctx, arg);
    if (done != nullptr) done->finish_one();
    return;
  }
  Worker& worker = *workers_[worker_index % workers_.size()];
  push_job(worker, Job{fn, ctx, arg, done, now_ns()}, /*force_block=*/true);
  wake(worker);
}

void ScanPool::worker_loop(Worker& worker) {
  Job job;
  for (;;) {
    if (worker.ring.try_pop(job)) {
      if (worker.depth != nullptr) {
        worker.depth->set(static_cast<std::int64_t>(worker.ring.size()));
      }
      run_job(job);
      continue;
    }
    // Publish "about to park" before the final emptiness re-check; wake()
    // fences after its push, so either this re-check sees the new job or the
    // producer sees parked==true and notifies under park_mu.
    worker.parked.store(true, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (worker.ring.try_pop(job)) {
      worker.parked.store(false, std::memory_order_relaxed);
      if (worker.depth != nullptr) {
        worker.depth->set(static_cast<std::int64_t>(worker.ring.size()));
      }
      run_job(job);
      continue;
    }
    if (worker.stop.load(std::memory_order_acquire)) {
      worker.parked.store(false, std::memory_order_relaxed);
      // Drain anything raced in after the stop flag; producers have quiesced
      // by the time the destructor runs, so this empties exactly once.
      while (worker.ring.try_pop(job)) run_job(job);
      return;
    }
    {
      MutexLock lock(worker.park_mu);
      if (worker.ring.empty() &&
          !worker.stop.load(std::memory_order_acquire)) {
        // Timed backstop: even a lost notify (ruled out by the fence
        // protocol, but cheap to insure against) delays a job by <= 1ms.
        worker.park_cv.wait_for(lock, std::chrono::milliseconds(1));
      }
    }
    worker.parked.store(false, std::memory_order_relaxed);
  }
}

}  // namespace dpisvc::service
