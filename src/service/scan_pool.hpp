// Worker pool for the sharded data plane (§6 scaling).
//
// One worker thread per data-plane shard: dispatch() hands job i to worker i,
// so a shard's packets are always processed by the same thread, in submission
// order. That affinity is what makes the sharded scan path deterministic —
// a flow maps to exactly one shard (FiveTuple::canonical() hash), and its
// packets are scanned sequentially by that shard's worker regardless of how
// many workers the pool runs.
//
// A pool of size <= 1 spawns no threads at all; dispatch() then runs the jobs
// inline on the caller, which keeps the single-threaded configuration
// byte-identical to the pre-sharding code path (and trivially TSan-clean).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_safety.hpp"
#include "obs/metrics.hpp"

namespace dpisvc::service {

class ScanPool {
 public:
  /// Spawns `num_workers` threads (none when num_workers <= 1). When
  /// `queue_wait_ns` is non-null, the enqueue-to-start wait of every
  /// threaded job is recorded into it (nanoseconds) — the §4.3.1 queueing
  /// signal: a shard whose jobs sit in the queue is oversubscribed long
  /// before its scan latency shows it. Inline mode records nothing (there
  /// is no queue). The histogram must outlive the pool.
  explicit ScanPool(std::size_t num_workers,
                    obs::Histogram* queue_wait_ns = nullptr);

  ScanPool(const ScanPool&) = delete;
  ScanPool& operator=(const ScanPool&) = delete;

  ~ScanPool();

  /// Number of worker threads (0 for the inline single-threaded pool).
  std::size_t workers() const noexcept { return workers_.size(); }

  /// Runs jobs[i] on worker (i % workers) and blocks until every job has
  /// finished. Null entries are skipped. With no worker threads the jobs run
  /// inline in index order. Callers map job index == shard index, so the
  /// per-shard ordering guarantee follows from the per-worker FIFO queues.
  void dispatch(std::vector<std::function<void()>> jobs);

 private:
  struct Worker {
    Mutex mu;
    CondVar cv;
    std::deque<std::function<void()>> queue DPISVC_GUARDED_BY(mu);
    bool stop DPISVC_GUARDED_BY(mu) = false;
    std::thread thread;
  };

  static void worker_loop(Worker& worker);

  std::vector<std::unique_ptr<Worker>> workers_;
  obs::Histogram* queue_wait_ns_ = nullptr;
};

}  // namespace dpisvc::service
