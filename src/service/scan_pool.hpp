// Worker pool for the sharded data plane (§6 scaling, DESIGN.md §4h).
//
// One worker thread per data-plane shard, fed through a fixed-capacity SPSC
// job ring: dispatch()/submit() hand jobs for shard i to worker i, so a
// shard's packets are always processed by the same thread, in submission
// order. That affinity is what makes the sharded scan path deterministic —
// a flow maps to exactly one shard (FiveTuple::canonical() hash), and its
// packets are scanned sequentially by that shard's worker regardless of how
// many workers the pool runs.
//
// This is the bounded-queue rewrite of the original mutex+deque pool. The
// old pool heap-allocated a std::function per job, pushed it under the
// worker mutex, and let the deque grow without limit — a stalled shard
// turned into unbounded memory growth instead of a backpressure signal.
// Now each worker owns a SpscRing of plain Job slots (function pointer +
// context word — no allocation, no type erasure); producers serialize on a
// light per-worker submit mutex (one acquisition per job, uncontended in
// the single-ingest-thread configuration, so the ring stays SPSC), and the
// consumer side is lock-free: a worker pops jobs without ever taking a
// mutex, parking on a condition variable only when its ring runs dry.
//
// A full ring is handled by the configured OverloadPolicy: kBlock makes the
// producer wait for space (backpressure propagates to the fabric), kShed
// makes submit() refuse so the caller can drop the work observably. Both
// outcomes count through the obs instruments. dispatch() always blocks —
// its callers rely on every job running.
//
// A pool of size <= 1 spawns no threads at all; dispatch()/submit() then
// run the jobs inline on the caller, which keeps the single-threaded
// configuration byte-identical to the pre-sharding code path (and trivially
// TSan-clean).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/spsc_ring.hpp"
#include "common/thread_safety.hpp"
#include "obs/metrics.hpp"

namespace dpisvc::service {

/// What a producer does when a shard's job ring is full.
enum class OverloadPolicy {
  kBlock,  ///< wait for space: backpressure propagates upstream
  kShed,   ///< refuse the job: the caller drops it and counts the loss
};

const char* overload_policy_name(OverloadPolicy policy) noexcept;

class ScanPool {
 public:
  /// Plain-function job: fn(ctx, arg). The pair replaces the old
  /// heap-allocated std::function closures — a job slot is trivially
  /// copyable and lives in the ring, so steady-state dispatch allocates
  /// nothing.
  using JobFn = void (*)(void* ctx, std::size_t arg);

  /// Completion latch shared by the jobs of one synchronous dispatch (or an
  /// ingest batch that wants submit-and-wait semantics). Stack-allocatable:
  /// wait_zero() returns only after every expected job finished.
  class Completion {
   public:
    void expect(std::size_t n) {
      const MutexLock lock(mu_);
      remaining_ += static_cast<std::ptrdiff_t>(n);
    }
    void finish_one() {
      // Notify UNDER the mutex: the latch is stack-allocated by the waiter,
      // and wait_zero() returning frees it. Holding mu_ through the notify
      // means the waiter cannot observe remaining_ == 0 (it needs mu_) until
      // this thread's last touch of the latch is done — signal-after-unlock
      // would let the waiter destroy cv_ mid-notify.
      const MutexLock lock(mu_);
      --remaining_;
      cv_.notify_all();
    }
    void wait_zero() {
      MutexLock lock(mu_);
      while (remaining_ != 0) cv_.wait(lock);
    }

   private:
    Mutex mu_;
    CondVar cv_;
    std::ptrdiff_t remaining_ DPISVC_GUARDED_BY(mu_) = 0;
  };

  /// Obs instruments the pool records into; any pointer may be null
  /// (metrics disabled). `depth` gauges are per worker (fill level of that
  /// worker's ring, updated on push and pop); `fill` is the pool-wide
  /// fill-at-enqueue histogram. All instruments must outlive the pool.
  struct Instruments {
    obs::Histogram* queue_wait_ns = nullptr;  ///< enqueue-to-start wait
    obs::Counter* blocked = nullptr;    ///< submissions that had to wait
    obs::Histogram* blocked_ns = nullptr;  ///< how long each one waited
    obs::Histogram* fill = nullptr;     ///< ring occupancy after each push
    std::vector<obs::Gauge*> depth;     ///< per-worker ring fill level
  };

  /// Spawns `num_workers` threads (none when num_workers <= 1), each with a
  /// job ring of `queue_capacity` slots (min 1). `policy` governs full-ring
  /// submissions.
  ScanPool(std::size_t num_workers, std::size_t queue_capacity,
           OverloadPolicy policy, Instruments instruments);

  /// Back-compat convenience: block policy, default capacity.
  explicit ScanPool(std::size_t num_workers,
                    obs::Histogram* queue_wait_ns = nullptr);

  ScanPool(const ScanPool&) = delete;
  ScanPool& operator=(const ScanPool&) = delete;

  ~ScanPool();

  /// Number of worker threads (0 for the inline single-threaded pool).
  std::size_t workers() const noexcept { return workers_.size(); }
  std::size_t queue_capacity() const noexcept { return queue_capacity_; }
  OverloadPolicy overload_policy() const noexcept { return policy_; }

  /// Runs fn(ctx, i) for every i in [0, count), job i on worker
  /// (i % workers), and blocks until every job has finished. With no worker
  /// threads the jobs run inline in index order. Callers map job index ==
  /// shard index, so the per-shard ordering guarantee follows from the
  /// per-worker FIFO rings. Full rings block regardless of policy (the
  /// caller is already committed to waiting for completion).
  void dispatch(JobFn fn, void* ctx, std::size_t count);

  /// Asynchronous single-job submission to one worker — the batched ingest
  /// path. Returns false iff the policy is kShed and the worker's ring is
  /// full (the job did not run and never will); kBlock waits for space and
  /// returns true. When `done` is non-null it must have expect()ed this job
  /// already; the worker signals it after the job returns. Inline pools run
  /// the job on the caller and return true.
  bool submit(std::size_t worker, JobFn fn, void* ctx, std::size_t arg,
              Completion* done = nullptr);

  /// Like submit() but always waits for ring space regardless of policy.
  /// The ingest pipeline sheds at batch admission (whole packets, counted),
  /// never at job granularity — a batch's per-shard jobs must all run or
  /// its results would silently go missing.
  void submit_blocking(std::size_t worker, JobFn fn, void* ctx,
                       std::size_t arg, Completion* done = nullptr);

 private:
  /// One ring slot. `enqueue_ns` carries the Stopwatch-equivalent steady
  /// timestamp for the queue-wait histogram.
  struct Job {
    JobFn fn = nullptr;
    void* ctx = nullptr;
    std::size_t arg = 0;
    Completion* done = nullptr;
    std::uint64_t enqueue_ns = 0;
  };

  struct Worker {
    explicit Worker(std::size_t capacity) : ring(capacity) {}

    SpscRing<Job> ring;
    /// Serializes producers so the ring keeps its single-producer contract;
    /// taken once per job (never per packet), uncontended with one ingest
    /// thread. Never touched by the consumer.
    Mutex submit_mu;
    /// Parking protocol: the worker publishes `parked` with seq_cst
    /// ordering before its final empty-check, and a producer checks it with
    /// seq_cst ordering after its push — the classic store/load fence pair
    /// that makes a lost wakeup impossible. The timed wait in the worker is
    /// a belt-and-braces liveness backstop, not the correctness mechanism.
    Mutex park_mu;
    CondVar park_cv;
    std::atomic<bool> parked{false};
    std::atomic<bool> stop{false};
    obs::Gauge* depth = nullptr;
    std::thread thread;
  };

  void worker_loop(Worker& worker);
  void run_job(Job& job);
  /// Pushes onto `worker`'s ring under its submit mutex, honoring `policy`
  /// (or unconditionally blocking when `force_block`). Returns false only
  /// when the job was shed.
  bool push_job(Worker& worker, Job job, bool force_block);
  static void wake(Worker& worker);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t queue_capacity_ = 0;
  OverloadPolicy policy_ = OverloadPolicy::kBlock;
  Instruments instruments_;
};

}  // namespace dpisvc::service
