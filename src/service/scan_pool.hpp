// Worker pool for the sharded data plane (§6 scaling, DESIGN.md §4h).
//
// One worker thread per data-plane shard, fed through a fixed-capacity SPSC
// job ring: dispatch()/submit() hand jobs for shard i to worker i, so a
// shard's packets are always processed by the same thread, in submission
// order. That affinity is what makes the sharded scan path deterministic —
// a flow maps to exactly one shard (FiveTuple::canonical() hash), and its
// packets are scanned sequentially by that shard's worker regardless of how
// many workers the pool runs.
//
// This is the bounded-queue rewrite of the original mutex+deque pool. The
// old pool heap-allocated a std::function per job, pushed it under the
// worker mutex, and let the deque grow without limit — a stalled shard
// turned into unbounded memory growth instead of a backpressure signal.
// Now each worker owns a SpscRing of plain Job slots (function pointer +
// context word — no allocation, no type erasure); producers serialize on a
// light per-worker submit mutex (one acquisition per job, uncontended in
// the single-ingest-thread configuration, so the ring stays SPSC), and the
// consumer side is lock-free: a worker pops jobs without ever taking a
// mutex, parking on a condition variable only when its ring runs dry.
//
// A full ring is handled by the configured OverloadPolicy: kBlock makes the
// producer wait for space (backpressure propagates to the fabric), kShed
// makes submit() refuse so the caller can drop the work observably. Both
// outcomes count through the obs instruments. dispatch() always blocks —
// its callers rely on every job running.
//
// A pool of size <= 1 spawns no threads at all; dispatch()/submit() then
// run the jobs inline on the caller, which keeps the single-threaded
// configuration byte-identical to the pre-sharding code path (and trivially
// TSan-clean).
//
// The pool is a class template over the dpisvc_mc synchronization facade
// (mc/sync.hpp): `ScanPool` is the RealSync instantiation (plain std
// primitives, explicitly instantiated in scan_pool.cpp so other TUs don't
// re-compile the template), and the model checker instantiates the SAME
// class over mc::ModelSync to exhaustively explore the park/wake protocol,
// the Completion latch, and the submit path — the shipped algorithms, not
// hand-copied models (DESIGN.md §7).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/spsc_ring.hpp"
#include "common/thread_safety.hpp"
#include "mc/sync.hpp"
#include "obs/metrics.hpp"

namespace dpisvc::service {

/// What a producer does when a shard's job ring is full.
enum class OverloadPolicy {
  kBlock,  ///< wait for space: backpressure propagates upstream
  kShed,   ///< refuse the job: the caller drops it and counts the loss
};

const char* overload_policy_name(OverloadPolicy policy) noexcept;

namespace detail {

inline std::uint64_t scan_pool_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline constexpr std::size_t kDefaultQueueCapacity = 1024;

}  // namespace detail

template <typename Sync = mc::RealSync>
class BasicScanPool {
 public:
  /// Plain-function job: fn(ctx, arg). The pair replaces the old
  /// heap-allocated std::function closures — a job slot is trivially
  /// copyable and lives in the ring, so steady-state dispatch allocates
  /// nothing.
  using JobFn = void (*)(void* ctx, std::size_t arg);

  /// Completion latch shared by the jobs of one synchronous dispatch (or an
  /// ingest batch that wants submit-and-wait semantics). Stack-allocatable:
  /// wait_zero() returns only after every expected job finished.
  class Completion {
   public:
    void expect(std::size_t n) {
      const typename Sync::MutexLock lock(mu_);
      remaining_ += static_cast<std::ptrdiff_t>(n);
    }
    void finish_one() {
#if defined(DPISVC_MC_FAULT_COMPLETION_NOTIFY)
      // Fault-injection variant for the dpisvc_mc "teeth" test ONLY: the
      // pre-PR9 bug, signalling AFTER the mutex is released. The waiter can
      // then observe remaining_ == 0, return from wait_zero(), and destroy
      // the stack latch while this thread's notify is still in flight — the
      // use-after-destroy TSan caught once, which the model checker must
      // find deterministically. Only tests/mc_fault_test.cpp may define the
      // macro, and only over a TU-local Sync tag (no ODR risk).
      {
        const typename Sync::MutexLock lock(mu_);
        --remaining_;
      }
      cv_.notify_all();
#else
      // Notify UNDER the mutex: the latch is stack-allocated by the waiter,
      // and wait_zero() returning frees it. Holding mu_ through the notify
      // means the waiter cannot observe remaining_ == 0 (it needs mu_) until
      // this thread's last touch of the latch is done — signal-after-unlock
      // would let the waiter destroy cv_ mid-notify.
      const typename Sync::MutexLock lock(mu_);
      --remaining_;
      cv_.notify_all();
#endif
    }
    void wait_zero() {
      typename Sync::MutexLock lock(mu_);
      while (remaining_ != 0) cv_.wait(lock);
    }

   private:
    typename Sync::Mutex mu_;
    typename Sync::CondVar cv_;
    std::ptrdiff_t remaining_ DPISVC_GUARDED_BY(mu_) = 0;
  };

  /// Obs instruments the pool records into; any pointer may be null
  /// (metrics disabled). `depth` gauges are per worker (fill level of that
  /// worker's ring, updated on push and pop); `fill` is the pool-wide
  /// fill-at-enqueue histogram. All instruments must outlive the pool.
  struct Instruments {
    obs::Histogram* queue_wait_ns = nullptr;  ///< enqueue-to-start wait
    obs::Counter* blocked = nullptr;    ///< submissions that had to wait
    obs::Histogram* blocked_ns = nullptr;  ///< how long each one waited
    obs::Histogram* fill = nullptr;     ///< ring occupancy after each push
    std::vector<obs::Gauge*> depth;     ///< per-worker ring fill level
  };

  /// Spawns `num_workers` threads (none when num_workers <= 1), each with a
  /// job ring of `queue_capacity` slots (min 1). `policy` governs full-ring
  /// submissions.
  BasicScanPool(std::size_t num_workers, std::size_t queue_capacity,
                OverloadPolicy policy, Instruments instruments)
      : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity),
        policy_(policy),
        instruments_(std::move(instruments)) {
    if (num_workers <= 1) return;  // inline mode: no threads, no rings
    workers_.reserve(num_workers);
    for (std::size_t i = 0; i < num_workers; ++i) {
      auto worker = std::make_unique<Worker>(queue_capacity_);
      if (i < instruments_.depth.size()) worker->depth = instruments_.depth[i];
      workers_.push_back(std::move(worker));
    }
    // Threads start only after the vector is fully built so the worker
    // pointers handed to the lambdas are final.
    for (auto& worker : workers_) {
      worker->thread =
          typename Sync::Thread([this, w = worker.get()] { worker_loop(*w); });
    }
  }

  /// Back-compat convenience: block policy, default capacity.
  explicit BasicScanPool(std::size_t num_workers,
                         obs::Histogram* queue_wait_ns = nullptr)
      : BasicScanPool(num_workers, detail::kDefaultQueueCapacity,
                      OverloadPolicy::kBlock,
                      Instruments{queue_wait_ns, nullptr, nullptr, nullptr,
                                  {}}) {}

  BasicScanPool(const BasicScanPool&) = delete;
  BasicScanPool& operator=(const BasicScanPool&) = delete;

  ~BasicScanPool() {
    for (auto& worker : workers_) {
      worker->stop.store(true, std::memory_order_release);
      wake(*worker);
    }
    for (auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  }

  /// Number of worker threads (0 for the inline single-threaded pool).
  std::size_t workers() const noexcept { return workers_.size(); }
  std::size_t queue_capacity() const noexcept { return queue_capacity_; }
  OverloadPolicy overload_policy() const noexcept { return policy_; }

  /// Runs fn(ctx, i) for every i in [0, count), job i on worker
  /// (i % workers), and blocks until every job has finished. With no worker
  /// threads the jobs run inline in index order. Callers map job index ==
  /// shard index, so the per-shard ordering guarantee follows from the
  /// per-worker FIFO rings. Full rings block regardless of policy (the
  /// caller is already committed to waiting for completion).
  void dispatch(JobFn fn, void* ctx, std::size_t count) {
    if (workers_.empty()) {
      for (std::size_t i = 0; i < count; ++i) fn(ctx, i);
      return;
    }
    Completion done;
    done.expect(count);
    const auto enqueue = detail::scan_pool_now_ns();
    for (std::size_t i = 0; i < count; ++i) {
      Worker& worker = *workers_[i % workers_.size()];
      push_job(worker, Job{fn, ctx, i, &done, enqueue}, /*force_block=*/true);
      wake(worker);
    }
    done.wait_zero();
  }

  /// Asynchronous single-job submission to one worker — the batched ingest
  /// path. Returns false iff the policy is kShed and the worker's ring is
  /// full (the job did not run and never will); kBlock waits for space and
  /// returns true. When `done` is non-null it must have expect()ed this job
  /// already; the worker signals it after the job returns. Inline pools run
  /// the job on the caller and return true.
  bool submit(std::size_t worker_index, JobFn fn, void* ctx, std::size_t arg,
              Completion* done = nullptr) {
    if (workers_.empty()) {
      fn(ctx, arg);
      if (done != nullptr) done->finish_one();
      return true;
    }
    Worker& worker = *workers_[worker_index % workers_.size()];
    if (!push_job(worker, Job{fn, ctx, arg, done, detail::scan_pool_now_ns()},
                  /*force_block=*/false)) {
      return false;
    }
    wake(worker);
    return true;
  }

  /// Like submit() but always waits for ring space regardless of policy.
  /// The ingest pipeline sheds at batch admission (whole packets, counted),
  /// never at job granularity — a batch's per-shard jobs must all run or
  /// its results would silently go missing.
  void submit_blocking(std::size_t worker_index, JobFn fn, void* ctx,
                       std::size_t arg, Completion* done = nullptr) {
    if (workers_.empty()) {
      fn(ctx, arg);
      if (done != nullptr) done->finish_one();
      return;
    }
    Worker& worker = *workers_[worker_index % workers_.size()];
    push_job(worker, Job{fn, ctx, arg, done, detail::scan_pool_now_ns()},
             /*force_block=*/true);
    wake(worker);
  }

 private:
  /// One ring slot. `enqueue_ns` carries the Stopwatch-equivalent steady
  /// timestamp for the queue-wait histogram.
  struct Job {
    JobFn fn = nullptr;
    void* ctx = nullptr;
    std::size_t arg = 0;
    Completion* done = nullptr;
    std::uint64_t enqueue_ns = 0;
  };

  struct Worker {
    explicit Worker(std::size_t capacity) : ring(capacity) {}

    SpscRing<Job, Sync> ring;
    /// Serializes producers so the ring keeps its single-producer contract;
    /// taken once per job (never per packet), uncontended with one ingest
    /// thread. Never touched by the consumer (the ring's pop side is the
    /// worker thread's exclusive role). Producer-side ring pushes are
    /// funneled through try_push_locked(), whose DPISVC_REQUIRES(submit_mu)
    /// contract makes an unserialized push a compile error under
    /// -Werror=thread-safety.
    typename Sync::Mutex submit_mu;
    /// Parking protocol: the worker publishes `parked` with seq_cst
    /// ordering before its final empty-check, and a producer checks it with
    /// seq_cst ordering after its push — the classic store/load fence pair
    /// that makes a lost wakeup impossible. The timed wait in the worker is
    /// a belt-and-braces liveness backstop, not the correctness mechanism
    /// (the dpisvc_mc pool scenario models wait_for as an untimed wait, so
    /// a protocol that silently leaned on the timeout would show up as a
    /// modeled deadlock).
    typename Sync::Mutex park_mu;
    typename Sync::CondVar park_cv;
    typename Sync::template Atomic<bool> parked{false};
    typename Sync::template Atomic<bool> stop{false};
    obs::Gauge* depth = nullptr;
    typename Sync::Thread thread;
  };

  void run_job(Job& job) {
    if (instruments_.queue_wait_ns != nullptr && job.enqueue_ns != 0) {
      const auto start = detail::scan_pool_now_ns();
      instruments_.queue_wait_ns->record(
          start > job.enqueue_ns ? start - job.enqueue_ns : 0);
    }
    job.fn(job.ctx, job.arg);
    if (job.done != nullptr) job.done->finish_one();
  }

  static void wake(Worker& worker) {
    // Pairs with the seq_cst parked-publish in worker_loop: after our push
    // (or stop store) the fence orders it before the parked load, so either
    // the consumer's final re-check sees the job or we see parked==true and
    // notify. Taking park_mu (empty critical section) closes the window
    // between the worker's last check and its wait.
    Sync::fence(std::memory_order_seq_cst);
    if (worker.parked.load(std::memory_order_seq_cst)) {
      { const typename Sync::MutexLock lock(worker.park_mu); }
      worker.park_cv.notify_one();
    }
  }

  /// The single producer-side ring access; callable only with the worker's
  /// submit mutex held, which is what keeps the ring single-producer.
  static bool try_push_locked(Worker& worker, Job&& job)
      DPISVC_REQUIRES(worker.submit_mu) {
    return worker.ring.try_push(std::move(job));
  }

  /// Pushes onto `worker`'s ring under its submit mutex, honoring `policy`
  /// (or unconditionally blocking when `force_block`). Returns false only
  /// when the job was shed.
  bool push_job(Worker& worker, Job job, bool force_block) {
    const typename Sync::MutexLock lock(worker.submit_mu);
    if (!try_push_locked(worker, Job(job))) {
      if (!force_block && policy_ == OverloadPolicy::kShed) return false;
      if (instruments_.blocked != nullptr) instruments_.blocked->add();
      const auto blocked_start = detail::scan_pool_now_ns();
      // The consumer frees a slot every time it pops; yielding (rather than
      // a condvar) keeps the producer-side hot path mutex-free against the
      // consumer and the wait short under normal drain rates.
      do {
        Sync::yield();
      } while (!try_push_locked(worker, Job(job)));
      if (instruments_.blocked_ns != nullptr) {
        instruments_.blocked_ns->record(detail::scan_pool_now_ns() -
                                        blocked_start);
      }
    }
    const auto size = worker.ring.size();
    if (instruments_.fill != nullptr) {
      instruments_.fill->record(static_cast<std::uint64_t>(size));
    }
    if (worker.depth != nullptr) {
      worker.depth->set(static_cast<std::int64_t>(size));
    }
    return true;
  }

  void worker_loop(Worker& worker) {
    Job job;
    for (;;) {
      if (worker.ring.try_pop(job)) {
        if (worker.depth != nullptr) {
          worker.depth->set(static_cast<std::int64_t>(worker.ring.size()));
        }
        run_job(job);
        continue;
      }
      // Publish "about to park" before the final emptiness re-check; wake()
      // fences after its push, so either this re-check sees the new job or
      // the producer sees parked==true and notifies under park_mu.
      worker.parked.store(true, std::memory_order_seq_cst);
      Sync::fence(std::memory_order_seq_cst);
      if (worker.ring.try_pop(job)) {
        worker.parked.store(false, std::memory_order_relaxed);
        if (worker.depth != nullptr) {
          worker.depth->set(static_cast<std::int64_t>(worker.ring.size()));
        }
        run_job(job);
        continue;
      }
      if (worker.stop.load(std::memory_order_acquire)) {
        worker.parked.store(false, std::memory_order_relaxed);
        // Drain anything raced in after the stop flag; producers have
        // quiesced by the time the destructor runs, so this empties exactly
        // once.
        while (worker.ring.try_pop(job)) run_job(job);
        return;
      }
      {
        typename Sync::MutexLock lock(worker.park_mu);
        if (worker.ring.empty() &&
            !worker.stop.load(std::memory_order_acquire)) {
          // Timed backstop: even a lost notify (ruled out by the fence
          // protocol, but cheap to insure against) delays a job by <= 1ms.
          worker.park_cv.wait_for(lock, std::chrono::milliseconds(1));
        }
      }
      worker.parked.store(false, std::memory_order_relaxed);
    }
  }

  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t queue_capacity_ = 0;
  OverloadPolicy policy_ = OverloadPolicy::kBlock;
  Instruments instruments_;
};

/// The production pool. Explicitly instantiated in scan_pool.cpp; other
/// translation units link against that instantiation instead of
/// re-compiling the template.
using ScanPool = BasicScanPool<mc::RealSync>;

extern template class BasicScanPool<mc::RealSync>;

}  // namespace dpisvc::service
