#include "verify/dfa_snapshot.hpp"

namespace dpisvc::verify {

namespace {

template <typename Automaton>
DfaSnapshot snapshot_impl(const Automaton& automaton) {
  DfaSnapshot snap;
  snap.num_states = automaton.num_states();
  snap.num_accepting = automaton.num_accepting();
  snap.start = automaton.start_state();
  snap.transitions.resize(static_cast<std::size_t>(snap.num_states) * 256u);
  for (ac::StateIndex s = 0; s < snap.num_states; ++s) {
    for (unsigned b = 0; b < 256; ++b) {
      snap.transitions[static_cast<std::size_t>(s) * 256u + b] =
          automaton.step(s, static_cast<std::uint8_t>(b));
    }
  }
  snap.match_table.reserve(snap.num_accepting);
  for (ac::StateIndex s = 0; s < snap.num_accepting; ++s) {
    snap.match_table.push_back(automaton.matches_at(s));
  }
  snap.depth.reserve(snap.num_states);
  for (ac::StateIndex s = 0; s < snap.num_states; ++s) {
    snap.depth.push_back(automaton.depth(s));
  }
  return snap;
}

}  // namespace

DfaSnapshot snapshot_of(const ac::FullAutomaton& automaton) {
  return snapshot_impl(automaton);
}

DfaSnapshot snapshot_of(const ac::CompressedAutomaton& automaton) {
  DfaSnapshot snap = snapshot_impl(automaton);
  snap.fail.reserve(snap.num_states);
  for (ac::StateIndex s = 0; s < snap.num_states; ++s) {
    snap.fail.push_back(automaton.fail_link(s));
  }
  return snap;
}

}  // namespace dpisvc::verify
