// Plain-data snapshot of a built Aho-Corasick DFA.
//
// The static verifier never inspects automaton internals directly: it
// materializes the runtime representation into this flat structure through
// the public scan API (step / matches_at / depth), then proves invariants on
// the snapshot. Two payoffs:
//
//  - snapshotting a CompressedAutomaton *decodes* its failure-link
//    representation into the explicit transition function, so comparing the
//    full-table and compressed snapshots proves the compressed encoding is
//    exact (src/verify/verifier.hpp, representation-divergence);
//  - tests can corrupt a snapshot field-by-field to check that every
//    invariant violation is detected with a precise diagnostic, without
//    needing mutable access to the real automata.
#pragma once

#include <cstdint>
#include <vector>

#include "ac/compressed_automaton.hpp"
#include "ac/full_automaton.hpp"

namespace dpisvc::verify {

struct DfaSnapshot {
  std::uint32_t num_states = 0;
  std::uint32_t num_accepting = 0;
  ac::StateIndex start = 0;
  /// Explicit transition function, num_states * 256 entries.
  std::vector<ac::StateIndex> transitions;
  /// Per accepting state {0..num_accepting-1}: sorted pattern indices.
  std::vector<std::vector<ac::PatternIndex>> match_table;
  /// Per state: label length.
  std::vector<std::uint32_t> depth;
  /// Per state: failure link. Empty when the representation has none
  /// materialized (the full table bakes failures into the transitions).
  std::vector<ac::StateIndex> fail;

  ac::StateIndex step(ac::StateIndex state, std::uint8_t byte) const {
    return transitions[static_cast<std::size_t>(state) * 256u + byte];
  }
};

DfaSnapshot snapshot_of(const ac::FullAutomaton& automaton);
DfaSnapshot snapshot_of(const ac::CompressedAutomaton& automaton);

}  // namespace dpisvc::verify
