#include "verify/engine_tables.hpp"

#include <set>
#include <variant>

#include "regex/anchors.hpp"
#include "regex/parser.hpp"

namespace dpisvc::verify {

EngineTables extract_tables(const dpi::Engine& engine) {
  EngineTables tables;
  tables.automaton_accepting = std::visit(
      [](const auto& a) { return a.num_accepting(); }, engine.automaton());
  for (ac::StateIndex s = 0; s < engine.num_accepting_states(); ++s) {
    tables.accept_bitmaps.push_back(engine.accept_bitmap(s));
    tables.accept_targets.push_back(engine.accept_targets(s));
  }
  for (const auto& profile : engine.middleboxes()) {
    tables.middleboxes.push_back(profile.id);
  }
  tables.chains = engine.chain_table();
  for (const auto& [chain, members] : tables.chains) {
    tables.chain_bitmaps[chain] = engine.chain_bitmap(chain);
  }
  return tables;
}

Patterns derive_string_table(const dpi::EngineSpec& spec,
                             const dpi::EngineConfig& config) {
  // Mirrors the distinct-string collection of Engine::compile — on purpose
  // re-derived here, so a compile-side mapping bug shows up as an oracle
  // divergence instead of being trusted.
  std::set<std::string> strings;
  for (const auto& pat : spec.exact_patterns) {
    strings.insert(pat.bytes);
  }
  for (const auto& re : spec.regex_patterns) {
    regex::ParseOptions popts;
    popts.case_insensitive = re.case_insensitive;
    regex::NodePtr ast = regex::parse(re.expression, popts);
    regex::AnchorOptions aopts;
    aopts.min_length = config.anchor_min_length;
    for (std::string& anchor : regex::extract_anchors(*ast, aopts)) {
      strings.insert(std::move(anchor));
    }
  }
  return {strings.begin(), strings.end()};
}

}  // namespace dpisvc::verify
