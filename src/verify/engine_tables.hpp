// Shared plain-data views of compiled-engine artifacts.
//
// Both the static verifier (src/verify, tools/dpisvc_check) and the admission
// analyzer (src/analysis, tools/dpisvc_lint) need the same two derivations:
//
//  - EngineTables: the lookup tables the scan loop consults, extracted from a
//    compiled dpi::Engine into plain data so checks (and tests corrupting one
//    field at a time) never poke at engine internals.
//  - derive_string_table: the distinct-string set (exact patterns plus regex
//    anchors) an engine compile builds its automaton over, re-derived from the
//    EngineSpec without trusting Engine::compile's own bookkeeping.
//
// Keeping these in one translation unit guarantees the verifier's oracle and
// the analyzer's size predictions walk the identical view — a divergence
// between the two tools would otherwise be unfalsifiable.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dpi/engine.hpp"

namespace dpisvc::verify {

/// Pattern bytes indexed by ac::PatternIndex (the trie insertion order).
using Patterns = std::vector<std::string>;

/// Plain-data extract of the lookup tables the scan loop consults. Like
/// DfaSnapshot, this exists so tests can corrupt one field at a time and
/// prove each engine-level violation is detected with a precise diagnostic.
struct EngineTables {
  std::uint32_t automaton_accepting = 0;
  std::vector<dpi::MiddleboxBitmap> accept_bitmaps;
  std::vector<std::vector<dpi::Engine::MatchTarget>> accept_targets;
  std::vector<dpi::MiddleboxId> middleboxes;  ///< registered ids
  std::map<dpi::ChainId, std::vector<dpi::MiddleboxId>> chains;
  std::map<dpi::ChainId, dpi::MiddleboxBitmap> chain_bitmaps;
};

EngineTables extract_tables(const dpi::Engine& engine);

/// The distinct-string table (exact patterns plus regex anchors) an engine
/// compile derives from `spec`, in trie insertion order. Re-derived here so
/// neither the verifier's oracle nor the analyzer's size model trusts
/// Engine::compile's bookkeeping. Throws regex::SyntaxError on a malformed
/// expression, exactly like Engine::compile would.
Patterns derive_string_table(const dpi::EngineSpec& spec,
                             const dpi::EngineConfig& config = {});

}  // namespace dpisvc::verify
