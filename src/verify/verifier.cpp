#include "verify/verifier.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "regex/anchors.hpp"
#include "regex/parser.hpp"

namespace dpisvc::verify {

namespace {

/// Collects diagnostics with a per-call cap so a single systemic corruption
/// (e.g. every transition shifted by one) cannot produce megabytes of output.
class Reporter {
 public:
  explicit Reporter(std::vector<Diagnostic>& out, std::size_t cap = 32)
      : out_(out), cap_(cap) {}

  template <typename... Args>
  void report(const char* code, const Args&... args) {
    ++total_;
    if (out_.size() >= cap_) return;
    std::ostringstream os;
    (os << ... << args);
    out_.push_back(Diagnostic{code, os.str()});
  }

  ~Reporter() {
    if (total_ > cap_) {
      out_.push_back(Diagnostic{
          "diagnostics-truncated",
          "suppressed " + std::to_string(total_ - cap_) + " further findings"});
    }
  }

 private:
  std::vector<Diagnostic>& out_;
  std::size_t cap_;
  std::size_t total_ = 0;
};

/// Heterogeneous (string_view) hashing so the per-transition oracle lookups
/// allocate nothing.
struct SvHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
struct SvEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

/// The definition-based oracle: everything below is derived from the pattern
/// set alone, sharing no construction code with src/ac.
struct Oracle {
  /// Every prefix of every pattern (including ""), i.e. the expected state
  /// labels of the automaton.
  std::unordered_set<std::string, SvHash, SvEq> prefixes;
  /// Pattern bytes -> indices registered for those bytes.
  std::unordered_map<std::string, std::vector<ac::PatternIndex>, SvHash, SvEq>
      by_bytes;
  /// Distinct pattern lengths, ascending.
  std::vector<std::size_t> lengths;

  explicit Oracle(const Patterns& patterns) {
    prefixes.insert(std::string());
    std::set<std::size_t> length_set;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      const std::string& p = patterns[i];
      by_bytes[p].push_back(static_cast<ac::PatternIndex>(i));
      length_set.insert(p.size());
      for (std::size_t len = 1; len <= p.size(); ++len) {
        prefixes.insert(p.substr(0, len));
      }
    }
    lengths.assign(length_set.begin(), length_set.end());
  }

  bool is_prefix(std::string_view label) const {
    return prefixes.find(label) != prefixes.end();
  }

  /// Sorted indices of all patterns that are suffixes of `label` — the
  /// suffix-closure rule of §5.1 by definition.
  std::vector<ac::PatternIndex> expected_matches(std::string_view label) const {
    std::vector<ac::PatternIndex> out;
    for (std::size_t len : lengths) {
      if (len > label.size()) break;
      auto it = by_bytes.find(label.substr(label.size() - len));
      if (it != by_bytes.end()) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Label of delta(label, byte) for `extended` = label + byte: the longest
  /// suffix of it that is a prefix of some pattern (the textbook AC
  /// transition rule). Returns a view into `extended`.
  std::string_view longest_prefix_suffix(std::string_view extended) const {
    for (std::size_t keep = extended.size();; --keep) {
      const std::string_view suffix = extended.substr(extended.size() - keep);
      if (prefixes.find(suffix) != prefixes.end()) return suffix;
      if (keep == 0) return {};
    }
  }
};

/// Reconstructs each state's label by BFS over tree edges (transitions that
/// deepen by exactly one). Returns per-state labels; `labeled[s]` false for
/// unreachable states.
void reconstruct_labels(const DfaSnapshot& snap, std::vector<std::string>& labels,
                        std::vector<bool>& labeled) {
  labels.assign(snap.num_states, {});
  labeled.assign(snap.num_states, false);
  if (snap.start >= snap.num_states) return;
  labeled[snap.start] = true;
  std::deque<ac::StateIndex> queue{snap.start};
  while (!queue.empty()) {
    const ac::StateIndex s = queue.front();
    queue.pop_front();
    for (unsigned b = 0; b < 256; ++b) {
      const ac::StateIndex t = snap.step(s, static_cast<std::uint8_t>(b));
      if (t >= snap.num_states || labeled[t]) continue;
      if (snap.depth[t] != snap.depth[s] + 1) continue;  // not a tree edge
      labels[t] = labels[s] + static_cast<char>(b);
      labeled[t] = true;
      queue.push_back(t);
    }
  }
}

std::string printable(const std::string& bytes) {
  std::string out;
  for (char c : bytes) {
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(c);
    } else {
      char buf[5];
      std::snprintf(buf, sizeof buf, "\\x%02x", static_cast<unsigned char>(c));
      out.append(buf);
    }
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> check_structure(const DfaSnapshot& snap) {
  std::vector<Diagnostic> out;
  Reporter r(out);
  if (snap.num_accepting > snap.num_states) {
    r.report("accepting-count", "num_accepting ", snap.num_accepting,
             " exceeds num_states ", snap.num_states);
  }
  if (snap.start >= snap.num_states) {
    r.report("start-out-of-range", "start state ", snap.start, " >= ",
             snap.num_states);
  }
  if (snap.transitions.size() !=
          static_cast<std::size_t>(snap.num_states) * 256u ||
      snap.depth.size() != snap.num_states ||
      (!snap.fail.empty() && snap.fail.size() != snap.num_states)) {
    r.report("table-shape", "transition/depth/fail table sizes inconsistent ",
             "with num_states ", snap.num_states);
    return out;  // index arithmetic below would be unsafe
  }
  if (snap.match_table.size() != snap.num_accepting) {
    r.report("match-table-size", "match table has ", snap.match_table.size(),
             " rows, expected ", snap.num_accepting);
  }
  for (std::size_t i = 0; i < snap.transitions.size(); ++i) {
    if (snap.transitions[i] >= snap.num_states) {
      r.report("transition-out-of-range", "delta(", i / 256, ", ", i % 256,
               ") = ", snap.transitions[i], " >= ", snap.num_states);
    }
  }
  return out;
}

std::vector<Diagnostic> check_match_rows(const DfaSnapshot& snap,
                                         std::size_t num_patterns) {
  std::vector<Diagnostic> out;
  Reporter r(out);
  for (std::size_t s = 0; s < snap.match_table.size(); ++s) {
    const auto& row = snap.match_table[s];
    if (row.empty()) {
      r.report("accepting-empty-output", "accepting state ", s,
               " has an empty match row (renumbering not dense)");
      continue;
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] >= num_patterns) {
        r.report("pattern-index-out-of-range", "state ", s, " row entry ",
                 row[i], " >= ", num_patterns);
      }
      if (i == 0) continue;
      if (row[i] < row[i - 1]) {
        r.report("match-row-unsorted", "state ", s, " match row unsorted at ",
                 i, " (", row[i - 1], " then ", row[i], ")");
      } else if (row[i] == row[i - 1]) {
        r.report("match-row-duplicate", "state ", s,
                 " match row duplicates pattern ", row[i]);
      }
    }
  }
  return out;
}

std::vector<Diagnostic> check_failure_links(const DfaSnapshot& snap) {
  std::vector<Diagnostic> out;
  Reporter r(out);
  if (snap.fail.empty()) return out;  // representation bakes failures in
  if (snap.fail.size() != snap.num_states || snap.start >= snap.num_states) {
    return out;  // shape errors reported by check_structure
  }
  if (snap.fail[snap.start] != snap.start) {
    r.report("failure-link-root", "start state's failure link is ",
             snap.fail[snap.start], ", expected self (", snap.start, ")");
  }
  for (ac::StateIndex s = 0; s < snap.num_states; ++s) {
    if (s == snap.start) continue;
    const ac::StateIndex f = snap.fail[s];
    if (f >= snap.num_states) {
      r.report("failure-link-cycle", "state ", s, " failure link ", f,
               " out of range");
      continue;
    }
    if (snap.depth[f] >= snap.depth[s]) {
      r.report("failure-link-depth", "state ", s, " (depth ", snap.depth[s],
               ") has failure link ", f, " at depth ", snap.depth[f],
               " (must strictly decrease)");
    }
    // Independently of the depth table: the chain must reach the root within
    // num_states hops, else it cycles.
    ac::StateIndex walk = s;
    std::uint32_t hops = 0;
    while (walk != snap.start && hops <= snap.num_states) {
      walk = snap.fail[walk];
      if (walk >= snap.num_states) break;
      ++hops;
    }
    if (walk != snap.start) {
      r.report("failure-link-cycle", "failure chain from state ", s,
               " never reaches the root");
    }
  }
  return out;
}

std::vector<Diagnostic> check_against_patterns(const DfaSnapshot& snap,
                                               const Patterns& patterns) {
  std::vector<Diagnostic> out;
  Reporter r(out);
  if (snap.transitions.size() !=
          static_cast<std::size_t>(snap.num_states) * 256u ||
      snap.depth.size() != snap.num_states || snap.start >= snap.num_states ||
      snap.match_table.size() != snap.num_accepting) {
    return out;  // shape errors reported by check_structure
  }
  const Oracle oracle(patterns);

  std::vector<std::string> labels;
  std::vector<bool> labeled;
  reconstruct_labels(snap, labels, labeled);

  std::unordered_map<std::string, ac::StateIndex> state_of_label;
  std::size_t reachable = 0;
  for (ac::StateIndex s = 0; s < snap.num_states; ++s) {
    if (!labeled[s]) {
      r.report("state-unreachable", "state ", s,
               " is not reachable via depth-increasing transitions");
      continue;
    }
    ++reachable;
    if (!oracle.is_prefix(labels[s])) {
      r.report("label-not-prefix", "state ", s, " label \"",
               printable(labels[s]), "\" is not a prefix of any pattern");
      continue;
    }
    auto [it, inserted] = state_of_label.emplace(labels[s], s);
    if (!inserted) {
      r.report("label-collision", "states ", it->second, " and ", s,
               " share label \"", printable(labels[s]), "\"");
    }
  }
  if (reachable != oracle.prefixes.size()) {
    r.report("state-count", "automaton has ", reachable,
             " reachable states, expected ", oracle.prefixes.size(),
             " (one per distinct pattern prefix)");
  }

  std::string scratch;
  for (ac::StateIndex s = 0; s < snap.num_states; ++s) {
    if (!labeled[s]) continue;
    const std::string& label = labels[s];
    if (snap.depth[s] != label.size()) {
      r.report("depth-divergence", "state ", s, " depth ", snap.depth[s],
               " but label \"", printable(label), "\" has length ",
               label.size());
    }

    const std::vector<ac::PatternIndex> expected =
        oracle.expected_matches(label);
    const bool accepting = s < snap.num_accepting;
    if (expected.empty() != !accepting) {
      r.report("acceptance-divergence", "state ", s, " (label \"",
               printable(label), "\") ",
               accepting ? "is accepting but matches no pattern"
                         : "matches a pattern but its id is not in {0..f-1}");
    } else if (accepting) {
      const auto& row = snap.match_table[s];
      if (row != expected) {
        // Distinguish a missing proper-suffix pattern (§5.1 propagation bug)
        // from any other divergence.
        bool missing_suffix = false;
        for (ac::PatternIndex p : expected) {
          if (std::find(row.begin(), row.end(), p) == row.end() &&
              p < patterns.size() && patterns[p].size() < label.size()) {
            missing_suffix = true;
            r.report("suffix-propagation-missing", "state ", s, " (label \"",
                     printable(label), "\") misses suffix pattern ", p, " (\"",
                     printable(patterns[p]), "\")");
          }
        }
        if (!missing_suffix) {
          r.report("match-divergence", "state ", s, " (label \"",
                   printable(label), "\") match row disagrees with the oracle");
        }
      }
    }

    scratch.assign(label);
    scratch.push_back('\0');
    for (unsigned b = 0; b < 256; ++b) {
      const ac::StateIndex t = snap.step(s, static_cast<std::uint8_t>(b));
      if (t >= snap.num_states || !labeled[t]) continue;  // reported above
      scratch.back() = static_cast<char>(b);
      const std::string_view want = oracle.longest_prefix_suffix(scratch);
      if (labels[t] != want) {
        r.report("transition-divergence", "delta(state ", s, " \"",
                 printable(label), "\", byte ", b, ") leads to \"",
                 printable(labels[t]), "\", expected \"",
                 printable(std::string(want)), "\"");
      }
    }
  }
  return out;
}

std::vector<Diagnostic> check_equivalence(const DfaSnapshot& full,
                                          const DfaSnapshot& compressed) {
  std::vector<Diagnostic> out;
  Reporter r(out);
  if (full.num_states != compressed.num_states ||
      full.num_accepting != compressed.num_accepting ||
      full.start != compressed.start) {
    r.report("representation-shape", "representations disagree on shape: ",
             full.num_states, "/", full.num_accepting, "/", full.start,
             " vs ", compressed.num_states, "/", compressed.num_accepting,
             "/", compressed.start);
    return out;
  }
  for (ac::StateIndex s = 0; s < full.num_states; ++s) {
    for (unsigned b = 0; b < 256; ++b) {
      const ac::StateIndex lhs = full.step(s, static_cast<std::uint8_t>(b));
      const ac::StateIndex rhs =
          compressed.step(s, static_cast<std::uint8_t>(b));
      if (lhs != rhs) {
        r.report("representation-divergence", "delta(", s, ", ", b,
                 ") = ", lhs, " in the full table but ", rhs,
                 " after decoding the compressed form");
      }
    }
  }
  for (ac::StateIndex s = 0; s < full.num_accepting; ++s) {
    if (full.match_table[s] != compressed.match_table[s]) {
      r.report("representation-match-divergence", "accepting state ", s,
               " has different match rows in the two representations");
    }
  }
  return out;
}

std::vector<Diagnostic> check_hot_kernel(const ac::FullAutomaton& full,
                                         const ac::HotKernel& kernel) {
  std::vector<Diagnostic> out;
  Reporter r(out);
  if (!kernel.available()) {
    r.report("kernel-unavailable", "kernel has no hot states");
    return out;
  }
  const std::uint32_t n = full.num_states();
  const std::uint32_t f = full.num_accepting();
  if (kernel.num_hot_states() > n || kernel.num_hot_accepting() > f ||
      kernel.num_classes() == 0 || kernel.num_classes() > 256) {
    r.report("kernel-shape", "hot core ", kernel.num_hot_states(), "/",
             kernel.num_hot_accepting(), " states/accepting with ",
             kernel.num_classes(), " classes does not fit automaton ", n, "/",
             f);
    return out;
  }
  // hot <-> full id maps must be inverse bijections over the hot set.
  for (std::uint32_t h = 0; h < kernel.num_hot_states(); ++h) {
    const ac::StateIndex s =
        kernel.full_id(static_cast<ac::HotStateIndex>(h));
    if (s >= n || kernel.hot_id(s) != h) {
      r.report("kernel-id-map", "hot id ", h, " maps to full state ", s,
               " which does not map back");
    }
  }
  for (ac::StateIndex s = 0; s < n; ++s) {
    const std::uint16_t h = kernel.hot_id(s);
    const bool hot = h != ac::kColdExit;
    if (hot && (h >= kernel.num_hot_states() ||
                kernel.full_id(static_cast<ac::HotStateIndex>(h)) != s)) {
      r.report("kernel-id-map", "full state ", s, " maps to hot id ", h,
               " which does not map back");
    }
    // The hot set is exactly the states within the advertised depth bound.
    if (hot != (full.depth(s) <= kernel.hot_depth())) {
      r.report("kernel-depth-closure", "state ", s, " at depth ",
               full.depth(s), " is ", hot ? "hot" : "cold",
               " despite hot depth bound ", kernel.hot_depth());
    }
    // Accepting-first renumbering: acceptance must stay `hot id < fa`.
    if (hot && ((h < kernel.num_hot_accepting()) != (s < f))) {
      r.report("kernel-accepting-order", "full state ", s, " (accepting=",
               s < f, ") renumbered to hot id ", h,
               " across the accepting boundary ", kernel.num_hot_accepting());
    }
  }
  if (kernel.hot_id(full.start_state()) == ac::kColdExit) {
    r.report("kernel-start-cold", "start state ", full.start_state(),
             " is outside the hot core");
  }
  if (kernel.complete() != (kernel.num_hot_states() == n)) {
    r.report("kernel-complete-flag", "complete flag ", kernel.complete(),
             " disagrees with ", kernel.num_hot_states(), " of ", n,
             " states hot");
  }
  for (unsigned b = 0; b < 256; ++b) {
    if (kernel.byte_class(static_cast<std::uint8_t>(b)) >=
        kernel.num_classes()) {
      r.report("kernel-class-range", "byte ", b, " has class ",
               kernel.byte_class(static_cast<std::uint8_t>(b)),
               " >= num_classes ", kernel.num_classes());
    }
  }
  // Exhaustive transition proof over all 256 bytes (not just class
  // representatives): entry(hot(s), class(b)) must equal the full table's
  // delta for EVERY byte of the class, which is precisely the
  // byte-equivalence claim the class compression rests on.
  for (std::uint32_t h = 0; h < kernel.num_hot_states(); ++h) {
    const ac::StateIndex s =
        kernel.full_id(static_cast<ac::HotStateIndex>(h));
    if (s >= n) continue;  // already reported above
    for (unsigned b = 0; b < 256; ++b) {
      const ac::StateIndex target = full.step(s, static_cast<std::uint8_t>(b));
      const std::uint16_t expected = kernel.hot_id(target);
      const std::uint16_t got = kernel.table_entry(
          static_cast<ac::HotStateIndex>(h),
          kernel.byte_class(static_cast<std::uint8_t>(b)));
      if (got != expected) {
        r.report("kernel-transition-divergence", "delta(", s, ", ", b,
                 ") = ", target, " but the hot table resolves hot id ", h,
                 " class ", kernel.byte_class(static_cast<std::uint8_t>(b)),
                 " to ", got, " (expected ", expected, ")");
      }
    }
  }
  return out;
}

namespace {

/// First field where two scan results differ, or "" when identical.
std::string diff_scan_results(const dpi::ScanResult& scalar,
                              const dpi::ScanResult& kernel) {
  std::ostringstream os;
  if (scalar.raw_hits != kernel.raw_hits) {
    os << "raw_hits " << scalar.raw_hits << " vs " << kernel.raw_hits;
    return os.str();
  }
  if (scalar.bytes_scanned != kernel.bytes_scanned) {
    os << "bytes_scanned " << scalar.bytes_scanned << " vs "
       << kernel.bytes_scanned;
    return os.str();
  }
  if (scalar.anchor_hits_seen != kernel.anchor_hits_seen) {
    os << "anchor_hits_seen " << scalar.anchor_hits_seen << " vs "
       << kernel.anchor_hits_seen;
    return os.str();
  }
  if (scalar.regexes_evaluated != kernel.regexes_evaluated ||
      scalar.regex_matches != kernel.regex_matches) {
    os << "regex counters " << scalar.regexes_evaluated << "/"
       << scalar.regex_matches << " vs " << kernel.regexes_evaluated << "/"
       << kernel.regex_matches;
    return os.str();
  }
  if (scalar.matches.size() != kernel.matches.size()) {
    os << "section count " << scalar.matches.size() << " vs "
       << kernel.matches.size();
    return os.str();
  }
  for (std::size_t i = 0; i < scalar.matches.size(); ++i) {
    if (scalar.matches[i].middlebox != kernel.matches[i].middlebox ||
        scalar.matches[i].entries != kernel.matches[i].entries) {
      os << "section " << i << " (middlebox " << scalar.matches[i].middlebox
         << " vs " << kernel.matches[i].middlebox << ") entries differ";
      return os.str();
    }
  }
  const dpi::FlowCursor& sc = scalar.cursor;
  const dpi::FlowCursor& kc = kernel.cursor;
  if (sc.valid != kc.valid || sc.dfa_state != kc.dfa_state ||
      sc.offset != kc.offset) {
    os << "cursor state/offset/valid " << sc.dfa_state << "/" << sc.offset
       << "/" << sc.valid << " vs " << kc.dfa_state << "/" << kc.offset << "/"
       << kc.valid;
    return os.str();
  }
  if (sc.anchor_hits != kc.anchor_hits) return "cursor anchor_hits";
  if (sc.regex_window != kc.regex_window) return "cursor regex_window";
  return {};
}

}  // namespace

std::vector<Diagnostic> cross_check_kernel(
    const dpi::Engine& engine, dpi::ChainId chain,
    const std::vector<std::vector<Bytes>>& flows) {
  std::vector<Diagnostic> out;
  Reporter r(out);
  if (!engine.kernel_active()) {
    r.report("kernel-not-active",
             "engine has no active batched kernel to cross-check");
    return out;
  }
  // Scalar is the oracle: it is the loop the whole verify suite already
  // proves correct against the definition-based automaton oracle.
  std::size_t max_packets = 0;

  // Packet-by-packet differential, cursors resumed independently per mode.
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    dpi::FlowCursor scalar_cursor;
    dpi::FlowCursor kernel_cursor;
    max_packets = std::max(max_packets, flows[fi].size());
    for (std::size_t pi = 0; pi < flows[fi].size(); ++pi) {
      const BytesView payload(flows[fi][pi]);
      const dpi::ScanResult scalar = engine.scan_packet_as(
          dpi::ScanKernel::kScalar, chain, payload, scalar_cursor);
      const dpi::ScanResult batched = engine.scan_packet_as(
          dpi::ScanKernel::kBatched, chain, payload, kernel_cursor);
      const std::string diff = diff_scan_results(scalar, batched);
      if (!diff.empty()) {
        r.report("kernel-scan-divergence", "flow ", fi, " packet ", pi, ": ",
                 diff);
      }
      scalar_cursor = scalar.cursor;
      kernel_cursor = batched.cursor;
    }
  }

  // Interleaved batch differential: advance all flows in lockstep (round k
  // scans every flow's k-th packet in one batch) so distinct flows share an
  // interleave group, and compare against fresh scalar runs.
  std::vector<dpi::FlowCursor> scalar_cursors(flows.size());
  std::vector<dpi::FlowCursor> batch_cursors(flows.size());
  for (std::size_t round = 0; round < max_packets; ++round) {
    std::vector<BytesView> payloads;
    std::vector<std::size_t> members;
    std::vector<dpi::FlowCursor> round_cursors;
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      if (round >= flows[fi].size()) continue;
      payloads.emplace_back(flows[fi][round]);
      members.push_back(fi);
      round_cursors.push_back(batch_cursors[fi]);
    }
    if (payloads.empty()) continue;
    const std::vector<dpi::ScanResult> batched = engine.scan_batch_as(
        dpi::ScanKernel::kBatched, chain, payloads, &round_cursors);
    for (std::size_t k = 0; k < members.size(); ++k) {
      const std::size_t fi = members[k];
      const dpi::ScanResult scalar = engine.scan_packet_as(
          dpi::ScanKernel::kScalar, chain, payloads[k], scalar_cursors[fi]);
      const std::string diff = diff_scan_results(scalar, batched[k]);
      if (!diff.empty()) {
        r.report("kernel-batch-divergence", "flow ", fi, " round ", round,
                 " (group of ", members.size(), "): ", diff);
      }
      scalar_cursors[fi] = scalar.cursor;
      batch_cursors[fi] = batched[k].cursor;
    }
  }
  return out;
}

std::vector<Diagnostic> check_engine_tables(const EngineTables& tables) {
  std::vector<Diagnostic> out;
  Reporter r(out);
  if (tables.automaton_accepting != tables.accept_targets.size() ||
      tables.accept_bitmaps.size() != tables.accept_targets.size()) {
    r.report("engine-shape", "automaton has ", tables.automaton_accepting,
             " accepting states but the engine tables cover ",
             tables.accept_targets.size(), " (bitmaps: ",
             tables.accept_bitmaps.size(), ")");
    return out;
  }
  const auto known = [&tables](dpi::MiddleboxId id) {
    return std::find(tables.middleboxes.begin(), tables.middleboxes.end(),
                     id) != tables.middleboxes.end();
  };
  for (std::size_t s = 0; s < tables.accept_targets.size(); ++s) {
    const auto& row = tables.accept_targets[s];
    dpi::MiddleboxBitmap owners = 0;
    for (const auto& t : row) {
      owners |= t.owners;
      if (!t.is_anchor) {
        if (t.owners != dpi::bitmap_of(t.middlebox)) {
          r.report("target-owner-mismatch", "state ", s, " target (mbox ",
                   t.middlebox, ", rule ", t.pattern_id,
                   ") owner bitmap disagrees with its middlebox id");
        }
        if (!known(t.middlebox)) {
          r.report("target-unknown-middlebox", "state ", s,
                   " references unregistered middlebox ", t.middlebox);
        }
      }
    }
    if (owners != tables.accept_bitmaps[s]) {
      r.report("bitmap-stale", "state ", s, " bitmap ",
               tables.accept_bitmaps[s], " != OR of its match targets ",
               owners);
    }
    for (std::size_t i = 1; i < row.size(); ++i) {
      const auto& a = row[i - 1];
      const auto& b = row[i];
      const bool ordered =
          a.is_anchor != b.is_anchor
              ? b.is_anchor  // non-anchor targets precede anchor targets
              : (a.middlebox != b.middlebox ? a.middlebox < b.middlebox
                                            : a.pattern_id <= b.pattern_id);
      if (!ordered) {
        r.report("target-row-unsorted", "state ", s,
                 " target row out of (middlebox, pattern) order at index ", i);
      }
    }
  }
  for (const auto& [chain, members] : tables.chains) {
    dpi::MiddleboxBitmap expected = 0;
    for (dpi::MiddleboxId id : members) {
      expected |= dpi::bitmap_of(id);
    }
    const auto it = tables.chain_bitmaps.find(chain);
    const dpi::MiddleboxBitmap have =
        it == tables.chain_bitmaps.end() ? 0 : it->second;
    if (have != expected) {
      r.report("chain-bitmap-stale", "chain ", chain, " bitmap ", have,
               " != OR of its members ", expected);
    }
  }
  return out;
}

std::vector<Diagnostic> check_engine(const dpi::Engine& engine) {
  return check_engine_tables(extract_tables(engine));
}

std::vector<Diagnostic> check_pattern_db(const dpi::PatternDb& db) {
  std::vector<Diagnostic> out;
  Reporter r(out);
  const dpi::EngineSpec spec = db.snapshot();
  std::map<dpi::MiddleboxId, std::size_t> refs;
  std::set<std::string> distinct_exact;
  std::set<std::string> distinct_regex;
  for (const auto& p : spec.exact_patterns) {
    ++refs[p.middlebox];
    distinct_exact.insert(p.bytes);
    if (!db.is_registered(p.middlebox)) {
      r.report("unregistered-reference", "exact pattern \"",
               printable(p.bytes), "\" references unregistered middlebox ",
               p.middlebox);
    }
  }
  for (const auto& p : spec.regex_patterns) {
    ++refs[p.middlebox];
    distinct_regex.insert(p.expression);
    if (!db.is_registered(p.middlebox)) {
      r.report("unregistered-reference", "regex references unregistered ",
               "middlebox ", p.middlebox);
    }
  }
  for (const auto& profile : spec.middleboxes) {
    const std::size_t have = db.num_references(profile.id);
    const auto it = refs.find(profile.id);
    const std::size_t expect = it == refs.end() ? 0 : it->second;
    if (have != expect) {
      r.report("refcount-mismatch", "middlebox ", profile.id, " ref-count ",
               have, " != ", expect, " registrations visible in the snapshot");
    }
  }
  if (distinct_exact.size() != db.num_distinct_exact()) {
    r.report("distinct-count", "snapshot holds ", distinct_exact.size(),
             " distinct exact patterns, registry reports ",
             db.num_distinct_exact());
  }
  if (distinct_regex.size() != db.num_distinct_regex()) {
    r.report("distinct-count", "snapshot holds ", distinct_regex.size(),
             " distinct regexes, registry reports ", db.num_distinct_regex());
  }
  for (const auto& [chain, members] : spec.chains) {
    for (dpi::MiddleboxId id : members) {
      if (!db.is_registered(id)) {
        r.report("chain-unknown-middlebox", "chain ", chain,
                 " references unregistered middlebox ", id);
      }
    }
  }
  return out;
}

std::vector<Diagnostic> verify_dfa(const DfaSnapshot& snap,
                                   const Patterns& patterns) {
  std::vector<Diagnostic> out = check_structure(snap);
  auto append = [&out](std::vector<Diagnostic> more) {
    out.insert(out.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  };
  append(check_match_rows(snap, patterns.size()));
  append(check_failure_links(snap));
  append(check_against_patterns(snap, patterns));
  return out;
}

std::vector<Diagnostic> verify_engine_spec(const dpi::EngineSpec& spec,
                                           const dpi::EngineConfig& config) {
  std::vector<Diagnostic> out;
  std::shared_ptr<const dpi::Engine> engine;
  try {
    engine = dpi::Engine::compile(spec, config);
  } catch (const std::exception& e) {
    out.push_back(Diagnostic{"compile-error", e.what()});
    return out;
  }
  auto append = [&out](std::vector<Diagnostic> more) {
    out.insert(out.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  };

  const Patterns patterns = derive_string_table(spec, config);
  const DfaSnapshot engine_snap = std::visit(
      [](const auto& a) { return snapshot_of(a); }, engine->automaton());

  if (!patterns.empty()) {
    append(verify_dfa(engine_snap, patterns));

    // Build the *other* representation independently from the same strings
    // and prove the two encode the identical automaton.
    ac::Trie trie;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      trie.insert(std::string_view(patterns[i]),
                  static_cast<ac::PatternIndex>(i));
    }
    if (engine->uses_compressed_automaton()) {
      append(check_equivalence(snapshot_of(ac::FullAutomaton::build(trie)),
                               engine_snap));
    } else {
      append(check_equivalence(
          engine_snap, snapshot_of(ac::CompressedAutomaton::build(trie))));
    }
  }

  append(check_engine(*engine));
  return out;
}

}  // namespace dpisvc::verify
